#pragma once

/// \file partition_io.hpp
/// Community-assignment persistence: one `vertex <tab> community` pair per
/// line, `#` comments allowed — the same convention SNAP's community files
/// and Infomap's .clu outputs follow, so results interoperate with the
/// usual analysis tooling.

#include <filesystem>
#include <istream>
#include <ostream>

#include "asamap/metrics/partition.hpp"

namespace asamap::metrics {

/// Writes `partition` (community id per vertex) to a stream.
void write_partition(std::ostream& out, const Partition& partition);

/// Reads a partition.  Vertices may appear in any order; missing vertices
/// below the maximum id get community 0.  Throws std::runtime_error on
/// malformed lines.
Partition read_partition(std::istream& in);

void save_partition(const std::filesystem::path& path,
                    const Partition& partition);
Partition load_partition(const std::filesystem::path& path);

}  // namespace asamap::metrics
