#pragma once

/// \file partition.hpp
/// Community-partition utilities: compaction, counting, and agreement
/// metrics (NMI, ARI) plus modularity.  These back the quality checks in the
/// examples and tests — Infomap's claim to fame (the paper's introduction)
/// is quality on LFR benchmarks, which we verify with NMI against planted
/// ground truth.

#include <cstdint>
#include <vector>

#include "asamap/graph/csr_graph.hpp"

namespace asamap::metrics {

using graph::CsrGraph;
using graph::VertexId;

/// A partition is a community id per vertex.
using Partition = std::vector<VertexId>;

/// Renumbers community ids to 0..k-1 (order of first appearance) and returns
/// the number of communities k.
std::size_t compact_partition(Partition& p);

/// Number of distinct community ids.
std::size_t count_communities(const Partition& p);

/// Community sizes indexed by compacted id.
std::vector<std::uint64_t> community_sizes(const Partition& p);

/// Normalized Mutual Information between two partitions of the same vertex
/// set, in [0, 1]; 1 means identical up to relabeling.  Uses the arithmetic
/// normalization NMI = 2 I(A;B) / (H(A) + H(B)) standard in the community-
/// detection literature (Danon et al. 2005).
double normalized_mutual_information(const Partition& a, const Partition& b);

/// Adjusted Rand Index in [-1, 1]; expected 0 for independent partitions.
double adjusted_rand_index(const Partition& a, const Partition& b);

/// Newman-Girvan modularity Q of a partition on an undirected weighted
/// graph: Q = sum_c [ w_in_c / W - (w_deg_c / 2W)^2 ] with W the total
/// undirected edge weight.  The graph must be symmetric.
double modularity(const CsrGraph& g, const Partition& p);

}  // namespace asamap::metrics
