#include "asamap/metrics/partition_io.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace asamap::metrics {

void write_partition(std::ostream& out, const Partition& partition) {
  out << "# vertex\tcommunity\n";
  for (std::size_t v = 0; v < partition.size(); ++v) {
    out << v << '\t' << partition[v] << '\n';
  }
}

Partition read_partition(std::istream& in) {
  Partition partition;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view s = line;
    std::size_t i = 0;
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    s.remove_prefix(i);
    if (s.empty() || s.front() == '#') continue;

    auto parse = [&](std::string_view& sv) -> VertexId {
      std::size_t skip = 0;
      while (skip < sv.size() && (sv[skip] == ' ' || sv[skip] == '\t')) ++skip;
      sv.remove_prefix(skip);
      VertexId value{};
      const auto r = std::from_chars(sv.data(), sv.data() + sv.size(), value);
      if (r.ec != std::errc{}) {
        throw std::runtime_error("partition parse error at line " +
                                 std::to_string(line_no));
      }
      sv.remove_prefix(static_cast<std::size_t>(r.ptr - sv.data()));
      return value;
    };
    const VertexId vertex = parse(s);
    const VertexId community = parse(s);
    if (vertex >= partition.size()) partition.resize(vertex + 1, 0);
    partition[vertex] = community;
  }
  return partition;
}

void save_partition(const std::filesystem::path& path,
                    const Partition& partition) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write partition file: " + path.string());
  }
  write_partition(out, partition);
}

Partition load_partition(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open partition file: " + path.string());
  }
  return read_partition(in);
}

}  // namespace asamap::metrics
