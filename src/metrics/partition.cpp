#include "asamap/metrics/partition.hpp"

#include <cmath>
#include <unordered_map>

#include "asamap/support/check.hpp"

namespace asamap::metrics {

std::size_t compact_partition(Partition& p) {
  std::unordered_map<VertexId, VertexId> relabel;
  relabel.reserve(p.size() / 4 + 1);
  for (VertexId& c : p) {
    auto [it, inserted] =
        relabel.try_emplace(c, static_cast<VertexId>(relabel.size()));
    c = it->second;
  }
  return relabel.size();
}

std::size_t count_communities(const Partition& p) {
  Partition copy = p;
  return compact_partition(copy);
}

std::vector<std::uint64_t> community_sizes(const Partition& p) {
  Partition copy = p;
  const std::size_t k = compact_partition(copy);
  std::vector<std::uint64_t> sizes(k, 0);
  for (VertexId c : copy) ++sizes[c];
  return sizes;
}

namespace {

/// Joint contingency counts between two compacted partitions.
struct Contingency {
  std::size_t ka = 0, kb = 0;
  std::vector<std::uint64_t> row;    ///< |A_i|
  std::vector<std::uint64_t> col;    ///< |B_j|
  std::unordered_map<std::uint64_t, std::uint64_t> joint;  ///< (i,j) -> count
  std::uint64_t n = 0;
};

Contingency build_contingency(const Partition& a, const Partition& b) {
  ASAMAP_CHECK(a.size() == b.size(), "partition size mismatch");
  Partition ca = a, cb = b;
  Contingency t;
  t.ka = compact_partition(ca);
  t.kb = compact_partition(cb);
  t.row.assign(t.ka, 0);
  t.col.assign(t.kb, 0);
  t.n = a.size();
  for (std::size_t v = 0; v < a.size(); ++v) {
    ++t.row[ca[v]];
    ++t.col[cb[v]];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ca[v]) << 32) | cb[v];
    ++t.joint[key];
  }
  return t;
}

}  // namespace

double normalized_mutual_information(const Partition& a, const Partition& b) {
  if (a.empty()) return 1.0;
  const Contingency t = build_contingency(a, b);
  const double n = static_cast<double>(t.n);

  auto entropy = [&](const std::vector<std::uint64_t>& sizes) {
    double h = 0.0;
    for (std::uint64_t s : sizes) {
      if (s == 0) continue;
      const double p = static_cast<double>(s) / n;
      h -= p * std::log(p);
    }
    return h;
  };
  const double ha = entropy(t.row);
  const double hb = entropy(t.col);
  if (ha == 0.0 && hb == 0.0) return 1.0;  // both trivial partitions agree

  double mi = 0.0;
  for (const auto& [key, count] : t.joint) {
    const std::size_t i = key >> 32;
    const std::size_t j = key & 0xffffffffULL;
    const double pij = static_cast<double>(count) / n;
    const double pi = static_cast<double>(t.row[i]) / n;
    const double pj = static_cast<double>(t.col[j]) / n;
    mi += pij * std::log(pij / (pi * pj));
  }
  return 2.0 * mi / (ha + hb);
}

double adjusted_rand_index(const Partition& a, const Partition& b) {
  if (a.empty()) return 1.0;
  const Contingency t = build_contingency(a, b);
  auto choose2 = [](std::uint64_t x) {
    return static_cast<double>(x) * (static_cast<double>(x) - 1.0) / 2.0;
  };
  double sum_joint = 0.0;
  for (const auto& [key, count] : t.joint) sum_joint += choose2(count);
  double sum_row = 0.0, sum_col = 0.0;
  for (std::uint64_t s : t.row) sum_row += choose2(s);
  for (std::uint64_t s : t.col) sum_col += choose2(s);
  const double total = choose2(t.n);
  if (total == 0.0) return 1.0;
  const double expected = sum_row * sum_col / total;
  const double max_index = 0.5 * (sum_row + sum_col);
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (sum_joint - expected) / (max_index - expected);
}

double modularity(const CsrGraph& g, const Partition& p) {
  ASAMAP_CHECK(p.size() == g.num_vertices(), "partition/graph size mismatch");
  ASAMAP_CHECK(g.is_symmetric(), "modularity needs an undirected graph");
  const double two_w = g.total_arc_weight();  // each edge counted both ways
  if (two_w == 0.0) return 0.0;

  Partition cp = p;
  const std::size_t k = compact_partition(cp);
  std::vector<double> internal(k, 0.0);  // sum of arc weights inside c
  std::vector<double> degree(k, 0.0);    // sum of weighted degrees in c
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    degree[cp[u]] += g.out_weight(u);
    for (const graph::Arc& arc : g.out_neighbors(u)) {
      if (cp[arc.dst] == cp[u]) internal[cp[u]] += arc.weight;
    }
  }
  double q = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    q += internal[c] / two_w - (degree[c] / two_w) * (degree[c] / two_w);
  }
  return q;
}

}  // namespace asamap::metrics
