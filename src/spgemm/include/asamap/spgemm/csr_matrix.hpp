#pragma once

/// \file csr_matrix.hpp
/// Compressed-sparse-row matrix for the SpGEMM kernel — the application the
/// ASA accelerator was originally designed for (Chao et al., TACO 2022).
/// This library closes the loop on the paper's generalization claim: the
/// same accumulator engines that drive Infomap's FindBestCommunity also
/// drive Gustavson's row-wise sparse matrix-matrix product here.

#include <cstdint>
#include <span>
#include <vector>

namespace asamap::spgemm {

/// A coordinate-format entry used to assemble matrices.
struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Immutable CSR matrix with double values.  Column indices within each row
/// are sorted; duplicate triplets are summed at construction.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assembles from triplets (any order, duplicates accumulate).  Entries
  /// that sum to exactly 0.0 are kept — numeric cancellation is the
  /// caller's business, structural zeros are not introduced silently.
  static CsrMatrix from_triplets(std::uint32_t rows, std::uint32_t cols,
                                 std::vector<Triplet> triplets);

  /// n x n identity.
  static CsrMatrix identity(std::uint32_t n);

  /// Uniform random sparse matrix with `nnz_per_row` expected entries per
  /// row; deterministic in the seed.  Used by tests and the SpGEMM bench.
  static CsrMatrix random(std::uint32_t rows, std::uint32_t cols,
                          double nnz_per_row, std::uint64_t seed);

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint64_t nnz() const noexcept { return values_.size(); }

  /// Column indices of row i.
  [[nodiscard]] std::span<const std::uint32_t> row_cols(
      std::uint32_t i) const noexcept {
    return {cols_idx_.data() + row_ptr_[i], cols_idx_.data() + row_ptr_[i + 1]};
  }
  /// Values of row i, aligned with row_cols(i).
  [[nodiscard]] std::span<const double> row_vals(
      std::uint32_t i) const noexcept {
    return {values_.data() + row_ptr_[i], values_.data() + row_ptr_[i + 1]};
  }
  [[nodiscard]] std::uint64_t row_begin(std::uint32_t i) const noexcept {
    return row_ptr_[i];
  }

  /// Transpose (used to express column-wise formulations row-wise).
  [[nodiscard]] CsrMatrix transpose() const;

  /// Element lookup (binary search within the row); 0.0 when absent.
  [[nodiscard]] double at(std::uint32_t r, std::uint32_t c) const;

  /// Max |a_ij - b_ij| over the union of sparsity patterns.
  static double max_abs_diff(const CsrMatrix& a, const CsrMatrix& b);

  friend bool operator==(const CsrMatrix&, const CsrMatrix&) = default;

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<std::uint64_t> row_ptr_{0};
  std::vector<std::uint32_t> cols_idx_;
  std::vector<double> values_;
};

}  // namespace asamap::spgemm
