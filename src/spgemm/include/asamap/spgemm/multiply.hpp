#pragma once

/// \file multiply.hpp
/// Gustavson row-wise SpGEMM, parameterized on the accumulation engine —
/// the ASA accelerator's original workload (Chao et al., TACO 2022),
/// expressed through the same KvAccumulator concept Infomap uses.
///
///   C(i, :) = sum over k in A(i, :) of  a_ik * B(k, :)
///
/// Each row's partial products are accumulated per column index — precisely
/// the hash-accumulate-then-drain pattern of FindBestCommunity, which is why
/// the paper could lift ASA from here into community detection.  Events are
/// emitted so the sim::CoreModel can compare Baseline vs ASA on the
/// accelerator's home turf (bench_spgemm).

#include <algorithm>
#include <cstdint>

#include "asamap/hashdb/accumulator_concept.hpp"
#include "asamap/hashdb/address_space.hpp"
#include "asamap/sim/event_sink.hpp"
#include "asamap/spgemm/csr_matrix.hpp"
#include "asamap/support/check.hpp"

namespace asamap::spgemm {

/// Instruction costs of the multiply skeleton (identical across engines).
struct SpgemmCosts {
  std::uint32_t per_row = 8;       ///< row loop control
  std::uint32_t per_product = 4;   ///< multiply + accumulate setup
  std::uint32_t per_output = 3;    ///< result emission
};

/// Simulated base addresses for the operand/result arrays.
struct SpgemmAddresses {
  std::uint64_t a_entries = 0;
  std::uint64_t b_entries = 0;
  std::uint64_t c_entries = 0;

  static SpgemmAddresses for_operands(const CsrMatrix& a, const CsrMatrix& b,
                                      hashdb::AddressSpace& addrs) {
    SpgemmAddresses s;
    s.a_entries = addrs.alloc_array(a.nnz() * 12);  // col + value
    s.b_entries = addrs.alloc_array(b.nnz() * 12);
    // C's size is unknown before the multiply (the classic SpGEMM
    // allocation problem); reserve simulated address space for the worst
    // case instead — a dense result — so stores never alias other regions.
    s.c_entries = addrs.alloc_array(
        std::min<std::uint64_t>(std::uint64_t{a.rows()} * b.cols() * 24,
                                std::uint64_t{1} << 34));
    return s;
  }
};

/// Statistics of one multiplication.
struct SpgemmStats {
  std::uint64_t partial_products = 0;  ///< accumulate calls (FLOP count / 2)
  std::uint64_t output_entries = 0;
};

/// C = A * B using the given accumulator.  Output rows have sorted column
/// indices regardless of the engine's drain order, so results are
/// bit-comparable across engines.
template <hashdb::KvAccumulator Acc, sim::EventSink Sink>
CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b, Acc& acc,
                   Sink& sink, const SpgemmAddresses& addrs,
                   SpgemmStats* stats = nullptr,
                   const SpgemmCosts& costs = {}) {
  ASAMAP_CHECK(a.cols() == b.rows(), "inner dimension mismatch");

  std::vector<Triplet> out;
  std::vector<hashdb::KeyValue> row_buf;
  SpgemmStats local;

  for (std::uint32_t i = 0; i < a.rows(); ++i) {
    sink.instructions(costs.per_row);
    acc.begin();
    const auto a_cols = a.row_cols(i);
    const auto a_vals = a.row_vals(i);
    const std::uint64_t a_base = a.row_begin(i);
    for (std::size_t p = 0; p < a_cols.size(); ++p) {
      sink.load_stream(addrs.a_entries + (a_base + p) * 12, 12);
      const std::uint32_t k = a_cols[p];
      const double a_ik = a_vals[p];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      const std::uint64_t b_base = b.row_begin(k);
      for (std::size_t q = 0; q < b_cols.size(); ++q) {
        // B's row is a fresh gather per k — sequential within the row but
        // the row start is data-dependent, so charge the first touch as a
        // plain load and the rest as stream.
        if (q == 0) {
          sink.load(addrs.b_entries + (b_base + q) * 12, 12);
        } else {
          sink.load_stream(addrs.b_entries + (b_base + q) * 12, 12);
        }
        sink.instructions(costs.per_product);
        acc.accumulate(b_cols[q], a_ik * b_vals[q]);
        ++local.partial_products;
      }
    }

    const auto pairs = acc.finalize();
    row_buf.assign(pairs.begin(), pairs.end());
    std::sort(row_buf.begin(), row_buf.end(),
              [](const hashdb::KeyValue& x, const hashdb::KeyValue& y) {
                return x.key < y.key;
              });
    for (const auto& kv : row_buf) {
      sink.instructions(costs.per_output);
      sink.store(addrs.c_entries + local.output_entries * 24, 24);
      out.push_back(Triplet{i, kv.key, kv.value});
      ++local.output_entries;
    }
  }

  if (stats != nullptr) *stats = local;
  return CsrMatrix::from_triplets(a.rows(), b.cols(), std::move(out));
}

/// Reference multiply via a plain std::unordered_map accumulator — used by
/// tests as the ground truth.
CsrMatrix multiply_reference(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace asamap::spgemm
