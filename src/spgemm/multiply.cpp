#include "asamap/spgemm/multiply.hpp"

#include <unordered_map>

namespace asamap::spgemm {

CsrMatrix multiply_reference(const CsrMatrix& a, const CsrMatrix& b) {
  ASAMAP_CHECK(a.cols() == b.rows(), "inner dimension mismatch");
  std::vector<Triplet> out;
  std::unordered_map<std::uint32_t, double> row;
  for (std::uint32_t i = 0; i < a.rows(); ++i) {
    row.clear();
    const auto a_cols = a.row_cols(i);
    const auto a_vals = a.row_vals(i);
    for (std::size_t p = 0; p < a_cols.size(); ++p) {
      const auto b_cols = b.row_cols(a_cols[p]);
      const auto b_vals = b.row_vals(a_cols[p]);
      for (std::size_t q = 0; q < b_cols.size(); ++q) {
        row[b_cols[q]] += a_vals[p] * b_vals[q];
      }
    }
    for (const auto& [c, v] : row) out.push_back(Triplet{i, c, v});
  }
  return CsrMatrix::from_triplets(a.rows(), b.cols(), std::move(out));
}

}  // namespace asamap::spgemm
