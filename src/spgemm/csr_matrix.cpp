#include "asamap/spgemm/csr_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "asamap/support/check.hpp"
#include "asamap/support/rng.hpp"

namespace asamap::spgemm {

CsrMatrix CsrMatrix::from_triplets(std::uint32_t rows, std::uint32_t cols,
                                   std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    ASAMAP_CHECK(t.row < rows && t.col < cols, "triplet out of bounds");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Merge duplicates in place.
  std::size_t out = 0;
  for (std::size_t i = 0; i < triplets.size();) {
    Triplet merged = triplets[i];
    std::size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == merged.row &&
           triplets[j].col == merged.col) {
      merged.value += triplets[j].value;
      ++j;
    }
    triplets[out++] = merged;
    i = j;
  }
  triplets.resize(out);

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  for (const Triplet& t : triplets) ++m.row_ptr_[t.row + 1];
  for (std::uint32_t r = 0; r < rows; ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  m.cols_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (const Triplet& t : triplets) {
    m.cols_idx_.push_back(t.col);
    m.values_.push_back(t.value);
  }
  return m;
}

CsrMatrix CsrMatrix::identity(std::uint32_t n) {
  std::vector<Triplet> trip;
  trip.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) trip.push_back({i, i, 1.0});
  return from_triplets(n, n, std::move(trip));
}

CsrMatrix CsrMatrix::random(std::uint32_t rows, std::uint32_t cols,
                            double nnz_per_row, std::uint64_t seed) {
  ASAMAP_CHECK(nnz_per_row >= 0.0, "negative density");
  support::Xoshiro256 rng(seed);
  std::vector<Triplet> trip;
  trip.reserve(static_cast<std::size_t>(nnz_per_row * rows) + rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    // Poisson-ish entry count via a fixed draw count with dedup at build.
    const auto k = static_cast<std::uint32_t>(nnz_per_row);
    const double frac = nnz_per_row - k;
    std::uint32_t count = k + (rng.next_double() < frac ? 1 : 0);
    for (std::uint32_t e = 0; e < count; ++e) {
      trip.push_back({r, static_cast<std::uint32_t>(rng.next_below(cols)),
                      rng.next_double() * 2.0 - 1.0});
    }
  }
  return from_triplets(rows, cols, std::move(trip));
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<Triplet> trip;
  trip.reserve(nnz());
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const auto cols_r = row_cols(r);
    const auto vals_r = row_vals(r);
    for (std::size_t i = 0; i < cols_r.size(); ++i) {
      trip.push_back({cols_r[i], r, vals_r[i]});
    }
  }
  return from_triplets(cols_, rows_, std::move(trip));
}

double CsrMatrix::at(std::uint32_t r, std::uint32_t c) const {
  ASAMAP_CHECK(r < rows_ && c < cols_, "index out of bounds");
  const auto cols_r = row_cols(r);
  const auto it = std::lower_bound(cols_r.begin(), cols_r.end(), c);
  if (it == cols_r.end() || *it != c) return 0.0;
  return row_vals(r)[static_cast<std::size_t>(it - cols_r.begin())];
}

double CsrMatrix::max_abs_diff(const CsrMatrix& a, const CsrMatrix& b) {
  ASAMAP_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "dimension mismatch");
  double worst = 0.0;
  auto scan = [&](const CsrMatrix& x, const CsrMatrix& y) {
    for (std::uint32_t r = 0; r < x.rows(); ++r) {
      const auto cols_r = x.row_cols(r);
      const auto vals_r = x.row_vals(r);
      for (std::size_t i = 0; i < cols_r.size(); ++i) {
        worst = std::max(worst, std::abs(vals_r[i] - y.at(r, cols_r[i])));
      }
    }
  };
  scan(a, b);
  scan(b, a);
  return worst;
}

}  // namespace asamap::spgemm
