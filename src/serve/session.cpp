#include "asamap/serve/session.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "asamap/benchutil/json_env.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/support/hash.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::serve {
namespace {

/// Every protocol verb, for pre-registered per-verb metric handles.  The
/// array provides stable storage for the string_view map keys; anything not
/// listed here is counted under verb="other".
constexpr std::string_view kVerbs[] = {
    "GEN",     "LOAD",  "DROP",    "CLUSTER", "WAIT",
    "CANCEL",  "MEMBER", "SAME",   "TOPK",    "SUMMARY",
    "STATS",   "METRICS", "TRACE", "FAULTS",  "QUIT"};

std::string verb_label(std::string_view verb) {
  return "verb=\"" + std::string(verb) + "\"";
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

template <typename T>
bool parse_num(std::string_view tok, T& out) {
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc{} && ptr == tok.data() + tok.size();
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string err(ServeCode code, std::string_view message) {
  std::string out = "ERR ";
  out += to_string(code);
  out += ' ';
  out += message;
  return out;
}

std::string err(const ServeStatus& status) {
  return err(status.code, status.text());
}

/// The session's config copy with every subsystem pointed at the session
/// metric registry and fault injector — the one place the pointers are
/// threaded through, so a caller-supplied SessionConfig cannot accidentally
/// split the registry (or miss the injection sites).
SessionConfig with_metrics(SessionConfig c, obs::MetricRegistry* reg,
                           fault::FaultInjector* faults) {
  c.registry.metrics = reg;
  c.scheduler.metrics = reg;
  c.infomap.metrics = reg;  // clustering jobs record kernel spans here
  c.registry.faults = faults;
  c.scheduler.faults = faults;
  return c;
}

}  // namespace

ServeSession::ServeSession(const SessionConfig& config)
    : config_(with_metrics(config, &metrics_, &faults_)),
      registry_(config_.registry),
      store_(),
      breaker_(config_.breaker),
      scheduler_(config_.scheduler) {
  for (const std::string_view verb : kVerbs) {
    const std::string label = verb_label(verb);
    // kVerbs literals are NUL-terminated, so .data() doubles as the static
    // trace-span name.
    verb_metrics_[verb] = {
        &metrics_.counter("asamap_serve_requests_total", label),
        &metrics_.histogram("asamap_serve_request_seconds", label),
        verb.data()};
  }
  const std::string other = verb_label("other");
  other_verb_metrics_ = {
      &metrics_.counter("asamap_serve_requests_total", other),
      &metrics_.histogram("asamap_serve_request_seconds", other)};
  errors_total_ = &metrics_.counter("asamap_serve_errors_total");
  // Robustness metrics, pre-registered so the scrape schema is stable
  // whether or not any fault/degradation ever happens.
  faults_.attach_metrics(&metrics_);
  stale_serves_ = &metrics_.counter("asamap_stale_serves_total");
  breaker_state_ = &metrics_.gauge("asamap_breaker_state");
  breaker_state_->set(0);  // closed
  breaker_to_open_ =
      &metrics_.counter("asamap_breaker_transitions_total", "to=\"open\"");
  breaker_to_half_open_ = &metrics_.counter("asamap_breaker_transitions_total",
                                            "to=\"half_open\"");
  breaker_to_closed_ =
      &metrics_.counter("asamap_breaker_transitions_total", "to=\"closed\"");
  breaker_.set_listener([this](fault::CircuitBreaker::State s) {
    breaker_state_->set(static_cast<double>(s));
    switch (s) {
      case fault::CircuitBreaker::State::kOpen:
        breaker_to_open_->inc();
        // Shed batch-lane queued work before interactive: the breaker
        // opening means submissions are failing, and queued batch jobs are
        // the load we can drop without hurting interactive callers.
        scheduler_.shed(JobPriority::kBatch);
        break;
      case fault::CircuitBreaker::State::kHalfOpen:
        breaker_to_half_open_->inc();
        break;
      case fault::CircuitBreaker::State::kClosed:
        breaker_to_closed_->inc();
        break;
    }
  });
}

ServeSession::~ServeSession() { scheduler_.shutdown(); }

ServeStatus ServeSession::load_text(const std::string& name,
                                    std::string_view text, bool undirected) {
  return registry_.put_text(name, text, undirected);
}

ServeStatus ServeSession::load_file(const std::string& name,
                                    const std::string& path, bool undirected) {
  return registry_.put_file(name, path, undirected);
}

ServeStatus ServeSession::gen_chung_lu(const std::string& name,
                                       graph::VertexId n, std::uint64_t edges,
                                       std::uint64_t seed) {
  if (n == 0 || edges == 0) {
    return ServeStatus::error(ServeCode::kInvalidArgument,
                              "GEN requires n > 0 and edges > 0");
  }
  if (n > config_.registry.max_vertex_id) {
    return ServeStatus::error(
        ServeCode::kTooLarge,
        "requested " + std::to_string(n) + " vertices exceeds limit " +
            std::to_string(config_.registry.max_vertex_id));
  }
  gen::ChungLuParams params;
  params.n = n;
  params.target_edges = edges;
  // Parameter fingerprint: identical GEN requests dedup to one resident
  // graph, like identical text uploads.
  std::uint64_t fp = support::mix64(0x67656eULL ^ n);
  fp = support::mix64(fp ^ edges);
  fp = support::mix64(fp ^ seed);
  return registry_.put_graph(name, gen::chung_lu(params, seed), fp);
}

bool ServeSession::drop(const std::string& name) {
  const bool had_graph = registry_.erase(name);
  store_.drop(name);
  return had_graph;
}

SubmitResult ServeSession::submit_recluster(const std::string& name,
                                            JobPriority priority,
                                            std::chrono::milliseconds deadline) {
  GraphRegistry::GraphPtr graph = registry_.get(name);
  if (!graph) {
    return {0, ServeStatus::error(ServeCode::kNotFound,
                                  "unknown graph '" + name + "'")};
  }
  // The job captures the graph shared_ptr: eviction or DROP mid-flight
  // cannot pull the memory out from under the run.
  return scheduler_.submit(
      [this, name, graph](const JobContext& ctx) {
        // `cluster.sweep` injection (chaos builds): error -> the job fails,
        // cancel -> a real cooperative cancel, latency -> a stalled sweep,
        // partial -> the run completes but its publish is lost.
        const fault::FaultDecision sweep_fault =
            fault::check(&faults_, fault::Site::kClusterSweep);
        if (sweep_fault.effect == fault::Effect::kError) {
          throw std::runtime_error("injected cluster.sweep fault");
        }
        if (sweep_fault.effect == fault::Effect::kCancel) {
          scheduler_.cancel(ctx.id);
          return;
        }
        if (sweep_fault.effect == fault::Effect::kLatency) {
          std::this_thread::sleep_for(sweep_fault.latency);
        }
        core::InfomapOptions opts = config_.infomap;
        opts.cancel = ctx.stop;
        core::InfomapResult result =
            core::run_infomap_parallel(*graph, opts, config_.cluster_threads);
        // A cancelled or expired job publishes nothing — readers only ever
        // see partitions from runs that were allowed to finish.
        if (ctx.stop_requested()) return;
        if (sweep_fault.effect == fault::Effect::kPartialWrite) return;
        obs::TraceSpan publish_span("snapshot.publish",
                                    obs::TraceCat::kSession);
        PartitionSnapshot snap = make_snapshot(graph, result);
        snap.build_job = ctx.id;
        store_.publish(name, std::move(snap));
      },
      priority, deadline);
}

PartitionStore::SnapshotPtr ServeSession::snapshot(const std::string& name) {
  return store_.snapshot(name);
}

std::string ServeSession::degraded_cluster(const std::string& name,
                                           const char* reason) {
  const auto snap = store_.snapshot(name);
  if (!snap) return {};
  stale_serves_->inc();
  return "OK STALE version=" + std::to_string(snap->version) + " graph=" +
         name + " reason=" + reason +
         " communities=" + std::to_string(snap->num_communities) +
         " codelength=" + fmt_double(snap->codelength);
}

std::string ServeSession::handle_line(std::string_view line) {
  support::WallTimer wall;
  const auto tokens = tokenize(line);
  const std::string_view verb = tokens.empty() ? std::string_view{} : tokens[0];
  const auto it = verb_metrics_.find(verb);
  const VerbMetrics& vm =
      it == verb_metrics_.end() ? other_verb_metrics_ : it->second;
  std::string response;
  {
    // Root span of this request's trace: jobs submitted inside inherit the
    // context, so everything the verb triggers lands under one trace id.
    obs::TraceSpan span(vm.trace_name, obs::TraceCat::kSession);
    response = handle_line_impl(verb, tokens);
  }
  vm.requests->inc();
  vm.latency->record_seconds(wall.seconds());
  if (response.rfind("ERR", 0) == 0) errors_total_->inc();
  return response;
}

std::string ServeSession::handle_line_impl(
    std::string_view verb, const std::vector<std::string_view>& tokens) {
  if (tokens.empty()) return err(ServeCode::kInvalidArgument, "empty request");

  // `session.io` injection (chaos builds): the request itself hiccups.
  // FAULTS is exempt so an operator can always inspect or CLEAR a plan.
  if (verb != "FAULTS") {
    const fault::FaultDecision io_fault =
        fault::check(&faults_, fault::Site::kSessionIo);
    if (io_fault.effect == fault::Effect::kLatency) {
      std::this_thread::sleep_for(io_fault.latency);
    } else if (io_fault.effect != fault::Effect::kNone) {
      return err(ServeCode::kUnavailable, "injected session.io fault");
    }
  }

  const auto need_snapshot =
      [&](const std::string& name,
          PartitionStore::SnapshotPtr& snap) -> std::string {
    snap = store_.snapshot(name);
    if (snap) return {};
    if (!registry_.get(name)) {
      return err(ServeCode::kNotFound, "unknown graph '" + name + "'");
    }
    return err(ServeCode::kNoPartition,
               "graph '" + name + "' has no published partition; CLUSTER it");
  };

  if (verb == "GEN") {
    if (tokens.size() < 4 || tokens.size() > 5) {
      return err(ServeCode::kInvalidArgument,
                 "usage: GEN <name> <n> <edges> [seed]");
    }
    graph::VertexId n = 0;
    std::uint64_t edges = 0;
    std::uint64_t seed = 42;
    if (!parse_num(tokens[2], n) || !parse_num(tokens[3], edges) ||
        (tokens.size() == 5 && !parse_num(tokens[4], seed))) {
      return err(ServeCode::kInvalidArgument, "GEN: numeric argument expected");
    }
    const std::string name(tokens[1]);
    const ServeStatus status = gen_chung_lu(name, n, edges, seed);
    if (!status.ok()) return err(status);
    const auto g = registry_.get(name);
    return "OK graph=" + name + " vertices=" +
           std::to_string(g->num_vertices()) +
           " arcs=" + std::to_string(g->num_arcs());
  }

  if (verb == "LOAD") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      return err(ServeCode::kInvalidArgument,
                 "usage: LOAD <name> <path> [directed]");
    }
    const bool undirected = !(tokens.size() == 4 && tokens[3] == "directed");
    const std::string name(tokens[1]);
    const ServeStatus status =
        load_file(name, std::string(tokens[2]), undirected);
    if (!status.ok()) return err(status);
    const auto g = registry_.get(name);
    return "OK graph=" + name + " vertices=" +
           std::to_string(g->num_vertices()) +
           " arcs=" + std::to_string(g->num_arcs());
  }

  if (verb == "DROP") {
    if (tokens.size() != 2) {
      return err(ServeCode::kInvalidArgument, "usage: DROP <name>");
    }
    const std::string name(tokens[1]);
    if (!drop(name)) {
      return err(ServeCode::kNotFound, "unknown graph '" + name + "'");
    }
    return "OK dropped=" + name;
  }

  if (verb == "CLUSTER") {
    if (tokens.size() < 2) {
      return err(ServeCode::kInvalidArgument,
                 "usage: CLUSTER <name> [sync] [priority=interactive|batch] "
                 "[deadline_ms=N]");
    }
    const std::string name(tokens[1]);
    bool sync = false;
    JobPriority priority = JobPriority::kBatch;
    std::chrono::milliseconds deadline{};
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const std::string_view opt = tokens[i];
      if (opt == "sync") {
        sync = true;
      } else if (opt == "priority=interactive") {
        priority = JobPriority::kInteractive;
      } else if (opt == "priority=batch") {
        priority = JobPriority::kBatch;
      } else if (opt.rfind("deadline_ms=", 0) == 0) {
        std::int64_t ms = 0;
        if (!parse_num(opt.substr(12), ms) || ms < 0) {
          return err(ServeCode::kInvalidArgument,
                     "CLUSTER: bad deadline_ms value");
        }
        deadline = std::chrono::milliseconds(ms);
      } else {
        return err(ServeCode::kInvalidArgument,
                   "CLUSTER: unknown option '" + std::string(opt) + "'");
      }
    }
    // Graceful degradation: under memory pressure or an open breaker, a
    // re-cluster would only add load — answer from the last published
    // snapshot, explicitly marked STALE, instead of rejecting.
    if (registry_.under_pressure()) {
      if (auto stale = degraded_cluster(name, "memory_pressure");
          !stale.empty()) {
        return stale;
      }
      // Never clustered: fall through and try anyway (best effort).
    }
    if (!breaker_.allow()) {
      if (auto stale = degraded_cluster(name, "breaker_open"); !stale.empty()) {
        return stale;
      }
      return err(ServeCode::kUnavailable,
                 "circuit breaker open and no snapshot to degrade to");
    }
    const SubmitResult submitted = submit_recluster(name, priority, deadline);
    if (!submitted.accepted()) {
      if (submitted.status.code == ServeCode::kRejected ||
          submitted.status.code == ServeCode::kShutdown) {
        breaker_.record_failure();
        if (auto stale = degraded_cluster(name, "queue_full"); !stale.empty()) {
          return stale;
        }
      } else {
        // Client-side failure (unknown graph): the service answered fine —
        // resolve a half-open probe as success, not failure.
        breaker_.record_success();
      }
      return err(submitted.status);
    }
    breaker_.record_success();
    if (!sync) {
      return "OK job=" + std::to_string(submitted.id) +
             " state=" + to_string(scheduler_.state(submitted.id));
    }
    const JobState terminal = scheduler_.wait(submitted.id);
    std::string out = "OK job=" + std::to_string(submitted.id) +
                      " state=" + to_string(terminal);
    if (terminal == JobState::kDone) {
      if (const auto snap = store_.snapshot(name)) {
        out += " version=" + std::to_string(snap->version) +
               " communities=" + std::to_string(snap->num_communities) +
               " codelength=" + fmt_double(snap->codelength);
      }
    }
    return out;
  }

  if (verb == "WAIT" || verb == "CANCEL") {
    if (tokens.size() != 2) {
      return err(ServeCode::kInvalidArgument,
                 "usage: " + std::string(verb) + " <job>");
    }
    std::uint64_t id = 0;
    if (!parse_num(tokens[1], id) || id == 0) {
      return err(ServeCode::kInvalidArgument, "bad job id");
    }
    if (verb == "CANCEL") {
      const bool accepted = scheduler_.cancel(id);
      return "OK job=" + std::to_string(id) +
             " cancelled=" + (accepted ? "1" : "0") +
             " state=" + to_string(scheduler_.state(id));
    }
    return "OK job=" + std::to_string(id) +
           " state=" + to_string(scheduler_.wait(id));
  }

  if (verb == "MEMBER") {
    if (tokens.size() != 3) {
      return err(ServeCode::kInvalidArgument, "usage: MEMBER <name> <vertex>");
    }
    graph::VertexId v = 0;
    if (!parse_num(tokens[2], v)) {
      return err(ServeCode::kInvalidArgument, "bad vertex id");
    }
    PartitionStore::SnapshotPtr snap;
    if (auto e = need_snapshot(std::string(tokens[1]), snap); !e.empty()) {
      return e;
    }
    if (v >= snap->communities.size()) {
      return err(ServeCode::kInvalidArgument,
                 "vertex " + std::to_string(v) + " out of range (graph has " +
                     std::to_string(snap->communities.size()) + " vertices)");
    }
    const auto c = snap->communities[v];
    return "OK version=" + std::to_string(snap->version) +
           " vertex=" + std::to_string(v) + " community=" + std::to_string(c) +
           " flow=" + fmt_double(snap->community_flow[c]);
  }

  if (verb == "SAME") {
    if (tokens.size() != 4) {
      return err(ServeCode::kInvalidArgument, "usage: SAME <name> <u> <v>");
    }
    graph::VertexId u = 0, v = 0;
    if (!parse_num(tokens[2], u) || !parse_num(tokens[3], v)) {
      return err(ServeCode::kInvalidArgument, "bad vertex id");
    }
    PartitionStore::SnapshotPtr snap;
    if (auto e = need_snapshot(std::string(tokens[1]), snap); !e.empty()) {
      return e;
    }
    if (u >= snap->communities.size() || v >= snap->communities.size()) {
      return err(ServeCode::kInvalidArgument, "vertex out of range");
    }
    const auto cu = snap->communities[u];
    const auto cv = snap->communities[v];
    return "OK version=" + std::to_string(snap->version) +
           " u=" + std::to_string(u) + " v=" + std::to_string(v) +
           " cu=" + std::to_string(cu) + " cv=" + std::to_string(cv) +
           " same=" + (cu == cv ? "1" : "0");
  }

  if (verb == "TOPK") {
    if (tokens.size() != 3) {
      return err(ServeCode::kInvalidArgument, "usage: TOPK <name> <k>");
    }
    std::size_t k = 0;
    if (!parse_num(tokens[2], k) || k == 0) {
      return err(ServeCode::kInvalidArgument, "bad k");
    }
    PartitionStore::SnapshotPtr snap;
    if (auto e = need_snapshot(std::string(tokens[1]), snap); !e.empty()) {
      return e;
    }
    k = std::min(k, snap->by_flow.size());
    std::string out = "OK version=" + std::to_string(snap->version) +
                      " k=" + std::to_string(k) + " top=";
    for (std::size_t i = 0; i < k; ++i) {
      const auto c = snap->by_flow[i];
      if (i > 0) out += ',';
      out += std::to_string(c) + ":" + fmt_double(snap->community_flow[c]);
    }
    return out;
  }

  if (verb == "SUMMARY") {
    if (tokens.size() != 2) {
      return err(ServeCode::kInvalidArgument, "usage: SUMMARY <name>");
    }
    PartitionStore::SnapshotPtr snap;
    if (auto e = need_snapshot(std::string(tokens[1]), snap); !e.empty()) {
      return e;
    }
    return "OK version=" + std::to_string(snap->version) +
           " vertices=" + std::to_string(snap->communities.size()) +
           " arcs=" + std::to_string(snap->graph->num_arcs()) +
           " communities=" + std::to_string(snap->num_communities) +
           " codelength=" + fmt_double(snap->codelength) +
           " modularity=" + fmt_double(snap->modularity) +
           " interrupted=" + (snap->interrupted ? "1" : "0") +
           " job=" + std::to_string(snap->build_job);
  }

  if (verb == "STATS") {
    const RegistryStats reg = registry_.stats();
    const SchedulerStats sch = scheduler_.stats();
    return "OK graphs=" + std::to_string(reg.entries) +
           " resident_bytes=" + std::to_string(reg.resident_bytes) +
           " dedup_hits=" + std::to_string(reg.dedup_hits) +
           " evictions=" + std::to_string(reg.evictions) +
           " snapshots=" + std::to_string(store_.size()) +
           " submitted=" + std::to_string(sch.submitted) +
           " completed=" + std::to_string(sch.completed) +
           " failed=" + std::to_string(sch.failed) +
           " rejected=" + std::to_string(sch.rejected) +
           " cancelled=" + std::to_string(sch.cancelled) +
           " expired=" + std::to_string(sch.expired) +
           " queued_interactive=" + std::to_string(sch.queued_interactive) +
           " queued_batch=" + std::to_string(sch.queued_batch) +
           " running=" + std::to_string(sch.running) +
           " retries=" + std::to_string(reg.ingest_retries +
                                        sch.dispatch_retries) +
           " shed=" + std::to_string(sch.shed) + " breaker=" +
           fault::to_string(breaker_.state());
  }

  if (verb == "FAULTS") {
    constexpr const char* kUsage =
        "usage: FAULTS LOAD <path> | FAULTS CLEAR | FAULTS STATUS";
    if (tokens.size() < 2) return err(ServeCode::kInvalidArgument, kUsage);
    const std::string_view sub = tokens[1];
    if (sub == "STATUS") {
      if (tokens.size() != 2) {
        return err(ServeCode::kInvalidArgument, "usage: FAULTS STATUS");
      }
      std::string out = "OK enabled=";
      out += fault::kFaultInjectionEnabled ? '1' : '0';
      out += " armed=";
      out += faults_.armed() ? '1' : '0';
      out += " rules=" + std::to_string(faults_.rule_count()) +
             " injected=" + std::to_string(faults_.injected_total()) +
             " breaker=";
      out += fault::to_string(breaker_.state());
      return out;
    }
    if (!fault::kFaultInjectionEnabled) {
      return err(ServeCode::kUnavailable,
                 "fault injection compiled out; configure with "
                 "-DASAMAP_FAULT_INJECTION=ON");
    }
    if (sub == "CLEAR") {
      if (tokens.size() != 2) {
        return err(ServeCode::kInvalidArgument, "usage: FAULTS CLEAR");
      }
      faults_.clear();
      return "OK armed=0";
    }
    if (sub == "LOAD") {
      if (tokens.size() != 3) {
        return err(ServeCode::kInvalidArgument, "usage: FAULTS LOAD <path>");
      }
      fault::PlanParseResult parsed =
          fault::load_fault_plan_file(std::string(tokens[2]));
      if (!parsed.ok()) {
        return err(ServeCode::kInvalidArgument,
                   "line " + std::to_string(parsed.error->line) + ": " +
                       parsed.error->message);
      }
      const std::size_t rules = parsed.plan.rules.size();
      const std::uint64_t seed = parsed.plan.seed;
      faults_.load(std::move(parsed.plan));
      std::string out = "OK loaded=" + std::string(tokens[2]) +
                        " seed=" + std::to_string(seed) +
                        " rules=" + std::to_string(rules) + " armed=";
      out += faults_.armed() ? '1' : '0';
      return out;
    }
    return err(ServeCode::kInvalidArgument, kUsage);
  }

  if (verb == "TRACE") {
    constexpr const char* kUsage =
        "usage: TRACE DUMP | TRACE STATUS | TRACE MARK <label>";
    if (tokens.size() < 2) return err(ServeCode::kInvalidArgument, kUsage);
    const std::string_view sub = tokens[1];
    obs::FlightRecorder& rec = obs::FlightRecorder::instance();
    if (sub == "DUMP") {
      if (tokens.size() != 2) {
        return err(ServeCode::kInvalidArgument, "usage: TRACE DUMP");
      }
      std::ostringstream out;
      out << "OK format=chrome-trace\n";
      rec.write_chrome_json(out);  // one line, so transcripts stay parseable
      return out.str();
    }
    if (sub == "STATUS") {
      if (tokens.size() != 2) {
        return err(ServeCode::kInvalidArgument, "usage: TRACE STATUS");
      }
      const obs::TraceStats stats = rec.stats();
      std::string out = "OK enabled=";
      out += stats.enabled ? '1' : '0';
      out += " rings=" + std::to_string(stats.rings) +
             " capacity=" + std::to_string(stats.ring_capacity) +
             " recorded=" + std::to_string(stats.recorded) +
             " dropped=" + std::to_string(stats.dropped) +
             " dropped_fraction=" + fmt_double(stats.dropped_fraction);
      // The rings hold only the newest events; once most of the run has
      // been overwritten a DUMP is a sliver, not a trace — say so here
      // instead of letting the near-empty dump speak for itself.
      if (stats.dropped_fraction > 0.5) {
        out += " warning=ring_wrapped";
      }
      return out;
    }
    if (sub == "MARK") {
      if (tokens.size() < 3) {
        return err(ServeCode::kInvalidArgument, "usage: TRACE MARK <label>");
      }
      std::string label(tokens[2]);
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        label += ' ';
        label += tokens[i];
      }
      rec.instant(rec.intern(label), obs::TraceCat::kUser);
      return "OK marked=" + label;
    }
    return err(ServeCode::kInvalidArgument, kUsage);
  }

  if (verb == "METRICS") {
    if (tokens.size() > 2) {
      return err(ServeCode::kInvalidArgument, "usage: METRICS [prom|json]");
    }
    const std::string_view format = tokens.size() == 2 ? tokens[1] : "prom";
    if (format == "prom" || format == "prometheus") {
      return render_metrics_prometheus();
    }
    if (format == "json") return render_metrics_json();
    return err(ServeCode::kInvalidArgument,
               "METRICS: unknown format '" + std::string(format) +
                   "' (want prom or json)");
  }

  if (verb == "QUIT") return "OK bye";

  return err(ServeCode::kInvalidArgument,
             "unknown command '" + std::string(verb) + "'");
}

std::string ServeSession::render_metrics_prometheus() const {
  std::ostringstream out;
  out << "OK format=prometheus\n";
  metrics_.write_prometheus(out);
  std::string s = out.str();
  if (!s.empty() && s.back() == '\n') s.pop_back();  // driver adds the newline
  return s;
}

std::string ServeSession::render_metrics_json() const {
  std::ostringstream out;
  out << "OK format=json\n";
  out << "{\n";
  benchutil::write_envelope_fields(
      out, benchutil::make_envelope("serve_metrics"), "  ");
  out << "  \"metrics\": ";
  metrics_.write_json(out, "  ");
  out << "\n}";
  return out.str();
}

}  // namespace asamap::serve
