#include "asamap/serve/session.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "asamap/benchutil/json_env.hpp"
#include "asamap/dyn/incremental.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/obs/build_info.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/support/hash.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::serve {
namespace {

/// Every protocol verb, for pre-registered per-verb metric handles.  The
/// array provides stable storage for the string_view map keys; anything not
/// listed here is counted under verb="other".
constexpr std::string_view kVerbs[] = {
    "GEN",     "LOAD",    "DROP",     "CLUSTER", "ADD_EDGE",
    "DEL_EDGE", "APPLY",  "DELTA",    "WAIT",    "CANCEL",
    "MEMBER",  "SAME",    "TOPK",     "SUMMARY", "STATS",
    "METRICS", "HEALTH",  "TRACE",    "FAULTS",  "QUIT"};

std::string verb_label(std::string_view verb) {
  return "verb=\"" + std::string(verb) + "\"";
}

void tokenize_into(std::string_view line,
                   std::vector<std::string_view>& tokens) {
  tokens.clear();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  tokenize_into(line, tokens);
  return tokens;
}

/// CRLF / sloppy-client tolerance: strip the line terminator residue before
/// parsing.  tokenize() splits only on space/tab, so without this a telnet
/// client's `MEMBER g 5\r` reaches the parser with the '\r' welded onto the
/// last token and the request fails with a bogus parse error.
std::string_view trim_trailing_ws(std::string_view line) {
  while (!line.empty()) {
    const char c = line.back();
    if (c != '\r' && c != '\n' && c != ' ' && c != '\t') break;
    line.remove_suffix(1);
  }
  return line;
}

/// The snapshot-lookup verbs eligible for the batched read fast path.
bool is_read_verb(std::string_view verb) {
  return verb == "MEMBER" || verb == "SAME" || verb == "TOPK" ||
         verb == "SUMMARY";
}

template <typename T>
bool parse_num(std::string_view tok, T& out) {
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc{} && ptr == tok.data() + tok.size();
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string err(ServeCode code, std::string_view message) {
  std::string out = "ERR ";
  out += to_string(code);
  out += ' ';
  out += message;
  return out;
}

std::string err(const ServeStatus& status) {
  return err(status.code, status.text());
}

/// The multi-line response envelope: `OK format=<fmt> bytes=N` then exactly
/// N payload bytes.  The transport's message terminator (the text
/// protocol's newline / the binary frame length) follows the payload and is
/// NOT part of N — so a client reads the header line, then N bytes, done.
std::string enveloped(const char* format, std::string payload) {
  std::string out = "OK format=";
  out += format;
  out += " bytes=" + std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

/// The session's config copy with every subsystem pointed at the session
/// metric registry and fault injector — the one place the pointers are
/// threaded through, so a caller-supplied SessionConfig cannot accidentally
/// split the registry (or miss the injection sites).
SessionConfig with_metrics(SessionConfig c, obs::MetricRegistry* reg,
                           fault::FaultInjector* faults) {
  c.registry.metrics = reg;
  c.scheduler.metrics = reg;
  c.infomap.metrics = reg;  // clustering jobs record kernel spans here
  c.registry.faults = faults;
  c.scheduler.faults = faults;
  return c;
}

}  // namespace

ServeSession::ServeSession(const SessionConfig& config)
    : config_(with_metrics(config, &metrics_, &faults_)),
      registry_(config_.registry),
      store_(),
      breaker_(config_.breaker),
      window_(metrics_, config_.window, mono_now_ns()),
      health_(metrics_, window_, config_.slo, "asamap_serve_requests_total",
              "asamap_serve_errors_total", "asamap_serve_request_seconds",
              "asamap_breaker_state"),
      scheduler_(config_.scheduler) {
  for (const std::string_view verb : kVerbs) {
    const std::string label = verb_label(verb);
    // kVerbs literals are NUL-terminated, so .data() doubles as the static
    // trace-span name.
    verb_metrics_[verb] = {
        &metrics_.counter("asamap_serve_requests_total", label),
        &metrics_.histogram("asamap_serve_request_seconds", label),
        verb.data()};
  }
  const std::string other = verb_label("other");
  other_verb_metrics_ = {
      &metrics_.counter("asamap_serve_requests_total", other),
      &metrics_.histogram("asamap_serve_request_seconds", other)};
  errors_total_ = &metrics_.counter("asamap_serve_errors_total");
  // Build identity: the uptime gauge is refreshed at every scrape/STATS so
  // a dashboard's value is never older than the read that fetched it.
  uptime_ = &metrics_.gauge("asamap_uptime_seconds");
  uptime_->set(obs::process_uptime_seconds());
  // Robustness metrics, pre-registered so the scrape schema is stable
  // whether or not any fault/degradation ever happens.
  faults_.attach_metrics(&metrics_);
  stale_serves_ = &metrics_.counter("asamap_stale_serves_total");
  // Dynamic-graph metrics (DESIGN.md §4f), pre-registered for the same
  // reason: the scrape schema must not depend on whether mutations arrived.
  delta_adds_ = &metrics_.counter("asamap_delta_records_total", "op=\"add\"");
  delta_dels_ = &metrics_.counter("asamap_delta_records_total", "op=\"del\"");
  delta_pending_ = &metrics_.gauge("asamap_delta_pending");
  delta_compactions_ = &metrics_.counter("asamap_delta_compactions_total");
  delta_folded_ = &metrics_.counter("asamap_delta_folded_records_total");
  apply_full_ = &metrics_.counter("asamap_delta_applies_total", "mode=\"full\"");
  apply_incr_ = &metrics_.counter("asamap_delta_applies_total", "mode=\"incr\"");
  apply_seconds_ = &metrics_.histogram("asamap_delta_apply_seconds");
  incr_published_ = &metrics_.counter("asamap_incr_publishes_total");
  incr_skipped_ = &metrics_.counter("asamap_incr_skipped_total",
                                    "reason=\"no_improvement\"");
  incr_active_ = &metrics_.gauge("asamap_incr_active_vertices");
  breaker_state_ = &metrics_.gauge("asamap_breaker_state");
  breaker_state_->set(0);  // closed
  breaker_to_open_ =
      &metrics_.counter("asamap_breaker_transitions_total", "to=\"open\"");
  breaker_to_half_open_ = &metrics_.counter("asamap_breaker_transitions_total",
                                            "to=\"half_open\"");
  breaker_to_closed_ =
      &metrics_.counter("asamap_breaker_transitions_total", "to=\"closed\"");
  breaker_.set_listener([this](fault::CircuitBreaker::State s) {
    breaker_state_->set(static_cast<double>(s));
    switch (s) {
      case fault::CircuitBreaker::State::kOpen:
        breaker_to_open_->inc();
        // Shed batch-lane queued work before interactive: the breaker
        // opening means submissions are failing, and queued batch jobs are
        // the load we can drop without hurting interactive callers.
        scheduler_.shed(JobPriority::kBatch);
        break;
      case fault::CircuitBreaker::State::kHalfOpen:
        breaker_to_half_open_->inc();
        break;
      case fault::CircuitBreaker::State::kClosed:
        breaker_to_closed_->inc();
        break;
    }
  });
}

ServeSession::~ServeSession() { scheduler_.shutdown(); }

ServeStatus ServeSession::load_text(const std::string& name,
                                    std::string_view text, bool undirected) {
  const ServeStatus status = registry_.put_text(name, text, undirected);
  // Replace semantics: pending deltas patched the *previous* base graph.
  if (status.ok()) reset_deltas(name);
  return status;
}

ServeStatus ServeSession::load_file(const std::string& name,
                                    const std::string& path, bool undirected) {
  const ServeStatus status = registry_.put_file(name, path, undirected);
  if (status.ok()) reset_deltas(name);
  return status;
}

ServeStatus ServeSession::gen_chung_lu(const std::string& name,
                                       graph::VertexId n, std::uint64_t edges,
                                       std::uint64_t seed) {
  if (n == 0 || edges == 0) {
    return ServeStatus::error(ServeCode::kInvalidArgument,
                              "GEN requires n > 0 and edges > 0");
  }
  if (n > config_.registry.max_vertex_id) {
    return ServeStatus::error(
        ServeCode::kTooLarge,
        "requested " + std::to_string(n) + " vertices exceeds limit " +
            std::to_string(config_.registry.max_vertex_id));
  }
  gen::ChungLuParams params;
  params.n = n;
  params.target_edges = edges;
  // Parameter fingerprint: identical GEN requests dedup to one resident
  // graph, like identical text uploads.
  std::uint64_t fp = support::mix64(0x67656eULL ^ n);
  fp = support::mix64(fp ^ edges);
  fp = support::mix64(fp ^ seed);
  const ServeStatus status =
      registry_.put_graph(name, gen::chung_lu(params, seed), fp);
  if (status.ok()) reset_deltas(name);
  return status;
}

bool ServeSession::drop(const std::string& name) {
  reset_deltas(name);  // discard pending mutations and release the pin
  const bool had_graph = registry_.erase(name);
  store_.drop(name);
  return had_graph;
}

SubmitResult ServeSession::submit_recluster(const std::string& name,
                                            JobPriority priority,
                                            std::chrono::milliseconds deadline) {
  GraphRegistry::GraphPtr graph = registry_.get(name);
  if (!graph) {
    return {0, ServeStatus::error(ServeCode::kNotFound,
                                  "unknown graph '" + name + "'")};
  }
  // The job captures the graph shared_ptr: eviction or DROP mid-flight
  // cannot pull the memory out from under the run.
  return scheduler_.submit(
      [this, name, graph](const JobContext& ctx) {
        // `cluster.sweep` injection (chaos builds): error -> the job fails,
        // cancel -> a real cooperative cancel, latency -> a stalled sweep,
        // partial -> the run completes but its publish is lost.
        const fault::FaultDecision sweep_fault =
            fault::check(&faults_, fault::Site::kClusterSweep);
        if (sweep_fault.effect == fault::Effect::kError) {
          throw std::runtime_error("injected cluster.sweep fault");
        }
        if (sweep_fault.effect == fault::Effect::kCancel) {
          scheduler_.cancel(ctx.id);
          return;
        }
        if (sweep_fault.effect == fault::Effect::kLatency) {
          std::this_thread::sleep_for(sweep_fault.latency);
        }
        core::InfomapOptions opts = config_.infomap;
        opts.cancel = ctx.stop;
        core::InfomapResult result =
            core::run_infomap_parallel(*graph, opts, config_.cluster_threads);
        // A cancelled or expired job publishes nothing — readers only ever
        // see partitions from runs that were allowed to finish.
        if (ctx.stop_requested()) return;
        if (sweep_fault.effect == fault::Effect::kPartialWrite) return;
        obs::TraceSpan publish_span("snapshot.publish",
                                    obs::TraceCat::kSession);
        PartitionSnapshot snap = make_snapshot(graph, result);
        snap.build_job = ctx.id;
        store_.publish(name, std::move(snap));
      },
      priority, deadline);
}

PartitionStore::SnapshotPtr ServeSession::snapshot(const std::string& name) {
  return store_.snapshot(name);
}

// --- dynamic graphs (DESIGN.md §4f) ----------------------------------------

ServeSession::DeltaStatePtr ServeSession::delta_state(const std::string& name) {
  std::lock_guard<std::mutex> lock(delta_mu_);
  DeltaStatePtr& slot = deltas_[name];
  if (!slot) slot = std::make_shared<DeltaState>();
  return slot;
}

void ServeSession::reset_deltas(const std::string& name) {
  DeltaStatePtr ds;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    const auto it = deltas_.find(name);
    if (it == deltas_.end()) return;
    ds = std::move(it->second);
    deltas_.erase(it);
  }
  std::lock_guard<std::mutex> lock(ds->mu);
  const std::size_t pending = ds->log.pending();
  if (pending > 0) {
    ds->log.truncate(pending);
    delta_pending_->add(-static_cast<double>(pending));
  }
  // An APPLY job still holding this (now orphaned) state folds an empty log
  // and re-clusters whatever graph the name resolves to — harmless.
  registry_.set_pinned(name, false);
}

ServeStatus ServeSession::add_edge(const std::string& name, graph::VertexId u,
                                   graph::VertexId v, graph::Weight w) {
  return mutate_edge(name, u, v, w, /*is_add=*/true, nullptr, nullptr);
}

ServeStatus ServeSession::del_edge(const std::string& name, graph::VertexId u,
                                   graph::VertexId v) {
  return mutate_edge(name, u, v, 0.0, /*is_add=*/false, nullptr, nullptr);
}

ServeStatus ServeSession::mutate_edge(const std::string& name,
                                      graph::VertexId u, graph::VertexId v,
                                      graph::Weight w, bool is_add,
                                      std::size_t* pending_out,
                                      bool* folded_out) {
  if (u == v) {
    return ServeStatus::error(ServeCode::kInvalidArgument,
                              "self-loops carry no flow; rejected");
  }
  if (is_add && !(w > 0.0)) {
    return ServeStatus::error(ServeCode::kInvalidArgument,
                              "ADD_EDGE weight must be > 0");
  }
  if (u > config_.registry.max_vertex_id ||
      v > config_.registry.max_vertex_id) {
    return ServeStatus::error(
        ServeCode::kTooLarge,
        "vertex id exceeds limit " +
            std::to_string(config_.registry.max_vertex_id));
  }
  const GraphRegistry::GraphPtr base = registry_.get(name);
  if (!base) {
    return ServeStatus::error(ServeCode::kNotFound,
                              "unknown graph '" + name + "'");
  }
  // New vertices arrive with their first edge, but only within headroom of
  // the current count — one wild endpoint must not inflate the next fold.
  const std::uint64_t limit = std::uint64_t{base->num_vertices()} +
                              config_.delta_new_vertex_headroom;
  if (u >= limit || v >= limit) {
    return ServeStatus::error(
        ServeCode::kTooLarge,
        "endpoint " + std::to_string(std::max(u, v)) +
            " exceeds vertex headroom (graph has " +
            std::to_string(base->num_vertices()) + " vertices, headroom " +
            std::to_string(config_.delta_new_vertex_headroom) + ")");
  }
  const DeltaStatePtr ds = delta_state(name);
  std::lock_guard<std::mutex> lock(ds->mu);
  if (is_add) {
    ds->log.add_edge(u, v, w);
    delta_adds_->inc();
  } else {
    ds->log.del_edge(u, v);
    delta_dels_->inc();
  }
  delta_pending_->add(1.0);
  bool folded = false;
  // Threshold fold: bound the log's memory without waiting for an APPLY.
  // Skipped while an APPLY is in flight — its own fold is imminent, and two
  // concurrent folds of the same base would race on the republish.
  if (ds->log.pending() >= config_.delta_compact_threshold &&
      !apply_inflight_locked(*ds)) {
    folded = fold_delta_locked(name, *ds, nullptr, nullptr).ok();
  }
  refresh_delta_pin_locked(name, *ds);
  if (pending_out != nullptr) *pending_out = ds->log.pending();
  if (folded_out != nullptr) *folded_out = folded;
  return {};
}

ServeStatus ServeSession::fold_delta_locked(
    const std::string& name, DeltaState& ds,
    GraphRegistry::GraphPtr* merged_out,
    std::vector<graph::VertexId>* touched_out) {
  GraphRegistry::GraphPtr base = registry_.get(name);
  if (!base) {
    return ServeStatus::error(
        ServeCode::kNotFound,
        "graph '" + name + "' is gone; pending mutations are orphaned");
  }
  const std::vector<dyn::DeltaRecord> batch = ds.log.snapshot();
  if (batch.empty()) {
    if (merged_out != nullptr) *merged_out = std::move(base);
    if (touched_out != nullptr) touched_out->clear();
    return {};
  }
  obs::TraceSpan span("delta.compact", obs::TraceCat::kSession);
  const dyn::DeltaView view(*base, batch);
  // Fingerprint 0: a merged graph is never content-identical to an upload.
  const ServeStatus put = registry_.put_graph(name, view.materialize(), 0);
  if (!put.ok()) return put;
  // Only now consume the batch: a fold that failed above lost nothing.
  ds.log.truncate(batch.size());
  ds.compactions += 1;
  ds.last_batch = batch.size();
  delta_pending_->add(-static_cast<double>(batch.size()));
  delta_compactions_->inc();
  delta_folded_->inc(batch.size());
  if (touched_out != nullptr) *touched_out = view.touched();
  if (merged_out != nullptr) *merged_out = registry_.get(name);
  return {};
}

bool ServeSession::apply_inflight_locked(const DeltaState& ds) const {
  if (ds.apply_job == 0) return false;
  const JobState s = scheduler_.state(ds.apply_job);
  return s == JobState::kQueued || s == JobState::kRunning;
}

void ServeSession::refresh_delta_pin_locked(const std::string& name,
                                            DeltaState& ds) {
  registry_.set_pinned(name,
                       !ds.log.empty() || apply_inflight_locked(ds));
}

SubmitResult ServeSession::submit_apply(const std::string& name,
                                        bool incremental, JobPriority priority,
                                        std::chrono::milliseconds deadline) {
  if (!registry_.get(name)) {
    return {0, ServeStatus::error(ServeCode::kNotFound,
                                  "unknown graph '" + name + "'")};
  }
  const DeltaStatePtr ds = delta_state(name);
  // Check-and-submit under ds->mu so two racing APPLYs cannot both pass the
  // in-flight test (lock order: DeltaState::mu -> scheduler internals).
  std::lock_guard<std::mutex> lock(ds->mu);
  if (apply_inflight_locked(*ds)) {
    return {0, ServeStatus::error(ServeCode::kUnavailable,
                                  "APPLY already in flight for '" + name +
                                      "' (job " +
                                      std::to_string(ds->apply_job) + ")")};
  }
  const SubmitResult submitted = scheduler_.submit(
      [this, name, ds, incremental](const JobContext& ctx) {
        apply_job_body(name, ds, incremental, ctx);
      },
      priority, deadline);
  if (submitted.accepted()) {
    ds->apply_job = submitted.id;
    refresh_delta_pin_locked(name, *ds);
  }
  return submitted;
}

void ServeSession::apply_job_body(const std::string& name,
                                  const DeltaStatePtr& ds, bool incremental,
                                  const JobContext& ctx) {
  obs::TraceSpan apply_span("delta.apply", obs::TraceCat::kSession);
  support::WallTimer wall;
  // Re-derive the pin on every exit (early returns, throws): once this body
  // is done the job is terminal, so only un-folded records keep it held.
  struct PinGuard {
    ServeSession* session;
    const std::string& name;
    const DeltaStatePtr& ds;
    ~PinGuard() {
      std::lock_guard<std::mutex> lock(ds->mu);
      session->registry_.set_pinned(name, !ds->log.empty());
    }
  } pin_guard{this, name, ds};
  // Same chaos surface as CLUSTER's job body (`cluster.sweep`).
  const fault::FaultDecision sweep_fault =
      fault::check(&faults_, fault::Site::kClusterSweep);
  if (sweep_fault.effect == fault::Effect::kError) {
    throw std::runtime_error("injected cluster.sweep fault");
  }
  if (sweep_fault.effect == fault::Effect::kCancel) {
    scheduler_.cancel(ctx.id);
    return;
  }
  if (sweep_fault.effect == fault::Effect::kLatency) {
    std::this_thread::sleep_for(sweep_fault.latency);
  }

  GraphRegistry::GraphPtr merged;
  std::vector<graph::VertexId> touched;
  {
    std::lock_guard<std::mutex> lock(ds->mu);
    const ServeStatus fold = fold_delta_locked(name, *ds, &merged, &touched);
    if (!fold.ok()) {
      throw std::runtime_error("APPLY fold failed: " +
                               std::string(fold.text()));
    }
  }
  if (ctx.stop_requested()) return;

  const PartitionStore::SnapshotPtr prev = store_.snapshot(name);
  // Warm start needs a previous membership that still fits the merged
  // graph; without one (never clustered) fall back to a full recluster.
  const bool warm = incremental && prev != nullptr &&
                    prev->communities.size() <= merged->num_vertices();
  core::InfomapOptions opts = config_.infomap;
  opts.cancel = ctx.stop;
  dyn::WarmStart plan;
  if (warm) {
    obs::TraceSpan warm_span("delta.warm_start", obs::TraceCat::kSession);
    plan = dyn::plan_warm_start(prev->communities, merged->num_vertices(),
                                touched);
    opts.warm_start = &plan.init;
    opts.active_seed = &plan.active_seed;
    incr_active_->set(static_cast<double>(plan.active_seed.size()));
  }
  const core::InfomapResult result =
      core::run_infomap_parallel(*merged, opts, config_.cluster_threads);
  if (ctx.stop_requested()) return;
  if (sweep_fault.effect == fault::Effect::kPartialWrite) return;

  // Publish-on-improvement: for a warm run, initial_codelength is the
  // carried-over partition's L on the merged graph — if the re-sweep could
  // not beat it, the old snapshot keeps serving and we record why.
  const bool published =
      !warm ||
      result.codelength < result.initial_codelength - config_.incr_publish_epsilon;
  (warm ? apply_incr_ : apply_full_)->inc();
  if (published) {
    obs::TraceSpan publish_span("snapshot.publish", obs::TraceCat::kSession);
    PartitionSnapshot snap = make_snapshot(merged, result);
    snap.build_job = ctx.id;
    store_.publish(name, std::move(snap));
    if (warm) incr_published_->inc();
  } else {
    incr_skipped_->inc();
  }
  apply_seconds_->record_seconds(wall.seconds());
  std::lock_guard<std::mutex> lock(ds->mu);
  if (warm) {
    ds->applies_incr += 1;
    if (published) {
      ds->incr_published += 1;
      ds->last_skip = "none";
    } else {
      ds->incr_skipped += 1;
      ds->last_skip = "no_improvement";
    }
  } else {
    ds->applies_full += 1;
  }
}

ServeSession::DeltaStatus ServeSession::delta_status(const std::string& name) {
  DeltaStatus out;
  out.pinned = registry_.pinned(name);
  DeltaStatePtr ds;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    const auto it = deltas_.find(name);
    if (it != deltas_.end()) ds = it->second;
  }
  if (!ds) return out;
  std::lock_guard<std::mutex> lock(ds->mu);
  out.known = true;
  const dyn::DeltaLogStats ls = ds->log.stats();
  out.pending = ls.pending;
  out.adds = ls.adds;
  out.dels = ls.dels;
  out.compactions = ds->compactions;
  out.applies_full = ds->applies_full;
  out.applies_incr = ds->applies_incr;
  out.last_batch = ds->last_batch;
  out.incr_published = ds->incr_published;
  out.incr_skipped = ds->incr_skipped;
  out.last_skip = ds->last_skip;
  out.apply_inflight = apply_inflight_locked(*ds);
  out.apply_job = ds->apply_job;
  return out;
}

std::string ServeSession::degraded_cluster(const std::string& name,
                                           const char* reason) {
  const auto snap = store_.snapshot(name);
  if (!snap) return {};
  stale_serves_->inc();
  return "OK STALE version=" + std::to_string(snap->version) + " graph=" +
         name + " reason=" + reason +
         " communities=" + std::to_string(snap->num_communities) +
         " codelength=" + fmt_double(snap->codelength);
}

std::string ServeSession::handle_line(std::string_view line) {
  support::WallTimer wall;
  const auto tokens = tokenize(trim_trailing_ws(line));
  const std::string_view verb = tokens.empty() ? std::string_view{} : tokens[0];
  const auto it = verb_metrics_.find(verb);
  const VerbMetrics& vm =
      it == verb_metrics_.end() ? other_verb_metrics_ : it->second;
  std::string response;
  {
    // Root span of this request's trace: jobs submitted inside inherit the
    // context, so everything the verb triggers lands under one trace id.
    obs::TraceSpan span(vm.trace_name, obs::TraceCat::kSession);
    response = handle_line_impl(verb, tokens);
  }
  vm.requests->inc();
  vm.latency->record_seconds(wall.seconds());
  if (response.rfind("ERR", 0) == 0) errors_total_->inc();
  return response;
}

void ServeSession::handle_batch(const std::vector<std::string_view>& lines,
                                std::vector<std::string>& responses) {
  responses.clear();
  responses.reserve(lines.size());
  SnapshotCache cache;
  // Reused across calls on the same thread: the read fast path must not pay
  // a vector allocation per request.
  thread_local std::vector<std::string_view> tokens;
  // Pipelined batches repeat the same verb run after run, so the per-verb
  // metrics hash lookup is memoised on the previous verb.
  std::string_view last_verb;
  const VerbMetrics* last_vm = nullptr;
  for (const std::string_view raw : lines) {
    const std::string_view line = trim_trailing_ws(raw);
    tokenize_into(line, tokens);
    const std::string_view verb =
        tokens.empty() ? std::string_view{} : tokens[0];
    if (!is_read_verb(verb)) {
      // Non-read verbs take the full handle_line path (root span, metrics,
      // fault sites) and may publish or drop snapshots — reset the memo so
      // later reads in this batch observe what they changed.
      cache = SnapshotCache{};
      responses.push_back(handle_line(line));
      continue;
    }
    // Read fast path: no root trace span (the transport owns the batch
    // span), snapshot acquire memoised across the run.
    support::WallTimer wall;
    if (verb != last_verb) {
      last_vm = &verb_metrics_.find(verb)->second;
      last_verb = verb;
    }
    const VerbMetrics& vm = *last_vm;
    std::string response;
    const fault::FaultDecision io_fault =
        fault::check(&faults_, fault::Site::kSessionIo);
    if (io_fault.effect != fault::Effect::kNone &&
        io_fault.effect != fault::Effect::kLatency) {
      response = err(ServeCode::kUnavailable, "injected session.io fault");
    } else {
      if (io_fault.effect == fault::Effect::kLatency) {
        std::this_thread::sleep_for(io_fault.latency);
      }
      response = handle_read(verb, tokens, &cache);
    }
    vm.requests->inc();
    vm.latency->record_seconds(wall.seconds());
    if (response.rfind("ERR", 0) == 0) errors_total_->inc();
    responses.push_back(std::move(response));
  }
}

std::string ServeSession::handle_line_impl(
    std::string_view verb, const std::vector<std::string_view>& tokens) {
  if (tokens.empty()) return err(ServeCode::kInvalidArgument, "empty request");

  // `session.io` injection (chaos builds): the request itself hiccups.
  // FAULTS is exempt so an operator can always inspect or CLEAR a plan.
  if (verb != "FAULTS") {
    const fault::FaultDecision io_fault =
        fault::check(&faults_, fault::Site::kSessionIo);
    if (io_fault.effect == fault::Effect::kLatency) {
      std::this_thread::sleep_for(io_fault.latency);
    } else if (io_fault.effect != fault::Effect::kNone) {
      return err(ServeCode::kUnavailable, "injected session.io fault");
    }
  }

  if (verb == "GEN") {
    if (tokens.size() < 4 || tokens.size() > 5) {
      return err(ServeCode::kInvalidArgument,
                 "usage: GEN <name> <n> <edges> [seed]");
    }
    graph::VertexId n = 0;
    std::uint64_t edges = 0;
    std::uint64_t seed = 42;
    if (!parse_num(tokens[2], n) || !parse_num(tokens[3], edges) ||
        (tokens.size() == 5 && !parse_num(tokens[4], seed))) {
      return err(ServeCode::kInvalidArgument, "GEN: numeric argument expected");
    }
    const std::string name(tokens[1]);
    const ServeStatus status = gen_chung_lu(name, n, edges, seed);
    if (!status.ok()) return err(status);
    const auto g = registry_.get(name);
    return "OK graph=" + name + " vertices=" +
           std::to_string(g->num_vertices()) +
           " arcs=" + std::to_string(g->num_arcs());
  }

  if (verb == "LOAD") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      return err(ServeCode::kInvalidArgument,
                 "usage: LOAD <name> <path> [directed]");
    }
    const bool undirected = !(tokens.size() == 4 && tokens[3] == "directed");
    const std::string name(tokens[1]);
    const ServeStatus status =
        load_file(name, std::string(tokens[2]), undirected);
    if (!status.ok()) return err(status);
    const auto g = registry_.get(name);
    return "OK graph=" + name + " vertices=" +
           std::to_string(g->num_vertices()) +
           " arcs=" + std::to_string(g->num_arcs());
  }

  if (verb == "DROP") {
    if (tokens.size() != 2) {
      return err(ServeCode::kInvalidArgument, "usage: DROP <name>");
    }
    const std::string name(tokens[1]);
    if (!drop(name)) {
      return err(ServeCode::kNotFound, "unknown graph '" + name + "'");
    }
    return "OK dropped=" + name;
  }

  if (verb == "CLUSTER") {
    if (tokens.size() < 2) {
      return err(ServeCode::kInvalidArgument,
                 "usage: CLUSTER <name> [sync] [priority=interactive|batch] "
                 "[deadline_ms=N]");
    }
    const std::string name(tokens[1]);
    bool sync = false;
    JobPriority priority = JobPriority::kBatch;
    std::chrono::milliseconds deadline{};
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const std::string_view opt = tokens[i];
      if (opt == "sync") {
        sync = true;
      } else if (opt == "priority=interactive") {
        priority = JobPriority::kInteractive;
      } else if (opt == "priority=batch") {
        priority = JobPriority::kBatch;
      } else if (opt.rfind("deadline_ms=", 0) == 0) {
        std::int64_t ms = 0;
        if (!parse_num(opt.substr(12), ms) || ms < 0) {
          return err(ServeCode::kInvalidArgument,
                     "CLUSTER: bad deadline_ms value");
        }
        deadline = std::chrono::milliseconds(ms);
      } else {
        return err(ServeCode::kInvalidArgument,
                   "CLUSTER: unknown option '" + std::string(opt) + "'");
      }
    }
    // Graceful degradation: under memory pressure or an open breaker, a
    // re-cluster would only add load — answer from the last published
    // snapshot, explicitly marked STALE, instead of rejecting.
    if (registry_.under_pressure()) {
      if (auto stale = degraded_cluster(name, "memory_pressure");
          !stale.empty()) {
        return stale;
      }
      // Never clustered: fall through and try anyway (best effort).
    }
    if (!breaker_.allow()) {
      if (auto stale = degraded_cluster(name, "breaker_open"); !stale.empty()) {
        return stale;
      }
      return err(ServeCode::kUnavailable,
                 "circuit breaker open and no snapshot to degrade to");
    }
    const SubmitResult submitted = submit_recluster(name, priority, deadline);
    if (!submitted.accepted()) {
      if (submitted.status.code == ServeCode::kRejected ||
          submitted.status.code == ServeCode::kShutdown) {
        breaker_.record_failure();
        if (auto stale = degraded_cluster(name, "queue_full"); !stale.empty()) {
          return stale;
        }
      } else {
        // Client-side failure (unknown graph): the service answered fine —
        // resolve a half-open probe as success, not failure.
        breaker_.record_success();
      }
      return err(submitted.status);
    }
    breaker_.record_success();
    if (!sync) {
      return "OK job=" + std::to_string(submitted.id) +
             " state=" + to_string(scheduler_.state(submitted.id));
    }
    const JobState terminal = scheduler_.wait(submitted.id);
    std::string out = "OK job=" + std::to_string(submitted.id) +
                      " state=" + to_string(terminal);
    if (terminal == JobState::kDone) {
      if (const auto snap = store_.snapshot(name)) {
        out += " version=" + std::to_string(snap->version) +
               " communities=" + std::to_string(snap->num_communities) +
               " codelength=" + fmt_double(snap->codelength);
      }
    }
    return out;
  }

  if (verb == "ADD_EDGE" || verb == "DEL_EDGE") {
    const bool is_add = verb == "ADD_EDGE";
    const bool arity_ok = is_add ? tokens.size() == 4 || tokens.size() == 5
                                 : tokens.size() == 4;
    if (!arity_ok) {
      return err(ServeCode::kInvalidArgument,
                 is_add ? "usage: ADD_EDGE <name> <u> <v> [w]"
                        : "usage: DEL_EDGE <name> <u> <v>");
    }
    graph::VertexId u = 0, v = 0;
    double w = 1.0;
    if (!parse_num(tokens[2], u) || !parse_num(tokens[3], v) ||
        (tokens.size() == 5 && !parse_num(tokens[4], w))) {
      return err(ServeCode::kInvalidArgument,
                 std::string(verb) + ": numeric argument expected");
    }
    const std::string name(tokens[1]);
    std::size_t pending = 0;
    bool folded = false;
    const ServeStatus status =
        mutate_edge(name, u, v, w, is_add, &pending, &folded);
    if (!status.ok()) return err(status);
    std::string out = "OK graph=" + name + " op=";
    out += is_add ? "add" : "del";
    out += " u=" + std::to_string(u) + " v=" + std::to_string(v);
    if (is_add) out += " w=" + fmt_double(w);
    out += " pending=" + std::to_string(pending) + " folded=";
    out += folded ? '1' : '0';
    return out;
  }

  if (verb == "APPLY") {
    if (tokens.size() < 2) {
      return err(ServeCode::kInvalidArgument,
                 "usage: APPLY <name> [recluster=full|incr] [sync] "
                 "[priority=interactive|batch] [deadline_ms=N]");
    }
    const std::string name(tokens[1]);
    bool incremental = true;
    bool sync = false;
    JobPriority priority = JobPriority::kBatch;
    std::chrono::milliseconds deadline{};
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const std::string_view opt = tokens[i];
      if (opt == "sync") {
        sync = true;
      } else if (opt == "recluster=incr") {
        incremental = true;
      } else if (opt == "recluster=full") {
        incremental = false;
      } else if (opt == "priority=interactive") {
        priority = JobPriority::kInteractive;
      } else if (opt == "priority=batch") {
        priority = JobPriority::kBatch;
      } else if (opt.rfind("deadline_ms=", 0) == 0) {
        std::int64_t ms = 0;
        if (!parse_num(opt.substr(12), ms) || ms < 0) {
          return err(ServeCode::kInvalidArgument,
                     "APPLY: bad deadline_ms value");
        }
        deadline = std::chrono::milliseconds(ms);
      } else {
        return err(ServeCode::kInvalidArgument,
                   "APPLY: unknown option '" + std::string(opt) + "'");
      }
    }
    // `published=` in the sync answer compares snapshot versions across the
    // job, not a flag out of the body — the observable truth.
    const auto pre = store_.snapshot(name);
    const std::uint64_t pre_version = pre ? pre->version : 0;
    const SubmitResult submitted = submit_apply(name, incremental, priority,
                                                deadline);
    if (!submitted.accepted()) return err(submitted.status);
    const char* mode = incremental ? "incr" : "full";
    if (!sync) {
      return "OK job=" + std::to_string(submitted.id) + " mode=" + mode +
             " state=" + to_string(scheduler_.state(submitted.id));
    }
    const JobState terminal = scheduler_.wait(submitted.id);
    std::string out = "OK job=" + std::to_string(submitted.id) +
                      " mode=" + mode + " state=" + to_string(terminal);
    if (terminal == JobState::kDone) {
      const auto snap = store_.snapshot(name);
      const bool published = snap && snap->version != pre_version;
      out += " published=";
      out += published ? '1' : '0';
      if (snap) {
        out += " version=" + std::to_string(snap->version) +
               " communities=" + std::to_string(snap->num_communities) +
               " codelength=" + fmt_double(snap->codelength);
      }
      if (!published) {
        out += " reason=";
        out += delta_status(name).last_skip;
      }
    }
    return out;
  }

  if (verb == "DELTA") {
    if (tokens.size() != 3 || tokens[1] != "STATUS") {
      return err(ServeCode::kInvalidArgument, "usage: DELTA STATUS <name>");
    }
    const std::string name(tokens[2]);
    const DeltaStatus st = delta_status(name);
    if (!st.known && !registry_.get(name)) {
      return err(ServeCode::kNotFound, "unknown graph '" + name + "'");
    }
    std::string out = "OK graph=" + name +
                      " pending=" + std::to_string(st.pending) +
                      " adds=" + std::to_string(st.adds) +
                      " dels=" + std::to_string(st.dels) +
                      " compactions=" + std::to_string(st.compactions) +
                      " last_batch=" + std::to_string(st.last_batch) +
                      " applies_full=" + std::to_string(st.applies_full) +
                      " applies_incr=" + std::to_string(st.applies_incr) +
                      " incr_published=" + std::to_string(st.incr_published) +
                      " incr_skipped=" + std::to_string(st.incr_skipped) +
                      " last_skip=" + st.last_skip + " inflight=";
    out += st.apply_inflight ? '1' : '0';
    out += " apply_job=" + std::to_string(st.apply_job) + " pinned=";
    out += st.pinned ? '1' : '0';
    return out;
  }

  if (verb == "WAIT" || verb == "CANCEL") {
    if (tokens.size() != 2) {
      return err(ServeCode::kInvalidArgument,
                 "usage: " + std::string(verb) + " <job>");
    }
    std::uint64_t id = 0;
    if (!parse_num(tokens[1], id) || id == 0) {
      return err(ServeCode::kInvalidArgument, "bad job id");
    }
    if (verb == "CANCEL") {
      const bool accepted = scheduler_.cancel(id);
      return "OK job=" + std::to_string(id) +
             " cancelled=" + (accepted ? "1" : "0") +
             " state=" + to_string(scheduler_.state(id));
    }
    return "OK job=" + std::to_string(id) +
           " state=" + to_string(scheduler_.wait(id));
  }

  if (is_read_verb(verb)) return handle_read(verb, tokens, nullptr);

  if (verb == "STATS") {
    const RegistryStats reg = registry_.stats();
    const SchedulerStats sch = scheduler_.stats();
    return "OK graphs=" + std::to_string(reg.entries) +
           " resident_bytes=" + std::to_string(reg.resident_bytes) +
           " dedup_hits=" + std::to_string(reg.dedup_hits) +
           " evictions=" + std::to_string(reg.evictions) +
           " snapshots=" + std::to_string(store_.size()) +
           " submitted=" + std::to_string(sch.submitted) +
           " completed=" + std::to_string(sch.completed) +
           " failed=" + std::to_string(sch.failed) +
           " rejected=" + std::to_string(sch.rejected) +
           " cancelled=" + std::to_string(sch.cancelled) +
           " expired=" + std::to_string(sch.expired) +
           " queued_interactive=" + std::to_string(sch.queued_interactive) +
           " queued_batch=" + std::to_string(sch.queued_batch) +
           " running=" + std::to_string(sch.running) +
           " retries=" + std::to_string(reg.ingest_retries +
                                        sch.dispatch_retries) +
           " shed=" + std::to_string(sch.shed) + " breaker=" +
           fault::to_string(breaker_.state()) +
           // Build identity (ISSUE 10): which binary, for how long, built
           // how — so fleet STATS sweeps can spot a stale deploy at a glance.
           " uptime=" + fmt_double(obs::process_uptime_seconds()) +
           " rev=" + obs::build_git_rev() + " build=" + obs::build_mode() +
           " faults=" + (fault::kFaultInjectionEnabled ? "1" : "0") +
           " accumulator=hotset";
  }

  if (verb == "FAULTS") {
    constexpr const char* kUsage =
        "usage: FAULTS LOAD <path> | FAULTS CLEAR | FAULTS STATUS";
    if (tokens.size() < 2) return err(ServeCode::kInvalidArgument, kUsage);
    const std::string_view sub = tokens[1];
    if (sub == "STATUS") {
      if (tokens.size() != 2) {
        return err(ServeCode::kInvalidArgument, "usage: FAULTS STATUS");
      }
      std::string out = "OK enabled=";
      out += fault::kFaultInjectionEnabled ? '1' : '0';
      out += " armed=";
      out += faults_.armed() ? '1' : '0';
      out += " rules=" + std::to_string(faults_.rule_count()) +
             " injected=" + std::to_string(faults_.injected_total()) +
             " breaker=";
      out += fault::to_string(breaker_.state());
      return out;
    }
    if (!fault::kFaultInjectionEnabled) {
      return err(ServeCode::kUnavailable,
                 "fault injection compiled out; configure with "
                 "-DASAMAP_FAULT_INJECTION=ON");
    }
    if (sub == "CLEAR") {
      if (tokens.size() != 2) {
        return err(ServeCode::kInvalidArgument, "usage: FAULTS CLEAR");
      }
      faults_.clear();
      return "OK armed=0";
    }
    if (sub == "LOAD") {
      if (tokens.size() != 3) {
        return err(ServeCode::kInvalidArgument, "usage: FAULTS LOAD <path>");
      }
      fault::PlanParseResult parsed =
          fault::load_fault_plan_file(std::string(tokens[2]));
      if (!parsed.ok()) {
        return err(ServeCode::kInvalidArgument,
                   "line " + std::to_string(parsed.error->line) + ": " +
                       parsed.error->message);
      }
      const std::size_t rules = parsed.plan.rules.size();
      const std::uint64_t seed = parsed.plan.seed;
      faults_.load(std::move(parsed.plan));
      std::string out = "OK loaded=" + std::string(tokens[2]) +
                        " seed=" + std::to_string(seed) +
                        " rules=" + std::to_string(rules) + " armed=";
      out += faults_.armed() ? '1' : '0';
      return out;
    }
    return err(ServeCode::kInvalidArgument, kUsage);
  }

  if (verb == "TRACE") {
    constexpr const char* kUsage =
        "usage: TRACE DUMP | TRACE STATUS | TRACE MARK <label>";
    if (tokens.size() < 2) return err(ServeCode::kInvalidArgument, kUsage);
    const std::string_view sub = tokens[1];
    obs::FlightRecorder& rec = obs::FlightRecorder::instance();
    if (sub == "DUMP") {
      if (tokens.size() != 2) {
        return err(ServeCode::kInvalidArgument, "usage: TRACE DUMP");
      }
      std::ostringstream out;
      rec.write_chrome_json(out);  // one line, so transcripts stay parseable
      return enveloped("chrome-trace", out.str());
    }
    if (sub == "STATUS") {
      if (tokens.size() != 2) {
        return err(ServeCode::kInvalidArgument, "usage: TRACE STATUS");
      }
      const obs::TraceStats stats = rec.stats();
      std::string out = "OK enabled=";
      out += stats.enabled ? '1' : '0';
      out += " rings=" + std::to_string(stats.rings) +
             " capacity=" + std::to_string(stats.ring_capacity) +
             " recorded=" + std::to_string(stats.recorded) +
             " dropped=" + std::to_string(stats.dropped) +
             " dropped_fraction=" + fmt_double(stats.dropped_fraction);
      // The rings hold only the newest events; once most of the run has
      // been overwritten a DUMP is a sliver, not a trace — say so here
      // instead of letting the near-empty dump speak for itself.
      if (stats.dropped_fraction > 0.5) {
        out += " warning=ring_wrapped";
      }
      return out;
    }
    if (sub == "MARK") {
      if (tokens.size() < 3) {
        return err(ServeCode::kInvalidArgument, "usage: TRACE MARK <label>");
      }
      std::string label(tokens[2]);
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        label += ' ';
        label += tokens[i];
      }
      rec.instant(rec.intern(label), obs::TraceCat::kUser);
      return "OK marked=" + label;
    }
    return err(ServeCode::kInvalidArgument, kUsage);
  }

  if (verb == "METRICS") {
    if (tokens.size() >= 2 && tokens[1] == "WINDOW") {
      if (tokens.size() > 3) {
        return err(ServeCode::kInvalidArgument,
                   "usage: METRICS WINDOW [prom|json]");
      }
      return render_window(tokens.size() == 3 ? tokens[2] : "prom");
    }
    if (tokens.size() > 2) {
      return err(ServeCode::kInvalidArgument,
                 "usage: METRICS [WINDOW] [prom|json]");
    }
    const std::string_view format = tokens.size() == 2 ? tokens[1] : "prom";
    if (format == "prom" || format == "prometheus") {
      return render_metrics_prometheus();
    }
    if (format == "json") return render_metrics_json();
    return err(ServeCode::kInvalidArgument,
               "METRICS: unknown format '" + std::string(format) +
                   "' (want prom or json)");
  }

  if (verb == "HEALTH") {
    if (tokens.size() != 1) {
      return err(ServeCode::kInvalidArgument, "usage: HEALTH");
    }
    return render_health();
  }

  if (verb == "QUIT") return "OK bye";

  return err(ServeCode::kInvalidArgument,
             "unknown command '" + std::string(verb) + "'");
}

std::string ServeSession::handle_read(
    std::string_view verb, const std::vector<std::string_view>& tokens,
    SnapshotCache* cache) {
  const auto need_snapshot =
      [&](std::string_view name,
          PartitionStore::SnapshotPtr& snap) -> std::string {
    if (cache && cache->snap && std::string_view(cache->name) == name) {
      snap = cache->snap;  // the batch's memoised acquire
      return {};
    }
    std::string key(name);
    snap = store_.snapshot(key);
    if (snap) {
      if (cache) {
        cache->name = std::move(key);
        cache->snap = snap;
      }
      return {};
    }
    if (!registry_.get(key)) {
      return err(ServeCode::kNotFound, "unknown graph '" + key + "'");
    }
    return err(ServeCode::kNoPartition,
               "graph '" + key + "' has no published partition; CLUSTER it");
  };

  if (verb == "MEMBER") {
    if (tokens.size() != 3) {
      return err(ServeCode::kInvalidArgument, "usage: MEMBER <name> <vertex>");
    }
    graph::VertexId v = 0;
    if (!parse_num(tokens[2], v)) {
      return err(ServeCode::kInvalidArgument, "bad vertex id");
    }
    PartitionStore::SnapshotPtr snap;
    if (auto e = need_snapshot(tokens[1], snap); !e.empty()) {
      return e;
    }
    if (v >= snap->communities.size()) {
      return err(ServeCode::kInvalidArgument,
                 "vertex " + std::to_string(v) + " out of range (graph has " +
                     std::to_string(snap->communities.size()) + " vertices)");
    }
    const auto c = snap->communities[v];
    return "OK version=" + std::to_string(snap->version) +
           " vertex=" + std::to_string(v) + " community=" + std::to_string(c) +
           " flow=" + fmt_double(snap->community_flow[c]);
  }

  if (verb == "SAME") {
    if (tokens.size() != 4) {
      return err(ServeCode::kInvalidArgument, "usage: SAME <name> <u> <v>");
    }
    graph::VertexId u = 0, v = 0;
    if (!parse_num(tokens[2], u) || !parse_num(tokens[3], v)) {
      return err(ServeCode::kInvalidArgument, "bad vertex id");
    }
    PartitionStore::SnapshotPtr snap;
    if (auto e = need_snapshot(tokens[1], snap); !e.empty()) {
      return e;
    }
    if (u >= snap->communities.size() || v >= snap->communities.size()) {
      return err(ServeCode::kInvalidArgument, "vertex out of range");
    }
    const auto cu = snap->communities[u];
    const auto cv = snap->communities[v];
    return "OK version=" + std::to_string(snap->version) +
           " u=" + std::to_string(u) + " v=" + std::to_string(v) +
           " cu=" + std::to_string(cu) + " cv=" + std::to_string(cv) +
           " same=" + (cu == cv ? "1" : "0");
  }

  if (verb == "TOPK") {
    if (tokens.size() != 3) {
      return err(ServeCode::kInvalidArgument, "usage: TOPK <name> <k>");
    }
    std::size_t k = 0;
    if (!parse_num(tokens[2], k) || k == 0) {
      return err(ServeCode::kInvalidArgument, "bad k");
    }
    PartitionStore::SnapshotPtr snap;
    if (auto e = need_snapshot(tokens[1], snap); !e.empty()) {
      return e;
    }
    k = std::min(k, snap->by_flow.size());
    std::string out = "OK version=" + std::to_string(snap->version) +
                      " k=" + std::to_string(k) + " top=";
    for (std::size_t i = 0; i < k; ++i) {
      const auto c = snap->by_flow[i];
      if (i > 0) out += ',';
      out += std::to_string(c) + ":" + fmt_double(snap->community_flow[c]);
    }
    return out;
  }

  // SUMMARY (is_read_verb admits nothing else).
  if (tokens.size() != 2) {
    return err(ServeCode::kInvalidArgument, "usage: SUMMARY <name>");
  }
  PartitionStore::SnapshotPtr snap;
  if (auto e = need_snapshot(tokens[1], snap); !e.empty()) {
    return e;
  }
  return "OK version=" + std::to_string(snap->version) +
         " vertices=" + std::to_string(snap->communities.size()) +
         " arcs=" + std::to_string(snap->graph->num_arcs()) +
         " communities=" + std::to_string(snap->num_communities) +
         " codelength=" + fmt_double(snap->codelength) +
         " modularity=" + fmt_double(snap->modularity) +
         " interrupted=" + (snap->interrupted ? "1" : "0") +
         " job=" + std::to_string(snap->build_job);
}

std::uint64_t ServeSession::mono_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ServeSession::touch_uptime() const {
  uptime_->set(obs::process_uptime_seconds());
}

std::string ServeSession::render_metrics_prometheus() const {
  touch_uptime();
  std::ostringstream out;
  metrics_.write_prometheus(out);
  std::string s = out.str();
  if (!s.empty() && s.back() == '\n') s.pop_back();  // driver adds the newline
  return enveloped("prometheus", std::move(s));
}

std::string ServeSession::render_metrics_json() const {
  touch_uptime();
  std::ostringstream out;
  out << "{\n";
  benchutil::write_envelope_fields(
      out, benchutil::make_envelope("serve_metrics"), "  ");
  out << "  \"metrics\": ";
  metrics_.write_json(out, "  ");
  out << "\n}";
  return enveloped("json", out.str());
}

std::string ServeSession::render_window(std::string_view format) {
  const std::uint64_t now = mono_now_ns();
  std::ostringstream out;
  if (format == "prom" || format == "prometheus") {
    window_.write_prometheus(out, now);
    std::string s = out.str();
    if (!s.empty() && s.back() == '\n') s.pop_back();
    return enveloped("prometheus", std::move(s));
  }
  if (format == "json") {
    out << "{\n";
    benchutil::write_envelope_fields(
        out, benchutil::make_envelope("serve_metrics_window"), "  ");
    out << "  \"window\": ";
    window_.write_json(out, now, "  ");
    out << "\n}";
    return enveloped("json", out.str());
  }
  return err(ServeCode::kInvalidArgument,
             "METRICS WINDOW: unknown format '" + std::string(format) +
                 "' (want prom or json)");
}

std::string ServeSession::render_health() {
  const obs::HealthReport report = health_.evaluate(mono_now_ns());
  std::string payload = report.render();
  if (!payload.empty() && payload.back() == '\n') payload.pop_back();
  std::string out = "OK status=";
  out += to_string(report.status);
  out += " slos=" + std::to_string(report.slos.size());
  out += " bytes=" + std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

}  // namespace asamap::serve
