#include "asamap/serve/graph_registry.hpp"

#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "asamap/obs/tracing.hpp"
#include "asamap/support/backoff.hpp"
#include "asamap/support/hash.hpp"

namespace asamap::serve {

GraphRegistry::GraphRegistry(const RegistryConfig& config) : config_(config) {
  if (obs::MetricRegistry* reg = config_.metrics) {
    m_.ingested = &reg->counter("asamap_registry_ingested_total");
    m_.dedup_hits = &reg->counter("asamap_registry_dedup_hits_total");
    m_.evictions = &reg->counter("asamap_registry_evictions_total");
    m_.lookup_hits =
        &reg->counter("asamap_registry_lookups_total", "outcome=\"hit\"");
    m_.lookup_misses =
        &reg->counter("asamap_registry_lookups_total", "outcome=\"miss\"");
    m_.graphs = &reg->gauge("asamap_registry_graphs");
    m_.resident_bytes = &reg->gauge("asamap_registry_resident_bytes");
    m_.pinned = &reg->gauge("asamap_registry_pinned");
    m_.retries_ingest =
        &reg->counter("asamap_retries_total", "site=\"ingest.parse\"");
  }
}

std::size_t GraphRegistry::approx_bytes(const graph::CsrGraph& g) noexcept {
  // CSR stores out+in arcs, two offset arrays, and two weight sums.
  const std::size_t per_vertex =
      2 * sizeof(graph::EdgeId) + 2 * sizeof(graph::Weight);
  const std::size_t per_arc = 2 * sizeof(graph::Arc);
  return sizeof(graph::CsrGraph) + g.num_vertices() * per_vertex +
         static_cast<std::size_t>(g.num_arcs()) * per_arc;
}

std::uint64_t GraphRegistry::fingerprint_text(std::string_view text) noexcept {
  // mix64 chained over 8-byte chunks; length folded in so "a" and "a\0"
  // differ.  Not cryptographic — collision here only aliases two uploads.
  std::uint64_t h = support::mix64(0x5eedULL ^ text.size());
  std::size_t i = 0;
  for (; i + 8 <= text.size(); i += 8) {
    std::uint64_t chunk = 0;
    for (int b = 0; b < 8; ++b) {
      chunk |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(text[i + b]))
               << (8 * b);
    }
    h = support::mix64(h ^ chunk);
  }
  std::uint64_t tail = 0;
  for (int b = 0; i < text.size(); ++i, ++b) {
    tail |= static_cast<std::uint64_t>(static_cast<unsigned char>(text[i]))
            << (8 * b);
  }
  return support::mix64(h ^ tail);
}

ServeStatus GraphRegistry::put_text(const std::string& name,
                                    std::string_view text, bool undirected) {
  if (name.empty()) {
    return ServeStatus::error(ServeCode::kInvalidArgument,
                              "graph name must be non-empty");
  }
  // Covers dedup, injected-fault retries, the parse, and the insert; under
  // a GEN/LOAD verb it parents under that request's span.
  obs::TraceSpan ingest_span("registry.ingest", obs::TraceCat::kRegistry);
  const std::uint64_t fp = fingerprint_text(text);
  {
    // Dedup before paying for the parse: an identical upload maps the new
    // name onto the already-resident graph.
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = by_fingerprint_.find(fp);
        it != by_fingerprint_.end()) {
      if (GraphPtr existing = it->second.lock()) {
        ++counters_.dedup_hits;
        if (m_.dedup_hits != nullptr) m_.dedup_hits->inc();
        return insert_locked(name, std::move(existing), fp,
                             /*counted=*/false);
      }
    }
  }

  // Injected ingest faults (chaos builds only): an error here models a
  // transient parse-side failure — storage hiccup, truncated read — and is
  // the retryable kind.  Real parse errors below never retry.
  for (int attempt = 1;; ++attempt) {
    const fault::FaultDecision injected =
        fault::check(config_.faults, fault::Site::kIngestParse);
    if (injected.effect == fault::Effect::kNone) break;
    if (injected.effect == fault::Effect::kLatency) {
      std::this_thread::sleep_for(injected.latency);
      break;
    }
    if (attempt >= config_.ingest_retry.max_attempts) {
      return ServeStatus::error_static(
          ServeCode::kUnavailable,
          "ingest failed (injected fault); retries exhausted");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.ingest_retries;
    }
    if (m_.retries_ingest != nullptr) m_.retries_ingest->inc();
    // Deterministic per-upload schedule, replayed to the current attempt.
    support::DecorrelatedBackoff backoff(config_.ingest_retry.initial_backoff,
                                         config_.ingest_retry.max_backoff,
                                         config_.retry_seed ^ fp);
    std::chrono::milliseconds delay{0};
    for (int i = 0; i < attempt; ++i) delay = backoff.next();
    const std::uint64_t backoff_start = obs::FlightRecorder::now_ns();
    std::this_thread::sleep_for(delay);
    obs::FlightRecorder::instance().complete(
        "ingest.backoff", obs::TraceCat::kRegistry, obs::current_trace(),
        backoff_start, obs::FlightRecorder::now_ns() - backoff_start);
  }

  graph::SnapReadOptions opts;
  opts.undirected = undirected;
  opts.max_vertex_id = config_.max_vertex_id;
  std::istringstream in{std::string(text)};
  graph::SnapParseResult parsed = graph::parse_snap_stream(in, opts);
  if (!parsed.ok()) {
    return ServeStatus::error(
        ServeCode::kParseError,
        "line " + std::to_string(parsed.error->line) + ": " +
            parsed.error->message);
  }
  if (parsed.edges.empty()) {
    return ServeStatus::error(ServeCode::kInvalidArgument,
                              "upload contains no edges");
  }
  parsed.edges.coalesce();
  auto g = std::make_shared<graph::CsrGraph>(
      graph::CsrGraph::from_edges(parsed.edges));
  if (approx_bytes(*g) > config_.memory_budget_bytes) {
    return ServeStatus::error(
        ServeCode::kTooLarge,
        "graph needs " + std::to_string(approx_bytes(*g)) +
            " bytes, budget is " +
            std::to_string(config_.memory_budget_bytes));
  }

  std::lock_guard<std::mutex> lock(mu_);
  return insert_locked(name, std::move(g), fp, /*counted=*/true);
}

ServeStatus GraphRegistry::put_file(const std::string& name,
                                    const std::filesystem::path& path,
                                    bool undirected) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ServeStatus::error(ServeCode::kNotFound,
                              "cannot open file: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return put_text(name, buffer.str(), undirected);
}

ServeStatus GraphRegistry::put_graph(const std::string& name,
                                     graph::CsrGraph g,
                                     std::uint64_t fingerprint) {
  if (name.empty()) {
    return ServeStatus::error(ServeCode::kInvalidArgument,
                              "graph name must be non-empty");
  }
  obs::TraceSpan ingest_span("registry.ingest", obs::TraceCat::kRegistry);
  std::lock_guard<std::mutex> lock(mu_);
  if (fingerprint != 0) {
    if (const auto it = by_fingerprint_.find(fingerprint);
        it != by_fingerprint_.end()) {
      if (GraphPtr existing = it->second.lock()) {
        ++counters_.dedup_hits;
        if (m_.dedup_hits != nullptr) m_.dedup_hits->inc();
        return insert_locked(name, std::move(existing), fingerprint,
                             /*counted=*/false);
      }
    }
  }
  auto ptr = std::make_shared<const graph::CsrGraph>(std::move(g));
  return insert_locked(name, std::move(ptr), fingerprint, /*counted=*/true);
}

ServeStatus GraphRegistry::insert_locked(const std::string& name,
                                         GraphPtr graph,
                                         std::uint64_t fingerprint,
                                         bool counted) {
  erase_locked(name);  // replace semantics
  lru_.push_front(name);
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.bytes = counted ? approx_bytes(*graph) : 0;
  entry.lru_it = lru_.begin();
  entry.graph = std::move(graph);
  if (fingerprint != 0) by_fingerprint_[fingerprint] = entry.graph;
  resident_bytes_ += entry.bytes;
  entries_[name] = std::move(entry);
  ++counters_.ingested;
  if (m_.ingested != nullptr) m_.ingested->inc();
  evict_to_budget_locked(name);
  sync_gauges_locked();
  return ServeStatus::success();
}

void GraphRegistry::sync_gauges_locked() {
  if (m_.graphs != nullptr) {
    m_.graphs->set(static_cast<double>(entries_.size()));
  }
  if (m_.resident_bytes != nullptr) {
    m_.resident_bytes->set(static_cast<double>(resident_bytes_));
  }
  if (m_.pinned != nullptr) {
    m_.pinned->set(static_cast<double>(counters_.pinned));
  }
}

void GraphRegistry::erase_locked(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.bytes;
  if (it->second.pinned) --counters_.pinned;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void GraphRegistry::evict_to_budget_locked(const std::string& keep) {
  while (resident_bytes_ > config_.memory_budget_bytes && !lru_.empty()) {
    const fault::FaultDecision injected =
        fault::check(config_.faults, fault::Site::kRegistryEvict);
    if (injected.effect == fault::Effect::kLatency) {
      std::this_thread::sleep_for(injected.latency);
    } else if (injected.effect != fault::Effect::kNone) {
      // Eviction "failed": stay over budget.  under_pressure() turns true
      // and the session degrades instead of the registry rejecting.
      return;
    }
    // Evict from the cold end, skipping the entry being inserted and any
    // pinned entry (pending deltas / in-flight APPLY patch *that* graph —
    // dropping it would lose the mutations).
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      const auto e = entries_.find(*it);
      const bool evictable =
          *it != keep && (e == entries_.end() || !e->second.pinned);
      if (evictable) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) {
      // Only pinned entries (or the insertee) remain: stay over budget and
      // let under_pressure() drive degradation instead of losing deltas.
      return;
    }
    erase_locked(*victim);
    ++counters_.evictions;
    if (m_.evictions != nullptr) m_.evictions->inc();
  }
}

GraphRegistry::GraphPtr GraphRegistry::get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++counters_.misses;
    if (m_.lookup_misses != nullptr) m_.lookup_misses->inc();
    return nullptr;
  }
  ++counters_.hits;
  if (m_.lookup_hits != nullptr) m_.lookup_hits->inc();
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // bump to front
  return it->second.graph;
}

bool GraphRegistry::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.contains(name)) return false;
  erase_locked(name);
  sync_gauges_locked();
  return true;
}

bool GraphRegistry::set_pinned(const std::string& name, bool pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  if (it->second.pinned != pinned) {
    it->second.pinned = pinned;
    if (pinned) {
      ++counters_.pinned;
    } else {
      --counters_.pinned;
      // Unpinning may make a deferred eviction possible again.
      evict_to_budget_locked(std::string{});
    }
    sync_gauges_locked();
  }
  return true;
}

bool GraphRegistry::pinned(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.pinned;
}

bool GraphRegistry::under_pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_ > config_.memory_budget_bytes;
}

RegistryStats GraphRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryStats s = counters_;
  s.entries = entries_.size();
  s.resident_bytes = resident_bytes_;
  return s;
}

}  // namespace asamap::serve
