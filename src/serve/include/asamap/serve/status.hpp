#pragma once

/// \file status.hpp
/// Error vocabulary of the serving layer.  Service entry points return a
/// ServeStatus instead of throwing: a request that fails (bad upload, full
/// queue, unknown graph) is an expected outcome the caller turns into a
/// protocol response, not an exceptional one.

#include <string>
#include <utility>

namespace asamap::serve {

enum class ServeCode {
  kOk,
  kInvalidArgument,  ///< malformed request parameters
  kParseError,       ///< graph upload rejected (see message for line/reason)
  kTooLarge,         ///< upload exceeds the registry's configured limits
  kNotFound,         ///< unknown graph or job id
  kNoPartition,      ///< graph loaded but never clustered (or still pending)
  kRejected,         ///< scheduler backpressure: submission queue full
  kShutdown,         ///< service is draining; no new work accepted
};

[[nodiscard]] constexpr const char* to_string(ServeCode code) noexcept {
  switch (code) {
    case ServeCode::kOk: return "ok";
    case ServeCode::kInvalidArgument: return "invalid_argument";
    case ServeCode::kParseError: return "parse_error";
    case ServeCode::kTooLarge: return "too_large";
    case ServeCode::kNotFound: return "not_found";
    case ServeCode::kNoPartition: return "no_partition";
    case ServeCode::kRejected: return "rejected";
    case ServeCode::kShutdown: return "shutdown";
  }
  return "unknown";
}

struct ServeStatus {
  ServeCode code = ServeCode::kOk;
  std::string message;

  [[nodiscard]] bool ok() const noexcept { return code == ServeCode::kOk; }

  static ServeStatus success() { return {}; }
  static ServeStatus error(ServeCode code, std::string message) {
    return {code, std::move(message)};
  }
};

}  // namespace asamap::serve
