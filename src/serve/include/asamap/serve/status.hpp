#pragma once

/// \file status.hpp
/// Error vocabulary of the serving layer.  Service entry points return a
/// ServeStatus instead of throwing: a request that fails (bad upload, full
/// queue, unknown graph) is an expected outcome the caller turns into a
/// protocol response, not an exceptional one.

#include <string>
#include <string_view>
#include <utility>

namespace asamap::serve {

enum class ServeCode {
  kOk,
  kInvalidArgument,  ///< malformed request parameters
  kParseError,       ///< graph upload rejected (see message for line/reason)
  kTooLarge,         ///< upload exceeds the registry's configured limits
  kNotFound,         ///< unknown graph or job id
  kNoPartition,      ///< graph loaded but never clustered (or still pending)
  kRejected,         ///< scheduler backpressure: submission queue full
  kUnavailable,      ///< degraded / faulted and no fallback applies
  kShutdown,         ///< service is draining; no new work accepted
};

[[nodiscard]] constexpr const char* to_string(ServeCode code) noexcept {
  switch (code) {
    case ServeCode::kOk: return "ok";
    case ServeCode::kInvalidArgument: return "invalid_argument";
    case ServeCode::kParseError: return "parse_error";
    case ServeCode::kTooLarge: return "too_large";
    case ServeCode::kNotFound: return "not_found";
    case ServeCode::kNoPartition: return "no_partition";
    case ServeCode::kRejected: return "rejected";
    case ServeCode::kUnavailable: return "unavailable";
    case ServeCode::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// Detail text travels one of two ways: `message` owns dynamic detail
/// (parse errors with line numbers, job ids), while `brief` points at a
/// static string literal for hot-path outcomes — a backpressure reject must
/// not allocate just to say "queue full".  text() is what callers render.
struct ServeStatus {
  ServeCode code = ServeCode::kOk;
  std::string message;
  const char* brief = "";

  [[nodiscard]] bool ok() const noexcept { return code == ServeCode::kOk; }

  [[nodiscard]] std::string_view text() const noexcept {
    return message.empty() ? std::string_view(brief) : std::string_view(message);
  }

  static ServeStatus success() { return {}; }
  static ServeStatus error(ServeCode code, std::string message) {
    return {code, std::move(message), ""};
  }
  /// Allocation-free error: `brief` must be a string literal (or otherwise
  /// outlive every reader of this status).
  static ServeStatus error_static(ServeCode code, const char* brief) noexcept {
    ServeStatus s;
    s.code = code;
    s.brief = brief;
    return s;
  }
};

}  // namespace asamap::serve
