#pragma once

/// \file partition_store.hpp
/// Snapshot-isolated partition storage.  A clustering job builds a complete
/// immutable PartitionSnapshot off to the side and publishes it with one
/// pointer swap; queries copy the current shared_ptr and answer everything
/// (membership, same-community, top-k, summary) from that one object, so a
/// response can never mix two partition versions no matter how many
/// re-cluster jobs land mid-request.  Old snapshots stay alive until the
/// last in-flight reader drops its reference.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "asamap/graph/csr_graph.hpp"
#include "asamap/metrics/partition.hpp"

namespace asamap::core {
struct InfomapResult;
}  // namespace asamap::core

namespace asamap::serve {

/// One immutable clustering of one graph.  Everything a query can ask for
/// hangs off this object; fields are never mutated after publish.
struct PartitionSnapshot {
  std::uint64_t version = 0;  ///< assigned by publish(), strictly increasing
  std::shared_ptr<const graph::CsrGraph> graph;
  metrics::Partition communities;  ///< community id per vertex, compacted
  std::size_t num_communities = 0;
  double codelength = 0.0;
  double modularity = 0.0;
  bool interrupted = false;  ///< built from a deadline-truncated run
  std::uint64_t build_job = 0;  ///< scheduler job id that produced it

  /// Stationary flow per community (sum of member visit rates; for
  /// symmetric graphs, degree weight over total weight).  Sums to ~1.
  std::vector<double> community_flow;
  /// Community ids ordered by descending flow — top-k queries slice this.
  std::vector<graph::VertexId> by_flow;
};

/// Derives the query-facing fields (flows, ordering, modularity) from a
/// finished clustering run.  Version/build_job are left for the caller.
PartitionSnapshot make_snapshot(std::shared_ptr<const graph::CsrGraph> graph,
                                const core::InfomapResult& result);

class PartitionStore {
 public:
  using SnapshotPtr = std::shared_ptr<const PartitionSnapshot>;

  /// Current snapshot for a graph name; nullptr when never clustered.
  [[nodiscard]] SnapshotPtr snapshot(const std::string& graph_name) const;

  /// Atomically installs `snap` as the current version for `graph_name`,
  /// assigning the next version number (monotonic per name, surviving
  /// drop()).  Returns the assigned version.
  std::uint64_t publish(const std::string& graph_name, PartitionSnapshot snap);

  /// Removes the current snapshot (in-flight readers keep theirs).
  void drop(const std::string& graph_name);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SnapshotPtr> current_;
  std::unordered_map<std::string, std::uint64_t> last_version_;
};

}  // namespace asamap::serve
