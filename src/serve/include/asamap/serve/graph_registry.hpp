#pragma once

/// \file graph_registry.hpp
/// Named graph storage for the serving layer.  Ingests SNAP text (through
/// the structured parser, so a bad upload is rejected with a line number),
/// deduplicates identical uploads by content fingerprint, and evicts
/// least-recently-used graphs when the configured memory budget is
/// exceeded.  Graphs are handed out as shared_ptr<const CsrGraph>: eviction
/// removes a graph from the registry but a clustering job that already
/// holds the pointer keeps the memory alive until it finishes.

#include <cstdint>
#include <filesystem>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "asamap/fault/fault.hpp"
#include "asamap/fault/retry.hpp"
#include "asamap/graph/csr_graph.hpp"
#include "asamap/graph/io.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/serve/status.hpp"

namespace asamap::serve {

struct RegistryConfig {
  /// Resident budget for graph storage.  Inserting past it evicts LRU
  /// entries (never the one being inserted).
  std::size_t memory_budget_bytes = std::size_t{512} << 20;
  /// Upper bound on vertex ids accepted from text uploads — one malicious
  /// line `0 4000000000` would otherwise demand billions of CSR slots.
  graph::VertexId max_vertex_id = (graph::VertexId{1} << 28) - 1;
  /// When non-null, the registry publishes ingest/dedup/eviction/lookup
  /// counters and residency gauges under `asamap_registry_*`; the metric
  /// registry must outlive this one.  stats() is unaffected.
  obs::MetricRegistry* metrics = nullptr;
  /// When non-null (and the build has ASAMAP_FAULT_INJECTION), put_text
  /// consults `ingest.parse` before parsing and the eviction loop consults
  /// `registry.evict`.  Must outlive the registry.
  fault::FaultInjector* faults = nullptr;
  /// Retry budget for injected ingest faults (real parse errors never
  /// retry — malformed text stays malformed).  Backoff is deterministic
  /// per upload (retry_seed ^ content fingerprint).
  fault::RetryPolicy ingest_retry{};
  std::uint64_t retry_seed = 0x1d9e57ULL;
};

struct RegistryStats {
  std::size_t entries = 0;
  std::size_t resident_bytes = 0;
  std::uint64_t ingested = 0;    ///< successful put_* calls
  std::uint64_t dedup_hits = 0;  ///< uploads that matched an existing graph
  std::uint64_t evictions = 0;
  std::uint64_t hits = 0;        ///< get() found the graph
  std::uint64_t misses = 0;      ///< get() did not
  std::uint64_t ingest_retries = 0;  ///< retries of injected ingest faults
  std::size_t pinned = 0;        ///< entries currently exempt from eviction
};

class GraphRegistry {
 public:
  using GraphPtr = std::shared_ptr<const graph::CsrGraph>;

  explicit GraphRegistry(const RegistryConfig& config = {});

  /// Parses SNAP text and stores it under `name` (replacing any previous
  /// graph with that name).  Identical text already resident under another
  /// name shares that graph's memory (fingerprint dedup).
  ServeStatus put_text(const std::string& name, std::string_view text,
                       bool undirected = true);

  /// Reads a file through put_text's pipeline (same validation and dedup).
  ServeStatus put_file(const std::string& name,
                       const std::filesystem::path& path,
                       bool undirected = true);

  /// Stores an already-built graph (e.g. a generated workload).
  /// `fingerprint` deduplicates equal content when the caller can derive
  /// one (generator parameters); 0 disables dedup for this entry.
  ServeStatus put_graph(const std::string& name, graph::CsrGraph g,
                        std::uint64_t fingerprint = 0);

  /// Fetches a graph and marks it most-recently-used; nullptr if absent.
  GraphPtr get(const std::string& name);

  bool erase(const std::string& name);

  /// Pins (or unpins) a graph against LRU eviction.  The dynamic-graph
  /// layer pins any graph whose delta log holds un-compacted records or
  /// whose APPLY job is in flight: evicting it would silently discard the
  /// pending mutations (the log patches *that* base CSR).  Pinned entries
  /// still count against the budget — when only pinned entries remain the
  /// registry stays over budget and under_pressure() reports it.  No-op
  /// (returns false) when the graph is absent.
  bool set_pinned(const std::string& name, bool pinned);

  /// True when `name` is resident and currently pinned.
  [[nodiscard]] bool pinned(const std::string& name) const;

  [[nodiscard]] RegistryStats stats() const;

  /// True while resident bytes exceed the budget — normally transient, but
  /// sustained when eviction is failing (e.g. an injected `registry.evict`
  /// fault).  The session treats this as memory pressure and degrades
  /// CLUSTER to stale serving instead of piling on more work.
  [[nodiscard]] bool under_pressure() const;

  /// Approximate resident bytes of a frozen CSR graph.
  static std::size_t approx_bytes(const graph::CsrGraph& g) noexcept;

  /// Content fingerprint of raw upload bytes (mix64-chained, order
  /// sensitive).
  static std::uint64_t fingerprint_text(std::string_view text) noexcept;

 private:
  struct Entry {
    GraphPtr graph;
    std::uint64_t fingerprint = 0;
    std::size_t bytes = 0;  ///< 0 for dedup aliases (memory charged once)
    bool pinned = false;    ///< exempt from eviction (pending deltas/APPLY)
    std::list<std::string>::iterator lru_it;
  };

  /// Construction-time handles into the attached metric registry; all null
  /// when RegistryConfig::metrics is null.
  struct MetricHandles {
    obs::Counter* ingested = nullptr;
    obs::Counter* dedup_hits = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* lookup_hits = nullptr;
    obs::Counter* lookup_misses = nullptr;
    obs::Gauge* graphs = nullptr;
    obs::Gauge* resident_bytes = nullptr;
    obs::Gauge* pinned = nullptr;
    obs::Counter* retries_ingest = nullptr;
  };

  ServeStatus insert_locked(const std::string& name, GraphPtr graph,
                            std::uint64_t fingerprint, bool counted);
  void erase_locked(const std::string& name);
  void evict_to_budget_locked(const std::string& keep);
  void sync_gauges_locked();

  RegistryConfig config_;
  MetricHandles m_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  /// Fingerprint -> graph, for dedup.  Weak so an evicted graph does not
  /// linger just to serve future dedup hits.
  std::unordered_map<std::uint64_t, std::weak_ptr<const graph::CsrGraph>>
      by_fingerprint_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::size_t resident_bytes_ = 0;
  RegistryStats counters_;
};

}  // namespace asamap::serve
