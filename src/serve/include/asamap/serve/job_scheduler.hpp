#pragma once

/// \file job_scheduler.hpp
/// Worker-pool job scheduler for the serving layer.
///
/// Two priority lanes (interactive vs. batch), each a bounded queue:
/// workers always drain interactive work first, and a full lane rejects the
/// submission with a reason instead of queueing unboundedly (backpressure —
/// the caller degrades, the service does not).  Every job carries an
/// optional deadline and a stop flag: cancel() and deadline expiry both
/// raise the flag, which long-running job bodies observe cooperatively
/// (clustering jobs pass it to InfomapOptions::cancel, stopping at the next
/// sweep boundary).  Queued jobs whose deadline passes are dropped without
/// running.  Shutdown cancels queued work, stops running jobs via their
/// flags, and joins — destruction with jobs in flight is clean by design.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "asamap/fault/fault.hpp"
#include "asamap/fault/retry.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/serve/status.hpp"
#include "asamap/support/bounded_queue.hpp"

namespace asamap::serve {

enum class JobPriority { kInteractive, kBatch };

enum class JobState {
  kQueued,
  kRunning,
  kDone,       ///< body returned normally
  kFailed,     ///< body threw
  kCancelled,  ///< cancel() before or during the run
  kExpired,    ///< deadline passed before or during the run
};

[[nodiscard]] constexpr const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
  }
  return "unknown";
}

/// Handed to the job body.  `stop` is the job's cooperative stop flag —
/// pass it to InfomapOptions::cancel or poll stop_requested() in loops.
struct JobContext {
  std::uint64_t id = 0;
  const std::atomic<bool>* stop = nullptr;

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop != nullptr && stop->load(std::memory_order_relaxed);
  }
};

/// Outcome of submit(): an id when accepted, a reason when rejected.
struct SubmitResult {
  std::uint64_t id = 0;  ///< 0 when rejected
  ServeStatus status;

  [[nodiscard]] bool accepted() const noexcept { return id != 0; }
};

struct SchedulerConfig {
  int workers = 2;
  std::size_t interactive_capacity = 64;
  std::size_t batch_capacity = 8;
  /// Deadline sweep period.  Expiry latency is bounded by one tick.
  std::chrono::milliseconds reaper_tick{10};
  /// Terminal job records kept for state()/wait() lookups; oldest are
  /// forgotten beyond this.
  std::size_t completed_history = 4096;
  /// When non-null, the scheduler publishes its lifecycle under
  /// `asamap_jobs_*` / `asamap_job_run_seconds` (see DESIGN.md §4d); the
  /// registry must outlive the scheduler.  stats() is unaffected.
  obs::MetricRegistry* metrics = nullptr;
  /// When non-null (and the build has ASAMAP_FAULT_INJECTION), workers
  /// consult the `scheduler.dispatch` site after popping a job; injected
  /// errors exercise the retry path below.  Must outlive the scheduler.
  fault::FaultInjector* faults = nullptr;
  /// Retry budget for failed dispatches.  Only *injected* dispatch faults
  /// retry — a job body that throws is a real failure and never re-runs.
  /// Backoff is deterministic per job (retry_seed ^ job id) and
  /// budget-aware: a retry that cannot fit before the job's deadline fails
  /// the job as kExpired instead of sleeping.
  fault::RetryPolicy dispatch_retry{};
  std::uint64_t retry_seed = 0x7e7a11c0ffeeULL;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t dispatch_retries = 0;
  std::uint64_t shed = 0;
  std::size_t queued_interactive = 0;
  std::size_t queued_batch = 0;
  std::size_t running = 0;
};

class JobScheduler {
 public:
  using JobFn = std::function<void(const JobContext&)>;
  using Clock = std::chrono::steady_clock;

  explicit JobScheduler(const SchedulerConfig& config = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a job.  `deadline` of zero means none; otherwise it is
  /// measured from submission, and the job is stopped (or never started)
  /// once it passes.  Rejects with kRejected when the lane is full, with
  /// kShutdown after shutdown() began.
  SubmitResult submit(JobFn fn, JobPriority priority = JobPriority::kBatch,
                      std::chrono::milliseconds deadline = {});

  /// Requests cancellation.  Queued jobs terminate immediately as
  /// kCancelled; running jobs get their stop flag raised and finish as
  /// kCancelled.  False when the job is unknown or already terminal.
  bool cancel(std::uint64_t id);

  /// Blocks until the job reaches a terminal state (kNotFound -> kFailed
  /// is impossible; unknown ids return kFailed immediately).
  JobState wait(std::uint64_t id);

  /// Current state; kFailed for unknown (or long-forgotten) ids.
  [[nodiscard]] JobState state(std::uint64_t id) const;

  [[nodiscard]] SchedulerStats stats() const;

  /// Load shedding: cancels every *queued* (not running) job in `lane`,
  /// finishing each as kCancelled, and returns how many were shed.  The
  /// session calls this for the batch lane when its circuit breaker opens,
  /// so interactive work keeps flowing.  Shed entries stay in the lane's
  /// deque until a worker pops and skips them, so queue-depth gauges may
  /// briefly overcount.
  std::size_t shed(JobPriority lane);

  /// Stops accepting submissions, cancels queued jobs, raises every running
  /// job's stop flag, and joins the workers.  Idempotent; the destructor
  /// calls it.
  void shutdown();

 private:
  struct Job {
    std::uint64_t id = 0;
    JobFn fn;
    JobPriority priority = JobPriority::kBatch;
    Clock::time_point deadline = Clock::time_point::max();
    std::atomic<bool> stop{false};
    /// Written under mu_; the terminal state a stopped run resolves to.
    JobState pending_stop_state = JobState::kCancelled;
    JobState state = JobState::kQueued;  // guarded by mu_
    int dispatch_attempts = 0;           // guarded by mu_
    /// Submitter's trace context, captured at submit() and re-installed on
    /// the worker thread so the body's spans (job.run, the kernel phases)
    /// parent under the submitting verb's span.
    obs::TraceContext trace{};
    /// Submission instant, for the retroactive queue-wait span.
    Clock::time_point submitted{};
  };
  using JobPtr = std::shared_ptr<Job>;

  /// Registry handles, resolved once at construction so the hot path never
  /// touches the registry's name index.  All null when no registry is
  /// attached (every use is `if (m_.x) m_.x->...`).
  struct MetricHandles {
    obs::Counter* submitted = nullptr;
    obs::Counter* rejected_interactive = nullptr;
    obs::Counter* rejected_batch = nullptr;
    obs::Counter* finished_done = nullptr;
    obs::Counter* finished_failed = nullptr;
    obs::Counter* finished_cancelled = nullptr;
    obs::Counter* finished_expired = nullptr;
    obs::Gauge* queued_interactive = nullptr;
    obs::Gauge* queued_batch = nullptr;
    obs::Gauge* running = nullptr;
    obs::Histogram* run_seconds = nullptr;
    obs::Counter* retries_dispatch = nullptr;
    obs::Counter* shed_interactive = nullptr;
    obs::Counter* shed_batch = nullptr;
  };

  void worker_loop();
  void reaper_loop();
  void finish_locked(const JobPtr& job, JobState terminal);
  void sync_queue_gauges_locked();
  /// Handles an injected dispatch failure on a popped-but-unstarted job:
  /// backoff (deterministic, deadline-aware), then re-queue or finish.
  void retry_dispatch(std::unique_lock<std::mutex>& lock, const JobPtr& job);
  /// Sleeps `duration` in 1 ms slices, returning early (false) when `stop`
  /// is raised — keeps backoff and injected latency responsive to
  /// cancel/deadline/shutdown.
  static bool sleep_interruptible(const std::atomic<bool>& stop,
                                  std::chrono::milliseconds duration);
  [[nodiscard]] static bool is_terminal(JobState s) noexcept {
    return s != JobState::kQueued && s != JobState::kRunning;
  }

  SchedulerConfig config_;
  MetricHandles m_;
  support::BoundedQueue<JobPtr> interactive_;
  support::BoundedQueue<JobPtr> batch_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< submit -> workers
  std::condition_variable cv_done_;  ///< terminal transitions -> wait()
  std::condition_variable cv_reap_;  ///< shutdown -> reaper
  std::unordered_map<std::uint64_t, JobPtr> jobs_;
  std::deque<std::uint64_t> terminal_order_;  ///< for history pruning
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  SchedulerStats counters_;

  std::vector<std::thread> workers_;
  std::thread reaper_;
};

}  // namespace asamap::serve
