#pragma once

/// \file handler.hpp
/// RequestHandler — the minimal seam between the line protocol and its
/// transports.  A transport (the stdin driver, the epoll NetServer) needs
/// exactly three things from whatever answers requests: execute one line,
/// execute a pipelined batch, and expose a metric registry to publish
/// transport counters into.  ServeSession implements it directly;
/// dist::ShardSession and dist::Router wrap or replace it so the same
/// NetServer front end serves a single process, one shard of a partition,
/// or the scatter/gather router without knowing which.

#include <string>
#include <string_view>
#include <vector>

namespace asamap::obs {
class MetricRegistry;
}  // namespace asamap::obs

namespace asamap::serve {

class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  /// Executes one protocol line, returning the response without trailing
  /// newline (multi-line only inside a self-describing envelope).  Never
  /// throws.
  virtual std::string handle_line(std::string_view line) = 0;

  /// Executes a pipelined batch, appending one response per line to
  /// `responses` (cleared first), in order.  The default simply loops
  /// handle_line; ServeSession overrides it with the shared-snapshot read
  /// fast path.
  virtual void handle_batch(const std::vector<std::string_view>& lines,
                            std::vector<std::string>& responses) {
    responses.clear();
    responses.reserve(lines.size());
    for (const std::string_view line : lines) {
      responses.push_back(handle_line(line));
    }
  }

  /// The registry a transport publishes its own metrics into (and METRICS
  /// scrapes).  Safe to call from any thread.
  virtual obs::MetricRegistry& metrics() noexcept = 0;
};

}  // namespace asamap::serve
