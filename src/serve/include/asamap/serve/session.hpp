#pragma once

/// \file session.hpp
/// The embeddable service facade: one ServeSession owns a GraphRegistry, a
/// PartitionStore, and a JobScheduler, and exposes both a typed API (used
/// by the load generator and tests) and a line protocol (used by the
/// asamap_serve driver and scripted sessions).
///
/// Line protocol — one request line in, one response line out.  Responses
/// start with `OK` or `ERR <code>`; fields are `key=value` tokens.
///
///   GEN <name> <n> <edges> [seed]        generate a Chung-Lu graph
///   LOAD <name> <path> [directed]        ingest a SNAP file
///   DROP <name>                          remove graph + snapshot
///   CLUSTER <name> [sync] [priority=interactive|batch] [deadline_ms=N]
///   WAIT <job>                           block until the job is terminal
///   CANCEL <job>                         request cancellation
///   MEMBER <name> <v>                    community of one vertex
///   SAME <name> <u> <v>                  same-community check
///   TOPK <name> <k>                      top-k communities by flow
///   SUMMARY <name>                       codelength/modularity summary
///   STATS                                registry + scheduler counters
///   METRICS [prom|json]                  scrape the session metric registry
///   TRACE DUMP | STATUS | MARK <label>   flight-recorder export / status
///   FAULTS LOAD <path> | CLEAR | STATUS  chaos-test fault plans (see below)
///   QUIT                                 acknowledged; driver exits
///
/// METRICS and TRACE DUMP are the two multi-line responses: an
/// `OK format=...` line followed by the payload (Prometheus text or
/// bench-envelope JSON for METRICS; one line of Chrome trace-event JSON
/// for TRACE DUMP) — they are scrape endpoints, not interactive queries.
///
/// Tracing: every request runs inside a TraceSpan named after its verb, so
/// one CLUSTER line yields a connected span tree (verb -> queue.wait ->
/// job.run -> the four kernel phases -> snapshot.publish) in the process
/// flight recorder, exportable via TRACE DUMP (see asamap/obs/tracing.hpp).
///
/// Robustness semantics (DESIGN.md §4e):
///  - CLUSTER degrades instead of failing where it can: when the circuit
///    breaker is open, the registry is under memory pressure, or the
///    scheduler rejects with backpressure, the response is the last
///    published snapshot annotated `OK STALE version=N reason=...` rather
///    than an error (readers were going to see that snapshot anyway).
///  - The per-session circuit breaker trips after K consecutive
///    backpressure failures, sheds the batch lane, and half-opens on a
///    timer; its state is the asamap_breaker_state gauge (0/1/2 =
///    closed/open/half_open).
///  - FAULTS LOAD arms a deterministic fault plan (builds configured with
///    ASAMAP_FAULT_INJECTION only; otherwise ERR unavailable).  FAULTS
///    itself is exempt from the session.io injection site so an operator
///    can always CLEAR a misbehaving plan.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asamap/core/infomap.hpp"
#include "asamap/fault/fault.hpp"
#include "asamap/fault/retry.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/serve/graph_registry.hpp"
#include "asamap/serve/job_scheduler.hpp"
#include "asamap/serve/partition_store.hpp"
#include "asamap/serve/status.hpp"

namespace asamap::serve {

struct SessionConfig {
  RegistryConfig registry;
  SchedulerConfig scheduler;
  /// Threads per clustering job (0 = all available).  Tests pin this to 1
  /// so thread-level concurrency comes from the scheduler and readers, not
  /// nested OpenMP teams.
  int cluster_threads = 0;
  core::InfomapOptions infomap;
  /// Circuit-breaker thresholds for CLUSTER submissions (consecutive
  /// backpressure failures trip it; see retry.hpp).
  fault::BreakerConfig breaker;
};

class ServeSession {
 public:
  explicit ServeSession(const SessionConfig& config = {});
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  // --- typed API ---------------------------------------------------------

  ServeStatus load_text(const std::string& name, std::string_view text,
                        bool undirected = true);
  ServeStatus load_file(const std::string& name, const std::string& path,
                        bool undirected = true);
  /// Generates a Chung-Lu power-law graph into the registry (deduplicated
  /// by generator parameters).
  ServeStatus gen_chung_lu(const std::string& name, graph::VertexId n,
                           std::uint64_t edges, std::uint64_t seed = 42);
  bool drop(const std::string& name);

  /// Enqueues a re-cluster of `name` on the scheduler.  The job runs
  /// run_infomap_parallel (native hot-set fast path) against the
  /// graph snapshot it captured at submission; a publish only happens when
  /// the job was neither cancelled nor expired.
  SubmitResult submit_recluster(
      const std::string& name, JobPriority priority = JobPriority::kBatch,
      std::chrono::milliseconds deadline = {});

  /// Current snapshot for a graph; nullptr when never clustered.  All
  /// query answers derived from one SnapshotPtr are mutually consistent.
  [[nodiscard]] PartitionStore::SnapshotPtr snapshot(const std::string& name);

  GraphRegistry& registry() noexcept { return registry_; }
  PartitionStore& store() noexcept { return store_; }
  JobScheduler& scheduler() noexcept { return scheduler_; }

  /// The session-wide metric registry: every subsystem (graph registry,
  /// scheduler, clustering jobs, the protocol handler itself) publishes
  /// here.  Safe to scrape from any thread while requests are in flight.
  obs::MetricRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// The session fault injector (armed via FAULTS LOAD or directly in
  /// tests) and the CLUSTER circuit breaker.
  fault::FaultInjector& faults() noexcept { return faults_; }
  fault::CircuitBreaker& breaker() noexcept { return breaker_; }

  // --- line protocol ------------------------------------------------------

  /// Executes one protocol line, returning the response (without trailing
  /// newline; multi-line only for METRICS).  Never throws.
  std::string handle_line(std::string_view line);

 private:
  /// Per-verb handles, pre-registered at construction so the request path
  /// never allocates label strings.
  struct VerbMetrics {
    obs::Counter* requests = nullptr;
    obs::Histogram* latency = nullptr;
    /// Static verb name used as the request's root trace-span label.
    const char* trace_name = "other";
  };

  std::string handle_line_impl(std::string_view verb,
                               const std::vector<std::string_view>& tokens);
  [[nodiscard]] std::string render_metrics_prometheus() const;
  [[nodiscard]] std::string render_metrics_json() const;
  /// The degraded CLUSTER answer: the last published snapshot annotated
  /// `OK STALE version=N reason=<reason>`, or "" when the graph has never
  /// been clustered (the caller falls back to an error / best effort).
  std::string degraded_cluster(const std::string& name, const char* reason);

  /// First member: destroyed last, after the scheduler has joined its
  /// workers — jobs record into this registry until they finish.
  obs::MetricRegistry metrics_;
  /// Second: the registry/scheduler configs point at it, and running jobs
  /// consult it until the scheduler joins.
  fault::FaultInjector faults_;
  SessionConfig config_;
  GraphRegistry registry_;
  PartitionStore store_;
  fault::CircuitBreaker breaker_;
  std::unordered_map<std::string_view, VerbMetrics> verb_metrics_;
  VerbMetrics other_verb_metrics_;
  obs::Counter* errors_total_ = nullptr;
  obs::Counter* stale_serves_ = nullptr;
  obs::Gauge* breaker_state_ = nullptr;
  obs::Counter* breaker_to_open_ = nullptr;
  obs::Counter* breaker_to_half_open_ = nullptr;
  obs::Counter* breaker_to_closed_ = nullptr;
  /// Last member: destroyed first, so worker threads join before the
  /// registry/store they reference go away.
  JobScheduler scheduler_;
};

}  // namespace asamap::serve
