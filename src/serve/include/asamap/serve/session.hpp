#pragma once

/// \file session.hpp
/// The embeddable service facade: one ServeSession owns a GraphRegistry, a
/// PartitionStore, and a JobScheduler, and exposes both a typed API (used
/// by the load generator and tests) and a line protocol (used by the
/// asamap_serve driver and scripted sessions).
///
/// Line protocol — one request line in, one response line out.  Responses
/// start with `OK` or `ERR <code>`; fields are `key=value` tokens.
///
///   GEN <name> <n> <edges> [seed]        generate a Chung-Lu graph
///   LOAD <name> <path> [directed]        ingest a SNAP file
///   DROP <name>                          remove graph + snapshot + deltas
///   CLUSTER <name> [sync] [priority=interactive|batch] [deadline_ms=N]
///   ADD_EDGE <name> <u> <v> [w]          append an edge mutation (w > 0)
///   DEL_EDGE <name> <u> <v>              append an edge deletion
///   APPLY <name> [recluster=full|incr] [sync] [priority=...] [deadline_ms=N]
///   DELTA STATUS <name>                  pending-mutation counters
///   WAIT <job>                           block until the job is terminal
///   CANCEL <job>                         request cancellation
///   MEMBER <name> <v>                    community of one vertex
///   SAME <name> <u> <v>                  same-community check
///   TOPK <name> <k>                      top-k communities by flow
///   SUMMARY <name>                       codelength/modularity summary
///   STATS                                registry + scheduler counters
///                                        (+ uptime= rev= build= accumulator=)
///   METRICS [prom|json]                  scrape the session metric registry
///   METRICS WINDOW [prom|json]           windowed rates + rolling quantiles
///   HEALTH                               SLO evaluation (see below)
///   TRACE DUMP | STATUS | MARK <label>   flight-recorder export / status
///   FAULTS LOAD <path> | CLEAR | STATUS  chaos-test fault plans (see below)
///   QUIT                                 acknowledged; driver exits
///
/// METRICS (plain and WINDOW forms), HEALTH, and TRACE DUMP are the
/// multi-line responses.  They are self-describing: an
/// `OK format=<fmt> bytes=N` header line followed by exactly N payload
/// bytes (Prometheus text or bench-envelope JSON for METRICS; one line of
/// Chrome trace-event JSON for TRACE DUMP).  A client reads the header,
/// then N bytes, then the message terminator of its transport (the newline
/// of the text protocol; nothing extra inside a binary frame) — no guessing
/// where an embedded-newline payload ends.
///
/// HEALTH answers with the same envelope shape but leads with the verdict:
/// `OK status=healthy|degraded|unhealthy slos=N bytes=M` then M bytes of
/// one `slo=<name> status=ok|warn|violated <detail>` line per SLO — the
/// obs::HealthTracker evaluation (availability burn rates over the fast and
/// slow windows, windowed latency p99 against its bound, breaker state).
/// Clients that only want the verdict parse `status=` from the header and
/// skip the payload.
///
/// Tracing: every request runs inside a TraceSpan named after its verb, so
/// one CLUSTER line yields a connected span tree (verb -> queue.wait ->
/// job.run -> the four kernel phases -> snapshot.publish) in the process
/// flight recorder, exportable via TRACE DUMP (see asamap/obs/tracing.hpp).
///
/// Robustness semantics (DESIGN.md §4e):
///  - CLUSTER degrades instead of failing where it can: when the circuit
///    breaker is open, the registry is under memory pressure, or the
///    scheduler rejects with backpressure, the response is the last
///    published snapshot annotated `OK STALE version=N reason=...` rather
///    than an error (readers were going to see that snapshot anyway).
///  - The per-session circuit breaker trips after K consecutive
///    backpressure failures, sheds the batch lane, and half-opens on a
///    timer; its state is the asamap_breaker_state gauge (0/1/2 =
///    closed/open/half_open).
///  - FAULTS LOAD arms a deterministic fault plan (builds configured with
///    ASAMAP_FAULT_INJECTION only; otherwise ERR unavailable).  FAULTS
///    itself is exempt from the session.io injection site so an operator
///    can always CLEAR a misbehaving plan.
///
/// Dynamic graphs (DESIGN.md §4f): ADD_EDGE/DEL_EDGE append to a per-graph
/// DeltaLog without touching the served CSR; APPLY folds the pending batch
/// into a fresh CSR (republished through the registry) and re-clusters —
/// `recluster=incr` (the default) warm-starts from the previous snapshot,
/// re-sweeps only the batch's active set, and publishes a new version only
/// when codelength improves (otherwise the old snapshot keeps serving and
/// DELTA STATUS reports last_skip=no_improvement).  A graph with pending
/// deltas or an in-flight APPLY is pinned against LRU eviction.  Folding
/// also auto-triggers when pending reaches delta_compact_threshold.
/// Re-ingesting or dropping a name discards its pending deltas.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asamap/core/infomap.hpp"
#include "asamap/dyn/delta_log.hpp"
#include "asamap/fault/fault.hpp"
#include "asamap/fault/retry.hpp"
#include "asamap/obs/health.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/obs/window.hpp"
#include "asamap/serve/graph_registry.hpp"
#include "asamap/serve/handler.hpp"
#include "asamap/serve/job_scheduler.hpp"
#include "asamap/serve/partition_store.hpp"
#include "asamap/serve/status.hpp"

namespace asamap::serve {

struct SessionConfig {
  RegistryConfig registry;
  SchedulerConfig scheduler;
  /// Threads per clustering job (0 = all available).  Tests pin this to 1
  /// so thread-level concurrency comes from the scheduler and readers, not
  /// nested OpenMP teams.
  int cluster_threads = 0;
  core::InfomapOptions infomap;
  /// Circuit-breaker thresholds for CLUSTER submissions (consecutive
  /// backpressure failures trip it; see retry.hpp).
  fault::BreakerConfig breaker;
  /// Pending delta records at which a mutation auto-folds the log into a
  /// fresh CSR (APPLY always folds).  Folding costs one merged-CSR rebuild;
  /// the threshold bounds both the log's memory and the merge debt a later
  /// APPLY has to pay.
  std::size_t delta_compact_threshold = 65536;
  /// Minimum codelength improvement (bits) an incremental APPLY must find
  /// to publish a new snapshot version; below it the previous snapshot
  /// keeps serving and the skip is recorded.
  double incr_publish_epsilon = 1e-9;
  /// ADD_EDGE/DEL_EDGE endpoints may exceed the current vertex count (new
  /// vertices arrive with their first edge) by at most this headroom — a
  /// lone `ADD_EDGE g 0 268000000` must not demand a quarter-billion CSR
  /// slots at the next fold.
  graph::VertexId delta_new_vertex_headroom = 65536;
  /// Windowed-metrics tiers (METRICS WINDOW) and the SLOs HEALTH evaluates
  /// over them.  Defaults: 10s fast / 60s slow windows, 99.9% availability,
  /// 50ms p99 bound.
  obs::WindowConfig window;
  obs::SloConfig slo;
};

class ServeSession : public RequestHandler {
 public:
  explicit ServeSession(const SessionConfig& config = {});
  ~ServeSession() override;

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  // --- typed API ---------------------------------------------------------

  ServeStatus load_text(const std::string& name, std::string_view text,
                        bool undirected = true);
  ServeStatus load_file(const std::string& name, const std::string& path,
                        bool undirected = true);
  /// Generates a Chung-Lu power-law graph into the registry (deduplicated
  /// by generator parameters).
  ServeStatus gen_chung_lu(const std::string& name, graph::VertexId n,
                           std::uint64_t edges, std::uint64_t seed = 42);
  bool drop(const std::string& name);

  /// Enqueues a re-cluster of `name` on the scheduler.  The job runs
  /// run_infomap_parallel (native hot-set fast path) against the
  /// graph snapshot it captured at submission; a publish only happens when
  /// the job was neither cancelled nor expired.
  SubmitResult submit_recluster(
      const std::string& name, JobPriority priority = JobPriority::kBatch,
      std::chrono::milliseconds deadline = {});

  /// Current snapshot for a graph; nullptr when never clustered.  All
  /// query answers derived from one SnapshotPtr are mutually consistent.
  [[nodiscard]] PartitionStore::SnapshotPtr snapshot(const std::string& name);

  // --- dynamic graphs (DESIGN.md §4f) ------------------------------------

  /// Appends one edge mutation to `name`'s delta log (w > 0 for add_edge;
  /// self-loops rejected).  The served CSR and snapshot are untouched until
  /// APPLY or threshold-triggered auto-folding; the graph is pinned against
  /// eviction while mutations are pending.
  ServeStatus add_edge(const std::string& name, graph::VertexId u,
                       graph::VertexId v, graph::Weight w = 1.0);
  ServeStatus del_edge(const std::string& name, graph::VertexId u,
                       graph::VertexId v);

  /// Enqueues an APPLY job: fold the pending batch into a fresh CSR,
  /// republish it through the registry, and re-cluster.  `incremental`
  /// warm-starts from the previous snapshot and publishes only on
  /// codelength improvement (falls back to a full recluster when the graph
  /// has never been clustered); otherwise a from-scratch recluster that
  /// always publishes.  At most one APPLY per graph is in flight — a second
  /// submission is rejected with kUnavailable.
  SubmitResult submit_apply(const std::string& name, bool incremental = true,
                            JobPriority priority = JobPriority::kBatch,
                            std::chrono::milliseconds deadline = {});

  /// Point-in-time counters for one graph's delta machinery (the typed
  /// DELTA STATUS answer).
  struct DeltaStatus {
    bool known = false;  ///< a delta log exists for this name
    std::size_t pending = 0;
    std::uint64_t adds = 0;
    std::uint64_t dels = 0;
    std::uint64_t compactions = 0;   ///< folds (APPLY or threshold)
    std::uint64_t applies_full = 0;  ///< completed APPLY recluster=full
    std::uint64_t applies_incr = 0;  ///< completed APPLY recluster=incr
    std::uint64_t last_batch = 0;    ///< records folded by the last fold
    std::uint64_t incr_published = 0;
    std::uint64_t incr_skipped = 0;
    const char* last_skip = "none";  ///< why the last incr did not publish
    bool apply_inflight = false;
    std::uint64_t apply_job = 0;  ///< last APPLY job id (0 = never)
    bool pinned = false;          ///< registry pin currently held
  };
  [[nodiscard]] DeltaStatus delta_status(const std::string& name);

  GraphRegistry& registry() noexcept { return registry_; }
  PartitionStore& store() noexcept { return store_; }
  JobScheduler& scheduler() noexcept { return scheduler_; }

  /// The session-wide metric registry: every subsystem (graph registry,
  /// scheduler, clustering jobs, the protocol handler itself) publishes
  /// here.  Safe to scrape from any thread while requests are in flight.
  obs::MetricRegistry& metrics() noexcept override { return metrics_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// The session fault injector (armed via FAULTS LOAD or directly in
  /// tests) and the CLUSTER circuit breaker.
  fault::FaultInjector& faults() noexcept { return faults_; }
  fault::CircuitBreaker& breaker() noexcept { return breaker_; }

  /// The windowed view over metrics() (METRICS WINDOW) and the SLO
  /// evaluator over it (HEALTH).  Both are caller-clocked; the protocol
  /// handlers feed the process steady clock, tests feed synthetic time.
  obs::WindowStore& window() noexcept { return window_; }
  obs::HealthTracker& health() noexcept { return health_; }

  /// The monotonic clock the protocol handlers feed into window()/health():
  /// nanoseconds on the process steady clock.
  [[nodiscard]] static std::uint64_t mono_now_ns() noexcept;

  // --- line protocol ------------------------------------------------------

  /// Executes one protocol line, returning the response (without trailing
  /// newline; multi-line only for METRICS / TRACE DUMP, see the envelope
  /// note above).  Trailing whitespace — including the '\r' a CRLF client
  /// sends — is stripped before parsing.  Never throws.
  std::string handle_line(std::string_view line) override;

  /// Executes a pipelined batch of protocol lines, appending one response
  /// per line to `responses` (cleared first), in order.
  ///
  /// The point of the batch form is the read fast path: a contiguous run of
  /// read verbs (MEMBER / SAME / TOPK / SUMMARY) against the same graph is
  /// answered under a SINGLE snapshot acquire — every answer in the run
  /// reports the same `version=`, and the per-request cost drops to parse +
  /// lookup + format (no root trace span, no store lock, no per-call
  /// allocation churn).  Any non-read verb flushes the cached snapshot
  /// before executing, so a read after a write inside one batch observes
  /// whatever the write published; non-read verbs go through the exact
  /// handle_line path (root span, fault sites, metrics) unchanged.
  void handle_batch(const std::vector<std::string_view>& lines,
                    std::vector<std::string>& responses) override;

 private:
  /// Per-verb handles, pre-registered at construction so the request path
  /// never allocates label strings.
  struct VerbMetrics {
    obs::Counter* requests = nullptr;
    obs::Histogram* latency = nullptr;
    /// Static verb name used as the request's root trace-span label.
    const char* trace_name = "other";
  };

  /// Per-graph dynamic-graph state.  `mu` orders mutations, folds, and
  /// APPLY submissions for one graph; the lock order is DeltaState::mu ->
  /// registry/scheduler/store internals, never the reverse.
  struct DeltaState {
    std::mutex mu;
    dyn::DeltaLog log;
    std::uint64_t apply_job = 0;  ///< last APPLY job id (0 = never)
    std::uint64_t compactions = 0;
    std::uint64_t applies_full = 0;
    std::uint64_t applies_incr = 0;
    std::uint64_t last_batch = 0;
    std::uint64_t incr_published = 0;
    std::uint64_t incr_skipped = 0;
    const char* last_skip = "none";  ///< static strings only
  };
  using DeltaStatePtr = std::shared_ptr<DeltaState>;

  std::string handle_line_impl(std::string_view verb,
                               const std::vector<std::string_view>& tokens);

  /// One-entry snapshot memo for a batch's contiguous read run: while the
  /// run keeps naming the same graph, every read reuses this SnapshotPtr
  /// (version-consistency within the run is the documented guarantee, the
  /// skipped store lock is the speed).  Reset whenever a non-read verb
  /// executes.
  struct SnapshotCache {
    std::string name;
    PartitionStore::SnapshotPtr snap;
  };

  /// The one implementation of the four read verbs, shared by
  /// handle_line_impl (cache == nullptr: acquire per call) and handle_batch
  /// (cache != nullptr) so the two paths cannot drift apart.
  std::string handle_read(std::string_view verb,
                          const std::vector<std::string_view>& tokens,
                          SnapshotCache* cache);

  [[nodiscard]] std::string render_metrics_prometheus() const;
  [[nodiscard]] std::string render_metrics_json() const;
  [[nodiscard]] std::string render_window(std::string_view format);
  [[nodiscard]] std::string render_health();
  /// Refreshes asamap_uptime_seconds just before a scrape reads it.
  void touch_uptime() const;
  /// The degraded CLUSTER answer: the last published snapshot annotated
  /// `OK STALE version=N reason=<reason>`, or "" when the graph has never
  /// been clustered (the caller falls back to an error / best effort).
  std::string degraded_cluster(const std::string& name, const char* reason);

  /// Find-or-create the delta state for a graph name.
  DeltaStatePtr delta_state(const std::string& name);
  /// Removes a name's delta state (DROP / re-ingest), returning the pending
  /// gauge to truth.
  void reset_deltas(const std::string& name);
  /// Shared ADD_EDGE/DEL_EDGE body; reports the post-append pending count
  /// and whether the append tripped a threshold fold.
  ServeStatus mutate_edge(const std::string& name, graph::VertexId u,
                          graph::VertexId v, graph::Weight w, bool is_add,
                          std::size_t* pending_out, bool* folded_out);
  /// Folds the pending batch into a fresh CSR and republishes it under
  /// `name` (no-op on an empty log).  Call with ds.mu held.  On success the
  /// log is truncated past the folded batch and `merged_out`/`touched_out`
  /// (when non-null) receive the republished graph and the batch's distinct
  /// endpoints.
  ServeStatus fold_delta_locked(const std::string& name, DeltaState& ds,
                                GraphRegistry::GraphPtr* merged_out,
                                std::vector<graph::VertexId>* touched_out);
  /// True while ds.apply_job exists and is not terminal.  ds.mu held.
  [[nodiscard]] bool apply_inflight_locked(const DeltaState& ds) const;
  /// Re-derives the graph's eviction pin from (pending deltas || in-flight
  /// APPLY).  ds.mu held.
  void refresh_delta_pin_locked(const std::string& name, DeltaState& ds);
  /// The APPLY job body: fold, (maybe) warm-start, recluster, publish on
  /// improvement.
  void apply_job_body(const std::string& name, const DeltaStatePtr& ds,
                      bool incremental, const JobContext& ctx);

  /// First member: destroyed last, after the scheduler has joined its
  /// workers — jobs record into this registry until they finish.
  obs::MetricRegistry metrics_;
  /// Second: the registry/scheduler configs point at it, and running jobs
  /// consult it until the scheduler joins.
  fault::FaultInjector faults_;
  SessionConfig config_;
  GraphRegistry registry_;
  PartitionStore store_;
  fault::CircuitBreaker breaker_;
  /// Windowed view + SLO evaluator over metrics_ (declared after it; both
  /// only read the registry, so destruction order is free).
  obs::WindowStore window_;
  obs::HealthTracker health_;
  obs::Gauge* uptime_ = nullptr;
  std::unordered_map<std::string_view, VerbMetrics> verb_metrics_;
  VerbMetrics other_verb_metrics_;
  obs::Counter* errors_total_ = nullptr;
  obs::Counter* stale_serves_ = nullptr;
  // Dynamic-graph metrics, pre-registered at construction (scrape schema is
  // stable whether or not any mutation ever arrives).
  obs::Counter* delta_adds_ = nullptr;
  obs::Counter* delta_dels_ = nullptr;
  obs::Gauge* delta_pending_ = nullptr;  ///< pending records, all graphs
  obs::Counter* delta_compactions_ = nullptr;
  obs::Counter* delta_folded_ = nullptr;
  obs::Counter* apply_full_ = nullptr;
  obs::Counter* apply_incr_ = nullptr;
  obs::Histogram* apply_seconds_ = nullptr;
  obs::Counter* incr_published_ = nullptr;
  obs::Counter* incr_skipped_ = nullptr;
  obs::Gauge* incr_active_ = nullptr;  ///< last warm start's seed size
  std::mutex delta_mu_;                ///< guards the deltas_ map shape
  std::unordered_map<std::string, DeltaStatePtr> deltas_;
  obs::Gauge* breaker_state_ = nullptr;
  obs::Counter* breaker_to_open_ = nullptr;
  obs::Counter* breaker_to_half_open_ = nullptr;
  obs::Counter* breaker_to_closed_ = nullptr;
  /// Last member: destroyed first, so worker threads join before the
  /// registry/store they reference go away.
  JobScheduler scheduler_;
};

}  // namespace asamap::serve
