#include "asamap/serve/partition_store.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "asamap/core/infomap.hpp"

namespace asamap::serve {

PartitionSnapshot make_snapshot(std::shared_ptr<const graph::CsrGraph> graph,
                                const core::InfomapResult& result) {
  PartitionSnapshot snap;
  snap.communities.assign(result.communities.begin(),
                          result.communities.end());
  snap.num_communities = result.num_communities;
  snap.codelength = result.codelength;
  snap.interrupted = result.interrupted;

  // Community flow from degree weight (the stationary visit rate on
  // symmetric graphs, and a faithful proxy on directed ones without
  // re-running PageRank at query time).
  snap.community_flow.assign(snap.num_communities, 0.0);
  const double total = graph->total_arc_weight();
  if (total > 0.0) {
    for (graph::VertexId v = 0; v < graph->num_vertices(); ++v) {
      snap.community_flow[snap.communities[v]] +=
          graph->out_weight(v) / total;
    }
  }
  snap.by_flow.resize(snap.num_communities);
  std::iota(snap.by_flow.begin(), snap.by_flow.end(), graph::VertexId{0});
  std::sort(snap.by_flow.begin(), snap.by_flow.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              if (snap.community_flow[a] != snap.community_flow[b]) {
                return snap.community_flow[a] > snap.community_flow[b];
              }
              return a < b;  // deterministic ties
            });

  if (graph->is_symmetric()) {
    snap.modularity = metrics::modularity(*graph, snap.communities);
  }
  snap.graph = std::move(graph);
  return snap;
}

PartitionStore::SnapshotPtr PartitionStore::snapshot(
    const std::string& graph_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = current_.find(graph_name);
  return it == current_.end() ? nullptr : it->second;
}

std::uint64_t PartitionStore::publish(const std::string& graph_name,
                                      PartitionSnapshot snap) {
  auto ptr = std::make_shared<PartitionSnapshot>(std::move(snap));
  std::lock_guard<std::mutex> lock(mu_);
  ptr->version = ++last_version_[graph_name];
  current_[graph_name] = std::move(ptr);  // the swap: readers see old or new
  return last_version_[graph_name];
}

void PartitionStore::drop(const std::string& graph_name) {
  std::lock_guard<std::mutex> lock(mu_);
  current_.erase(graph_name);
}

std::size_t PartitionStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.size();
}

}  // namespace asamap::serve
