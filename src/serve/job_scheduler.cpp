#include "asamap/serve/job_scheduler.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "asamap/support/backoff.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::serve {

namespace {
// Static reject reasons: the backpressure path must not allocate (it runs
// once per refused request under overload).  No dynamic capacity number —
// STATS reports the live queue depths.
constexpr const char* kRejectInteractive =
    "interactive queue full; retry later or slow the submit rate";
constexpr const char* kRejectBatch =
    "batch queue full; retry later or slow the submit rate";
constexpr const char* kRejectShutdown = "scheduler is shutting down";
}  // namespace

JobScheduler::JobScheduler(const SchedulerConfig& config)
    : config_(config),
      interactive_(config.interactive_capacity),
      batch_(config.batch_capacity) {
  config_.workers = std::max(1, config_.workers);
  if (obs::MetricRegistry* reg = config_.metrics) {
    m_.submitted = &reg->counter("asamap_jobs_submitted_total");
    m_.rejected_interactive =
        &reg->counter("asamap_jobs_rejected_total", "lane=\"interactive\"");
    m_.rejected_batch =
        &reg->counter("asamap_jobs_rejected_total", "lane=\"batch\"");
    m_.finished_done =
        &reg->counter("asamap_jobs_finished_total", "state=\"done\"");
    m_.finished_failed =
        &reg->counter("asamap_jobs_finished_total", "state=\"failed\"");
    m_.finished_cancelled =
        &reg->counter("asamap_jobs_finished_total", "state=\"cancelled\"");
    m_.finished_expired =
        &reg->counter("asamap_jobs_finished_total", "state=\"expired\"");
    m_.queued_interactive =
        &reg->gauge("asamap_jobs_queued", "lane=\"interactive\"");
    m_.queued_batch = &reg->gauge("asamap_jobs_queued", "lane=\"batch\"");
    m_.running = &reg->gauge("asamap_jobs_running");
    m_.run_seconds = &reg->histogram("asamap_job_run_seconds");
    m_.retries_dispatch =
        &reg->counter("asamap_retries_total", "site=\"scheduler.dispatch\"");
    m_.shed_interactive =
        &reg->counter("asamap_jobs_shed_total", "lane=\"interactive\"");
    m_.shed_batch = &reg->counter("asamap_jobs_shed_total", "lane=\"batch\"");
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  reaper_ = std::thread([this] { reaper_loop(); });
}

JobScheduler::~JobScheduler() { shutdown(); }

SubmitResult JobScheduler::submit(JobFn fn, JobPriority priority,
                                  std::chrono::milliseconds deadline) {
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  job->priority = priority;
  job->trace = obs::current_trace();
  job->submitted = Clock::now();
  if (deadline.count() > 0) job->deadline = job->submitted + deadline;

  // The push happens under mu_ — the same mutex the workers' wait predicate
  // holds — so a worker checking "queues empty" and going to sleep cannot
  // miss a concurrent push (lock order mu_ -> queue mutex, matching
  // stats()).
  std::lock_guard<std::mutex> lock(mu_);
  obs::Counter* rejected_metric = priority == JobPriority::kInteractive
                                      ? m_.rejected_interactive
                                      : m_.rejected_batch;
  if (stopping_) {
    ++counters_.rejected;
    if (rejected_metric != nullptr) rejected_metric->inc();
    return {0, ServeStatus::error_static(ServeCode::kShutdown,
                                         kRejectShutdown)};
  }
  auto& lane = priority == JobPriority::kInteractive ? interactive_ : batch_;
  if (!lane.try_push(job)) {
    ++counters_.rejected;
    if (rejected_metric != nullptr) rejected_metric->inc();
    return {0, ServeStatus::error_static(
                   ServeCode::kRejected,
                   priority == JobPriority::kInteractive ? kRejectInteractive
                                                         : kRejectBatch)};
  }
  job->id = next_id_++;
  jobs_[job->id] = job;
  ++counters_.submitted;
  if (m_.submitted != nullptr) m_.submitted->inc();
  sync_queue_gauges_locked();
  cv_work_.notify_one();
  return {job->id, ServeStatus::success()};
}

bool JobScheduler::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || is_terminal(it->second->state)) return false;
  JobPtr job = it->second;
  job->pending_stop_state = JobState::kCancelled;
  job->stop.store(true, std::memory_order_relaxed);
  if (job->state == JobState::kQueued) {
    // Workers skip terminal jobs when they pop them.
    finish_locked(job, JobState::kCancelled);
  }
  return true;
}

JobState JobScheduler::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return JobState::kFailed;
  JobPtr job = it->second;  // keep alive across history pruning
  cv_done_.wait(lock, [&] { return is_terminal(job->state); });
  return job->state;
}

JobState JobScheduler::state(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? JobState::kFailed : it->second->state;
}

SchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s = counters_;
  s.queued_interactive = interactive_.size();
  s.queued_batch = batch_.size();
  return s;
}

std::size_t JobScheduler::shed(JobPriority lane) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (auto& [id, job] : jobs_) {
    if (job->priority != lane || job->state != JobState::kQueued) continue;
    job->pending_stop_state = JobState::kCancelled;
    job->stop.store(true, std::memory_order_relaxed);
    finish_locked(job, JobState::kCancelled);
    ++count;
  }
  if (count > 0) {
    counters_.shed += count;
    obs::Counter* shed_metric = lane == JobPriority::kInteractive
                                    ? m_.shed_interactive
                                    : m_.shed_batch;
    if (shed_metric != nullptr) shed_metric->inc(count);
  }
  return count;
}

bool JobScheduler::sleep_interruptible(const std::atomic<bool>& stop,
                                       std::chrono::milliseconds duration) {
  constexpr std::chrono::milliseconds kSlice{1};
  auto remaining = duration;
  while (remaining.count() > 0) {
    if (stop.load(std::memory_order_relaxed)) return false;
    const auto step = std::min(remaining, kSlice);
    std::this_thread::sleep_for(step);
    remaining -= step;
  }
  return !stop.load(std::memory_order_relaxed);
}

void JobScheduler::retry_dispatch(std::unique_lock<std::mutex>& lock,
                                  const JobPtr& job) {
  ++job->dispatch_attempts;
  if (job->dispatch_attempts >= config_.dispatch_retry.max_attempts) {
    finish_locked(job, JobState::kFailed);
    return;
  }
  // Deterministic per-job schedule: replay the decorrelated-jitter stream up
  // to this attempt instead of storing backoff state in the job.
  support::DecorrelatedBackoff backoff(config_.dispatch_retry.initial_backoff,
                                       config_.dispatch_retry.max_backoff,
                                       config_.retry_seed ^ job->id);
  std::chrono::milliseconds delay{0};
  for (int i = 0; i < job->dispatch_attempts; ++i) delay = backoff.next();
  // Budget-aware: a retry that cannot finish sleeping before the deadline
  // expires the job now instead of wasting the wait.
  if (job->deadline != Clock::time_point::max() &&
      Clock::now() + delay >= job->deadline) {
    finish_locked(job, JobState::kExpired);
    return;
  }
  ++counters_.dispatch_retries;
  if (m_.retries_dispatch != nullptr) m_.retries_dispatch->inc();

  lock.unlock();
  const std::uint64_t backoff_start = obs::FlightRecorder::now_ns();
  sleep_interruptible(job->stop, delay);
  obs::FlightRecorder::instance().complete(
      "dispatch.backoff", obs::TraceCat::kScheduler, job->trace, backoff_start,
      obs::FlightRecorder::now_ns() - backoff_start, job->id);
  lock.lock();

  if (is_terminal(job->state)) return;  // cancelled/expired/shed while asleep
  if (stopping_) {
    finish_locked(job, JobState::kCancelled);
    return;
  }
  auto& lane = job->priority == JobPriority::kInteractive ? interactive_ : batch_;
  if (!lane.try_push(job)) {
    // The lane refilled (or closed) during the backoff — give up rather
    // than block a worker holding backpressured work.
    finish_locked(job, JobState::kFailed);
    return;
  }
  sync_queue_gauges_locked();
  cv_work_.notify_one();
}

void JobScheduler::sync_queue_gauges_locked() {
  if (m_.queued_interactive != nullptr) {
    m_.queued_interactive->set(static_cast<double>(interactive_.size()));
  }
  if (m_.queued_batch != nullptr) {
    m_.queued_batch->set(static_cast<double>(batch_.size()));
  }
}

void JobScheduler::finish_locked(const JobPtr& job, JobState terminal) {
  job->state = terminal;
  obs::Counter* finished_metric = nullptr;
  switch (terminal) {
    case JobState::kDone:
      ++counters_.completed;
      finished_metric = m_.finished_done;
      break;
    case JobState::kFailed:
      ++counters_.failed;
      finished_metric = m_.finished_failed;
      break;
    case JobState::kCancelled:
      ++counters_.cancelled;
      finished_metric = m_.finished_cancelled;
      break;
    case JobState::kExpired:
      ++counters_.expired;
      finished_metric = m_.finished_expired;
      break;
    default: break;
  }
  if (finished_metric != nullptr) finished_metric->inc();
  terminal_order_.push_back(job->id);
  while (terminal_order_.size() > config_.completed_history) {
    const auto victim = jobs_.find(terminal_order_.front());
    terminal_order_.pop_front();
    if (victim != jobs_.end() && is_terminal(victim->second->state)) {
      jobs_.erase(victim);
    }
  }
  cv_done_.notify_all();
}

void JobScheduler::worker_loop() {
  for (;;) {
    JobPtr job;
    std::chrono::milliseconds injected_latency{0};
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return stopping_ || interactive_.size() > 0 || batch_.size() > 0;
      });
      auto popped = interactive_.try_pop();
      if (!popped) popped = batch_.try_pop();
      if (!popped) {
        if (stopping_) return;
        continue;  // another worker won the race
      }
      job = std::move(*popped);
      sync_queue_gauges_locked();
      if (is_terminal(job->state)) continue;  // cancelled/expired in queue
      if (Clock::now() >= job->deadline) {
        finish_locked(job, JobState::kExpired);
        continue;
      }
      if (stopping_) {
        finish_locked(job, JobState::kCancelled);
        continue;
      }
      const fault::FaultDecision dispatch_fault =
          fault::check(config_.faults, fault::Site::kSchedulerDispatch);
      if (dispatch_fault.effect == fault::Effect::kLatency) {
        injected_latency = dispatch_fault.latency;
      } else if (dispatch_fault.effect == fault::Effect::kCancel) {
        finish_locked(job, JobState::kCancelled);
        continue;
      } else if (dispatch_fault.effect != fault::Effect::kNone) {
        // kError / kPartialWrite: the dispatch "failed" before the body ran
        // — the only scheduler path that retries.
        retry_dispatch(lock, job);
        continue;
      }
      job->state = JobState::kRunning;
      ++counters_.running;
      if (m_.running != nullptr) {
        m_.running->set(static_cast<double>(counters_.running));
      }
    }

    if (injected_latency.count() > 0) {
      sleep_interruptible(job->stop, injected_latency);
    }
    // Retroactive queue-wait interval under the submitter's trace, then the
    // body inside a job.run span chained under it — so a CLUSTER trace reads
    // verb -> queue.wait -> job.run -> kernel phases.  Jobs submitted with
    // no ambient trace get their own trace id here so the chain still
    // shares one.
    obs::TraceContext job_trace = job->trace;
    if (!job_trace.active()) job_trace.trace_id = obs::mint_trace_id();
    auto& recorder = obs::FlightRecorder::instance();
    const auto waited = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - job->submitted);
    const auto wait_ns = static_cast<std::uint64_t>(
        std::max<std::chrono::nanoseconds::rep>(0, waited.count()));
    const std::uint64_t run_start = obs::FlightRecorder::now_ns();
    const std::uint64_t wait_span = recorder.complete(
        "queue.wait", obs::TraceCat::kScheduler, job_trace,
        run_start > wait_ns ? run_start - wait_ns : 0, wait_ns, job->id);

    JobState terminal = JobState::kDone;
    support::WallTimer run_wall;
    {
      obs::TraceScope trace_scope(
          obs::TraceContext{job_trace.trace_id, wait_span});
      obs::TraceSpan run_span("job.run", obs::TraceCat::kScheduler, recorder,
                              job->id);
      try {
        JobContext ctx{job->id, &job->stop};
        job->fn(ctx);
      } catch (...) {
        terminal = JobState::kFailed;
      }
    }
    if (m_.run_seconds != nullptr) {
      m_.run_seconds->record_seconds(run_wall.seconds());
    }

    std::lock_guard<std::mutex> lock(mu_);
    --counters_.running;
    if (m_.running != nullptr) {
      m_.running->set(static_cast<double>(counters_.running));
    }
    if (terminal != JobState::kFailed &&
        job->stop.load(std::memory_order_relaxed)) {
      terminal = job->pending_stop_state;  // kCancelled or kExpired
    }
    finish_locked(job, terminal);
  }
}

void JobScheduler::reaper_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_reap_.wait_for(lock, config_.reaper_tick,
                      [&] { return stopping_; });
    if (stopping_) break;
    const auto now = Clock::now();
    for (auto& [id, job] : jobs_) {
      if (is_terminal(job->state) || now < job->deadline) continue;
      job->pending_stop_state = JobState::kExpired;
      job->stop.store(true, std::memory_order_relaxed);
      if (job->state == JobState::kQueued) {
        finish_locked(job, JobState::kExpired);
      }
    }
  }
}

void JobScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    for (auto& [id, job] : jobs_) {
      if (is_terminal(job->state)) continue;
      job->pending_stop_state = JobState::kCancelled;
      job->stop.store(true, std::memory_order_relaxed);
      if (job->state == JobState::kQueued) {
        finish_locked(job, JobState::kCancelled);
      }
    }
  }
  interactive_.close();
  batch_.close();
  cv_work_.notify_all();
  cv_reap_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (reaper_.joinable()) reaper_.join();
}

}  // namespace asamap::serve
