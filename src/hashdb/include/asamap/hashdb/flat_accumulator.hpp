#pragma once

/// \file flat_accumulator.hpp
/// The *native fast path* accumulator: an uninstrumented, cache-friendly
/// open-addressing map specialized for the begin/accumulate/finalize cycle
/// of FindBestCommunity and SpGEMM.
///
/// Everything else in hashdb/ exists to *model* hardware behaviour (every
/// probe emits sink events so the simulator can replay it).  FlatAccumulator
/// is the opposite: it is what you run when you just want the answer as fast
/// as the host CPU allows — the speed baseline the paper's simulated ASA
/// configurations are compared against, and the engine behind
/// `run_infomap` / `run_infomap_parallel` NullSink runs.
///
/// Design notes:
///   - Inline (key, epoch, pair-index) slots in one power-of-two array;
///     linear probing off a mix64 hash.  No per-slot allocation, no chains.
///   - Sparse reset: `begin()` bumps an epoch stamp instead of clearing the
///     table, so a fresh accumulation costs O(1) + O(pairs touched), never
///     O(capacity).  A vertex of degree d costs O(d) regardless of how big
///     the table grew on some earlier hub vertex.
///   - Pairs are materialized *during* accumulation into a contiguous
///     vector (each slot stores the pair's index), so `finalize()` is free
///     and returns first-touch-ordered pairs — the same pair order as the
///     DenseAccumulator, which the kernel's tie-breaking already makes
///     order-insensitive.
///   - No sink events, no simulated addresses: the concept's whole surface
///     compiles down to a handful of instructions per accumulate.

#include <cstdint>
#include <span>
#include <vector>

#include "asamap/hashdb/kv.hpp"
#include "asamap/support/hash.hpp"

namespace asamap::hashdb {

class FlatAccumulator {
 public:
  explicit FlatAccumulator(std::size_t initial_capacity = 256)
      : slots_(support::next_pow2(initial_capacity < 8 ? 8 : initial_capacity)) {
    pairs_.reserve(slots_.size());
  }

  /// Starts a fresh accumulation.  O(1): live entries from the previous
  /// cycle are invalidated by the epoch bump, not by touching memory.
  void begin() {
    pairs_.clear();
    if (++epoch_ == 0) {  // epoch wrapped: stale stamps could alias
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  /// key += value, inserting on first sight.
  void accumulate(std::uint32_t key, double value) {
    std::size_t i = support::bucket_of(support::mix64(key), slots_.size());
    const std::size_t mask = slots_.size() - 1;
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {  // empty this cycle: claim it
        s.key = key;
        s.epoch = epoch_;
        s.pair_index = static_cast<std::uint32_t>(pairs_.size());
        pairs_.push_back(KeyValue{key, value});
        if (pairs_.size() * 2 >= slots_.size()) grow();
        return;
      }
      if (s.key == key) {
        pairs_[s.pair_index].value += value;
        return;
      }
      i = (i + 1) & mask;
    }
  }

  /// The accumulated (key, value) pairs in first-touch order.  Already
  /// contiguous — nothing to materialize.
  [[nodiscard]] std::span<const KeyValue> finalize() const noexcept {
    return pairs_;
  }

  [[nodiscard]] std::size_t distinct() const noexcept { return pairs_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::uint32_t key = 0;
    std::uint32_t epoch = 0;       ///< stamp of the cycle that owns this slot
    std::uint32_t pair_index = 0;  ///< where this key's running sum lives
  };

  /// Doubles the table, re-inserting only the current cycle's keys (the
  /// pairs vector *is* the touched list).
  void grow() {
    slots_.assign(slots_.size() * 2, Slot{});
    epoch_ = 1;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      std::size_t i =
          support::bucket_of(support::mix64(pairs_[p].key), slots_.size());
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
      slots_[i] =
          Slot{pairs_[p].key, epoch_, static_cast<std::uint32_t>(p)};
    }
  }

  std::vector<Slot> slots_;       ///< power-of-two open-addressing table
  std::vector<KeyValue> pairs_;   ///< touched list + materialized output
  std::uint32_t epoch_ = 1;
};

}  // namespace asamap::hashdb
