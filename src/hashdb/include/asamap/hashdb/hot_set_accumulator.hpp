#pragma once

/// \file hot_set_accumulator.hpp
/// Software mirror of the paper's ASA: a two-level flow accumulator whose
/// front level is a small, fixed-capacity, cache-resident "hot set" playing
/// the role of the 8 KB CAM (512 entries x 16 B, Fig. 5: covers >= 99% of
/// power-law neighborhoods), backed by an epoch-stamped flat table for the
/// overflow tail (the CAM's FIFO + sort-and-merge path, collapsed into a
/// second hash level because software has no free background merge).
///
/// Unlike `asa::Cam` — which *models* the hardware (LRU metadata, eviction
/// FIFO, per-probe sink events for the cost simulator) — this accumulator is
/// uninstrumented and built to actually be fast on a host CPU:
///
///   - The hot level is a bucketized tag array: a contiguous vector of
///     64-bit meta words (`epoch << 32 | key`) plus a parallel pair-index
///     array, 8 slots per bucket.  Packing epoch and key into one word
///     makes the common hit test a single load and a single 64-bit compare.
///     At the default 512 entries the two arrays total 6 KB — resident in
///     L1 like the CAM the paper sizes in Fig. 5.
///   - Probing is two-stage.  The fast path checks the key's single *home*
///     slot scalar — one Fibonacci hash (a multiply + shift, far cheaper
///     than the mix64 avalanche a growable table needs) and one L1 load —
///     which resolves the overwhelmingly common hit/fresh-insert cases at
///     below FlatAccumulator's per-probe cost.  Only a home-slot collision
///     falls back to sweeping the 8-tag bucket (and one adjacent bucket)
///     with SSE2/AVX2 compares, the software stand-in for the CAM's
///     all-entries-at-once associative match.
///   - A per-cycle admission budget caps hot-level load at 50% (the CAM
///     analogue: a full CAM stops accepting and overflows).  Keys turned
///     away — budget exhausted or probe buckets full — spill to a
///     FlatAccumulator-style epoch-stamped overflow table (mix64 + linear
///     probing, grows on load); already-admitted keys keep hitting the hot
///     level at full speed.  Overflow is the cold path: on power-law
///     graphs ~99% of vertices never touch it.
///   - Both levels append first-touch pairs into ONE shared `pairs_`
///     vector.  The output of `finalize()` is therefore *bitwise identical*
///     to FlatAccumulator's — same first-touch order, same per-key addition
///     order — so the kernel's decisions (and the final codelength) cannot
///     differ between the two engines.
///
/// Occupancy invariant (why a bounded probe stays correct): within one
/// accumulation cycle slots are only ever claimed, never freed.  Insertion
/// claims the first free slot in probe-bucket order, so if a lookup finds a
/// free slot and no tag match in some probe bucket, the key cannot live in
/// a later bucket — and a key that spilled did so because every probe
/// bucket was full, which remains true for the rest of the cycle.

#include <cstdint>
#include <span>
#include <vector>

#include "asamap/hashdb/kv.hpp"
#include "asamap/support/hash.hpp"

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace asamap::hashdb {

/// Counters mirroring asa::CamStats for the software hot set — the hit rate
/// and per-vertex coverage are the quantities Fig. 5 sizes the CAM by, so
/// bench_fig5_cam_coverage cross-checks them against the simulated numbers.
struct HotSetStats {
  std::uint64_t accumulates = 0;    ///< total accumulate() calls (bulk-counted)
  std::uint64_t spills = 0;         ///< fell through to the overflow table
  std::uint64_t begins = 0;         ///< accumulation cycles (vertices)
  std::uint64_t spilled_begins = 0; ///< cycles with at least one spill

  HotSetStats& operator+=(const HotSetStats& o) noexcept {
    accumulates += o.accumulates;
    spills += o.spills;
    begins += o.begins;
    spilled_begins += o.spilled_begins;
    return *this;
  }

  /// Accumulates resolved in the hot level.  Derived (every call either
  /// hits the hot level or spills) so the hot path pays one counter, not
  /// two.
  [[nodiscard]] std::uint64_t hot_hits() const noexcept {
    return accumulates - spills;
  }

  /// Fraction of accumulates served by the hot level.
  [[nodiscard]] double hit_rate() const noexcept {
    return accumulates == 0
               ? 1.0
               : static_cast<double>(hot_hits()) /
                     static_cast<double>(accumulates);
  }

  /// Fraction of cycles whose whole neighborhood fit the hot level — the
  /// software analogue of the paper's "vertices whose neighbor list fits
  /// the CAM" coverage metric.
  [[nodiscard]] double vertex_coverage() const noexcept {
    return begins == 0 ? 1.0
                       : 1.0 - static_cast<double>(spilled_begins) /
                                   static_cast<double>(begins);
  }
};

class HotSetAccumulator {
 public:
  /// 512 entries x 16 B logical entry = the paper's 8 KB CAM sizing.
  static constexpr std::size_t kDefaultHotEntries = 512;
  /// Slots probed per vector compare; buckets are this wide.
  static constexpr std::size_t kBucketSlots = 8;
  /// Buckets tried before giving up on the hot level.  Two buckets = 16
  /// tags, enough slack that hash clustering alone almost never spills a
  /// neighborhood that fits the capacity.
  static constexpr std::size_t kProbeBuckets = 2;

  explicit HotSetAccumulator(std::size_t hot_entries = kDefaultHotEntries,
                             std::size_t overflow_capacity = 256)
      : bucket_slots_(hot_entries < kBucketSlots
                          ? support::next_pow2(hot_entries ? hot_entries : 1)
                          : kBucketSlots) {
    const std::size_t capacity =
        support::next_pow2(hot_entries ? hot_entries : 1);
    num_buckets_ = capacity / bucket_slots_;
    unsigned cap_bits = 0;
    while ((std::size_t{1} << cap_bits) < capacity) ++cap_bits;
    // 64 - log2(capacity), clamped so capacity == 1 (shift of 64 would be
    // UB) degenerates to shift 63 + mask 0, which still yields home == 0.
    home_shift_ = cap_bits == 0 ? 63u : 64u - cap_bits;
    home_mask_ = capacity - 1;
    slot_shift_ = 0;
    while ((std::size_t{1} << slot_shift_) < bucket_slots_) ++slot_shift_;
    hot_meta_.assign(capacity, 0);
    hot_pair_.assign(capacity, 0);
    overflow_.assign(
        support::next_pow2(overflow_capacity < 8 ? 8 : overflow_capacity),
        OvfSlot{});
    pairs_.reserve(capacity);
  }

  /// Starts a fresh accumulation.  O(1) + O(spills of the previous cycle):
  /// live hot and overflow entries are invalidated by one epoch bump.
  void begin() {
    pairs_.clear();
    spilled_this_cycle_ = false;
    // Ceiling division so degenerate tiny capacities still admit a key.
    hot_budget_ = (hot_meta_.size() + 1) / 2;
    ++stats_.begins;
    if (++epoch_ == 0) {  // epoch wrapped: stale stamps could alias
      std::fill(hot_meta_.begin(), hot_meta_.end(), std::uint64_t{0});
      for (OvfSlot& s : overflow_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  /// key += value, inserting on first sight.  Fast path: one Fibonacci
  /// hash, one load, and one 64-bit compare against the key's home slot;
  /// collisions fall back to the vectorized bucket sweep.  Per-call stats
  /// are deliberately NOT counted here — callers report totals in bulk via
  /// note_accumulates() so the hot loop carries no counter traffic.
  void accumulate(std::uint32_t key, double value) {
    const std::uint64_t want =
        (static_cast<std::uint64_t>(epoch_) << 32) | key;
    const std::size_t home =
        static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >>
                                 home_shift_) &
        home_mask_;
    const std::uint64_t meta = hot_meta_[home];
    if (meta == want) {  // hot home hit: works saturated or not
      pairs_[hot_pair_[home]].value += value;
      return;
    }
    if (hot_budget_ == 0) {  // saturated: everything else is overflow's job
      spill(key, value);
      return;
    }
    if ((meta >> 32) == epoch_) {  // live with another key: collision
      accumulate_slow(key, value, home, want);
      return;
    }
    // Home slot free this cycle.  Slots are never freed mid-cycle and every
    // insert probes home first, so a free home slot proves the key is not
    // resident anywhere in the hot level: claim it.  The admission budget
    // bounds hot-level load at 50%; hitting zero triggers saturation (see
    // saturate()), after which the whole cycle runs on the overflow table.
    hot_meta_[home] = want;
    hot_pair_[home] = static_cast<std::uint32_t>(pairs_.size());
    pairs_.push_back(KeyValue{key, value});
    if (--hot_budget_ == 0) saturate();
  }

  /// Bulk stats hook: the kernel reports how many accumulate() calls it
  /// issued for the current neighborhood (one addition per vertex instead
  /// of a read-modify-write inside every accumulate()).
  void note_accumulates(std::uint64_t n) noexcept {
    stats_.accumulates += n;
  }

  /// Point query: the accumulated value for `key` this cycle (0.0 when the
  /// key was never accumulated).  This is the capability the hot set buys
  /// beyond a scan-only accumulator: the kernel's current-module pre-scan
  /// collapses from O(distinct) to one O(1) probe.  Reads the same stored
  /// doubles `finalize()` exposes, so the result is bitwise identical to
  /// what the scan would have found.
  [[nodiscard]] double lookup(std::uint32_t key) const noexcept {
    const std::uint64_t want =
        (static_cast<std::uint64_t>(epoch_) << 32) | key;
    const std::size_t home =
        static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >>
                                 home_shift_) &
        home_mask_;
    const std::uint64_t meta = hot_meta_[home];
    if (meta == want) return pairs_[hot_pair_[home]].value;
    // A saturated cycle dumped every pair into the overflow table (see
    // saturate()), so that probe alone is complete.  Otherwise absence
    // from the hot level is definitive for non-spilled keys: every key
    // seen this cycle was admitted somewhere the bounded probe visits.
    if (hot_budget_ == 0) return lookup_overflow(key);
    if ((meta >> 32) != (want >> 32)) return 0.0;  // home free: key absent
    // Collision: sweep the same buckets accumulate() would have probed.
    std::size_t b = home >> slot_shift_;
    for (std::size_t probe = 0; probe < kProbeBuckets; ++probe) {
      const std::size_t base = b * bucket_slots_;
      std::uint32_t match_mask = 0;
      std::uint32_t live_mask = 0;
      probe_bucket(base, want, match_mask, live_mask);
      if (match_mask != 0) {
        const auto lane =
            static_cast<std::size_t>(__builtin_ctz(match_mask));
        return pairs_[hot_pair_[base + lane]].value;
      }
      if (live_mask != ((1u << bucket_slots_) - 1u)) return 0.0;
      if (num_buckets_ == 1) break;
      b = (b + 1) & (num_buckets_ - 1);
    }
    // Every probe bucket full: the key would have spilled.
    return lookup_overflow(key);
  }

  /// The accumulated (key, value) pairs in first-touch order — bitwise
  /// identical to what FlatAccumulator returns on the same call sequence.
  [[nodiscard]] std::span<const KeyValue> finalize() const noexcept {
    return pairs_;
  }

  [[nodiscard]] std::size_t distinct() const noexcept { return pairs_.size(); }
  [[nodiscard]] std::size_t hot_capacity() const noexcept {
    return hot_meta_.size();
  }
  [[nodiscard]] std::size_t overflow_capacity() const noexcept {
    return overflow_.size();
  }

  [[nodiscard]] const HotSetStats& hot_stats() const noexcept {
    return stats_;
  }
  void reset_hot_stats() noexcept { stats_ = HotSetStats{}; }

  /// Test hook: jump the epoch counter so a test can exercise the uint32
  /// wraparound reset without running 4 billion cycles.
  void set_epoch_for_testing(std::uint32_t e) noexcept { epoch_ = e; }

 private:
  struct OvfSlot {
    std::uint32_t key = 0;
    std::uint32_t epoch = 0;
    std::uint32_t pair_index = 0;
  };

  /// Collision path: the home slot is live with another key.  Sweeps the
  /// home bucket (which contains the home slot) and one adjacent bucket
  /// with vector compares; claims the first free slot on a miss, spilling
  /// only when both buckets are full.  Insertion claims free slots in the
  /// same bucket order the lookup scans them, which keeps the bounded
  /// probe's free-slot-means-absent reasoning valid at bucket granularity.
  void accumulate_slow(std::uint32_t key, double value, std::size_t home,
                       std::uint64_t want) {
    std::size_t b = home >> slot_shift_;
    for (std::size_t probe = 0; probe < kProbeBuckets; ++probe) {
      const std::size_t base = b * bucket_slots_;
      std::uint32_t match_mask = 0;
      std::uint32_t live_mask = 0;
      probe_bucket(base, want, match_mask, live_mask);
      if (match_mask != 0) {
        const auto lane =
            static_cast<std::size_t>(__builtin_ctz(match_mask));
        pairs_[hot_pair_[base + lane]].value += value;
        return;
      }
      const std::uint32_t free_mask =
          ~live_mask & ((1u << bucket_slots_) - 1u);
      if (free_mask != 0) {
        const auto lane =
            static_cast<std::size_t>(__builtin_ctz(free_mask));
        const std::size_t i = base + lane;
        hot_meta_[i] = want;
        hot_pair_[i] = static_cast<std::uint32_t>(pairs_.size());
        pairs_.push_back(KeyValue{key, value});
        if (--hot_budget_ == 0) saturate();
        return;
      }
      if (num_buckets_ == 1) break;
      b = (b + 1) & (num_buckets_ - 1);
    }
    spill(key, value);
  }

  /// Sets bit i of `match_mask` when slot base+i holds exactly `want`
  /// (same key, live this cycle), and bit i of `live_mask` when the slot's
  /// epoch half matches the current epoch (`want >> 32`).
  void probe_bucket(std::size_t base, std::uint64_t want,
                    std::uint32_t& match_mask,
                    std::uint32_t& live_mask) const noexcept {
    if (bucket_slots_ == kBucketSlots) {
      const std::uint64_t* m = hot_meta_.data() + base;
#if defined(__AVX2__)
      const __m256i vw =
          _mm256_set1_epi64x(static_cast<long long>(want));
      std::uint32_t lm = 0;
      std::uint32_t mm = 0;
      for (int v = 0; v < 2; ++v) {  // 4 slots per 256-bit vector
        const __m256i meta = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(m + v * 4));
        const auto eq64 = static_cast<std::uint32_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(meta, vw))));
        const auto eq32 = static_cast<std::uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(meta, vw))));
        mm |= eq64 << (v * 4);
        // Epoch halves live in the odd 32-bit lanes (little endian).
        lm |= (((eq32 >> 1) & 1u) | (((eq32 >> 3) & 1u) << 1) |
               (((eq32 >> 5) & 1u) << 2) | (((eq32 >> 7) & 1u) << 3))
              << (v * 4);
      }
      live_mask = lm;
      match_mask = mm;
      return;
#elif defined(__SSE2__)
      const __m128i vw = _mm_set1_epi64x(static_cast<long long>(want));
      std::uint32_t lm = 0;
      std::uint32_t mm = 0;
      for (int v = 0; v < 4; ++v) {  // 2 slots per 128-bit vector
        const __m128i meta = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(m + v * 2));
        const auto eq = static_cast<std::uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi32(meta, vw)));
        // Per slot: low 4 byte-mask bits = key half, high 4 = epoch half.
        lm |= static_cast<std::uint32_t>(((eq >> 4) & 0xFu) == 0xFu)
              << (v * 2);
        lm |= static_cast<std::uint32_t>(((eq >> 12) & 0xFu) == 0xFu)
              << (v * 2 + 1);
        mm |= static_cast<std::uint32_t>((eq & 0xFFu) == 0xFFu) << (v * 2);
        mm |= static_cast<std::uint32_t>(((eq >> 8) & 0xFFu) == 0xFFu)
              << (v * 2 + 1);
      }
      live_mask = lm;
      match_mask = mm;
      return;
#endif
    }
    std::uint32_t lm = 0;
    std::uint32_t mm = 0;
    for (std::size_t i = 0; i < bucket_slots_; ++i) {
      const std::uint64_t meta = hot_meta_[base + i];
      lm |= static_cast<std::uint32_t>((meta >> 32) == (want >> 32)) << i;
      mm |= static_cast<std::uint32_t>(meta == want) << i;
    }
    live_mask = lm;
    match_mask = mm;
  }

  /// Point query against the overflow table only (0.0 when absent).  The
  /// linear probe terminates: the table grows at 50% load, so a free slot
  /// is always reachable.
  [[nodiscard]] double lookup_overflow(std::uint32_t key) const noexcept {
    std::size_t i =
        support::bucket_of(support::mix64(key), overflow_.size());
    const std::size_t mask = overflow_.size() - 1;
    for (;;) {
      const OvfSlot& s = overflow_[i];
      if (s.epoch != epoch_) return 0.0;
      if (s.key == key) return pairs_[s.pair_index].value;
      i = (i + 1) & mask;
    }
  }

  /// Stats wrapper for keys the hot level turned away — cycle saturated or
  /// both probe buckets full.
  void spill(std::uint32_t key, double value) {
    ++stats_.spills;
    if (!spilled_this_cycle_) {
      spilled_this_cycle_ = true;
      ++stats_.spilled_begins;
    }
    ovf_insert(key, value);
  }

  /// Saturation event: the admission budget just hit zero (a neighborhood
  /// larger than the hot level can hold at 50% load — the CAM-full case).
  /// Folding every pair into the overflow table once makes the overflow
  /// probe complete on its own, so the rest of the cycle runs exactly like
  /// FlatAccumulator instead of paying a futile hot sweep per key.
  /// Already-accumulated values are untouched: the dump maps keys to their
  /// existing pair indices, preserving bitwise output parity.
  void saturate() {
    if (pairs_.size() * 2 >= overflow_.size()) {
      grow_overflow();  // re-inserts every pair while resizing
      return;
    }
    // Room already: upsert into the persistent table (keys re-inserted by
    // an earlier grow this cycle are skipped).
    const std::size_t mask = overflow_.size() - 1;
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      const std::uint32_t key = pairs_[p].key;
      std::size_t i =
          support::bucket_of(support::mix64(key), overflow_.size());
      while (overflow_[i].epoch == epoch_ && overflow_[i].key != key) {
        i = (i + 1) & mask;
      }
      if (overflow_[i].epoch != epoch_) {
        overflow_[i] = OvfSlot{key, epoch_, static_cast<std::uint32_t>(p)};
      }
    }
  }

  /// Overflow level: FlatAccumulator's epoch-stamped open addressing.  The
  /// grow trigger deliberately uses `pairs_.size()` (total distinct keys,
  /// an upper bound on overflow occupancy) — it is already in a register
  /// from the pair push, so the claim path carries no occupancy counter at
  /// all, matching FlatAccumulator's insert cost exactly.
  void ovf_insert(std::uint32_t key, double value) {
    std::size_t i =
        support::bucket_of(support::mix64(key), overflow_.size());
    const std::size_t mask = overflow_.size() - 1;
    for (;;) {
      OvfSlot& s = overflow_[i];
      if (s.epoch != epoch_) {  // empty this cycle: claim it
        s.key = key;
        s.epoch = epoch_;
        s.pair_index = static_cast<std::uint32_t>(pairs_.size());
        pairs_.push_back(KeyValue{key, value});
        if (pairs_.size() * 2 >= overflow_.size()) grow_overflow();
        return;
      }
      if (s.key == key) {
        pairs_[s.pair_index].value += value;
        return;
      }
      i = (i + 1) & mask;
    }
  }

  /// Rebuilds the overflow table sized so every distinct key this cycle
  /// sits under 50% load, re-inserting every pair.  Serves both the grow
  /// path and the saturation dump.  Hot-resident keys land in the overflow
  /// too, which is harmless: their entries map to the same pair index, so
  /// whichever level answers first yields the same accumulator cell.  The
  /// epoch counter is left alone (it also stamps the hot level); fresh
  /// slots carry epoch 0, which never equals a live epoch.
  void grow_overflow() {
    // Grow-only, like FlatAccumulator: the table reaches the workload's
    // peak neighborhood size once and then persists, so steady-state cycles
    // never pay a rebuild (shrinking here would re-stamp and re-insert on
    // every saturated cycle).
    std::size_t ns = overflow_.size();
    while (pairs_.size() * 2 >= ns) ns *= 2;
    overflow_.assign(ns, OvfSlot{});
    const std::size_t mask = ns - 1;
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      std::size_t i = support::bucket_of(support::mix64(pairs_[p].key), ns);
      while (overflow_[i].epoch == epoch_) i = (i + 1) & mask;
      overflow_[i] =
          OvfSlot{pairs_[p].key, epoch_, static_cast<std::uint32_t>(p)};
    }
  }

  // Hot level: packed (epoch << 32 | key) meta words plus a parallel
  // pair-index array, bucketized for vectorized probes.  6 KB total at the
  // default 512 entries.
  std::vector<std::uint64_t> hot_meta_;
  std::vector<std::uint32_t> hot_pair_;
  std::size_t bucket_slots_ = kBucketSlots;
  std::size_t num_buckets_ = 0;
  unsigned home_shift_ = 0;     ///< 64 - log2(hot capacity), clamped to 63
  std::size_t home_mask_ = 0;   ///< hot capacity - 1
  unsigned slot_shift_ = 0;     ///< log2(bucket_slots_): home slot -> bucket

  // Overflow level + the shared first-touch pair list.
  std::vector<OvfSlot> overflow_;
  std::vector<KeyValue> pairs_;

  std::uint32_t epoch_ = 1;
  std::size_t hot_budget_ = 0;  ///< hot claims left this cycle (50% load cap)
  bool spilled_this_cycle_ = false;
  HotSetStats stats_;
};

}  // namespace asamap::hashdb
