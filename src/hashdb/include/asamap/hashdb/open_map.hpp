#pragma once

/// \file open_map.hpp
/// Instrumented open-addressing (linear probing) hash map.  Ablation
/// companion to ChainedMap: shows that the Baseline bottleneck is intrinsic
/// to software hashing (probe-loop branches remain) rather than an artifact
/// of libstdc++'s chained layout.  Slots live in one contiguous array, so
/// its cache behaviour is friendlier than the chained map's — the gap
/// between the two isolates the pointer-chasing component.

#include <cstdint>
#include <vector>

#include "asamap/hashdb/address_space.hpp"
#include "asamap/sim/event_sink.hpp"
#include "asamap/support/check.hpp"
#include "asamap/support/hash.hpp"

namespace asamap::hashdb {

struct OpenCosts {
  std::uint32_t hash_and_index = 4;
  std::uint32_t probe_step = 2;       ///< index increment + wrap mask
  std::uint32_t accumulate = 2;
  std::uint32_t insert = 4;
  std::uint32_t grow_per_slot = 5;
  std::uint32_t iterate_per_slot = 2;
};

template <sim::EventSink Sink, typename Key = std::uint32_t,
          typename Value = double>
class OpenMap {
 public:
  static constexpr std::uint32_t kSlotBytes = 16;  // key + value (+ state bit)

  OpenMap(Sink& sink, AddressSpace& addrs, std::size_t initial_slots = 16,
          OpenCosts costs = {})
      : sink_(&sink),
        addrs_(&addrs),
        costs_(costs),
        initial_slots_(
            support::next_pow2(std::max<std::size_t>(initial_slots, 8))) {
    // One region with growth headroom (only touched lines cost anything).
    slot_base_ = addrs_->alloc_array((std::size_t{1} << 22) * kSlotBytes);
    slots_.assign(initial_slots_, Slot{});
  }

  bool accumulate(Key key, Value value) {
    maybe_grow();
    sink_->instructions(costs_.hash_and_index);
    const std::uint64_t h = support::mix64(static_cast<std::uint64_t>(key));
    std::size_t i = support::bucket_of(h, slots_.size());
    for (;;) {
      Slot& s = slots_[i];
      sink_->load(slot_addr(i), kSlotBytes);
      sink_->branch(sim::sites::kOpenSlotState, s.occupied);
      if (!s.occupied) {
        sink_->instructions(costs_.insert);
        s.occupied = true;
        s.key = key;
        s.value = value;
        sink_->store(slot_addr(i), kSlotBytes);
        ++size_;
        return true;
      }
      const bool match = s.key == key;
      sink_->branch(sim::sites::kOpenKeyCompare, match);
      if (match) {
        sink_->instructions(costs_.accumulate);
        s.value += value;
        sink_->store(slot_addr(i) + 8, 8);
        return false;
      }
      sink_->instructions(costs_.probe_step);
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  const Value* find(Key key) {
    sink_->instructions(costs_.hash_and_index);
    const std::uint64_t h = support::mix64(static_cast<std::uint64_t>(key));
    std::size_t i = support::bucket_of(h, slots_.size());
    for (;;) {
      const Slot& s = slots_[i];
      sink_->load(slot_addr(i), kSlotBytes);
      sink_->branch(sim::sites::kOpenSlotState, s.occupied);
      if (!s.occupied) return nullptr;
      const bool match = s.key == key;
      sink_->branch(sim::sites::kOpenKeyCompare, match);
      if (match) return &s.value;
      sink_->instructions(costs_.probe_step);
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      sink_->instructions(costs_.iterate_per_slot);
      sink_->load(slot_addr(i), kSlotBytes);
      sink_->branch(sim::sites::kOpenSlotState, s.occupied);
      if (s.occupied) fn(s.key, s.value);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Fresh table per vertex (see ChainedMap::clear for the rationale).
  void clear() {
    sink_->instructions(kConstructDestroyCost);
    slots_.assign(initial_slots_, Slot{});
    size_ = 0;
  }

  static constexpr std::uint32_t kConstructDestroyCost = 24;

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool occupied = false;
  };

  [[nodiscard]] std::uint64_t slot_addr(std::size_t i) const noexcept {
    return slot_base_ + i * kSlotBytes;
  }

  void maybe_grow() {
    const bool grow = (size_ + 1) * 10 > slots_.size() * 7;  // max load 0.7
    sink_->branch(sim::sites::kOpenNeedGrow, grow);
    if (!grow) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    size_ = 0;
    for (const Slot& s : old) {
      sink_->instructions(costs_.grow_per_slot);
      if (!s.occupied) continue;
      // Re-insert without the growth check (capacity already doubled).
      const std::uint64_t h = support::mix64(static_cast<std::uint64_t>(s.key));
      std::size_t i = support::bucket_of(h, slots_.size());
      while (slots_[i].occupied) {
        sink_->load(slot_addr(i), kSlotBytes);
        i = (i + 1) & (slots_.size() - 1);
      }
      slots_[i] = s;
      sink_->store(slot_addr(i), kSlotBytes);
      ++size_;
    }
  }

  Sink* sink_;
  AddressSpace* addrs_;
  OpenCosts costs_;
  std::size_t initial_slots_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint64_t slot_base_ = 0;
};

}  // namespace asamap::hashdb
