#pragma once

/// \file software_accumulator.hpp
/// The Baseline-side flow accumulators: wrap an instrumented software hash
/// map behind the same begin/accumulate/finalize interface the ASA
/// accumulator exposes, so FindBestCommunity is written once and
/// parameterized on the accumulation engine (the paper's Algorithm 1 vs
/// Algorithm 2 difference).
///
/// `finalize()` walks the hash table (buckets + chains for the chained map —
/// the expensive, branchy iteration of Algorithm 1 lines 16-25) and
/// materializes the pairs into a contiguous scratch vector, charging the
/// traversal to the sink.  The kernel then scans that vector for the
/// code-length minimization, which costs the same for every accumulator —
/// keeping the Baseline-vs-ASA comparison isolated to the accumulation
/// machinery itself.

#include <cstdint>
#include <span>
#include <vector>

#include "asamap/hashdb/chained_map.hpp"
#include "asamap/hashdb/kv.hpp"
#include "asamap/hashdb/open_map.hpp"
#include "asamap/sim/event_sink.hpp"

namespace asamap::hashdb {

namespace detail {

/// Common finalize/scratch plumbing for map-backed accumulators.
template <sim::EventSink Sink, typename Map>
class MapAccumulator {
 public:
  static constexpr std::uint32_t kPairBytes = 16;

  MapAccumulator(Sink& sink, AddressSpace& addrs, std::size_t initial_capacity)
      : sink_(&sink), map_(sink, addrs, initial_capacity) {
    scratch_base_ = addrs.alloc_array(1ULL << 20);
  }

  void begin() {
    map_.clear();
    scratch_.clear();
    finalized_ = false;
  }

  void accumulate(std::uint32_t key, double value) {
    map_.accumulate(key, value);
  }

  /// Materializes the final (module, flow) pairs.  The traversal cost of
  /// the underlying table is charged by the map's for_each; the sequential
  /// writes into scratch are charged here.
  std::span<const KeyValue> finalize() {
    if (!finalized_) {
      map_.for_each([&](std::uint32_t key, double value) {
        sink_->store(scratch_base_ + scratch_.size() * kPairBytes, kPairBytes);
        scratch_.push_back(KeyValue{key, value});
      });
      finalized_ = true;
    }
    return scratch_;
  }

  [[nodiscard]] std::size_t distinct() const noexcept { return map_.size(); }
  [[nodiscard]] const Map& map() const noexcept { return map_; }

 private:
  Sink* sink_;
  Map map_;
  std::vector<KeyValue> scratch_;
  std::uint64_t scratch_base_ = 0;
  bool finalized_ = false;
};

}  // namespace detail

/// Accumulator over the chained map — models std::unordered_map, the
/// paper's Baseline.
template <sim::EventSink Sink>
class ChainedAccumulator
    : public detail::MapAccumulator<Sink, ChainedMap<Sink>> {
 public:
  ChainedAccumulator(Sink& sink, AddressSpace& addrs,
                     std::size_t initial_buckets = 16)
      : detail::MapAccumulator<Sink, ChainedMap<Sink>>(sink, addrs,
                                                       initial_buckets) {}
};

/// Accumulator over the open-addressing map — the "better software hash"
/// ablation.
template <sim::EventSink Sink>
class OpenAccumulator : public detail::MapAccumulator<Sink, OpenMap<Sink>> {
 public:
  OpenAccumulator(Sink& sink, AddressSpace& addrs,
                  std::size_t initial_slots = 16)
      : detail::MapAccumulator<Sink, OpenMap<Sink>>(sink, addrs,
                                                    initial_slots) {}
};

}  // namespace asamap::hashdb
