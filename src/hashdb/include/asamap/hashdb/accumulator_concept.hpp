#pragma once

/// \file accumulator_concept.hpp
/// The key/value accumulation concept every engine implements — software
/// hash maps (this library), the ASA CAM (asa/), and the dense-array
/// ablation (core/).  Both consumers of the concept — Infomap's
/// FindBestCommunity kernel and the SpGEMM kernel — are written once
/// against it; that interchangeability is the paper's "generalized ASA
/// interface" made concrete.

#include <concepts>
#include <cstdint>
#include <span>

#include "asamap/hashdb/kv.hpp"

namespace asamap::hashdb {

template <typename A>
concept KvAccumulator = requires(A a, std::uint32_t k, double v) {
  { a.begin() };                 // start a fresh accumulation
  { a.accumulate(k, v) };        // key += value (insert on first sight)
  { a.finalize() } -> std::convertible_to<std::span<const KeyValue>>;
  { a.distinct() } -> std::convertible_to<std::size_t>;
};

}  // namespace asamap::hashdb
