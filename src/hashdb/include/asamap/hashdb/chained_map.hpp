#pragma once

/// \file chained_map.hpp
/// Instrumented separate-chaining hash map modeling `std::unordered_map`
/// (libstdc++ layout: bucket array of node pointers, nodes allocated
/// individually, chaining on collision, rehash at load factor 1.0).
///
/// This is the paper's **Baseline**: Algorithm 1 keeps per-vertex
/// `unordered_map<moduleId, flow>` tables, and its cost is dominated by
///  - the branch per chain node ("is this the key?", "is there a next?"),
///    which mispredicts on irregular chain lengths, and
///  - the dependent load per chain node, which misses the cache because
///    nodes are scattered.
/// Both effects are emitted as events so the sim::CoreModel can charge them.
///
/// The map is also a *functionally correct* hash table — unit tests compare
/// it against std::unordered_map on random workloads.

#include <cstdint>
#include <vector>

#include "asamap/hashdb/address_space.hpp"
#include "asamap/sim/event_sink.hpp"
#include "asamap/support/check.hpp"
#include "asamap/support/hash.hpp"

namespace asamap::hashdb {

/// Per-operation instruction costs for the chained map, in retired
/// instructions.  Derived by counting the x86 ops in libstdc++'s
/// _Hashtable::_M_find_before_node / _M_insert fast paths (address
/// arithmetic, hash mix, compare setup), excluding the loads/stores/branches
/// which are emitted as first-class events.
struct ChainedCosts {
  /// libstdc++ computes the bucket as hash % prime_bucket_count — an
  /// integer division (~20-25 cycle latency on Ivy Bridge, several µops)
  /// paid on every insert, lookup, and accumulate.  This is a real,
  /// documented unordered_map cost the ASA instruction does not pay.
  std::uint32_t hash_and_index = 12;
  std::uint32_t node_visit = 2;       ///< pointer arith + compare setup
  std::uint32_t accumulate = 2;       ///< add + writeback setup
  std::uint32_t allocate_node = 14;   ///< operator new fast path
  std::uint32_t link_node = 3;        ///< list splice
  std::uint32_t rehash_per_node = 6;  ///< re-bucket arithmetic
  std::uint32_t iterate_per_node = 3; ///< iterator increment + deref
};

template <sim::EventSink Sink, typename Key = std::uint32_t,
          typename Value = double>
class ChainedMap {
 public:
  static constexpr std::uint32_t kNodeBytes = 24;  // key + value + next ptr
  static constexpr std::uint32_t kBucketBytes = 8; // head pointer

  ChainedMap(Sink& sink, AddressSpace& addrs, std::size_t initial_buckets = 16,
             ChainedCosts costs = {})
      : sink_(&sink),
        addrs_(&addrs),
        costs_(costs),
        initial_buckets_(support::next_pow2(initial_buckets)) {
    init_buckets(initial_buckets_);
  }

  /// Inserts (key -> value) or adds `value` to the existing entry — the
  /// lines 6-11 of Algorithm 1.  Returns true when a new entry was created.
  bool accumulate(Key key, Value value) {
    sink_->instructions(costs_.hash_and_index);
    const std::uint64_t h = support::mix64(static_cast<std::uint64_t>(key));
    const std::size_t b = support::bucket_of(h, buckets_.size());

    // Load the bucket head and test for an empty bucket (the
    // `count(newModId) > 0` branch of Algorithm 1, fused as libstdc++ does).
    sink_->load(bucket_addr(b), kBucketBytes);
    std::int64_t idx = buckets_[b];
    sink_->branch(sim::sites::kChainedBucketEmpty, idx < 0);

    while (idx >= 0) {
      Node& node = nodes_[static_cast<std::size_t>(idx)];
      sink_->instructions(costs_.node_visit);
      sink_->load_dependent(node.sim_addr, kNodeBytes);
      const bool match = node.key == key;
      sink_->branch(sim::sites::kChainedKeyCompare, match);
      if (match) {
        sink_->instructions(costs_.accumulate);
        node.value += value;
        sink_->store(node.sim_addr + 8, 8);  // value field
        return false;
      }
      sink_->branch(sim::sites::kChainedChainContinue, node.next >= 0);
      idx = node.next;
    }

    // Not found: allocate, link at bucket head (libstdc++ prepends).
    sink_->instructions(costs_.allocate_node + costs_.link_node);
    Node node;
    node.key = key;
    node.value = value;
    node.next = buckets_[b];
    node.sim_addr = addrs_->alloc_node();
    sink_->store(node.sim_addr, kNodeBytes);
    buckets_[b] = static_cast<std::int64_t>(nodes_.size());
    sink_->store(bucket_addr(b), kBucketBytes);
    nodes_.push_back(node);

    const bool needs_rehash = nodes_.size() > buckets_.size();
    sink_->branch(sim::sites::kChainedNeedRehash, needs_rehash);
    if (needs_rehash) rehash(buckets_.size() * 2);
    return true;
  }

  /// Point lookup; returns nullptr when absent.
  const Value* find(Key key) {
    sink_->instructions(costs_.hash_and_index);
    const std::uint64_t h = support::mix64(static_cast<std::uint64_t>(key));
    const std::size_t b = support::bucket_of(h, buckets_.size());
    sink_->load(bucket_addr(b), kBucketBytes);
    std::int64_t idx = buckets_[b];
    sink_->branch(sim::sites::kChainedBucketEmpty, idx < 0);
    while (idx >= 0) {
      const Node& node = nodes_[static_cast<std::size_t>(idx)];
      sink_->instructions(costs_.node_visit);
      sink_->load_dependent(node.sim_addr, kNodeBytes);
      const bool match = node.key == key;
      sink_->branch(sim::sites::kChainedKeyCompare, match);
      if (match) return &node.value;
      sink_->branch(sim::sites::kChainedChainContinue, node.next >= 0);
      idx = node.next;
    }
    return nullptr;
  }

  /// Visits every (key, value), charging iteration costs — the lines 16-25
  /// scan of Algorithm 1.  Order is bucket order (like unordered_map).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      sink_->load(bucket_addr(b), kBucketBytes);
      std::int64_t idx = buckets_[b];
      sink_->branch(sim::sites::kChainedBucketEmpty, idx < 0);
      while (idx >= 0) {
        const Node& node = nodes_[static_cast<std::size_t>(idx)];
        sink_->instructions(costs_.iterate_per_node);
        sink_->load_dependent(node.sim_addr, kNodeBytes);
        fn(node.key, node.value);
        sink_->branch(sim::sites::kChainedChainContinue, node.next >= 0);
        idx = node.next;
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

  /// Destroys the table and constructs a fresh one, as Algorithm 1 does per
  /// vertex (`std::unordered_map` declared in function scope).  The bucket
  /// count shrinks back to the initial size; node memory returns to the
  /// allocator's free list (modeled by AddressSpace's recycling window).
  /// The bucket region is reused — allocators hand the same block back for
  /// same-sized allocations in a tight loop.
  void clear() {
    sink_->instructions(kConstructDestroyCost);
    nodes_.clear();
    buckets_.assign(initial_buckets_, -1);
  }

  /// Construction + destruction of the per-vertex map (operator new/delete
  /// fast paths for the bucket array).
  static constexpr std::uint32_t kConstructDestroyCost = 30;

 private:
  struct Node {
    Key key{};
    Value value{};
    std::int64_t next = -1;     ///< index into nodes_, -1 = end of chain
    std::uint64_t sim_addr = 0; ///< where this node "lives" in the model
  };

  void init_buckets(std::size_t n) {
    buckets_.assign(n, -1);
    // One region with headroom for growth; the allocator would serve
    // doublings from nearby space anyway, and only touched lines matter.
    bucket_base_ = addrs_->alloc_array((std::size_t{1} << 22) * kBucketBytes);
  }

  [[nodiscard]] std::uint64_t bucket_addr(std::size_t b) const noexcept {
    return bucket_base_ + b * kBucketBytes;
  }

  void rehash(std::size_t new_buckets) {
    // Re-bucket every node into a doubled table.  The bucket region is
    // modeled as reused (allocator free-list), so only the traffic — one
    // store per head, one node rewrite — is charged, not a cold region.
    buckets_.assign(new_buckets, -1);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      sink_->instructions(costs_.rehash_per_node);
      sink_->load_dependent(node.sim_addr, kNodeBytes);
      const std::uint64_t h =
          support::mix64(static_cast<std::uint64_t>(node.key));
      const std::size_t b = support::bucket_of(h, new_buckets);
      node.next = buckets_[b];
      buckets_[b] = static_cast<std::int64_t>(i);
      sink_->store(bucket_addr(b), kBucketBytes);
      sink_->store(node.sim_addr + 16, 8);  // next pointer rewrite
    }
  }

  Sink* sink_;
  AddressSpace* addrs_;
  ChainedCosts costs_;
  std::size_t initial_buckets_;
  std::vector<std::int64_t> buckets_;  ///< head node index per bucket, -1 empty
  std::vector<Node> nodes_;
  std::uint64_t bucket_base_ = 0;
};

}  // namespace asamap::hashdb
