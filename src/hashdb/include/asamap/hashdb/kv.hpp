#pragma once

/// \file kv.hpp
/// The (key, value) pair exchanged between flow accumulators and the
/// FindBestCommunity kernel: key = neighboring module id, value = total flow
/// to/from that module.  Shared by the software-hash and ASA paths so the
/// kernel is agnostic to which engine produced the pairs.

#include <cstdint>

namespace asamap::hashdb {

struct KeyValue {
  std::uint32_t key = 0;
  double value = 0.0;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
};

}  // namespace asamap::hashdb
