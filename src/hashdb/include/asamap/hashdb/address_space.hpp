#pragma once

/// \file address_space.hpp
/// Synthetic address generation for the instrumented data structures.
///
/// The cost model needs realistic *addresses*, not real ones: contiguous
/// regions for arrays (bucket tables, slot arrays, CAM spill vectors) and a
/// scattered heap for individually allocated hash-table nodes.  Scattering
/// models what `std::unordered_map` actually does — nodes come from the
/// allocator one at a time and end up spread across the heap, which is
/// exactly the pointer-chasing irregularity the paper blames for the
/// Baseline's memory stalls.  Deterministic (hash of an allocation counter),
/// so simulations are bit-reproducible.

#include <cstdint>

#include "asamap/support/hash.hpp"

namespace asamap::hashdb {

class AddressSpace {
 public:
  struct Config {
    std::uint64_t array_base = 0x1000'0000'0000ULL;  ///< bump region for arrays
    std::uint64_t heap_base = 0x2000'0000'0000ULL;   ///< scattered node heap
    std::uint64_t heap_span_bytes = 64ULL << 20;     ///< heap fragmentation span
    /// Number of distinct node slots cycled through before reuse.  Models a
    /// LIFO free list: per-vertex tables are created and destroyed in quick
    /// succession, so freed nodes come back soon — but scattered, so the
    /// recycled working set (window * 64 B) competes for L1/L2 capacity.
    std::uint64_t node_window = 32768;
  };

  AddressSpace() = default;
  explicit AddressSpace(Config config) : config_(config) {}

  /// Allocates a contiguous, 64-byte-aligned array region of `bytes`.
  std::uint64_t alloc_array(std::uint64_t bytes) {
    const std::uint64_t addr = config_.array_base + array_cursor_;
    array_cursor_ += (bytes + 63) & ~std::uint64_t{63};
    return addr;
  }

  /// Returns the address for the next node-sized heap allocation: scattered
  /// pseudo-randomly over the heap span, 64-byte aligned, recycling within a
  /// `node_window`-slot working set.  Consecutive allocations land on
  /// unrelated cache lines (fragmentation), while reuse keeps the footprint
  /// bounded (free-list behaviour) — together, the memory behaviour the
  /// paper blames for the Baseline's latency-bound accesses.
  std::uint64_t alloc_node() {
    const std::uint64_t slots = config_.heap_span_bytes / 64;
    const std::uint64_t recycled = node_counter_++ % config_.node_window;
    const std::uint64_t idx = support::mix64(recycled) % slots;
    return config_.heap_base + idx * 64;
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_{};
  std::uint64_t array_cursor_ = 0;
  std::uint64_t node_counter_ = 0;
};

}  // namespace asamap::hashdb
