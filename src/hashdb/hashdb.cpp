// Anchor translation unit for the (otherwise header-only) hashdb library, so
// the static library target has at least one object file.  Also hosts
// compile-time checks of the template instantiations we ship.

#include "asamap/hashdb/chained_map.hpp"
#include "asamap/hashdb/open_map.hpp"

namespace asamap::hashdb {

// Force the common instantiations to compile in one place.
template class ChainedMap<sim::NullSink>;
template class OpenMap<sim::NullSink>;

}  // namespace asamap::hashdb
