#pragma once

/// \file partition_map.hpp
/// The block vertex partition shared by the dist simulation
/// (run_distributed_infomap), the shard servers, and the router: shard r
/// of N owns the contiguous range [n*r/N, n*(r+1)/N).  One definition so
/// placement computed on the router always agrees with the range a shard
/// enforces — the partition IS the placement function (ISSUE 9; cf. the
/// rank-partitioned exchange of the MPI exemplars).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "asamap/graph/types.hpp"

namespace asamap::dist {

struct ShardRange {
  graph::VertexId begin = 0;
  graph::VertexId end = 0;  ///< exclusive

  [[nodiscard]] bool contains(graph::VertexId v) const noexcept {
    return v >= begin && v < end;
  }
  [[nodiscard]] graph::VertexId size() const noexcept { return end - begin; }
};

/// The block partition of [0, n) into `shards` contiguous ranges.
inline std::vector<ShardRange> make_ranges(graph::VertexId n,
                                           std::uint32_t shards) {
  std::vector<ShardRange> out(std::max<std::uint32_t>(shards, 1));
  const auto k = static_cast<std::uint32_t>(out.size());
  for (std::uint32_t r = 0; r < k; ++r) {
    out[r].begin = static_cast<graph::VertexId>(std::uint64_t{n} * r / k);
    out[r].end = static_cast<graph::VertexId>(std::uint64_t{n} * (r + 1) / k);
  }
  return out;
}

/// Owner shard of vertex v under `ranges` (inverse of make_ranges; starts
/// from the proportional estimate and fixes up the off-by-one flooring can
/// introduce).
inline std::uint32_t owner_of(graph::VertexId v, graph::VertexId n,
                              const std::vector<ShardRange>& ranges) {
  const auto shards = static_cast<std::uint32_t>(ranges.size());
  auto r = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      std::uint64_t{v} * shards / std::max<graph::VertexId>(n, 1),
      shards - 1));
  while (r > 0 && v < ranges[r].begin) --r;
  while (r + 1 < shards && v >= ranges[r].end) ++r;
  return r;
}

/// One shard's own range.
inline ShardRange range_of(graph::VertexId n, std::uint32_t shard,
                           std::uint32_t shards) {
  return make_ranges(n, shards)[std::min(shard, shards - 1)];
}

}  // namespace asamap::dist
