#pragma once

/// \file distributed.hpp
/// Single-process simulation of the distributed-memory layer of HyPC-Map
/// (Faysal et al., HPEC 2021) and its predecessor DPLM (Faysal &
/// Arifuzzaman, IEEE BigData 2019): the substrate the paper's parallel
/// Infomap runs on.
///
/// No MPI is used (the paper's evaluation is single-node; see DESIGN.md's
/// substitution table) — instead the protocol is simulated faithfully:
///
///   * vertices are block-partitioned across R ranks;
///   * each superstep, every rank evaluates its local vertices against a
///     *stale snapshot* of the global module state (taken at superstep
///     start — exactly the relaxed consistency distributed Infomap relies
///     on, since remote module updates arrive only at exchange points);
///   * proposed moves of vertices with remote neighbors generate messages
///     (one logical message per rank pair per superstep, 8 bytes per
///     (vertex, newModule) update), which the simulator counts;
///   * the exchange applies moves to the authoritative state, re-validating
///     each against the live aggregates so the map equation stays exact.
///
/// The interesting outputs are the message-volume trace (it collapses
/// across supersteps as the active set shrinks) and the quality parity with
/// the sequential driver.

#include <cstdint>
#include <vector>

#include "asamap/core/infomap.hpp"

namespace asamap::dist {

struct DistOptions {
  std::uint32_t num_ranks = 4;
  int max_supersteps_per_level = 30;
  int max_levels = 30;
  double min_improvement_bits = 1e-10;
  core::FlowOptions flow = {};
};

struct SuperstepTrace {
  int level = 0;
  int step = 0;
  std::uint64_t proposals = 0;  ///< moves proposed across all ranks
  std::uint64_t applied = 0;    ///< moves surviving re-validation
  std::uint64_t messages = 0;   ///< rank-pair messages this superstep
  std::uint64_t bytes = 0;      ///< update payload bytes
  double codelength = 0.0;      ///< level-local (see SweepTrace note)
};

struct DistResult {
  core::Partition communities;
  std::size_t num_communities = 0;
  double codelength = 0.0;  ///< level-0 value of the final partition
  int levels = 0;
  std::vector<SuperstepTrace> trace;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
};

/// Runs the simulated distributed Infomap.  Deterministic for a fixed rank
/// count.
DistResult run_distributed_infomap(const graph::CsrGraph& g,
                                   const DistOptions& opts = {});

}  // namespace asamap::dist
