#pragma once

/// \file router.hpp
/// Router — the client-facing front of the sharded serving tier (ISSUE 9).
/// A RequestHandler (so the same epoll NetServer serves it) that owns one
/// pooled net::Client per shard endpoint and turns the single-process line
/// protocol into placement + scatter/gather over the block partition of
/// partition_map.hpp:
///
///   MEMBER        → forwarded to the owner shard of the vertex
///   SAME          → owner shard when both vertices co-locate, else two
///                   MEMBER legs composed (version skew ⇒ OK STALE)
///   TOPK          → scatter; shards return full-precision range-partial
///                   flows which the router sums in shard order and sorts
///   SUMMARY       → scatter; vertex counts sum, global fields agree
///   GEN/LOAD/DROP/CLUSTER/ADD_EDGE/DEL_EDGE/APPLY
///                 → broadcast to every shard (replicated ingest)
///   CLUSTER <g> mode=dist
///                 → drives the DCLUSTER superstep protocol of shard.hpp:
///                   per level, scatter PROPOSE, concatenate movers in
///                   shard order, broadcast APPLY, until converged; then
///                   LEVEL, then COMMIT (the live form of
///                   run_distributed_infomap — same kernels, same order,
///                   same codelength)
///   SHARDS        → per-shard up/breaker status
///   METRICS WINDOW [prom|json]
///                 → windowed rates/quantiles over the router's own registry
///   METRICS FLEET [prom|json]
///                 → federation (ISSUE 10): scrape every shard's `METRICS
///                   json`, re-label each series with shard="K", sum
///                   counters and merge histograms (via the mergeable
///                   `buckets` field) into shard="fleet" aggregates — one
///                   scrape shows the whole tier.  A down shard is reported
///                   (asamap_fleet_shards_down, shard_scraped=0), never an
///                   error.
///   HEALTH        → router-local SLO evaluation (availability/latency over
///                   the router's windows + last-known shard liveness)
///   HEALTH FLEET  → live-probes every shard's HEALTH, folds the per-shard
///                   verdicts and liveness into one fleet verdict: any
///                   shard down or degraded ⇒ at least degraded; more than
///                   half down ⇒ unhealthy.  Header leads with `status=`,
///                   payload has one line per SLO and per shard.
///
/// Staleness is labeled, never hidden: every gathered read carries a
/// `vclock=v0:v1:...` vector of the per-shard snapshot versions last seen
/// for that graph; a gather across mismatched versions answers from the
/// newest replica as `OK STALE ... reason=version_skew`; a gather with a
/// shard down answers from a live replica (`SHARD FORWARD`, exact because
/// shards hold full replicas) tagged `degraded=1 shards_down=...`.
///
/// Fault handling reuses the fault layer per shard: a RetryPolicy-bounded
/// retry loop (reconnect + backoff) around every call, a CircuitBreaker
/// per shard so a dead shard costs nothing after it trips, and
/// asamap_router_* metrics for all of it.  Tracing: each request opens a
/// root span and every shard call is prefixed `TRACECTX <trace> <span>`,
/// which the shard adopts — one connected cross-process span tree.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asamap/dist/partition_map.hpp"
#include "asamap/fault/retry.hpp"
#include "asamap/net/client.hpp"
#include "asamap/obs/health.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/obs/window.hpp"
#include "asamap/serve/handler.hpp"
#include "asamap/support/histogram.hpp"

namespace asamap::dist {

struct RouterConfig {
  /// Shard endpoints, in shard-id order (index == shard id).
  std::vector<net::ClientConfig> shards;
  /// Per-call retry bounds (reconnect + resend per attempt).
  fault::RetryPolicy retry;
  /// Per-shard circuit breaker (trips after consecutive call failures; an
  /// open breaker fails the shard immediately so degraded reads stay fast).
  fault::BreakerConfig breaker;
  /// Distributed CLUSTER bounds — mirror DistOptions so mode=dist matches
  /// run_distributed_infomap.
  int dist_max_supersteps = 30;
  int dist_max_levels = 30;
  double dist_min_improvement_bits = 1e-10;
  /// Largest DCLUSTER APPLY mover-list payload per message: an early
  /// superstep on a big graph can move a large fraction of all vertices,
  /// and one comma-joined decimal list would blow the 16 MiB frame cap.
  /// The router splits the list at comma boundaries into `APPLY ... more`
  /// chunks (shards defer recompute to the final chunk, so chunked ==
  /// one-shot).  4 MiB leaves ample headroom for the verb + TRACECTX
  /// prefix.
  std::size_t apply_chunk_bytes = 4u << 20;
  /// Windowed-metrics tiers (METRICS WINDOW) and the SLOs the router's own
  /// HEALTH evaluates over them.
  obs::WindowConfig window;
  obs::SloConfig slo;
};

class Router : public serve::RequestHandler {
 public:
  explicit Router(const RouterConfig& config);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Dials every shard; returns how many connected.  Best effort — a shard
  /// that is down reconnects lazily on first use.
  std::size_t connect();

  std::string handle_line(std::string_view line) override;
  obs::MetricRegistry& metrics() noexcept override { return metrics_; }

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }

  /// The windowed view and SLO evaluator over the router's own registry
  /// (METRICS WINDOW / HEALTH); caller-clocked like the serve session's.
  obs::WindowStore& window() noexcept { return window_; }
  obs::HealthTracker& health() noexcept { return health_; }

 private:
  struct Shard {
    explicit Shard(const fault::BreakerConfig& breaker_config)
        : breaker(breaker_config) {}
    net::ClientConfig endpoint;
    std::mutex mu;  ///< serialises the pooled connection
    net::Client client;
    fault::CircuitBreaker breaker;
    std::atomic<bool> up{false};
    obs::Gauge* up_gauge = nullptr;
    obs::Gauge* breaker_gauge = nullptr;
    /// 1 when the last METRICS FLEET / HEALTH FLEET probe reached this
    /// shard, 0 otherwise — the federated view of per-shard liveness.
    obs::Gauge* scraped_gauge = nullptr;
  };

  /// One scatter's outcome: per-shard response + transport success.
  struct Gather {
    std::vector<std::string> responses;
    std::vector<bool> ok;
    std::size_t ok_count = 0;
    [[nodiscard]] bool all_ok() const { return ok_count == ok.size(); }
  };

  struct VerbMetrics {
    obs::Counter* requests = nullptr;
    const char* trace_name = "other";
  };

  std::string dispatch(std::string_view line,
                       const std::vector<std::string_view>& tokens);

  /// One call to shard `i` with retry/reconnect/breaker, TRACECTX-prefixed.
  /// False ⇒ transport-level failure (response untouched); a shard-side
  /// `ERR rejected` (ring full) is retried like a transport failure but
  /// propagated verbatim when attempts run out.
  bool shard_call(std::size_t i, std::string_view line,
                  std::string& response);
  /// shard_call to every shard, in shard order.
  Gather broadcast(std::string_view line);
  /// First live shard's answer to `SHARD FORWARD <line>` — the failover /
  /// fallback read path (exact: shards hold full replicas).  Returns the
  /// shard index or SIZE_MAX.
  std::size_t forward_any(std::string_view line, std::string& response);

  // Verb bodies.
  std::string handle_member(const std::vector<std::string_view>& tokens,
                            std::string_view line);
  std::string handle_same(const std::vector<std::string_view>& tokens,
                          std::string_view line);
  std::string handle_topk(const std::vector<std::string_view>& tokens,
                          std::string_view line);
  std::string handle_summary(const std::vector<std::string_view>& tokens,
                             std::string_view line);
  std::string handle_ingest(std::string_view verb,
                            const std::vector<std::string_view>& tokens,
                            std::string_view line);
  std::string handle_cluster(const std::vector<std::string_view>& tokens,
                             std::string_view line);
  std::string run_dist_cluster(const std::string& name);
  std::string handle_shards();
  std::string handle_stats();
  std::string handle_metrics(const std::vector<std::string_view>& tokens);
  std::string handle_trace(const std::vector<std::string_view>& tokens);
  std::string handle_health(const std::vector<std::string_view>& tokens);

  // --- observability plane (ISSUE 10) -------------------------------------

  /// One shard series parsed out of a `METRICS json` scrape: the key split
  /// into name + label body, and either a scalar or a decoded histogram.
  struct FleetSeries {
    std::string name;
    std::string labels;  ///< original label body, no braces, may be empty
    bool is_hist = false;
    double value = 0.0;
    support::LatencyHistogram hist;
  };

  /// Windowed rates over the router's own registry.
  std::string render_window(std::string_view format);
  /// Router-local HEALTH: own SLOs + last-known (not probed) shard
  /// liveness.
  std::string render_health();
  /// METRICS FLEET: scrape every shard, relabel, aggregate.
  std::string fleet_metrics(std::string_view format);
  /// HEALTH FLEET: live-probe every shard's HEALTH, fold the verdicts.
  std::string fleet_health();
  /// Scrapes shard `i`'s `METRICS json` and parses its asamap_* series.
  /// False ⇒ shard unreachable (out untouched).
  bool scrape_shard_metrics(std::size_t i, std::vector<FleetSeries>& out);
  /// Last-known liveness from the up flags (no network).
  [[nodiscard]] obs::HealthInputs liveness_inputs() const;

  /// Stale/degraded fallback: answer `line` from the newest / any live
  /// replica and re-tag the response.
  std::string stale_fallback(std::string_view line, const std::string& name);
  std::string degraded_fallback(std::string_view line, const std::string& name,
                                const Gather& gather);

  /// Vertex count for `name` (cached from ingest/SUMMARY responses; lazily
  /// fetched via a forwarded SUMMARY).  0 ⇒ unknown.
  graph::VertexId graph_n(const std::string& name, std::string* error_out);
  /// Record a successful response's version/vertices fields for `name`.
  void observe_response(std::size_t shard, const std::string& name,
                        const std::string& response);
  [[nodiscard]] std::string vclock_of(const std::string& name);

  RouterConfig config_;
  obs::MetricRegistry metrics_;
  obs::WindowStore window_;
  obs::HealthTracker health_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::unordered_map<std::string_view, VerbMetrics> verb_metrics_;
  VerbMetrics other_verb_metrics_;
  obs::Histogram* request_seconds_ = nullptr;
  obs::Histogram* scatter_seconds_ = nullptr;
  obs::Counter* shard_calls_total_ = nullptr;
  obs::Counter* retries_total_ = nullptr;
  obs::Counter* degraded_total_ = nullptr;
  obs::Counter* stale_total_ = nullptr;
  obs::Counter* errors_total_ = nullptr;
  obs::Gauge* uptime_ = nullptr;
  obs::Gauge* fleet_up_ = nullptr;
  obs::Gauge* fleet_down_ = nullptr;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> stale_{0};

  std::mutex state_mu_;  ///< guards vclock_ and graph_n_
  /// graph → per-shard last-seen snapshot version (0 = never seen).
  std::unordered_map<std::string, std::vector<std::uint64_t>> vclock_;
  std::unordered_map<std::string, graph::VertexId> graph_n_;
};

}  // namespace asamap::dist
