#pragma once

/// \file shard.hpp
/// ShardSession — one shard of the sharded serving tier (ISSUE 9): a
/// RequestHandler that wraps a full ServeSession and narrows it to the
/// contiguous vertex range `[n*id/N, n*(id+1)/N)` of partition_map.hpp.
///
/// Placement model: every shard ingests the same graph (GEN is
/// deterministic; LOAD reads the same file), so each shard's registry and
/// snapshot are complete replicas — what the range partitions is
/// *serving responsibility* and *proposal work*, not storage.  That keeps
/// single-shard reads bitwise identical to a single-process session and
/// gives the router a free failover path (`SHARD FORWARD`, which answers
/// from the replica ignoring the range check) when a shard dies.
///
/// Protocol, on top of the ServeSession line protocol:
///
///   SHARD INFO                       → OK shard=I shards=N
///   SHARD FORWARD <line...>          execute <line> ignoring range checks
///   TRACECTX <tid> <sid> <line...>   adopt the router's trace context,
///                                    then execute <line> under a
///                                    "shard.request" span — the bridge
///                                    that makes one cross-process span
///                                    tree out of router + shard recorders
///   MEMBER/SAME                      ERR not_found wrong_shard owner=J
///                                    when a vertex is outside the range
///   TOPK <g> <k>                     range-partial: all communities'
///                                    partial flows over own vertices, at
///                                    full precision, for router merging
///   SUMMARY <g>                      range-partial vertex count + global
///                                    codelength/modularity at full
///                                    precision
///   DCLUSTER BEGIN|PROPOSE|APPLY|LEVEL|COMMIT|ABORT <g> ...
///                                    one shard's half of the distributed
///                                    clustering superstep protocol (the
///                                    live form of run_distributed_infomap;
///                                    see router.hpp for the driver side).
///                                    Steps run as kInteractive jobs on the
///                                    inner session's JobScheduler.
///                                    `APPLY <g> <list> more` applies one
///                                    bounded chunk of the superstep's mover
///                                    list and defers recompute/active-set
///                                    swap to the final chunk (sent without
///                                    `more`), so the router can keep every
///                                    frame under the 16 MiB cap without
///                                    changing apply semantics.
///
/// Everything else (GEN/LOAD/CLUSTER/METRICS/...) passes through to the
/// inner session unchanged.  asamap_shard_* metrics are registered on the
/// inner session's registry so one METRICS scrape shows both.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asamap/dist/partition_map.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/serve/handler.hpp"
#include "asamap/serve/session.hpp"

namespace asamap::dist {

struct ShardConfig {
  std::uint32_t shard_id = 0;
  std::uint32_t shards = 1;
};

class ShardSession : public serve::RequestHandler {
 public:
  /// The inner session must outlive the shard wrapper.
  ShardSession(serve::ServeSession& inner, const ShardConfig& config);
  ~ShardSession() override;

  ShardSession(const ShardSession&) = delete;
  ShardSession& operator=(const ShardSession&) = delete;

  std::string handle_line(std::string_view line) override;
  obs::MetricRegistry& metrics() noexcept override {
    return inner_.metrics();
  }

  [[nodiscard]] const ShardConfig& config() const noexcept { return config_; }
  [[nodiscard]] serve::ServeSession& inner() noexcept { return inner_; }

 private:
  struct DclusterState;  ///< superstep engine state, one per graph (.cpp)

  /// Range-partial flow view of one published snapshot, memoised per graph
  /// until the snapshot pointer changes.  Immutable once cached: a snapshot
  /// republish swaps in a freshly built view, so concurrent readers keep a
  /// consistent shared_ptr while they render their response.
  struct RangeView {
    serve::PartitionStore::SnapshotPtr snap;
    std::vector<double> partial_flow;  ///< per community, own range only
    ShardRange range;
  };

  std::string dispatch(std::string_view line);
  std::string handle_shard(std::string_view line,
                           const std::vector<std::string_view>& tokens);
  std::string handle_tracectx(std::string_view line,
                              const std::vector<std::string_view>& tokens);
  std::string handle_ranged_read(std::string_view verb,
                                 const std::vector<std::string_view>& tokens,
                                 std::string_view line);
  std::string handle_dcluster(const std::vector<std::string_view>& tokens);
  /// Runs `fn` as a kInteractive job on the inner scheduler, synchronously.
  /// Returns an ERR line on rejection/failure, else `fn`'s response.
  std::string run_step(const char* label,
                       const std::function<std::string()>& fn);

  /// The range view for `name`'s current snapshot (nullptr when the graph
  /// has no published partition).  Returned by value so the view stays
  /// alive across a concurrent republish on another worker thread.
  std::shared_ptr<const RangeView> range_view(const std::string& name);

  serve::ServeSession& inner_;
  ShardConfig config_;

  obs::Counter* requests_total_ = nullptr;
  obs::Counter* wrong_shard_total_ = nullptr;
  obs::Counter* forwards_total_ = nullptr;
  obs::Counter* dcluster_steps_total_ = nullptr;
  obs::Histogram* dcluster_step_seconds_ = nullptr;

  std::mutex range_mu_;  ///< guards the range_views_ map (views immutable)
  std::unordered_map<std::string, std::shared_ptr<const RangeView>>
      range_views_;

  std::mutex dc_mu_;  ///< serialises the superstep engine
  std::unordered_map<std::string, std::unique_ptr<DclusterState>> dcluster_;
};

}  // namespace asamap::dist
