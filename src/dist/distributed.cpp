#include "asamap/dist/distributed.hpp"

#include "asamap/dist/partition_map.hpp"

#include <algorithm>

#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/support/check.hpp"

namespace asamap::dist {

using core::FlowNetwork;
using core::LevelAddresses;
using core::ModuleState;
using core::Partition;
using graph::VertexId;

// Rank placement is the shared block partition of partition_map.hpp — the
// same make_ranges/owner_of the shard servers and router use, so the
// simulation and the live tier cannot drift on ownership.

DistResult run_distributed_infomap(const graph::CsrGraph& g,
                                   const DistOptions& opts) {
  ASAMAP_CHECK(opts.num_ranks >= 1, "need at least one rank");
  DistResult result;

  core::FlowOptions fopts = opts.flow;
  const FlowNetwork original = core::build_flow(g, fopts);
  FlowNetwork fn = original;

  std::vector<VertexId> node_of_orig(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) node_of_orig[v] = v;

  sim::NullSink sink;
  hashdb::AddressSpace addr_space;
  const core::KernelCosts costs;

  for (int level = 0; level < opts.max_levels; ++level) {
    const VertexId n = fn.num_nodes();
    const auto ranges = make_ranges(n, opts.num_ranks);
    ModuleState state(fn);
    const LevelAddresses addrs = LevelAddresses::for_network(fn, addr_space);

    // Per-rank accumulators (each rank is one process with its own heap).
    std::vector<std::unique_ptr<hashdb::AddressSpace>> rank_heaps;
    std::vector<
        std::unique_ptr<hashdb::ChainedAccumulator<sim::NullSink>>>
        rank_accs;
    for (std::uint32_t r = 0; r < opts.num_ranks; ++r) {
      rank_heaps.push_back(std::make_unique<hashdb::AddressSpace>());
      rank_accs.push_back(
          std::make_unique<hashdb::ChainedAccumulator<sim::NullSink>>(
              sink, *rank_heaps.back()));
    }

    double prev_codelength = state.codelength();
    std::vector<std::uint8_t> active(n, 1), next_active(n, 0);

    for (int step = 0; step < opts.max_supersteps_per_level; ++step) {
      SuperstepTrace st;
      st.level = level;
      st.step = step;

      // --- Local phase: every rank proposes against the stale snapshot.
      // The snapshot is the authoritative state at superstep start; since
      // nothing mutates it during proposal, one shared read-only view
      // faithfully models R replicated stale views.
      std::vector<VertexId> movers;
      core::KernelBreakdown scratch;
      for (std::uint32_t r = 0; r < opts.num_ranks; ++r) {
        for (VertexId v = ranges[r].begin; v < ranges[r].end; ++v) {
          if (!active[v]) continue;
          const core::MoveProposal p =
              core::evaluate_move(state, fn, v, *rank_accs[r], sink, addrs,
                                  costs, scratch);
          if (p.improving(state.module_of(v))) movers.push_back(v);
        }
      }
      st.proposals = movers.size();

      // --- Exchange phase: movers' new assignments are shipped to every
      // rank that owns one of their neighbors.  Count one logical message
      // per (source rank, destination rank) pair with traffic, 8 bytes per
      // (vertex, module) update delivered.
      {
        std::vector<std::uint64_t> pair_traffic(
            std::size_t{opts.num_ranks} * opts.num_ranks, 0);
        for (VertexId v : movers) {
          const std::uint32_t src = owner_of(v, n, ranges);
          for (const graph::Arc& arc : fn.graph.out_neighbors(v)) {
            const std::uint32_t dst = owner_of(arc.dst, n, ranges);
            if (dst != src) {
              ++pair_traffic[std::size_t{src} * opts.num_ranks + dst];
            }
          }
        }
        for (std::uint64_t updates : pair_traffic) {
          if (updates > 0) {
            ++st.messages;
            st.bytes += updates * 8;
          }
        }
      }

      // --- Apply phase: re-validate each proposal against the live state
      // (stale proposals may have become unprofitable) and apply.  Mirrors
      // the conflict resolution distributed Infomap performs after the
      // exchange.
      core::KernelBreakdown apply_bd;
      for (VertexId v : movers) {
        const std::uint32_t r = owner_of(v, n, ranges);
        if (core::find_best_community(state, fn, v, *rank_accs[r], sink,
                                      addrs, costs, apply_bd)) {
          ++st.applied;
          core::mark_neighborhood(fn, v, next_active.data());
        }
      }
      state.recompute();

      st.codelength = state.codelength();
      result.trace.push_back(st);
      result.total_messages += st.messages;
      result.total_bytes += st.bytes;

      if (st.applied == 0 ||
          prev_codelength - state.codelength() < opts.min_improvement_bits) {
        break;
      }
      prev_codelength = state.codelength();
      active.swap(next_active);
      std::fill(next_active.begin(), next_active.end(), 0);
    }

    Partition assignment = state.assignment();
    const std::size_t k = core::compact_communities(assignment);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      node_of_orig[v] = assignment[node_of_orig[v]];
    }
    result.levels = level + 1;
    if (k == n || k <= 1) break;
    fn = core::contract_network(fn, assignment, k);
  }

  result.communities = std::move(node_of_orig);
  result.num_communities = core::compact_communities(result.communities);
  {
    ModuleState final_state(original, result.communities,
                            result.num_communities);
    result.codelength = final_state.codelength();
  }
  return result;
}

}  // namespace asamap::dist
