#include "asamap/dist/shard.hpp"

#include <charconv>
#include <cstdio>
#include <functional>
#include <utility>

#include "asamap/core/infomap.hpp"
#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/sim/event_sink.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::dist {

using core::FlowNetwork;
using core::LevelAddresses;
using core::ModuleState;
using graph::VertexId;

namespace {

// Small local copies of the session.cpp parsing helpers (they are
// file-local there by design — the protocol surface, not the parser, is
// the shared contract).

std::string_view trim_trailing_ws(std::string_view s) {
  while (!s.empty() &&
         (s.back() == '\r' || s.back() == '\n' || s.back() == ' ' ||
          s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

void tokenize_into(std::string_view line,
                   std::vector<std::string_view>& tokens) {
  tokens.clear();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
}

template <typename T>
bool parse_num(std::string_view s, T& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

/// Full-precision rendering for router-side merging: %.17g round-trips a
/// double exactly, so summed partials equal what a local sum of the same
/// terms produces.
std::string fmt_full(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string err(const char* code, const std::string& text) {
  return std::string("ERR ") + code + " " + text;
}

/// Tail of `line` starting at token `tokens[from]` — the verbatim rest of
/// the request for SHARD FORWARD / TRACECTX delegation (preserves inner
/// spacing past the prefix, which tokenization would not).
std::string_view line_tail(std::string_view line,
                           const std::vector<std::string_view>& tokens,
                           std::size_t from) {
  if (from >= tokens.size()) return {};
  const auto off =
      static_cast<std::size_t>(tokens[from].data() - line.data());
  return line.substr(off);
}

/// Communities above which a range-partial TOPK response is refused (the
/// router falls back to SHARD FORWARD).  Bounds the response well under
/// the 16 MiB frame cap.
constexpr std::size_t kMaxPartialCommunities = 200000;

}  // namespace

/// One in-flight distributed clustering, the shard half of the superstep
/// protocol.  Mirrors run_distributed_infomap exactly: same flow build,
/// same per-level ModuleState, same evaluate/re-validate kernels — so the
/// converged codelength matches the simulation bit for bit when the router
/// concatenates movers in shard order.
struct ShardSession::DclusterState {
  serve::GraphRegistry::GraphPtr graph;
  FlowNetwork original;
  FlowNetwork fn;
  std::vector<VertexId> node_of_orig;
  std::unique_ptr<ModuleState> state;
  hashdb::AddressSpace addr_space;
  LevelAddresses addrs{};
  sim::NullSink sink;
  std::unique_ptr<hashdb::AddressSpace> heap;
  std::unique_ptr<hashdb::ChainedAccumulator<sim::NullSink>> acc;
  core::KernelCosts costs;
  std::vector<std::uint8_t> active;
  std::vector<std::uint8_t> next_active;
  /// Moves applied by earlier `APPLY ... more` chunks of the current
  /// superstep; folded into the final chunk's `applied=` total.
  std::size_t pending_applied = 0;
  int level = 0;

  void reset_level() {
    const VertexId n = fn.num_nodes();
    state = std::make_unique<ModuleState>(fn);
    addrs = LevelAddresses::for_network(fn, addr_space);
    heap = std::make_unique<hashdb::AddressSpace>();
    acc = std::make_unique<hashdb::ChainedAccumulator<sim::NullSink>>(sink,
                                                                     *heap);
    active.assign(n, 1);
    next_active.assign(n, 0);
    pending_applied = 0;
  }
};

ShardSession::ShardSession(serve::ServeSession& inner,
                           const ShardConfig& config)
    : inner_(inner), config_(config) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.shard_id >= config_.shards) config_.shard_id = 0;
  obs::MetricRegistry& m = inner_.metrics();
  m.gauge("asamap_shard_id").set(static_cast<double>(config_.shard_id));
  m.gauge("asamap_shard_count").set(static_cast<double>(config_.shards));
  requests_total_ = &m.counter("asamap_shard_requests_total");
  wrong_shard_total_ = &m.counter("asamap_shard_wrong_shard_total");
  forwards_total_ = &m.counter("asamap_shard_forwards_total");
  dcluster_steps_total_ = &m.counter("asamap_shard_dcluster_steps_total");
  dcluster_step_seconds_ =
      &m.histogram("asamap_shard_dcluster_step_seconds");
}

ShardSession::~ShardSession() = default;

std::string ShardSession::handle_line(std::string_view line) {
  requests_total_->inc();
  return dispatch(trim_trailing_ws(line));
}

std::string ShardSession::dispatch(std::string_view line) {
  std::vector<std::string_view> tokens;
  tokenize_into(line, tokens);
  if (tokens.empty()) return inner_.handle_line(line);
  const std::string_view verb = tokens[0];
  if (verb == "TRACECTX") return handle_tracectx(line, tokens);
  if (verb == "SHARD") return handle_shard(line, tokens);
  if (verb == "DCLUSTER") return handle_dcluster(tokens);
  if (verb == "MEMBER" || verb == "SAME" || verb == "TOPK" ||
      verb == "SUMMARY") {
    return handle_ranged_read(verb, tokens, line);
  }
  return inner_.handle_line(line);
}

std::string ShardSession::handle_tracectx(
    std::string_view line, const std::vector<std::string_view>& tokens) {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  if (tokens.size() < 4 || !parse_num(tokens[1], trace_id) ||
      !parse_num(tokens[2], span_id)) {
    return err("invalid_argument", "usage: TRACECTX <trace> <span> <line>");
  }
  // Adopt the router's identity: spans recorded while handling the inner
  // line (including scheduler hops) parent under the router's span, so a
  // merged TRACE DUMP from both processes renders one connected tree.
  obs::TraceScope scope(obs::TraceContext{trace_id, span_id});
  obs::TraceSpan span("shard.request", obs::TraceCat::kSession);
  return dispatch(line_tail(line, tokens, 3));
}

std::string ShardSession::handle_shard(
    std::string_view line, const std::vector<std::string_view>& tokens) {
  if (tokens.size() >= 2 && tokens[1] == "INFO") {
    return "OK shard=" + std::to_string(config_.shard_id) +
           " shards=" + std::to_string(config_.shards);
  }
  if (tokens.size() >= 3 && tokens[1] == "FORWARD") {
    forwards_total_->inc();
    // Failover path: answer from the full replica, range checks waived.
    return inner_.handle_line(line_tail(line, tokens, 2));
  }
  return err("invalid_argument", "usage: SHARD INFO | SHARD FORWARD <line>");
}

std::shared_ptr<const ShardSession::RangeView> ShardSession::range_view(
    const std::string& name) {
  const serve::PartitionStore::SnapshotPtr snap = inner_.snapshot(name);
  if (!snap) return nullptr;
  // The cached view is immutable: a republish builds a fresh RangeView and
  // swaps the map slot, so a concurrent worker still rendering TOPK/SUMMARY
  // from the old view keeps it alive through its shared_ptr.
  std::lock_guard<std::mutex> lock(range_mu_);
  std::shared_ptr<const RangeView>& slot = range_views_[name];
  if (slot && slot->snap == snap) return slot;
  auto rv = std::make_shared<RangeView>();
  const auto n = static_cast<VertexId>(snap->communities.size());
  rv->range = range_of(n, config_.shard_id, config_.shards);
  rv->partial_flow.assign(snap->num_communities, 0.0);
  // Same per-vertex terms as make_snapshot — only the grouping differs, so
  // a router summing shard partials in order reproduces the oracle values
  // to within final-rounding ulps.
  const double total = snap->graph->total_arc_weight();
  if (total > 0.0) {
    for (VertexId v = rv->range.begin; v < rv->range.end; ++v) {
      rv->partial_flow[snap->communities[v]] +=
          snap->graph->out_weight(v) / total;
    }
  }
  rv->snap = snap;
  slot = std::move(rv);
  return slot;
}

std::string ShardSession::handle_ranged_read(
    std::string_view verb, const std::vector<std::string_view>& tokens,
    std::string_view line) {
  // Malformed requests and graphs without a snapshot fall through to the
  // inner session, whose error texts are the canonical ones.
  if (tokens.size() < 2) return inner_.handle_line(line);
  const std::string name(tokens[1]);

  if (verb == "MEMBER" || verb == "SAME") {
    const serve::PartitionStore::SnapshotPtr snap = inner_.snapshot(name);
    if (!snap) return inner_.handle_line(line);
    const auto n = static_cast<VertexId>(snap->communities.size());
    const auto ranges = make_ranges(n, config_.shards);
    const std::size_t first_vertex_token = 2;
    const std::size_t expect = verb == "MEMBER" ? 3 : 4;
    if (tokens.size() != expect) return inner_.handle_line(line);
    for (std::size_t i = first_vertex_token; i < expect; ++i) {
      VertexId v = 0;
      if (!parse_num(tokens[i], v)) return inner_.handle_line(line);
      if (v >= n) return inner_.handle_line(line);  // inner's range error
      const std::uint32_t owner = owner_of(v, n, ranges);
      if (owner != config_.shard_id) {
        wrong_shard_total_->inc();
        return err("not_found",
                   "wrong_shard vertex=" + std::to_string(v) +
                       " owner=" + std::to_string(owner) +
                       " shard=" + std::to_string(config_.shard_id));
      }
    }
    return inner_.handle_line(line);
  }

  if (verb == "TOPK") {
    std::size_t k = 0;
    if (tokens.size() != 3 || !parse_num(tokens[2], k) || k == 0) {
      return inner_.handle_line(line);
    }
    const std::shared_ptr<const RangeView> rv = range_view(name);
    if (!rv) return inner_.handle_line(line);
    if (rv->partial_flow.size() > kMaxPartialCommunities) {
      return err("too_large",
                 "partial merge over " +
                     std::to_string(rv->partial_flow.size()) +
                     " communities; use SHARD FORWARD");
    }
    std::string out = "OK version=" + std::to_string(rv->snap->version) +
                      " shard=" + std::to_string(config_.shard_id) +
                      " shards=" + std::to_string(config_.shards) +
                      " range=" + std::to_string(rv->range.begin) + ":" +
                      std::to_string(rv->range.end) +
                      " k=" + std::to_string(k) +
                      " communities=" + std::to_string(rv->partial_flow.size()) +
                      " partial=";
    for (std::size_t c = 0; c < rv->partial_flow.size(); ++c) {
      if (c > 0) out += ',';
      out += std::to_string(c) + ":" + fmt_full(rv->partial_flow[c]);
    }
    return out;
  }

  // SUMMARY
  if (tokens.size() != 2) return inner_.handle_line(line);
  const std::shared_ptr<const RangeView> rv = range_view(name);
  if (!rv) return inner_.handle_line(line);
  const auto& snap = *rv->snap;
  return "OK version=" + std::to_string(snap.version) +
         " shard=" + std::to_string(config_.shard_id) +
         " shards=" + std::to_string(config_.shards) +
         " range=" + std::to_string(rv->range.begin) + ":" +
         std::to_string(rv->range.end) +
         " vertices=" + std::to_string(rv->range.size()) +
         " arcs=" + std::to_string(snap.graph->num_arcs()) +
         " communities=" + std::to_string(snap.num_communities) +
         " codelength=" + fmt_full(snap.codelength) +
         " modularity=" + fmt_full(snap.modularity) +
         " interrupted=" + (snap.interrupted ? "1" : "0") +
         " job=" + std::to_string(snap.build_job);
}

std::string ShardSession::run_step(const char* label,
                                   const std::function<std::string()>& fn) {
  std::string result;
  // The superstep runs as an interactive job so it shares the scheduler's
  // queueing, stop flags, and trace plumbing with every other unit of work
  // in the process; wait() makes the protocol step synchronous.
  auto submitted = inner_.scheduler().submit(
      [&](const serve::JobContext&) { result = fn(); },
      serve::JobPriority::kInteractive);
  if (!submitted.accepted()) {
    return err("rejected", "dcluster step rejected: " +
                               std::string(submitted.status.text()));
  }
  const serve::JobState state = inner_.scheduler().wait(submitted.id);
  if (state != serve::JobState::kDone) {
    return err("unavailable",
               std::string("dcluster step ") + label + " did not complete");
  }
  return result;
}

std::string ShardSession::handle_dcluster(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 3) {
    return err("invalid_argument",
               "usage: DCLUSTER BEGIN|PROPOSE|APPLY|LEVEL|COMMIT|ABORT "
               "<graph> [...]");
  }
  const std::string_view op = tokens[1];
  const std::string name(tokens[2]);
  dcluster_steps_total_->inc();
  const support::WallTimer timer;
  std::lock_guard<std::mutex> lock(dc_mu_);

  std::string response;
  if (op == "BEGIN") {
    auto graph = inner_.registry().get(name);
    if (!graph) {
      return err("not_found", "unknown graph '" + name + "'");
    }
    response = run_step("begin", [&]() -> std::string {
      auto dc = std::make_unique<DclusterState>();
      dc->graph = graph;
      dc->original = core::build_flow(*graph, core::FlowOptions{});
      dc->fn = dc->original;
      dc->node_of_orig.resize(graph->num_vertices());
      for (VertexId v = 0; v < graph->num_vertices(); ++v) {
        dc->node_of_orig[v] = v;
      }
      dc->reset_level();
      std::string out = "OK graph=" + name +
                        " n=" + std::to_string(dc->fn.num_nodes()) +
                        " codelength=" + fmt_full(dc->state->codelength());
      dcluster_[name] = std::move(dc);
      return out;
    });
  } else {
    const auto it = dcluster_.find(name);
    if (it == dcluster_.end()) {
      return err("not_found", "no dcluster in progress for '" + name + "'");
    }
    DclusterState& dc = *it->second;

    if (op == "PROPOSE") {
      response = run_step("propose", [&]() -> std::string {
        const VertexId n = dc.fn.num_nodes();
        const ShardRange range =
            range_of(n, config_.shard_id, config_.shards);
        core::KernelBreakdown scratch;
        std::string out = "OK movers=";
        std::string list;
        std::size_t count = 0;
        for (VertexId v = range.begin; v < range.end; ++v) {
          if (!dc.active[v]) continue;
          const core::MoveProposal p =
              core::evaluate_move(*dc.state, dc.fn, v, *dc.acc, dc.sink,
                                  dc.addrs, dc.costs, scratch);
          if (p.improving(dc.state->module_of(v))) {
            if (!list.empty()) list += ',';
            list += std::to_string(v);
            ++count;
          }
        }
        out += std::to_string(count) + " list=" + (list.empty() ? "-" : list);
        return out;
      });
    } else if (op == "APPLY") {
      // `more` marks a non-final chunk of the superstep's mover list: apply
      // its moves now, but defer recompute and the active-set swap to the
      // final chunk — chunked APPLY is bitwise identical to one big list
      // while keeping every frame under the 16 MiB cap.
      const bool more = tokens.size() == 5 && tokens[4] == "more";
      if (tokens.size() != 4 && !more) {
        return err("invalid_argument",
                   "usage: DCLUSTER APPLY <graph> <list> [more]");
      }
      // The router concatenates every shard's movers in shard order; each
      // replica applies the full list identically, so all replicas hold
      // the same module state without shipping aggregates.
      std::vector<VertexId> movers;
      if (tokens[3] != "-") {
        std::string_view list = tokens[3];
        while (!list.empty()) {
          const std::size_t comma = list.find(',');
          const std::string_view tok = list.substr(0, comma);
          VertexId v = 0;
          if (!parse_num(tok, v) || v >= dc.fn.num_nodes()) {
            return err("invalid_argument", "bad mover list");
          }
          movers.push_back(v);
          list = comma == std::string_view::npos ? std::string_view{}
                                                 : list.substr(comma + 1);
        }
      }
      response = run_step("apply", [&]() -> std::string {
        core::KernelBreakdown bd;
        for (const VertexId v : movers) {
          if (core::find_best_community(*dc.state, dc.fn, v, *dc.acc,
                                        dc.sink, dc.addrs, dc.costs, bd)) {
            ++dc.pending_applied;
            core::mark_neighborhood(dc.fn, v, dc.next_active.data());
          }
        }
        if (more) {
          return "OK more=1 applied=" + std::to_string(dc.pending_applied);
        }
        const std::size_t applied = dc.pending_applied;
        dc.pending_applied = 0;
        dc.state->recompute();
        dc.active.swap(dc.next_active);
        std::fill(dc.next_active.begin(), dc.next_active.end(), 0);
        return "OK applied=" + std::to_string(applied) +
               " codelength=" + fmt_full(dc.state->codelength());
      });
    } else if (op == "LEVEL") {
      response = run_step("level", [&]() -> std::string {
        const VertexId n = dc.fn.num_nodes();
        core::Partition assignment = dc.state->assignment();
        const std::size_t k = core::compact_communities(assignment);
        for (VertexId v = 0; v < dc.node_of_orig.size(); ++v) {
          dc.node_of_orig[v] = assignment[dc.node_of_orig[v]];
        }
        if (k == n || k <= 1) {
          return "OK done=1 communities=" + std::to_string(k);
        }
        dc.fn = core::contract_network(dc.fn, assignment, k);
        ++dc.level;
        dc.reset_level();
        return "OK done=0 n=" + std::to_string(dc.fn.num_nodes()) +
               " codelength=" + fmt_full(dc.state->codelength());
      });
    } else if (op == "COMMIT") {
      response = run_step("commit", [&]() -> std::string {
        core::InfomapResult result;
        result.communities = dc.node_of_orig;
        result.num_communities =
            core::compact_communities(result.communities);
        ModuleState final_state(dc.original, result.communities,
                                result.num_communities);
        result.codelength = final_state.codelength();
        const std::uint64_t version =
            inner_.store().publish(name,
                                   serve::make_snapshot(dc.graph, result));
        return "OK version=" + std::to_string(version) +
               " communities=" + std::to_string(result.num_communities) +
               " codelength=" + fmt_full(result.codelength);
      });
      if (response.rfind("OK", 0) == 0) dcluster_.erase(name);
    } else if (op == "ABORT") {
      dcluster_.erase(name);
      response = "OK aborted=" + name;
    } else {
      return err("invalid_argument",
                 "unknown DCLUSTER op '" + std::string(op) + "'");
    }
  }
  dcluster_step_seconds_->record_seconds(timer.seconds());
  return response;
}

}  // namespace asamap::dist
