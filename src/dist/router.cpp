#include "asamap/dist/router.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <thread>

#include "asamap/benchutil/json_env.hpp"
#include "asamap/fault/fault.hpp"
#include "asamap/obs/build_info.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::dist {

using graph::VertexId;

namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

std::string_view trim_trailing_ws(std::string_view s) {
  while (!s.empty() &&
         (s.back() == '\r' || s.back() == '\n' || s.back() == ' ' ||
          s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

void tokenize_into(std::string_view line,
                   std::vector<std::string_view>& tokens) {
  tokens.clear();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
}

template <typename T>
bool parse_num(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string err(const char* code, std::string_view message) {
  std::string out = "ERR ";
  out += code;
  out += ' ';
  out += message;
  return out;
}

std::string enveloped(const char* format, std::string payload) {
  std::string out = "OK format=";
  out += format;
  out += " bytes=" + std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// `key=` value on the response's first line, matched at token boundaries;
/// empty when absent.
std::string_view field(std::string_view resp, std::string_view key) {
  const std::size_t eol = resp.find('\n');
  if (eol != std::string_view::npos) resp = resp.substr(0, eol);
  std::size_t pos = 0;
  while (pos < resp.size()) {
    pos = resp.find(key, pos);
    if (pos == std::string_view::npos) return {};
    if (pos == 0 || resp[pos - 1] == ' ') {
      const std::size_t start = pos + key.size();
      const std::size_t end = resp.find(' ', start);
      return resp.substr(start, end == std::string_view::npos
                                    ? std::string_view::npos
                                    : end - start);
    }
    ++pos;
  }
  return {};
}

const char* breaker_name(fault::CircuitBreaker::State s) {
  switch (s) {
    case fault::CircuitBreaker::State::kClosed: return "closed";
    case fault::CircuitBreaker::State::kOpen: return "open";
    case fault::CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "?";
}

/// Verbs the router understands; everything else is either unsupported
/// shard-local machinery (WAIT/CANCEL/DELTA/FAULTS) or unknown.
constexpr std::string_view kRouterVerbs[] = {
    "GEN",     "LOAD", "DROP",    "CLUSTER", "ADD_EDGE", "DEL_EDGE",
    "APPLY",   "MEMBER", "SAME",  "TOPK",    "SUMMARY",  "SHARDS",
    "STATS",   "METRICS", "HEALTH", "TRACE", "QUIT"};

std::string verb_label(std::string_view verb) {
  return "verb=\"" + std::string(verb) + "\"";
}

/// The monotonic clock the window/health layer is fed from.
std::uint64_t mono_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Inverse of escape_json for the self-produced metric keys a fleet scrape
/// reads back (only \" \\ \n \t ever appear there).
std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      default: out += s[i]; break;  // \" and \\ (and anything exotic, as-is)
    }
  }
  return out;
}

/// `"key": <number>` lookup inside a one-line JSON object.
bool json_number_field(std::string_view obj, std::string_view key,
                       double& out) {
  const std::string needle = "\"" + std::string(key) + "\": ";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string_view::npos) return false;
  std::string_view rest = obj.substr(pos + needle.size());
  const std::size_t end = rest.find_first_of(",}");
  return parse_double(rest.substr(0, end), out);
}

/// `"key": "<value>"` lookup inside a one-line JSON object (the buckets
/// field — digits, colons, commas only, so no unescaping needed).
std::string_view json_string_field(std::string_view obj,
                                   std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\": \"";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string_view::npos) return {};
  std::string_view rest = obj.substr(pos + needle.size());
  return rest.substr(0, rest.find('"'));
}

/// `labels` with `shard="<id>"` appended.
std::string with_shard_label(const std::string& labels,
                             std::string_view shard) {
  std::string out = labels;
  if (!out.empty()) out += ',';
  out += "shard=\"";
  out += shard;
  out += '"';
  return out;
}

}  // namespace

Router::Router(const RouterConfig& config)
    : config_(config),
      window_(metrics_, config_.window, mono_now_ns()),
      health_(metrics_, window_, config_.slo, "asamap_router_requests_total",
              "asamap_router_errors_total", "asamap_router_request_seconds") {
  metrics_.gauge("asamap_router_shards")
      .set(static_cast<double>(config_.shards.size()));
  // Build identity + fleet gauges, pre-registered so a fresh scrape (and
  // --print-metrics) enumerates the full schema before any FLEET probe.
  uptime_ = &metrics_.gauge("asamap_uptime_seconds");
  uptime_->set(obs::process_uptime_seconds());
  fleet_up_ = &metrics_.gauge("asamap_fleet_shards_up");
  fleet_down_ = &metrics_.gauge("asamap_fleet_shards_down");
  for (const std::string_view verb : kRouterVerbs) {
    VerbMetrics vm;
    vm.requests =
        &metrics_.counter("asamap_router_requests_total", verb_label(verb));
    vm.trace_name = verb.data();  // the literals above are NUL-terminated
    verb_metrics_.emplace(verb, vm);
  }
  other_verb_metrics_.requests =
      &metrics_.counter("asamap_router_requests_total", verb_label("other"));
  request_seconds_ = &metrics_.histogram("asamap_router_request_seconds");
  scatter_seconds_ = &metrics_.histogram("asamap_router_scatter_seconds");
  shard_calls_total_ = &metrics_.counter("asamap_router_shard_calls_total");
  retries_total_ = &metrics_.counter("asamap_router_retries_total");
  degraded_total_ = &metrics_.counter("asamap_router_degraded_total");
  stale_total_ = &metrics_.counter("asamap_router_stale_total");
  errors_total_ = &metrics_.counter("asamap_router_errors_total");
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    auto shard = std::make_unique<Shard>(config_.breaker);
    shard->endpoint = config_.shards[i];
    const std::string label = "shard=\"" + std::to_string(i) + "\"";
    shard->up_gauge = &metrics_.gauge("asamap_router_shard_up", label);
    shard->breaker_gauge =
        &metrics_.gauge("asamap_router_breaker_state", label);
    shard->scraped_gauge =
        &metrics_.gauge("asamap_fleet_shard_scraped", label);
    shards_.push_back(std::move(shard));
  }
}

Router::~Router() = default;

std::size_t Router::connect() {
  std::size_t reached = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const bool ok = shard->client.connect(shard->endpoint).ok();
    shard->up.store(ok, std::memory_order_relaxed);
    shard->up_gauge->set(ok ? 1 : 0);
    if (ok) ++reached;
  }
  return reached;
}

bool Router::shard_call(std::size_t i, std::string_view line,
                        std::string& response) {
  Shard& s = *shards_[i];
  if (!s.breaker.allow()) {
    s.breaker_gauge->set(static_cast<double>(static_cast<int>(s.breaker.state())));
    return false;
  }
  // Ship the request under the caller's trace identity so the shard's
  // spans (and its scheduler jobs) parent under this router span.
  const obs::TraceContext ctx = obs::current_trace();
  std::string wire;
  if (ctx.active()) {
    wire = "TRACECTX " + std::to_string(ctx.trace_id) + " " +
           std::to_string(ctx.span_id) + " ";
  }
  wire += line;

  std::string rejected;  // a delivered `ERR rejected` (ring full)
  for (int attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_total_->inc();
      retries_.fetch_add(1, std::memory_order_relaxed);
      auto backoff = config_.retry.initial_backoff * (1 << (attempt - 1));
      std::this_thread::sleep_for(
          std::min<std::chrono::milliseconds>(backoff,
                                              config_.retry.max_backoff));
    }
    std::string resp;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      shard_calls_total_->inc();
      if (!s.client.connected() && !s.client.connect(s.endpoint).ok()) {
        continue;
      }
      if (!s.client.request(wire, resp).ok()) continue;
    }
    if (starts_with(resp, "ERR rejected")) {
      // Shard-side backpressure: retry like a transport failure, but the
      // shard is alive (the rejection was delivered) — count it as breaker
      // success, and when attempts run out propagate the rejection verbatim
      // instead of failing the shard.
      s.breaker.record_success();
      s.up.store(true, std::memory_order_relaxed);
      s.up_gauge->set(1);
      rejected = std::move(resp);
      continue;
    }
    s.breaker.record_success();
    s.up.store(true, std::memory_order_relaxed);
    s.up_gauge->set(1);
    s.breaker_gauge->set(static_cast<double>(static_cast<int>(s.breaker.state())));
    response = std::move(resp);
    return true;
  }
  if (!rejected.empty()) {
    response = std::move(rejected);
    return true;
  }
  s.breaker.record_failure();
  s.up.store(false, std::memory_order_relaxed);
  s.up_gauge->set(0);
  s.breaker_gauge->set(static_cast<double>(static_cast<int>(s.breaker.state())));
  return false;
}

Router::Gather Router::broadcast(std::string_view line) {
  const support::WallTimer timer;
  Gather g;
  g.responses.resize(shards_.size());
  g.ok.assign(shards_.size(), false);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    g.ok[i] = shard_call(i, line, g.responses[i]);
    if (g.ok[i]) ++g.ok_count;
  }
  scatter_seconds_->record_seconds(timer.seconds());
  return g;
}

std::size_t Router::forward_any(std::string_view line,
                                std::string& response) {
  std::string wire = "SHARD FORWARD ";
  wire += line;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shard_call(i, wire, response)) return i;
  }
  return kNoShard;
}

void Router::observe_response(std::size_t shard, const std::string& name,
                              const std::string& response) {
  std::uint64_t version = 0;
  VertexId vertices = 0;
  const bool has_version = parse_num(field(response, "version="), version);
  const bool has_vertices = parse_num(field(response, "vertices="), vertices);
  if (!has_version && !has_vertices) return;
  std::lock_guard<std::mutex> lock(state_mu_);
  if (has_version) {
    auto& clock = vclock_[name];
    clock.resize(shards_.size(), 0);
    clock[shard] = std::max(clock[shard], version);
  }
  // SUMMARY merges report the global count; per-shard partials are tagged
  // with range= and must not clobber the global vertex count.
  if (has_vertices && field(response, "range=").empty()) {
    graph_n_[name] = vertices;
  }
}

std::string Router::vclock_of(const std::string& name) {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto& clock = vclock_[name];
  clock.resize(shards_.size(), 0);
  std::string out;
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (i > 0) out += ':';
    out += std::to_string(clock[i]);
  }
  return out;
}

graph::VertexId Router::graph_n(const std::string& name,
                                std::string* error_out) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto it = graph_n_.find(name);
    if (it != graph_n_.end() && it->second > 0) return it->second;
  }
  // Learn it from any live replica (also primes the vclock).
  std::string resp;
  const std::size_t idx = forward_any("SUMMARY " + name, resp);
  if (idx == kNoShard) {
    if (error_out) *error_out = err("unavailable", "no shard reachable");
    return 0;
  }
  if (!starts_with(resp, "OK")) {
    if (error_out) *error_out = resp;  // canonical unknown-graph/no-partition
    return 0;
  }
  observe_response(idx, name, resp);
  VertexId n = 0;
  parse_num(field(resp, "vertices="), n);
  if (n == 0 && error_out) {
    *error_out = err("unavailable", "could not determine vertex count");
  }
  return n;
}

std::string Router::handle_line(std::string_view raw) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string_view line = trim_trailing_ws(raw);
  std::vector<std::string_view> tokens;
  tokenize_into(line, tokens);
  if (tokens.empty()) return err("invalid_argument", "empty request");
  const auto it = verb_metrics_.find(tokens[0]);
  const VerbMetrics& vm =
      it == verb_metrics_.end() ? other_verb_metrics_ : it->second;
  vm.requests->inc();
  const support::WallTimer timer;
  std::string response;
  {
    obs::TraceSpan span(vm.trace_name, obs::TraceCat::kSession);
    response = dispatch(line, tokens);
  }
  request_seconds_->record_seconds(timer.seconds());
  if (starts_with(response, "ERR")) errors_total_->inc();
  return response;
}

std::string Router::dispatch(std::string_view line,
                             const std::vector<std::string_view>& tokens) {
  const std::string_view verb = tokens[0];
  if (verb == "MEMBER") return handle_member(tokens, line);
  if (verb == "SAME") return handle_same(tokens, line);
  if (verb == "TOPK") return handle_topk(tokens, line);
  if (verb == "SUMMARY") return handle_summary(tokens, line);
  if (verb == "CLUSTER") return handle_cluster(tokens, line);
  if (verb == "GEN" || verb == "LOAD" || verb == "DROP" ||
      verb == "ADD_EDGE" || verb == "DEL_EDGE" || verb == "APPLY") {
    return handle_ingest(verb, tokens, line);
  }
  if (verb == "SHARDS") return handle_shards();
  if (verb == "STATS") return handle_stats();
  if (verb == "METRICS") return handle_metrics(tokens);
  if (verb == "HEALTH") return handle_health(tokens);
  if (verb == "TRACE") return handle_trace(tokens);
  if (verb == "QUIT") return "OK bye";
  if (verb == "WAIT" || verb == "CANCEL" || verb == "DELTA" ||
      verb == "FAULTS") {
    return err("invalid_argument",
               "verb '" + std::string(verb) +
                   "' is shard-local; connect to a shard directly");
  }
  return err("invalid_argument",
             "unknown command '" + std::string(verb) + "'");
}

std::string Router::handle_member(
    const std::vector<std::string_view>& tokens, std::string_view line) {
  if (tokens.size() != 3) {
    return err("invalid_argument", "usage: MEMBER <name> <vertex>");
  }
  VertexId v = 0;
  if (!parse_num(tokens[2], v)) {
    return err("invalid_argument", "bad vertex id");
  }
  const std::string name(tokens[1]);
  std::string error;
  const VertexId n = graph_n(name, &error);
  if (n == 0) return error;
  if (v >= n) {
    return err("invalid_argument",
               "vertex " + std::to_string(v) + " out of range (graph has " +
                   std::to_string(n) + " vertices)");
  }
  std::size_t owner = owner_of(v, n, make_ranges(n, shards_.size()));
  std::string resp;
  if (shard_call(owner, line, resp)) {
    if (starts_with(resp, "ERR not_found wrong_shard")) {
      // The cached vertex count drifted (re-ingest); relearn and retry.
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        graph_n_.erase(name);
      }
      const VertexId n2 = graph_n(name, &error);
      if (n2 == 0) return error;
      owner = owner_of(v, n2, make_ranges(n2, shards_.size()));
      if (!shard_call(owner, line, resp)) resp.clear();
    }
    if (!resp.empty()) {
      observe_response(owner, name, resp);
      if (starts_with(resp, "OK")) resp += " vclock=" + vclock_of(name);
      return resp;
    }
  }
  // Owner down: exact failover to any live replica, labeled degraded.
  std::string fwd;
  const std::size_t idx = forward_any(line, fwd);
  if (idx == kNoShard) {
    return err("unavailable", "no shard available for MEMBER");
  }
  degraded_total_->inc();
  degraded_.fetch_add(1, std::memory_order_relaxed);
  observe_response(idx, name, fwd);
  if (starts_with(fwd, "OK")) {
    fwd += " degraded=1 vclock=" + vclock_of(name);
  }
  return fwd;
}

std::string Router::handle_same(const std::vector<std::string_view>& tokens,
                                std::string_view line) {
  if (tokens.size() != 4) {
    return err("invalid_argument", "usage: SAME <name> <u> <v>");
  }
  VertexId u = 0, v = 0;
  if (!parse_num(tokens[2], u) || !parse_num(tokens[3], v)) {
    return err("invalid_argument", "bad vertex id");
  }
  const std::string name(tokens[1]);
  std::string error;
  // Up to one relearn round, mirroring handle_member: a shard answering
  // `wrong_shard` means the cached vertex count drifted (the graph was
  // re-ingested behind the router's back, e.g. directly on the shards) —
  // drop the cache, relearn n from a fresh SUMMARY, recompute owners,
  // retry once.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const VertexId n = graph_n(name, &error);
    if (n == 0) return error;
    if (u >= n || v >= n) {
      return err("invalid_argument", "vertex out of range");
    }
    const auto ranges = make_ranges(n, shards_.size());
    const std::size_t ou = owner_of(u, n, ranges);
    const std::size_t ov = owner_of(v, n, ranges);
    bool relearn = false;
    const auto note_wrong_shard = [&](const std::string& resp) -> bool {
      if (!starts_with(resp, "ERR not_found wrong_shard")) return false;
      std::lock_guard<std::mutex> lock(state_mu_);
      graph_n_.erase(name);
      relearn = true;
      return true;
    };

    if (ou == ov) {
      // Co-located: one shard answers exactly like a single process.
      std::string resp;
      if (shard_call(ou, line, resp)) {
        if (note_wrong_shard(resp) && attempt == 0) continue;
        observe_response(ou, name, resp);
        if (starts_with(resp, "OK")) resp += " vclock=" + vclock_of(name);
        return resp;
      }
      std::string fwd;
      const std::size_t idx = forward_any(line, fwd);
      if (idx == kNoShard) {
        return err("unavailable", "no shard available for SAME");
      }
      degraded_total_->inc();
      degraded_.fetch_add(1, std::memory_order_relaxed);
      observe_response(idx, name, fwd);
      if (starts_with(fwd, "OK")) {
        fwd += " degraded=1 vclock=" + vclock_of(name);
      }
      return fwd;
    }

    // Cross-shard: one MEMBER leg per owner, composed here.
    bool degraded = false;
    const auto member_leg =
        [&](VertexId vertex, std::size_t owner, std::uint64_t& version,
            std::uint64_t& community, std::string& fail) -> bool {
      const std::string leg = "MEMBER " + name + " " + std::to_string(vertex);
      std::string resp;
      std::size_t responder = owner;
      if (!shard_call(owner, leg, resp)) {
        responder = forward_any(leg, resp);
        if (responder == kNoShard) {
          fail = err("unavailable", "no shard available for SAME");
          return false;
        }
        degraded = true;
      }
      if (!starts_with(resp, "OK")) {
        note_wrong_shard(resp);
        fail = std::move(resp);
        return false;
      }
      observe_response(responder, name, resp);
      if (!parse_num(field(resp, "version="), version) ||
          !parse_num(field(resp, "community="), community)) {
        fail = err("unavailable", "malformed MEMBER response from shard");
        return false;
      }
      return true;
    };

    std::uint64_t vu = 0, cu = 0, vv = 0, cv = 0;
    std::string fail;
    if (!member_leg(u, ou, vu, cu, fail) ||
        !member_leg(v, ov, vv, cv, fail)) {
      if (relearn && attempt == 0) continue;
      return fail;
    }
    if (degraded) {
      degraded_total_->inc();
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }

    std::string out;
    if (vu == vv) {
      out = "OK version=" + std::to_string(vu);
    } else {
      stale_total_->inc();
      stale_.fetch_add(1, std::memory_order_relaxed);
      out = "OK STALE version=" + std::to_string(std::max(vu, vv));
    }
    out += " u=" + std::to_string(u) + " v=" + std::to_string(v) +
           " cu=" + std::to_string(cu) + " cv=" + std::to_string(cv) +
           " same=" + (cu == cv ? "1" : "0");
    if (vu != vv) out += " reason=version_skew";
    if (degraded) out += " degraded=1";
    out += " vclock=" + vclock_of(name);
    return out;
  }
  return err("unavailable", "SAME owners unstable across retries");
}

std::string Router::stale_fallback(std::string_view line,
                                   const std::string& name) {
  // Answer from the newest replica; shards are full replicas, so its global
  // answer is exact at its version — only cross-shard coherence is lost.
  std::size_t newest = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto& clock = vclock_[name];
    clock.resize(shards_.size(), 0);
    newest = static_cast<std::size_t>(
        std::max_element(clock.begin(), clock.end()) - clock.begin());
  }
  std::string wire = "SHARD FORWARD ";
  wire += line;
  std::string resp;
  std::size_t responder = newest;
  if (!shard_call(newest, wire, resp)) {
    responder = forward_any(line, resp);
    if (responder == kNoShard) {
      return err("unavailable", "no shard reachable");
    }
  }
  if (!starts_with(resp, "OK")) return resp;
  observe_response(responder, name, resp);
  stale_total_->inc();
  stale_.fetch_add(1, std::memory_order_relaxed);
  std::string out = "OK STALE ";
  out += std::string_view(resp).substr(3);  // past "OK "
  out += " reason=version_skew vclock=" + vclock_of(name);
  return out;
}

std::string Router::degraded_fallback(std::string_view line,
                                      const std::string& name,
                                      const Gather& gather) {
  std::string resp;
  const std::size_t idx = forward_any(line, resp);
  if (idx == kNoShard) return err("unavailable", "no shard reachable");
  degraded_total_->inc();
  degraded_.fetch_add(1, std::memory_order_relaxed);
  observe_response(idx, name, resp);
  if (!starts_with(resp, "OK")) return resp;
  std::string down;
  for (std::size_t i = 0; i < gather.ok.size(); ++i) {
    if (!gather.ok[i]) {
      if (!down.empty()) down += ',';
      down += std::to_string(i);
    }
  }
  resp += " degraded=1 shards_down=" + down + " vclock=" + vclock_of(name);
  return resp;
}

std::string Router::handle_topk(const std::vector<std::string_view>& tokens,
                                std::string_view line) {
  if (tokens.size() != 3) {
    return err("invalid_argument", "usage: TOPK <name> <k>");
  }
  std::size_t k = 0;
  if (!parse_num(tokens[2], k) || k == 0) {
    return err("invalid_argument", "bad k");
  }
  const std::string name(tokens[1]);
  Gather g = broadcast(line);
  if (g.ok_count == 0) return err("unavailable", "no shard reachable");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!g.ok[i]) continue;
    if (starts_with(g.responses[i], "ERR too_large")) {
      // Shard refused the partial (too many communities) — the forwarded
      // global answer is still exact.
      std::string resp;
      const std::size_t idx = forward_any(line, resp);
      if (idx == kNoShard) return err("unavailable", "no shard reachable");
      observe_response(idx, name, resp);
      if (starts_with(resp, "OK")) resp += " vclock=" + vclock_of(name);
      return resp;
    }
    if (starts_with(g.responses[i], "ERR")) return g.responses[i];
    if (field(g.responses[i], "range=").empty()) {
      // A backend answering TOPK globally (a plain asamap_serve started
      // without --shard-id) is not a range shard; merging its reply would
      // silently drop its flows.  Refuse loudly — topology misconfiguration.
      return err("misconfigured",
                 "shard " + std::to_string(i) +
                     " returned a non-partial TOPK reply; backend is not "
                     "running with --shard-id/--shards");
    }
    observe_response(i, name, g.responses[i]);
  }
  if (!g.all_ok()) return degraded_fallback(line, name, g);

  // All shards answered with range partials: check version coherence.
  std::uint64_t version = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::uint64_t vi = 0;
    parse_num(field(g.responses[i], "version="), vi);
    if (i == 0) {
      version = vi;
    } else if (vi != version) {
      return stale_fallback(line, name);
    }
  }

  // Merge: sum per-community partial flows in shard order (matches the
  // left-to-right vertex order of make_snapshot up to final-rounding ulps),
  // then sort exactly like the oracle (flow desc, id asc).
  std::vector<double> flow;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::string_view partial = field(g.responses[i], "partial=");
    std::size_t communities = 0;
    parse_num(field(g.responses[i], "communities="), communities);
    // Compare shapes against shard 0 even when it reported 0 communities —
    // `flow.empty()` would silently re-seed from a later shard.
    if (i == 0) {
      flow.assign(communities, 0.0);
    } else if (communities != flow.size()) {
      return stale_fallback(line, name);  // replicas disagree on shape
    }
    while (!partial.empty()) {
      const std::size_t comma = partial.find(',');
      const std::string_view pair = partial.substr(0, comma);
      const std::size_t colon = pair.find(':');
      std::size_t c = 0;
      double f = 0.0;
      if (colon == std::string_view::npos ||
          !parse_num(pair.substr(0, colon), c) ||
          !parse_double(pair.substr(colon + 1), f) || c >= flow.size()) {
        return err("unavailable", "malformed shard partial");
      }
      flow[c] += f;
      partial = comma == std::string_view::npos ? std::string_view{}
                                                : partial.substr(comma + 1);
    }
  }
  std::vector<VertexId> by_flow(flow.size());
  std::iota(by_flow.begin(), by_flow.end(), VertexId{0});
  std::sort(by_flow.begin(), by_flow.end(), [&](VertexId a, VertexId b) {
    if (flow[a] != flow[b]) return flow[a] > flow[b];
    return a < b;
  });
  k = std::min(k, by_flow.size());
  std::string out = "OK version=" + std::to_string(version) +
                    " k=" + std::to_string(k) + " top=";
  for (std::size_t i = 0; i < k; ++i) {
    const VertexId c = by_flow[i];
    if (i > 0) out += ',';
    out += std::to_string(c) + ":" + fmt_double(flow[c]);
  }
  out += " vclock=" + vclock_of(name);
  return out;
}

std::string Router::handle_summary(
    const std::vector<std::string_view>& tokens, std::string_view line) {
  if (tokens.size() != 2) {
    return err("invalid_argument", "usage: SUMMARY <name>");
  }
  const std::string name(tokens[1]);
  Gather g = broadcast(line);
  if (g.ok_count == 0) return err("unavailable", "no shard reachable");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!g.ok[i]) continue;
    if (starts_with(g.responses[i], "ERR")) return g.responses[i];
    if (field(g.responses[i], "range=").empty()) {
      // Same guard as TOPK: a global SUMMARY from a non-shard backend
      // would double-count vertices and corrupt the cached vertex count.
      return err("misconfigured",
                 "shard " + std::to_string(i) +
                     " returned a non-partial SUMMARY reply; backend is "
                     "not running with --shard-id/--shards");
    }
    observe_response(i, name, g.responses[i]);
  }
  if (!g.all_ok()) return degraded_fallback(line, name, g);

  std::uint64_t version = 0;
  std::uint64_t vertices = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::uint64_t vi = 0;
    parse_num(field(g.responses[i], "version="), vi);
    if (i == 0) {
      version = vi;
    } else if (vi != version) {
      return stale_fallback(line, name);
    }
    std::uint64_t range_vertices = 0;
    parse_num(field(g.responses[i], "vertices="), range_vertices);
    vertices += range_vertices;  // ranges partition [0, n)
  }
  const std::string& first = g.responses[0];
  double codelength = 0.0, modularity = 0.0;
  parse_double(field(first, "codelength="), codelength);
  parse_double(field(first, "modularity="), modularity);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    graph_n_[name] = static_cast<VertexId>(vertices);
  }
  std::string out =
      "OK version=" + std::to_string(version) +
      " vertices=" + std::to_string(vertices) +
      " arcs=" + std::string(field(first, "arcs=")) +
      " communities=" + std::string(field(first, "communities=")) +
      " codelength=" + fmt_double(codelength) +
      " modularity=" + fmt_double(modularity) +
      " interrupted=" + std::string(field(first, "interrupted=")) +
      " job=" + std::string(field(first, "job="));
  out += " vclock=" + vclock_of(name);
  return out;
}

std::string Router::handle_ingest(std::string_view verb,
                                  const std::vector<std::string_view>& tokens,
                                  std::string_view line) {
  if (tokens.size() < 2) {
    return err("invalid_argument",
               "usage: " + std::string(verb) + " <name> ...");
  }
  const std::string name(tokens[1]);
  const Gather g = broadcast(line);
  if (g.ok_count == 0) return err("unavailable", "no shard reachable");
  std::size_t first_ok = kNoShard;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!g.ok[i]) continue;
    if (first_ok == kNoShard) first_ok = i;
    observe_response(i, name, g.responses[i]);
  }
  if (!g.all_ok()) {
    // A replica missed a mutation: refuse rather than silently diverge
    // (reads would keep serving the old state everywhere anyway).
    std::string down;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (!g.ok[i]) {
        if (!down.empty()) down += ',';
        down += std::to_string(i);
      }
    }
    return err("unavailable",
               "replicated " + std::string(verb) +
                   " incomplete; shards_down=" + down);
  }
  if (verb == "DROP") {
    std::lock_guard<std::mutex> lock(state_mu_);
    vclock_.erase(name);
    graph_n_.erase(name);
  }
  return g.responses[first_ok];
}

std::string Router::handle_cluster(
    const std::vector<std::string_view>& tokens, std::string_view line) {
  if (tokens.size() < 2) {
    return err("invalid_argument",
               "usage: CLUSTER <name> [sync] [mode=dist] [...]");
  }
  const std::string name(tokens[1]);
  bool dist_mode = false;
  std::string replicated = "CLUSTER " + name + " sync";  // forced sync: every
  // replica must publish before the router answers, else reads skew.
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (tokens[i] == "mode=dist") {
      dist_mode = true;
    } else if (tokens[i] != "sync") {
      replicated += ' ';
      replicated += tokens[i];
    }
  }
  if (dist_mode) return run_dist_cluster(name);

  const Gather g = broadcast(replicated);
  if (g.ok_count == 0) return err("unavailable", "no shard reachable");
  std::size_t first_ok = kNoShard;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!g.ok[i]) continue;
    if (first_ok == kNoShard) first_ok = i;
    observe_response(i, name, g.responses[i]);
  }
  std::string out = g.responses[first_ok];
  if (!g.all_ok() && starts_with(out, "OK")) {
    // The replicas that answered did publish; the dead one will be skewed
    // when it returns — exactly what vclock/STALE reads are for.
    degraded_total_->inc();
    degraded_.fetch_add(1, std::memory_order_relaxed);
    out += " degraded=1";
  }
  if (starts_with(out, "OK")) out += " vclock=" + vclock_of(name);
  return out;
}

std::string Router::run_dist_cluster(const std::string& name) {
  // The live form of run_distributed_infomap: shards propose over their
  // ranges against replicated module state; the router is the exchange,
  // concatenating movers in shard order and broadcasting one identical
  // apply list.  Same kernels, same order ⇒ same codelength as the
  // simulation with num_ranks == shards.
  const auto fail = [&](const std::string& why) {
    broadcast("DCLUSTER ABORT " + name);  // best effort
    return err("unavailable", "distributed cluster failed: " + why);
  };
  const auto all_ok = [](const Gather& g) {
    if (!g.all_ok()) return false;
    for (const std::string& r : g.responses) {
      if (!starts_with(r, "OK")) return false;
    }
    return true;
  };

  Gather g = broadcast("DCLUSTER BEGIN " + name);
  if (!all_ok(g)) {
    for (std::size_t i = 0; i < g.responses.size(); ++i) {
      if (g.ok[i] && starts_with(g.responses[i], "ERR")) {
        broadcast("DCLUSTER ABORT " + name);
        return g.responses[i];  // canonical (unknown graph, ...)
      }
    }
    return fail("BEGIN incomplete");
  }
  double prev = 0.0;
  parse_double(field(g.responses[0], "codelength="), prev);

  int levels = 0;
  std::uint64_t supersteps = 0;
  for (int level = 0; level < config_.dist_max_levels; ++level) {
    levels = level + 1;
    for (int step = 0; step < config_.dist_max_supersteps; ++step) {
      // Scatter PROPOSE: each shard evaluates its own range.
      std::string movers;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        std::string resp;
        if (!shard_call(i, "DCLUSTER PROPOSE " + name, resp) ||
            !starts_with(resp, "OK")) {
          return fail("PROPOSE shard " + std::to_string(i));
        }
        const std::string_view list = field(resp, "list=");
        if (!list.empty() && list != "-") {
          if (!movers.empty()) movers += ',';
          movers += list;
        }
      }
      if (movers.empty()) break;
      ++supersteps;
      // Broadcast the mover list in bounded chunks: one concatenated list
      // can exceed the 16 MiB frame cap on large graphs.  Non-final chunks
      // carry `more`; shards apply them incrementally and defer recompute
      // to the final chunk, so chunked == one-shot bit for bit.
      std::string_view rest = movers;
      for (;;) {
        std::string_view chunk = rest;
        bool last = true;
        if (rest.size() > config_.apply_chunk_bytes) {
          std::size_t cut = rest.rfind(',', config_.apply_chunk_bytes);
          if (cut == std::string_view::npos) cut = rest.find(',');
          if (cut != std::string_view::npos) {
            chunk = rest.substr(0, cut);
            rest = rest.substr(cut + 1);
            last = false;
          }
        }
        std::string wire = "DCLUSTER APPLY " + name + " ";
        wire += chunk;
        if (!last) wire += " more";
        g = broadcast(wire);
        if (!all_ok(g)) return fail("APPLY incomplete");
        if (last) break;
      }
      std::uint64_t applied = 0;
      double codelength = prev;
      parse_num(field(g.responses[0], "applied="), applied);
      parse_double(field(g.responses[0], "codelength="), codelength);
      if (applied == 0 ||
          prev - codelength < config_.dist_min_improvement_bits) {
        break;
      }
      prev = codelength;
    }
    g = broadcast("DCLUSTER LEVEL " + name);
    if (!all_ok(g)) return fail("LEVEL incomplete");
    std::uint64_t done = 0;
    parse_num(field(g.responses[0], "done="), done);
    if (done == 1) break;
    parse_double(field(g.responses[0], "codelength="), prev);
  }

  g = broadcast("DCLUSTER COMMIT " + name);
  if (!all_ok(g)) return fail("COMMIT incomplete");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    observe_response(i, name, g.responses[i]);
  }
  std::uint64_t version = 0, communities = 0;
  double codelength = 0.0;
  parse_num(field(g.responses[0], "version="), version);
  parse_num(field(g.responses[0], "communities="), communities);
  parse_double(field(g.responses[0], "codelength="), codelength);
  return "OK mode=dist state=done version=" + std::to_string(version) +
         " communities=" + std::to_string(communities) +
         " codelength=" + fmt_double(codelength) +
         " levels=" + std::to_string(levels) +
         " supersteps=" + std::to_string(supersteps) +
         " vclock=" + vclock_of(name);
}

std::string Router::handle_shards() {
  std::string status, breakers;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) {
      status += ',';
      breakers += ',';
    }
    status += shards_[i]->up.load(std::memory_order_relaxed) ? "up" : "down";
    breakers += breaker_name(shards_[i]->breaker.state());
  }
  return "OK shards=" + std::to_string(shards_.size()) +
         " status=" + status + " breakers=" + breakers;
}

std::string Router::handle_stats() {
  uptime_->set(obs::process_uptime_seconds());
  return "OK shards=" + std::to_string(shards_.size()) +
         " requests=" + std::to_string(requests_.load()) +
         " retries=" + std::to_string(retries_.load()) +
         " degraded=" + std::to_string(degraded_.load()) +
         " stale=" + std::to_string(stale_.load()) +
         // Build identity (ISSUE 10): same fields as the shard STATS line.
         " uptime=" + fmt_double(obs::process_uptime_seconds()) +
         " rev=" + obs::build_git_rev() + " build=" + obs::build_mode() +
         " faults=" + (fault::kFaultInjectionEnabled ? "1" : "0") +
         " accumulator=hotset";
}

std::string Router::handle_metrics(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() >= 2 && (tokens[1] == "WINDOW" || tokens[1] == "FLEET")) {
    const bool fleet = tokens[1] == "FLEET";
    if (tokens.size() > 3) {
      return err("invalid_argument",
                 fleet ? "usage: METRICS FLEET [prom|json]"
                       : "usage: METRICS WINDOW [prom|json]");
    }
    const std::string_view fmt = tokens.size() == 3 ? tokens[2] : "prom";
    return fleet ? fleet_metrics(fmt) : render_window(fmt);
  }
  if (tokens.size() > 2) {
    return err("invalid_argument", "usage: METRICS [WINDOW|FLEET] [prom|json]");
  }
  const std::string_view fmt = tokens.size() == 2 ? tokens[1] : "prom";
  if (fmt == "prom") {
    uptime_->set(obs::process_uptime_seconds());
    std::ostringstream out;
    metrics_.write_prometheus(out);
    std::string s = out.str();
    if (!s.empty() && s.back() == '\n') s.pop_back();
    return enveloped("prometheus", std::move(s));
  }
  if (fmt == "json") {
    uptime_->set(obs::process_uptime_seconds());
    std::ostringstream out;
    out << "{\n";
    benchutil::write_envelope_fields(
        out, benchutil::make_envelope("router_metrics"), "  ");
    out << "  \"metrics\": ";
    metrics_.write_json(out, "  ");
    out << "\n}";
    return enveloped("json", out.str());
  }
  return err("invalid_argument", "unknown metrics format");
}

std::string Router::handle_health(
    const std::vector<std::string_view>& tokens) {
  if (tokens.size() == 1) return render_health();
  if (tokens.size() == 2 && tokens[1] == "FLEET") return fleet_health();
  return err("invalid_argument", "usage: HEALTH [FLEET]");
}

// --- observability plane (ISSUE 10) ----------------------------------------

std::string Router::render_window(std::string_view format) {
  const std::uint64_t now = mono_now_ns();
  std::ostringstream out;
  if (format == "prom" || format == "prometheus") {
    window_.write_prometheus(out, now);
    std::string s = out.str();
    if (!s.empty() && s.back() == '\n') s.pop_back();
    return enveloped("prometheus", std::move(s));
  }
  if (format == "json") {
    out << "{\n";
    benchutil::write_envelope_fields(
        out, benchutil::make_envelope("router_metrics_window"), "  ");
    out << "  \"window\": ";
    window_.write_json(out, now, "  ");
    out << "\n}";
    return enveloped("json", out.str());
  }
  return err("invalid_argument",
             "METRICS WINDOW: unknown format '" + std::string(format) +
                 "' (want prom or json)");
}

obs::HealthInputs Router::liveness_inputs() const {
  obs::HealthInputs in;
  in.have_shards = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->up.load(std::memory_order_relaxed)) {
      ++in.shards_up;
    } else {
      ++in.shards_down;
      if (!in.down_list.empty()) in.down_list += ',';
      in.down_list += std::to_string(i);
    }
  }
  return in;
}

std::string Router::render_health() {
  const obs::HealthReport report =
      health_.evaluate(mono_now_ns(), liveness_inputs());
  std::string payload = report.render();
  if (!payload.empty() && payload.back() == '\n') payload.pop_back();
  std::string out = "OK status=";
  out += to_string(report.status);
  out += " slos=" + std::to_string(report.slos.size());
  out += " bytes=" + std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

std::string Router::fleet_health() {
  // Live probe: one HEALTH per shard (shard_call updates the up/breaker
  // gauges as a side effect, so the probe refreshes the liveness view).
  std::vector<std::string> statuses(shards_.size());
  obs::HealthInputs in;
  in.have_shards = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::string resp;
    if (shard_call(i, "HEALTH", resp) && starts_with(resp, "OK")) {
      statuses[i] = std::string(field(resp, "status="));
      if (statuses[i].empty()) statuses[i] = "unknown";
      shards_[i]->scraped_gauge->set(1);
      ++in.shards_up;
    } else {
      statuses[i] = "down";
      shards_[i]->scraped_gauge->set(0);
      ++in.shards_down;
      if (!in.down_list.empty()) in.down_list += ',';
      in.down_list += std::to_string(i);
    }
  }
  fleet_up_->set(static_cast<double>(in.shards_up));
  fleet_down_->set(static_cast<double>(in.shards_down));

  const obs::HealthReport report = health_.evaluate(mono_now_ns(), in);
  // Fold shard-reported verdicts: a shard that says degraded or unhealthy
  // makes the fleet at least degraded (reads fail over to replicas, so one
  // sick shard never makes the whole tier unhealthy by itself; losing a
  // majority does, via the shards SLO).
  obs::HealthStatus fleet = report.status;
  for (const std::string& s : statuses) {
    if ((s == "degraded" || s == "unhealthy" || s == "unknown") &&
        fleet == obs::HealthStatus::kHealthy) {
      fleet = obs::HealthStatus::kDegraded;
    }
  }
  std::string payload = report.render();
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    payload += "shard=" + std::to_string(i) + " status=" + statuses[i] + "\n";
  }
  if (!payload.empty() && payload.back() == '\n') payload.pop_back();
  std::string out = "OK status=";
  out += to_string(fleet);
  out += " shards=" + std::to_string(shards_.size());
  out += " up=" + std::to_string(in.shards_up);
  out += " down=" + std::to_string(in.shards_down);
  if (!in.down_list.empty()) out += " shards_down=" + in.down_list;
  out += " bytes=" + std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

bool Router::scrape_shard_metrics(std::size_t i,
                                  std::vector<FleetSeries>& out) {
  std::string resp;
  if (!shard_call(i, "METRICS json", resp) || !starts_with(resp, "OK")) {
    return false;
  }
  const std::size_t nl = resp.find('\n');
  if (nl == std::string::npos) return false;
  std::string_view payload = std::string_view(resp).substr(nl + 1);
  // Line-parse the self-produced registry JSON: each metric is one
  // `"key": value` line (histograms are one-line objects carrying the
  // mergeable `buckets` field); envelope fields are filtered out by the
  // asamap_ name prefix.
  while (!payload.empty()) {
    const std::size_t eol = payload.find('\n');
    std::string_view line = payload.substr(0, eol);
    payload = eol == std::string_view::npos ? std::string_view{}
                                            : payload.substr(eol + 1);
    const std::size_t open = line.find('"');
    if (open == std::string_view::npos) continue;
    // Closing quote of the key: the first unescaped '"'.
    std::size_t close = open + 1;
    while (close < line.size() &&
           !(line[close] == '"' && line[close - 1] != '\\')) {
      ++close;
    }
    if (close >= line.size()) continue;
    const std::string key =
        json_unescape(line.substr(open + 1, close - open - 1));
    if (!starts_with(key, "asamap_")) continue;
    std::string_view value = line.substr(close + 1);
    const std::size_t colon = value.find(':');
    if (colon == std::string_view::npos) continue;
    value = value.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    while (!value.empty() && (value.back() == ',' || value.back() == ' ')) {
      value.remove_suffix(1);
    }
    FleetSeries s;
    const std::size_t brace = key.find('{');
    if (brace == std::string::npos) {
      s.name = key;
    } else {
      s.name = key.substr(0, brace);
      s.labels = key.substr(brace + 1);
      if (!s.labels.empty() && s.labels.back() == '}') s.labels.pop_back();
    }
    if (!value.empty() && value.front() == '{') {
      double sum = 0.0, mn = 0.0, mx = 0.0;
      json_number_field(value, "sum", sum);
      json_number_field(value, "min", mn);
      json_number_field(value, "max", mx);
      s.is_hist = true;
      s.hist = support::LatencyHistogram::decode(
          sum, mn, mx, json_string_field(value, "buckets"));
    } else if (!parse_double(value, s.value)) {
      continue;
    }
    out.push_back(std::move(s));
  }
  return true;
}

std::string Router::fleet_metrics(std::string_view format) {
  if (format != "prom" && format != "prometheus" && format != "json") {
    return err("invalid_argument",
               "METRICS FLEET: unknown format '" + std::string(format) +
                   "' (want prom or json)");
  }
  std::vector<std::vector<FleetSeries>> per_shard(shards_.size());
  std::size_t up = 0;
  std::string down_list;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const bool ok = scrape_shard_metrics(i, per_shard[i]);
    shards_[i]->scraped_gauge->set(ok ? 1 : 0);
    if (ok) {
      ++up;
    } else {
      if (!down_list.empty()) down_list += ',';
      down_list += std::to_string(i);
    }
  }
  fleet_up_->set(static_cast<double>(up));
  fleet_down_->set(static_cast<double>(shards_.size() - up));

  // Aggregate across shards per (name, labels): histograms merge through
  // the decoded buckets, counters (the *_total naming convention) sum;
  // gauges stay per-shard only — summing a gauge has no meaning.
  struct Agg {
    std::string name;
    std::string labels;
    bool is_hist = false;
    double sum = 0.0;
    support::LatencyHistogram hist;
  };
  std::vector<Agg> aggs;
  std::unordered_map<std::string, std::size_t> agg_index;
  const auto agg_slot = [&](const FleetSeries& s) -> Agg& {
    std::string key = s.name + '\x01' + s.labels;
    const auto it = agg_index.find(key);
    if (it != agg_index.end()) return aggs[it->second];
    agg_index.emplace(std::move(key), aggs.size());
    aggs.push_back({s.name, s.labels, s.is_hist, 0.0, {}});
    return aggs.back();
  };
  for (const auto& shard_series : per_shard) {
    for (const FleetSeries& s : shard_series) {
      if (s.is_hist) {
        agg_slot(s).hist.merge(s.hist);
      } else if (std::string_view(s.name).ends_with("_total")) {
        agg_slot(s).sum += s.value;
      }
    }
  }

  const auto hist_json = [](const support::LatencyHistogram& h) {
    std::string o = "{\"count\": " + std::to_string(h.count()) +
                    ", \"sum\": " + fmt_double(h.total_seconds()) +
                    ", \"mean\": " + fmt_double(h.mean_seconds()) +
                    ", \"min\": " + fmt_double(h.min_seconds()) +
                    ", \"max\": " + fmt_double(h.max_seconds()) +
                    ", \"p50\": " + fmt_double(h.quantile_seconds(0.5)) +
                    ", \"p90\": " + fmt_double(h.quantile_seconds(0.9)) +
                    ", \"p99\": " + fmt_double(h.quantile_seconds(0.99)) +
                    ", \"buckets\": \"" + h.encode_buckets() + "\"}";
    return o;
  };

  if (format == "json") {
    std::ostringstream out;
    out << "{\n";
    benchutil::write_envelope_fields(
        out, benchutil::make_envelope("router_metrics_fleet"), "  ");
    out << "  \"shards\": " << shards_.size() << ",\n";
    out << "  \"up\": " << up << ",\n";
    out << "  \"down\": " << (shards_.size() - up) << ",\n";
    out << "  \"down_list\": \"" << down_list << "\",\n";
    out << "  \"fleet\": {";
    bool first = true;
    const auto emit = [&](const std::string& name, const std::string& labels,
                          const std::string& rendered) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    \"" << escape_json(name + '{' + labels + '}')
          << "\": " << rendered;
    };
    for (std::size_t i = 0; i < per_shard.size(); ++i) {
      const std::string shard_id = std::to_string(i);
      for (const FleetSeries& s : per_shard[i]) {
        emit(s.name, with_shard_label(s.labels, shard_id),
             s.is_hist ? hist_json(s.hist) : fmt_double(s.value));
      }
    }
    for (const Agg& a : aggs) {
      emit(a.name, with_shard_label(a.labels, "fleet"),
           a.is_hist ? hist_json(a.hist) : fmt_double(a.sum));
    }
    out << (first ? "}" : "\n  }") << "\n}";
    return enveloped("json", out.str());
  }

  // Prometheus text: group per metric name under one # TYPE line, exactly
  // like the registry's own renderer; the kind falls out of the sample
  // shape (histogram ⇒ summary) and the *_total convention (⇒ counter).
  struct Series {
    std::string labels;
    bool is_hist = false;
    double value = 0.0;
    const support::LatencyHistogram* hist = nullptr;
  };
  std::vector<std::string> name_order;
  std::unordered_map<std::string, std::vector<Series>> by_name;
  const auto add_series = [&](const std::string& name, Series s) {
    auto& group = by_name[name];
    if (group.empty()) name_order.push_back(name);
    group.push_back(std::move(s));
  };
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    const std::string shard_id = std::to_string(i);
    for (const FleetSeries& s : per_shard[i]) {
      add_series(s.name, {with_shard_label(s.labels, shard_id), s.is_hist,
                          s.value, s.is_hist ? &s.hist : nullptr});
    }
  }
  for (const Agg& a : aggs) {
    add_series(a.name, {with_shard_label(a.labels, "fleet"), a.is_hist,
                        a.sum, a.is_hist ? &a.hist : nullptr});
  }
  std::string text;
  text += "# TYPE asamap_fleet_shards_up gauge\n";
  text += "asamap_fleet_shards_up " + std::to_string(up) + "\n";
  text += "# TYPE asamap_fleet_shards_down gauge\n";
  text += "asamap_fleet_shards_down " +
          std::to_string(shards_.size() - up) + "\n";
  for (const std::string& name : name_order) {
    const auto& group = by_name[name];
    const bool is_hist = group.front().is_hist;
    const bool is_counter =
        !is_hist && std::string_view(name).ends_with("_total");
    text += "# TYPE " + name +
            (is_hist ? " summary" : is_counter ? " counter" : " gauge") +
            "\n";
    for (const Series& s : group) {
      if (!s.is_hist) {
        text += name + '{' + s.labels + "} " +
                (is_counter
                     ? std::to_string(static_cast<std::uint64_t>(s.value))
                     : fmt_double(s.value)) +
                "\n";
        continue;
      }
      for (const double q : {0.5, 0.9, 0.99}) {
        text += name + '{' + s.labels + ",quantile=\"" + fmt_double(q) +
                "\"} " + fmt_double(s.hist->quantile_seconds(q)) + "\n";
      }
      text += name + "_sum{" + s.labels + "} " +
              fmt_double(s.hist->total_seconds()) + "\n";
      text += name + "_count{" + s.labels + "} " +
              std::to_string(s.hist->count()) + "\n";
    }
  }
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return enveloped("prometheus", std::move(text));
}

std::string Router::handle_trace(
    const std::vector<std::string_view>& tokens) {
  constexpr const char* kUsage = "usage: TRACE DUMP | TRACE STATUS";
  if (tokens.size() != 2) return err("invalid_argument", kUsage);
  obs::FlightRecorder& rec = obs::FlightRecorder::instance();
  if (tokens[1] == "DUMP") {
    std::ostringstream out;
    rec.write_chrome_json(out);
    return enveloped("chrome-trace", out.str());
  }
  if (tokens[1] == "STATUS") {
    const obs::TraceStats stats = rec.stats();
    std::string out = "OK enabled=";
    out += stats.enabled ? '1' : '0';
    out += " rings=" + std::to_string(stats.rings) +
           " capacity=" + std::to_string(stats.ring_capacity) +
           " recorded=" + std::to_string(stats.recorded) +
           " dropped=" + std::to_string(stats.dropped);
    return out;
  }
  return err("invalid_argument", kUsage);
}

}  // namespace asamap::dist
