#pragma once

/// \file accumulator.hpp
/// The ASA-side flow accumulator used by the FindBestCommunity kernel
/// (Algorithm 2 of the paper): accumulate into the per-thread CAM, then
/// gather_CAM, then sort_and_merge when the overflow FIFO is non-empty.
///
/// Timing model:
///  - `accumulate` is the ASA ISA extension — one custom instruction with a
///    pipelined CAM access; no conditional branch, no cache traffic.  This
///    is exactly where the Baseline's per-probe branches and pointer chases
///    disappear to.
///  - `gather` writes the CAM/FIFO contents to two contiguous vectors in
///    memory (charged through the cache, but sequential so prefetch-friendly).
///  - `sort_and_merge` is *software* (lines 10-12 of Algorithm 2) and is
///    fully instrumented: its comparisons branch and its element moves hit
///    memory — the paper's "overflow handling" cost lives here.

#include <cstdint>
#include <span>
#include <vector>

#include "asamap/asa/cam.hpp"
#include "asamap/hashdb/address_space.hpp"
#include "asamap/sim/event_sink.hpp"

namespace asamap::asa {

/// Per-operation costs of the ASA path, in retired instructions.
struct AsaCosts {
  /// One accumulate = compute hash(k) in software (the generalized API
  /// takes the hashed key), move key/hash/value into the xchg-encoded
  /// operand registers, and issue the ASA instruction.  The paper's ZSim
  /// integration works exactly this way (Section II-E).
  std::uint32_t accumulate = 7;
  std::uint32_t evict_extra = 1;     ///< FIFO push bookkeeping (hardware-assisted)
  std::uint32_t gather_per_entry = 2;
  std::uint32_t merge_setup = 6;     ///< vector append + branch setup
  std::uint32_t sort_per_compare = 2;
  std::uint32_t merge_per_element = 2;
};

template <sim::EventSink Sink>
class AsaAccumulator {
 public:
  static constexpr std::uint32_t kPairBytes = 16;

  /// Binds to one CAM (per-thread in the engine) and one event sink.
  /// `addrs` provides simulated addresses for the gather vectors.
  AsaAccumulator(Sink& sink, Cam& cam, hashdb::AddressSpace& addrs,
                 AsaCosts costs = {})
      : sink_(&sink), cam_(&cam), costs_(costs) {
    // Mirrors the reserved std::vectors of Algorithm 2 lines 1-2: one
    // contiguous allocation each, reused across vertices.
    non_overflow_base_ = addrs.alloc_array(kScratchBytes);
    overflow_base_ = addrs.alloc_array(kScratchBytes);
  }

  /// Starts accumulation for a new vertex.
  void begin() {
    non_overflowed_.clear();
    overflowed_.clear();
    cam_->clear();
    gathered_ = false;
  }

  /// Algorithm 2 line 7: accumulate(tid, hash(k), k, flow).
  void accumulate(std::uint32_t key, double value) {
    sink_->instructions(costs_.accumulate);
    const bool evicted = cam_->accumulate(support::mix64(key), key, value);
    if (evicted) sink_->instructions(costs_.evict_extra);
  }

  /// Algorithm 2 lines 9-12: gather_CAM + sort_and_merge when overflowed.
  /// Returns the final (key, value) pairs; each key appears exactly once.
  /// Named `finalize` to satisfy the kernel's FlowAccumulator concept;
  /// `result()` remains as the paper-facing alias.
  std::span<const KeyValue> finalize() { return result(); }

  std::span<const KeyValue> result() {
    if (!gathered_) {
      gather();
      // The `!overflowed_pairs.empty()` branch of Algorithm 2 line 10.
      sink_->branch(sim::sites::kAsaOverflowCheck, !overflowed_.empty());
      if (!overflowed_.empty()) sort_and_merge();
      gathered_ = true;
    }
    return non_overflowed_;
  }

  /// Visits the merged (key, value) pairs — Algorithm 2 line 14's "iterate
  /// over the merged vector".  The scan is a sequential sweep of one
  /// contiguous vector, which is why the ASA variant's decision loop is so
  /// much cheaper than Algorithm 1's hash-table iteration.
  template <typename Fn>
  void visit(Fn&& fn) {
    const auto pairs = result();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      sink_->instructions(1);
      sink_->load(non_overflow_base_ + i * kPairBytes, kPairBytes);
      fn(pairs[i].key, pairs[i].value);
    }
  }

  /// Number of distinct keys accumulated (valid after result()).
  [[nodiscard]] std::size_t distinct() const noexcept {
    return non_overflowed_.size();
  }

  [[nodiscard]] const Cam& cam() const noexcept { return *cam_; }

 private:
  static constexpr std::uint64_t kScratchBytes = 1ULL << 20;

  void gather() {
    cam_->gather(non_overflowed_, overflowed_);
    // Write both destination vectors to memory, sequentially.
    for (std::size_t i = 0; i < non_overflowed_.size(); ++i) {
      sink_->instructions(costs_.gather_per_entry);
      sink_->store(non_overflow_base_ + i * kPairBytes, kPairBytes);
    }
    for (std::size_t i = 0; i < overflowed_.size(); ++i) {
      sink_->instructions(costs_.gather_per_entry);
      sink_->store(overflow_base_ + i * kPairBytes, kPairBytes);
    }
  }

  /// Lines 10-12: append overflow pairs, sort by key, merge equal keys.
  /// Implemented as an instrumented bottom-up merge sort so every compare
  /// branches and every element move touches memory in the model.
  void sort_and_merge() {
    sink_->instructions(costs_.merge_setup);
    for (std::size_t i = 0; i < overflowed_.size(); ++i) {
      sink_->load(overflow_base_ + i * kPairBytes, kPairBytes);
      sink_->store(
          non_overflow_base_ + (non_overflowed_.size() + i) * kPairBytes,
          kPairBytes);
      non_overflowed_.push_back(overflowed_[i]);
    }
    overflowed_.clear();

    instrumented_sort(non_overflowed_, non_overflow_base_);

    // Merge adjacent duplicates in place.
    std::size_t out = 0;
    for (std::size_t i = 0; i < non_overflowed_.size();) {
      KeyValue merged = non_overflowed_[i];
      sink_->load(non_overflow_base_ + i * kPairBytes, kPairBytes);
      std::size_t j = i + 1;
      for (;;) {
        const bool same =
            j < non_overflowed_.size() && non_overflowed_[j].key == merged.key;
        sink_->branch(sim::sites::kMergeSameKey, same);
        if (!same) break;
        sink_->instructions(costs_.merge_per_element);
        merged.value += non_overflowed_[j].value;
        ++j;
      }
      non_overflowed_[out] = merged;
      sink_->store(non_overflow_base_ + out * kPairBytes, kPairBytes);
      ++out;
      i = j;
    }
    non_overflowed_.resize(out);
  }

  /// Bottom-up merge sort over (key, value) pairs with full event emission.
  void instrumented_sort(std::vector<KeyValue>& v, std::uint64_t base) {
    const std::size_t n = v.size();
    if (n < 2) return;
    std::vector<KeyValue> tmp(n);
    const std::uint64_t tmp_base = base + kScratchBytes / 2;
    KeyValue* src = v.data();
    KeyValue* dst = tmp.data();
    std::uint64_t src_base = base;
    std::uint64_t dst_base = tmp_base;
    for (std::size_t width = 1; width < n; width *= 2) {
      for (std::size_t lo = 0; lo < n; lo += 2 * width) {
        const std::size_t mid = std::min(lo + width, n);
        const std::size_t hi = std::min(lo + 2 * width, n);
        std::size_t i = lo, j = mid, k = lo;
        while (i < mid && j < hi) {
          // Branchless merge step (cmov-select of the smaller head): both
          // input streams and the output are sequential, so the loads are
          // prefetchable and there is no data-dependent branch to
          // mispredict — the standard way to merge PODs.
          sink_->instructions(costs_.sort_per_compare);
          sink_->load_stream(src_base + i * kPairBytes, kPairBytes);
          sink_->load_stream(src_base + j * kPairBytes, kPairBytes);
          const bool take_left = src[i].key <= src[j].key;
          dst[k] = take_left ? src[i++] : src[j++];
          sink_->store(dst_base + k * kPairBytes, kPairBytes);
          ++k;
        }
        while (i < mid) {
          dst[k] = src[i++];
          sink_->store(dst_base + k * kPairBytes, kPairBytes);
          ++k;
        }
        while (j < hi) {
          dst[k] = src[j++];
          sink_->store(dst_base + k * kPairBytes, kPairBytes);
          ++k;
        }
      }
      std::swap(src, dst);
      std::swap(src_base, dst_base);
    }
    if (src != v.data()) {
      std::copy(tmp.begin(), tmp.end(), v.begin());
    }
  }

  Sink* sink_;
  Cam* cam_;
  AsaCosts costs_;
  std::vector<KeyValue> non_overflowed_;
  std::vector<KeyValue> overflowed_;
  std::uint64_t non_overflow_base_ = 0;
  std::uint64_t overflow_base_ = 0;
  bool gathered_ = false;
};

}  // namespace asamap::asa
