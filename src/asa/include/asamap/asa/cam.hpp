#pragma once

/// \file cam.hpp
/// Functional + timing model of the ASA accelerator's content-addressable
/// memory (Chao et al., "ASA: Accelerating Sparse Accumulation in Column-wise
/// SpGEMM", TACO 2022), with the generalized key/value interface this paper
/// builds on.
///
/// The CAM stores (key, partial-sum) pairs.  An `accumulate` either
///   1. hits an existing key and adds to the partial sum,
///   2. fills a free entry, or
///   3. evicts a victim (policy-configurable, LRU by default) into the
///      overflow FIFO and takes its place,
/// exactly the three outcomes described in Section III-A of the paper.
///
/// A CAM is *content-addressable*: the tag match is a parallel search over
/// all entries, i.e. fully associative — a vertex overflows only when its
/// distinct-key count exceeds the capacity, which is the premise of the
/// paper's Fig. 5 sizing argument (8 KB covers >99% of vertices).  Full
/// associativity is therefore the default (`ways == 0`).  A hash-indexed
/// set-associative variant (`ways > 0`) is kept as an ablation knob — it
/// models a cheaper SRAM-based design and shows how conflict evictions eat
/// the benefit.  At 16 bytes per entry the paper's 8 KB CAM is 512 entries.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asamap/hashdb/kv.hpp"
#include "asamap/support/check.hpp"
#include "asamap/support/hash.hpp"

namespace asamap::asa {

enum class EvictionPolicy { kLru, kFifo, kRandom };

struct CamConfig {
  std::uint32_t capacity_entries = 512;  ///< 8 KB at 16 B/entry
  std::uint32_t ways = 0;  ///< 0 = fully associative (true CAM); >0 = hash-
                           ///< indexed set-associative ablation
  EvictionPolicy eviction = EvictionPolicy::kLru;

  [[nodiscard]] bool fully_associative() const noexcept { return ways == 0; }
  [[nodiscard]] std::uint32_t sets() const noexcept {
    return fully_associative() ? 1 : capacity_entries / ways;
  }
  [[nodiscard]] std::uint64_t size_bytes() const noexcept {
    return std::uint64_t{capacity_entries} * 16;
  }
};

struct CamStats {
  std::uint64_t accumulates = 0;
  std::uint64_t hits = 0;       ///< key already present
  std::uint64_t fills = 0;      ///< new entry in a free slot
  std::uint64_t evictions = 0;  ///< victim pushed to overflow FIFO
  std::uint64_t gathers = 0;    ///< gather_cam calls
  std::uint64_t gathered_entries = 0;
  std::uint64_t overflowed_entries = 0;
};

/// Shared pair type (see hashdb/kv.hpp) — the CAM drains into the same
/// representation the software accumulators produce.
using KeyValue = hashdb::KeyValue;

/// One per-core CAM instance.
class Cam {
 public:
  explicit Cam(const CamConfig& config = {});

  /// The generalized ASA `accumulate(tid, hash(k), k, v)` call, minus the
  /// tid (the engine routes to the right Cam).  The hashed key selects the
  /// set in the set-associative ablation; the fully associative default
  /// matches on content alone.  Returns true when the call caused an
  /// overflow eviction (the caller charges the FIFO traffic).
  bool accumulate(std::uint64_t hashed_key, std::uint32_t key, double value);

  /// Convenience: hashes with the engine's canonical hash.
  bool accumulate(std::uint32_t key, double value) {
    return accumulate(support::mix64(key), key, value);
  }

  /// `gather_CAM`: moves all valid CAM entries into `non_overflowed` and the
  /// FIFO contents into `overflowed`, clearing both (the hardware drains on
  /// gather).  Entries arrive in slot order — hardware scan order — so
  /// output is deterministic.
  void gather(std::vector<KeyValue>& non_overflowed,
              std::vector<KeyValue>& overflowed);

  /// Number of valid entries currently resident.
  [[nodiscard]] std::uint32_t occupancy() const noexcept { return occupancy_; }
  [[nodiscard]] std::size_t overflow_size() const noexcept {
    return overflow_fifo_.size();
  }
  [[nodiscard]] const CamStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CamConfig& config() const noexcept { return config_; }

  void reset_stats() noexcept { stats_ = {}; }
  /// Invalidates all entries and drains the FIFO.
  void clear();

 private:
  struct Entry {
    std::uint32_t key = 0;
    double value = 0.0;
    std::uint64_t stamp = 0;  ///< LRU: last touch; FIFO: fill time
    bool valid = false;
  };

  bool accumulate_set_assoc(std::uint64_t hashed_key, std::uint32_t key,
                            double value);
  bool accumulate_fully_assoc(std::uint32_t key, double value);
  std::uint32_t pick_victim_in_set(std::uint32_t set);

  // --- fully associative fast path: O(1) content match via an index map
  // plus an intrusive LRU list over slot numbers.
  void lru_touch(std::uint32_t slot);
  void lru_push_front(std::uint32_t slot);
  void lru_unlink(std::uint32_t slot);
  void clear_tracking();

  CamConfig config_;
  std::vector<Entry> entries_;  ///< capacity slots (set-major when ways > 0)
  std::vector<KeyValue> overflow_fifo_;
  std::uint64_t tick_ = 0;
  std::uint32_t occupancy_ = 0;
  std::uint32_t set_bits_ = 0;
  std::uint64_t rand_state_ = 0x9e3779b97f4a7c15ULL;  // for kRandom policy

  // Fully associative bookkeeping.
  std::unordered_map<std::uint32_t, std::uint32_t> index_;  ///< key -> slot
  std::vector<std::uint32_t> lru_prev_, lru_next_;
  std::uint32_t lru_head_ = kNil;  ///< most recently used
  std::uint32_t lru_tail_ = kNil;  ///< least recently used
  std::vector<std::uint32_t> free_slots_;
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  CamStats stats_;
};

}  // namespace asamap::asa
