#include "asamap/asa/cam.hpp"

#include <bit>

namespace asamap::asa {

Cam::Cam(const CamConfig& config) : config_(config) {
  ASAMAP_CHECK(config.capacity_entries >= 1, "CAM needs at least one entry");
  entries_.resize(config.capacity_entries);
  if (config_.fully_associative()) {
    index_.reserve(config.capacity_entries * 2);
    lru_prev_.assign(config.capacity_entries, kNil);
    lru_next_.assign(config.capacity_entries, kNil);
    free_slots_.reserve(config.capacity_entries);
    for (std::uint32_t s = config.capacity_entries; s-- > 0;) {
      free_slots_.push_back(s);
    }
  } else {
    ASAMAP_CHECK(config.capacity_entries % config.ways == 0,
                 "capacity not divisible by ways");
    const std::uint32_t sets = config_.sets();
    ASAMAP_CHECK(std::has_single_bit(sets),
                 "CAM set count must be a power of 2");
    set_bits_ = static_cast<std::uint32_t>(std::countr_zero(sets));
  }
}

bool Cam::accumulate(std::uint64_t hashed_key, std::uint32_t key,
                     double value) {
  ++stats_.accumulates;
  ++tick_;
  return config_.fully_associative()
             ? accumulate_fully_assoc(key, value)
             : accumulate_set_assoc(hashed_key, key, value);
}

// ------------------------------------------------------------ fully assoc

void Cam::lru_push_front(std::uint32_t slot) {
  lru_prev_[slot] = kNil;
  lru_next_[slot] = lru_head_;
  if (lru_head_ != kNil) lru_prev_[lru_head_] = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNil) lru_tail_ = slot;
}

void Cam::lru_unlink(std::uint32_t slot) {
  const std::uint32_t p = lru_prev_[slot];
  const std::uint32_t n = lru_next_[slot];
  if (p != kNil) {
    lru_next_[p] = n;
  } else {
    lru_head_ = n;
  }
  if (n != kNil) {
    lru_prev_[n] = p;
  } else {
    lru_tail_ = p;
  }
}

void Cam::lru_touch(std::uint32_t slot) {
  if (lru_head_ == slot) return;
  lru_unlink(slot);
  lru_push_front(slot);
}

bool Cam::accumulate_fully_assoc(std::uint32_t key, double value) {
  if (auto it = index_.find(key); it != index_.end()) {
    Entry& e = entries_[it->second];
    e.value += value;
    e.stamp = tick_;
    if (config_.eviction == EvictionPolicy::kLru) lru_touch(it->second);
    ++stats_.hits;
    return false;
  }

  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    entries_[slot] = Entry{key, value, tick_, true};
    index_.emplace(key, slot);
    lru_push_front(slot);
    ++occupancy_;
    ++stats_.fills;
    return false;
  }

  // Full: evict per policy into the overflow FIFO, reuse the slot.
  std::uint32_t victim;
  if (config_.eviction == EvictionPolicy::kRandom) {
    rand_state_ = support::mix64(rand_state_ + tick_);
    victim = static_cast<std::uint32_t>(rand_state_ % entries_.size());
  } else {
    // kLru and kFifo both take the list tail; the difference is that hits
    // refresh position only under LRU (see accumulate_fully_assoc above).
    victim = lru_tail_;
  }
  Entry& v = entries_[victim];
  overflow_fifo_.push_back(KeyValue{v.key, v.value});
  index_.erase(v.key);
  lru_unlink(victim);
  v = Entry{key, value, tick_, true};
  index_.emplace(key, victim);
  lru_push_front(victim);
  ++stats_.evictions;
  return true;
}

// -------------------------------------------------------------- set assoc

bool Cam::accumulate_set_assoc(std::uint64_t hashed_key, std::uint32_t key,
                               double value) {
  const std::uint32_t set =
      set_bits_ == 0
          ? 0
          : static_cast<std::uint32_t>(
                support::fibonacci_hash(hashed_key, set_bits_));
  Entry* base = entries_.data() + std::size_t{set} * config_.ways;

  // Parallel tag match within the set (single cycle in hardware).
  Entry* free_way = nullptr;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Entry& e = base[w];
    if (e.valid && e.key == key) {
      e.value += value;
      e.stamp = config_.eviction == EvictionPolicy::kFifo ? e.stamp : tick_;
      ++stats_.hits;
      return false;
    }
    if (!e.valid && free_way == nullptr) free_way = &e;
  }

  if (free_way != nullptr) {
    *free_way = Entry{key, value, tick_, true};
    ++occupancy_;
    ++stats_.fills;
    return false;
  }

  const std::uint32_t victim = pick_victim_in_set(set);
  Entry& v = base[victim];
  overflow_fifo_.push_back(KeyValue{v.key, v.value});
  v = Entry{key, value, tick_, true};
  ++stats_.evictions;
  return true;
}

std::uint32_t Cam::pick_victim_in_set(std::uint32_t set) {
  const Entry* base = entries_.data() + std::size_t{set} * config_.ways;
  switch (config_.eviction) {
    case EvictionPolicy::kRandom: {
      rand_state_ = support::mix64(rand_state_ + tick_);
      return static_cast<std::uint32_t>(rand_state_ % config_.ways);
    }
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo: {
      std::uint32_t best = 0;
      for (std::uint32_t w = 1; w < config_.ways; ++w) {
        if (base[w].stamp < base[best].stamp) best = w;
      }
      return best;
    }
  }
  return 0;
}

// ------------------------------------------------------------------ drain

void Cam::gather(std::vector<KeyValue>& non_overflowed,
                 std::vector<KeyValue>& overflowed) {
  ++stats_.gathers;
  const std::size_t before = non_overflowed.size();
  for (Entry& e : entries_) {
    if (e.valid) {
      non_overflowed.push_back(KeyValue{e.key, e.value});
      e.valid = false;
    }
  }
  stats_.gathered_entries += non_overflowed.size() - before;
  overflowed.insert(overflowed.end(), overflow_fifo_.begin(),
                    overflow_fifo_.end());
  stats_.overflowed_entries += overflow_fifo_.size();
  overflow_fifo_.clear();
  clear_tracking();
}

void Cam::clear() {
  for (Entry& e : entries_) e.valid = false;
  overflow_fifo_.clear();
  clear_tracking();
}

void Cam::clear_tracking() {
  occupancy_ = 0;
  if (config_.fully_associative()) {
    index_.clear();
    lru_head_ = kNil;
    lru_tail_ = kNil;
    free_slots_.clear();
    for (std::uint32_t s = static_cast<std::uint32_t>(entries_.size());
         s-- > 0;) {
      free_slots_.push_back(s);
    }
  }
}

}  // namespace asamap::asa
