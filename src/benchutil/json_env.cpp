#include "asamap/benchutil/json_env.hpp"

#include <cstdio>
#include <ctime>
#include <utility>

#include <omp.h>

namespace asamap::benchutil {
namespace {

std::string git_short_rev() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::string utc_now_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  ::gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

BenchEnvelope make_envelope(std::string bench_name) {
  BenchEnvelope env;
  env.bench = std::move(bench_name);
  env.host_max_threads = omp_get_max_threads();
  env.single_core_caveat = env.host_max_threads <= 1;
  env.git_rev = git_short_rev();
  env.timestamp_utc = utc_now_iso8601();
  return env;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_envelope_fields(std::ostream& os, const BenchEnvelope& env,
                           const char* indent) {
  os << indent << "\"bench\": \"" << json_escape(env.bench) << "\",\n"
     << indent << "\"host_max_threads\": " << env.host_max_threads << ",\n"
     << indent << "\"single_core_caveat\": "
     << (env.single_core_caveat ? "true" : "false") << ",\n"
     << indent << "\"git_rev\": \"" << json_escape(env.git_rev) << "\",\n"
     << indent << "\"timestamp_utc\": \"" << json_escape(env.timestamp_utc)
     << "\",\n";
}

}  // namespace asamap::benchutil
