#include "asamap/benchutil/experiments.hpp"

#include <map>
#include <memory>
#include <vector>

#include "asamap/asa/accumulator.hpp"
#include "asamap/core/dense_accumulator.hpp"
#include "asamap/gen/datasets.hpp"
#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/support/check.hpp"

namespace asamap::benchutil {

namespace {

/// Builds per-core accumulators of type Acc, runs the multilevel driver, and
/// extracts the machine counters.
template <typename Acc, typename MakeAcc>
SimRunResult run_with_engine(const graph::CsrGraph& g, const SimRunConfig& cfg,
                             sim::Machine& machine, MakeAcc&& make_acc) {
  const std::uint32_t cores = machine.num_cores();
  std::vector<std::unique_ptr<Acc>> accs;
  std::vector<core::Worker<Acc, sim::CoreModel>> workers;
  accs.reserve(cores);
  workers.reserve(cores);
  for (std::uint32_t i = 0; i < cores; ++i) {
    accs.push_back(make_acc(machine.core(i)));
    workers.push_back(core::Worker<Acc, sim::CoreModel>{accs.back().get(),
                                                        &machine.core(i)});
  }

  SimRunResult result;
  result.infomap = core::run_multilevel(
      g, cfg.infomap, std::span<core::Worker<Acc, sim::CoreModel>>(workers));

  const sim::CoreStats total = machine.total_stats();
  result.total_instructions = total.total_instructions();
  result.total_branches = total.branches;
  result.total_mispredicts = total.branch_mispredicts;
  result.sim_seconds = machine.simulated_seconds();
  result.avg_instructions_per_core = machine.avg_instructions_per_core();
  result.avg_mispredicts_per_core = machine.avg_mispredicts_per_core();
  result.avg_cpi_per_core = machine.avg_cpi_per_core();

  const auto& bd = result.infomap.breakdown;
  result.hash_cycles = bd.hash_cycles;
  result.other_cycles = bd.other_cycles;
  const double hz = cfg.machine.core.frequency_ghz * 1e9;
  result.hash_seconds = bd.hash_cycles / (hz * cores);
  result.other_seconds = bd.other_cycles / (hz * cores);
  return result;
}

}  // namespace

SimRunResult run_simulated(const graph::CsrGraph& g, const SimRunConfig& cfg) {
  sim::MachineConfig mc = cfg.machine;
  mc.num_cores = cfg.num_cores;
  sim::Machine machine(mc);

  switch (cfg.engine) {
    case AccumulatorKind::kChained: {
      std::vector<std::unique_ptr<hashdb::AddressSpace>> spaces;
      return run_with_engine<hashdb::ChainedAccumulator<sim::CoreModel>>(
          g, cfg, machine, [&](sim::CoreModel& core) {
            spaces.push_back(std::make_unique<hashdb::AddressSpace>());
            return std::make_unique<
                hashdb::ChainedAccumulator<sim::CoreModel>>(core,
                                                            *spaces.back());
          });
    }
    case AccumulatorKind::kOpen: {
      std::vector<std::unique_ptr<hashdb::AddressSpace>> spaces;
      return run_with_engine<hashdb::OpenAccumulator<sim::CoreModel>>(
          g, cfg, machine, [&](sim::CoreModel& core) {
            spaces.push_back(std::make_unique<hashdb::AddressSpace>());
            return std::make_unique<hashdb::OpenAccumulator<sim::CoreModel>>(
                core, *spaces.back());
          });
    }
    case AccumulatorKind::kDense: {
      std::vector<std::unique_ptr<hashdb::AddressSpace>> spaces;
      return run_with_engine<core::DenseAccumulator<sim::CoreModel>>(
          g, cfg, machine, [&](sim::CoreModel& core) {
            spaces.push_back(std::make_unique<hashdb::AddressSpace>());
            return std::make_unique<core::DenseAccumulator<sim::CoreModel>>(
                core, *spaces.back(), g.num_vertices());
          });
    }
    case AccumulatorKind::kFlat:
    case AccumulatorKind::kHotSet:
      // The native fast-path accumulators are deliberately uninstrumented —
      // there is nothing for the simulator to cost.
      ASAMAP_CHECK(false,
                   "the native engines (flat/hotset) cannot be simulated; "
                   "pick an instrumented engine (chained/open/dense/asa)");
      break;
    case AccumulatorKind::kAsa:
      break;
  }

  // ASA: one CAM per core (the paper: "each thread has its own core-local
  // CAM").
  std::vector<std::unique_ptr<asa::Cam>> cams;
  std::vector<std::unique_ptr<hashdb::AddressSpace>> spaces;
  SimRunResult result =
      run_with_engine<asa::AsaAccumulator<sim::CoreModel>>(
          g, cfg, machine, [&](sim::CoreModel& core) {
            cams.push_back(std::make_unique<asa::Cam>(cfg.cam));
            spaces.push_back(std::make_unique<hashdb::AddressSpace>());
            return std::make_unique<asa::AsaAccumulator<sim::CoreModel>>(
                core, *cams.back(), *spaces.back());
          });
  for (const auto& cam : cams) {
    result.cam_accumulates += cam->stats().accumulates;
    result.cam_evictions += cam->stats().evictions;
    result.cam_overflowed_entries += cam->stats().overflowed_entries;
  }
  return result;
}

core::InfomapResult run_native(const graph::CsrGraph& g,
                               core::InfomapOptions opts,
                               AccumulatorKind kind) {
  opts.time_wall = true;
  return core::run_infomap(g, opts, kind);
}

const graph::CsrGraph& cached_dataset(const std::string& name) {
  static std::map<std::string, graph::CsrGraph> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, gen::make_dataset(name)).first;
  }
  return it->second;
}

}  // namespace asamap::benchutil
