#pragma once

/// \file table.hpp
/// Plain-text table emission for the bench binaries.  Every bench prints the
/// same rows/series as the corresponding paper table or figure, so the
/// output can be diffed against EXPERIMENTS.md by eye.

#include <iosfwd>
#include <string>
#include <vector>

namespace asamap::benchutil {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; cells are preformatted strings.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns to `out`.
  void print(std::ostream& out) const;

  /// Renders as CSV (for plotting scripts).
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals.
std::string fmt(double value, int digits = 3);

/// Formats a count with thousands separators (1,234,567).
std::string fmt_count(std::uint64_t value);

/// Formats a ratio as a percentage string ("59%").
std::string fmt_pct(double fraction, int digits = 1);

/// Prints a section banner for a bench experiment.
void banner(std::ostream& out, const std::string& title);

}  // namespace asamap::benchutil
