#pragma once

/// \file json_env.hpp
/// Shared envelope for committed BENCH_*.json artifacts.  Every trajectory
/// bench stamps the same provenance fields — bench name, host thread count,
/// git revision, UTC timestamp — so that diffs of committed artifacts carry
/// their own context.  Benches used to hand-roll these lines; this is the
/// one place they come from now.

#include <ostream>
#include <string>

namespace asamap::benchutil {

struct BenchEnvelope {
  std::string bench;          ///< artifact name, e.g. "serve_throughput"
  int host_max_threads = 1;   ///< omp_get_max_threads() at startup
  /// True when the host offers a single hardware thread.  Multi-thread
  /// numbers in such an artifact measure oversubscription, not scaling —
  /// readers (and CI assertions) must not treat self-speedup as meaningful.
  bool single_core_caveat = false;
  std::string git_rev;        ///< short HEAD hash, "unknown" outside a repo
  std::string timestamp_utc;  ///< ISO-8601 Z, e.g. "2026-08-06T12:00:00Z"
};

/// Collects the envelope for `bench_name` from the running process
/// (OpenMP thread count, `git rev-parse`, wall clock).
BenchEnvelope make_envelope(std::string bench_name);

/// Escapes a string for embedding in a JSON double-quoted literal.
std::string json_escape(const std::string& s);

/// Writes the envelope fields as the opening members of a JSON object:
///   "bench": "...", "host_max_threads": N, "single_core_caveat": bool,
///   "git_rev": "...", "timestamp_utc": "..."
/// one per line with `indent`, each line comma-terminated so the caller
/// continues the object directly.
void write_envelope_fields(std::ostream& os, const BenchEnvelope& env,
                           const char* indent = "  ");

}  // namespace asamap::benchutil
