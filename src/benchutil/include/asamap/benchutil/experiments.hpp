#pragma once

/// \file experiments.hpp
/// High-level experiment runners shared by the bench binaries: "run Infomap
/// on dataset X under simulated machine M with accumulation engine E and
/// report the paper's counters".  Every table/figure bench is a thin wrapper
/// over these.

#include <cstdint>
#include <string>

#include "asamap/asa/cam.hpp"
#include "asamap/core/infomap.hpp"
#include "asamap/sim/machine.hpp"

namespace asamap::benchutil {

using core::AccumulatorKind;

struct SimRunConfig {
  AccumulatorKind engine = AccumulatorKind::kChained;  ///< Baseline default
  std::uint32_t num_cores = 1;
  asa::CamConfig cam = {};  ///< for AccumulatorKind::kAsa
  sim::MachineConfig machine = sim::paper_baseline_machine(1);
  core::InfomapOptions infomap = {};
};

/// Architectural counters + timing extracted from one simulated run — the
/// quantities in Table V and Figs. 6-11.
struct SimRunResult {
  core::InfomapResult infomap;

  // Aggregate machine counters.
  std::uint64_t total_instructions = 0;
  std::uint64_t total_branches = 0;
  std::uint64_t total_mispredicts = 0;
  double sim_seconds = 0.0;  ///< slowest-core cycles / clock

  // Per-core averages (Figs. 9-11).
  double avg_instructions_per_core = 0.0;
  double avg_mispredicts_per_core = 0.0;
  double avg_cpi_per_core = 0.0;

  // HashOperations attribution (Fig. 2b / Tab. V / Fig. 7).  Cycles summed
  // over cores; seconds assume perfect balance (cycles / cores / clock).
  double hash_cycles = 0.0;
  double other_cycles = 0.0;
  double hash_seconds = 0.0;
  double other_seconds = 0.0;

  // ASA-specific (zero for software engines).
  std::uint64_t cam_accumulates = 0;
  std::uint64_t cam_evictions = 0;
  std::uint64_t cam_overflowed_entries = 0;

  [[nodiscard]] double hash_fraction() const noexcept {
    const double total = hash_cycles + other_cycles;
    return total > 0 ? hash_cycles / total : 0.0;
  }
};

/// Runs Infomap on `g` under the simulated machine.  Deterministic.
SimRunResult run_simulated(const graph::CsrGraph& g, const SimRunConfig& cfg);

/// Runs Infomap natively (no simulation) with wall-clock kernel attribution
/// (Fig. 2 and the Native columns of Tables III/IV).
core::InfomapResult run_native(const graph::CsrGraph& g,
                               core::InfomapOptions opts = {},
                               AccumulatorKind kind = AccumulatorKind::kChained);

/// Loads one of the paper's stand-in datasets by name (see gen/datasets.hpp)
/// with a small in-process cache so multiple benches in one binary do not
/// regenerate the graph.
const graph::CsrGraph& cached_dataset(const std::string& name);

}  // namespace asamap::benchutil
