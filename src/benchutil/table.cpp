#include "asamap/benchutil/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "asamap/support/check.hpp"

namespace asamap::benchutil {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  ASAMAP_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      out << (c + 1 < cells.size() ? " | " : " |\n");
    }
  };
  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << (c + 1 < cells.size() ? "," : "\n");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_pct(double fraction, int digits) {
  return fmt(fraction * 100.0, digits) + "%";
}

void banner(std::ostream& out, const std::string& title) {
  out << '\n' << std::string(72, '=') << '\n'
      << title << '\n'
      << std::string(72, '=') << '\n';
}

}  // namespace asamap::benchutil
