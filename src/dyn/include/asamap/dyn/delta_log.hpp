#pragma once

/// \file delta_log.hpp
/// asamap::dyn — streaming edge mutations over the immutable CSR.
///
/// The serving layer's CsrGraph is frozen by design (readers and clustering
/// jobs share it lock-free), so mutation is layered on top instead of in
/// place, the way LSM storage layers writes over immutable runs:
///
///   DeltaLog    append-only, thread-safe per-graph log of ADD_EDGE /
///               DEL_EDGE records.  Appends are O(1) under a mutex; nothing
///               about the base graph changes until a batch is *folded*.
///   DeltaView   one batch of records grouped into per-vertex patch runs
///               (sorted by neighbor, tombstones for deletions) and merged
///               with the base adjacency by a two-pointer iterator — the
///               merged-view adjacency both Infomap drivers consume, either
///               arc-by-arc (for_each_out/in, arcs()) or all at once via
///               materialize(), which folds base + patches into a fresh
///               CsrGraph for republication through GraphRegistry.
///
/// Record semantics, applied in arrival order per (u, v):
///   ADD u v w   adds w to the arc's weight (creating it if absent; repeated
///               adds accumulate, matching EdgeList::coalesce).
///   DEL u v     tombstones the base arc *and* discards adds logged so far;
///               a later ADD resurrects the arc with only the new weight.
/// On a symmetric base graph records are treated as undirected edges (both
/// directions patched) so the merged view stays symmetric; on a directed
/// base they are directed arcs.  Endpoints past the base vertex count grow
/// the merged graph (new vertices arrive with their first edge).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "asamap/graph/csr_graph.hpp"
#include "asamap/graph/types.hpp"

namespace asamap::dyn {

enum class DeltaOp : std::uint8_t { kAddEdge, kDelEdge };

[[nodiscard]] constexpr const char* to_string(DeltaOp op) noexcept {
  return op == DeltaOp::kAddEdge ? "add" : "del";
}

struct DeltaRecord {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  graph::Weight weight = 1.0;  ///< ignored for kDelEdge
  DeltaOp op = DeltaOp::kAddEdge;

  friend bool operator==(const DeltaRecord&, const DeltaRecord&) = default;
};

struct DeltaLogStats {
  std::size_t pending = 0;      ///< records not yet folded into a CSR
  std::uint64_t adds = 0;       ///< lifetime ADD records
  std::uint64_t dels = 0;       ///< lifetime DEL records
  std::uint64_t truncations = 0;  ///< fold/compaction batches consumed
};

/// Append-only mutation log for one named graph.  All methods are
/// thread-safe; appends race freely with snapshot() (readers see a prefix).
class DeltaLog {
 public:
  void add_edge(graph::VertexId u, graph::VertexId v,
                graph::Weight w = 1.0);
  void del_edge(graph::VertexId u, graph::VertexId v);

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] bool empty() const { return pending() == 0; }
  [[nodiscard]] DeltaLogStats stats() const;

  /// Copy of the currently pending records, oldest first.  The log is NOT
  /// drained: the caller folds the batch and then truncate()s exactly the
  /// records it consumed, so a fold that aborts (cancellation, eviction
  /// race) never loses mutations.
  [[nodiscard]] std::vector<DeltaRecord> snapshot() const;

  /// Drops the oldest `n` records (the batch a completed fold consumed).
  void truncate(std::size_t n);

 private:
  mutable std::mutex mu_;
  std::vector<DeltaRecord> records_;
  DeltaLogStats stats_;
};

/// One folded batch: per-vertex patch runs merged on the fly with a base
/// CSR.  Build is O(batch · log batch); iteration is a linear two-pointer
/// merge of the (sorted) base adjacency with the (sorted) patch run, so the
/// merged view costs O(degree + patches(u)) per vertex — the base graph is
/// never copied.  Read-only and safe to share across threads once built.
class DeltaView {
 public:
  /// Patch state for one (vertex, neighbor) pair after replaying the batch.
  struct Patch {
    graph::VertexId dst = 0;
    graph::Weight add = 0.0;  ///< weight accumulated by ADDs after last DEL
    bool drop_base = false;   ///< a DEL tombstoned the base arc
  };

  /// `undirected` defaults to the base graph's symmetry: records patch both
  /// directions of a symmetric base so it stays symmetric.
  DeltaView(const graph::CsrGraph& base, std::span<const DeltaRecord> batch);
  DeltaView(const graph::CsrGraph& base, std::span<const DeltaRecord> batch,
            bool undirected);

  [[nodiscard]] const graph::CsrGraph& base() const noexcept { return *base_; }
  /// Merged vertex count: max of the base count and 1 + highest endpoint.
  [[nodiscard]] graph::VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }

  /// Distinct endpoints named by the batch, ascending — the seed of the
  /// incremental recluster's active set.
  [[nodiscard]] const std::vector<graph::VertexId>& touched() const noexcept {
    return touched_;
  }

  /// Merged out-adjacency of u in ascending-dst order (tombstoned arcs
  /// skipped, added weights folded in).  `fn(Arc)` per surviving arc.
  template <typename F>
  void for_each_out(graph::VertexId u, F&& fn) const {
    merge(base_out(u), find_patches(out_patches_, u),
          std::forward<F>(fn));
  }
  /// Merged in-adjacency (Arc::dst is the arc's *source*, as in CsrGraph).
  template <typename F>
  void for_each_in(graph::VertexId u, F&& fn) const {
    merge(base_in(u), find_patches(in_patches_, u), std::forward<F>(fn));
  }

  /// Merged out-adjacency collected into a vector (test / debug
  /// convenience; hot paths use for_each_out).
  [[nodiscard]] std::vector<graph::Arc> out_arcs(graph::VertexId u) const;
  [[nodiscard]] std::vector<graph::Arc> in_arcs(graph::VertexId u) const;

  [[nodiscard]] std::size_t out_degree(graph::VertexId u) const;

  /// Folds base + batch into a fresh immutable CSR — the compaction step.
  /// Emits arcs in globally sorted (src, dst) order so the EdgeList
  /// fast-path (from_coalesced) skips its O(m log m) re-sort.
  [[nodiscard]] graph::CsrGraph materialize() const;

 private:
  using PatchMap = std::unordered_map<graph::VertexId, std::vector<Patch>>;

  [[nodiscard]] std::span<const graph::Arc> base_out(
      graph::VertexId u) const noexcept {
    return u < base_->num_vertices() ? base_->out_neighbors(u)
                                     : std::span<const graph::Arc>{};
  }
  [[nodiscard]] std::span<const graph::Arc> base_in(
      graph::VertexId u) const noexcept {
    return u < base_->num_vertices() ? base_->in_neighbors(u)
                                     : std::span<const graph::Arc>{};
  }
  [[nodiscard]] static std::span<const Patch> find_patches(
      const PatchMap& m, graph::VertexId u) noexcept {
    const auto it = m.find(u);
    return it == m.end() ? std::span<const Patch>{}
                         : std::span<const Patch>{it->second};
  }

  /// The two-pointer merge both adjacency sides share.  Both runs are
  /// ascending by dst; a patch matching a base arc rewrites its weight
  /// ((drop_base ? 0 : base) + add), a patch with no base arc inserts one
  /// when add > 0, and an arc whose merged weight is 0 is skipped (pure
  /// tombstone).
  template <typename F>
  static void merge(std::span<const graph::Arc> base,
                    std::span<const Patch> patches, F&& fn) {
    std::size_t bi = 0;
    std::size_t pi = 0;
    while (bi < base.size() || pi < patches.size()) {
      if (pi == patches.size() ||
          (bi < base.size() && base[bi].dst < patches[pi].dst)) {
        fn(base[bi]);
        ++bi;
        continue;
      }
      const Patch& p = patches[pi];
      graph::Weight w = p.add;
      if (bi < base.size() && base[bi].dst == p.dst) {
        if (!p.drop_base) w += base[bi].weight;
        ++bi;
      }
      if (w > 0.0) fn(graph::Arc{p.dst, w});
      ++pi;
    }
  }

  void apply_record(const DeltaRecord& rec);
  static void patch_one(PatchMap& m, graph::VertexId src, graph::VertexId dst,
                        const DeltaRecord& rec);

  const graph::CsrGraph* base_;
  graph::VertexId n_ = 0;
  std::size_t batch_size_ = 0;
  bool undirected_ = true;
  PatchMap out_patches_;
  PatchMap in_patches_;
  std::vector<graph::VertexId> touched_;
};

}  // namespace asamap::dyn
