#pragma once

/// \file incremental.hpp
/// Warm-start planning for incremental reclustering (DESIGN.md §4f).
///
/// After a delta batch folds into a merged CSR, re-clustering from scratch
/// throws away everything the previous run learned.  The incremental path
/// instead seeds the Infomap drivers with the last published snapshot's
/// membership (InfomapOptions::warm_start) and restricts the level-0 sweep
/// to an *active set* around the vertices the batch touched
/// (InfomapOptions::active_seed) — the 1-hop expansion and the
/// activation-propagation sweeps are the drivers' existing machinery.  The
/// result's initial_codelength is then the warm partition's codelength on
/// the merged graph, which is exactly the publish-on-improvement baseline.

#include <span>
#include <vector>

#include "asamap/core/flow.hpp"
#include "asamap/graph/csr_graph.hpp"
#include "asamap/graph/types.hpp"

namespace asamap::dyn {

/// The inputs an incremental driver run needs, with lifetimes owned here so
/// InfomapOptions can point at them for the duration of the call.
struct WarmStart {
  core::Partition init;  ///< per-vertex module id, compacted to 0..k-1
  std::size_t num_modules = 0;
  std::vector<graph::VertexId> active_seed;  ///< batch-touched + new vertices
};

/// Carries the previous snapshot's membership onto the merged graph:
/// existing vertices keep their community, vertices the merge added
/// (prev.size() .. n_new-1) start as fresh singletons, and the active seed
/// is the union of `touched` and those new vertices.  `prev` ids need not
/// be compact; the plan's are.
[[nodiscard]] WarmStart plan_warm_start(
    const core::Partition& prev, graph::VertexId n_new,
    std::span<const graph::VertexId> touched);

/// Map-equation codelength of an arbitrary membership on `g` — the
/// measuring stick for incremental-vs-scratch quality gates.  Ids need not
/// be compact; empty modules cost nothing.
[[nodiscard]] double evaluate_codelength(const graph::CsrGraph& g,
                                         const core::Partition& partition,
                                         const core::FlowOptions& flow = {});

}  // namespace asamap::dyn
