#include "asamap/dyn/incremental.hpp"

#include <algorithm>

#include "asamap/core/infomap.hpp"
#include "asamap/core/map_equation.hpp"

namespace asamap::dyn {

WarmStart plan_warm_start(const core::Partition& prev, graph::VertexId n_new,
                          std::span<const graph::VertexId> touched) {
  WarmStart plan;
  plan.init.assign(n_new, 0);
  const std::size_t carried = std::min<std::size_t>(prev.size(), n_new);
  std::copy_n(prev.begin(), carried, plan.init.begin());
  // Compact the carried ids first so new singletons slot in right after the
  // surviving modules.
  core::Partition compacted(plan.init.begin(),
                            plan.init.begin() +
                                static_cast<std::ptrdiff_t>(carried));
  std::size_t k = core::compact_communities(compacted);
  std::copy(compacted.begin(), compacted.end(), plan.init.begin());
  for (std::size_t v = carried; v < n_new; ++v) {
    plan.init[v] = static_cast<graph::VertexId>(k++);
    plan.active_seed.push_back(static_cast<graph::VertexId>(v));
  }
  plan.num_modules = k;
  for (graph::VertexId v : touched) {
    if (v < n_new) plan.active_seed.push_back(v);
  }
  std::sort(plan.active_seed.begin(), plan.active_seed.end());
  plan.active_seed.erase(
      std::unique(plan.active_seed.begin(), plan.active_seed.end()),
      plan.active_seed.end());
  return plan;
}

double evaluate_codelength(const graph::CsrGraph& g,
                           const core::Partition& partition,
                           const core::FlowOptions& flow) {
  const core::FlowNetwork fn = core::build_flow(g, flow);
  const std::size_t n = fn.num_nodes();
  core::Partition compact = partition;
  if (compact.size() < n) {
    // Vertices beyond the given membership count as fresh singletons.
    graph::VertexId next = 0;
    for (const graph::VertexId m : compact) next = std::max(next, m + 1);
    compact.reserve(n);
    while (compact.size() < n) compact.push_back(next++);
  }
  compact.resize(n);
  const std::size_t k = core::compact_communities(compact);
  const core::ModuleState state(fn, compact, k);
  return state.codelength();
}

}  // namespace asamap::dyn
