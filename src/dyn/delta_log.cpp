#include "asamap/dyn/delta_log.hpp"

#include <algorithm>
#include <utility>

#include "asamap/graph/edge_list.hpp"

namespace asamap::dyn {

void DeltaLog::add_edge(graph::VertexId u, graph::VertexId v,
                        graph::Weight w) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(DeltaRecord{u, v, w, DeltaOp::kAddEdge});
  ++stats_.adds;
  stats_.pending = records_.size();
}

void DeltaLog::del_edge(graph::VertexId u, graph::VertexId v) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(DeltaRecord{u, v, 0.0, DeltaOp::kDelEdge});
  ++stats_.dels;
  stats_.pending = records_.size();
}

std::size_t DeltaLog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

DeltaLogStats DeltaLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<DeltaRecord> DeltaLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void DeltaLog::truncate(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n == 0) return;
  n = std::min(n, records_.size());
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(n));
  ++stats_.truncations;
  stats_.pending = records_.size();
}

DeltaView::DeltaView(const graph::CsrGraph& base,
                     std::span<const DeltaRecord> batch)
    : DeltaView(base, batch, base.is_symmetric()) {}

DeltaView::DeltaView(const graph::CsrGraph& base,
                     std::span<const DeltaRecord> batch, bool undirected)
    : base_(&base),
      n_(base.num_vertices()),
      batch_size_(batch.size()),
      undirected_(undirected) {
  for (const DeltaRecord& rec : batch) apply_record(rec);
  // Patch runs accumulate in arrival order; the merge needs ascending dst.
  const auto sort_runs = [](PatchMap& m) {
    for (auto& [src, run] : m) {
      std::sort(run.begin(), run.end(),
                [](const Patch& a, const Patch& b) { return a.dst < b.dst; });
    }
  };
  sort_runs(out_patches_);
  sort_runs(in_patches_);
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());
}

void DeltaView::apply_record(const DeltaRecord& rec) {
  if (rec.u == rec.v) return;  // self-loops are rejected upstream
  // Every record implies the directed arc u->v; on an undirected base it
  // also implies v->u so symmetry survives the fold.
  patch_one(out_patches_, rec.u, rec.v, rec);
  patch_one(in_patches_, rec.v, rec.u, rec);
  if (undirected_) {
    patch_one(out_patches_, rec.v, rec.u, rec);
    patch_one(in_patches_, rec.u, rec.v, rec);
  }
  n_ = std::max({n_, rec.u + 1, rec.v + 1});
  touched_.push_back(rec.u);
  touched_.push_back(rec.v);
}

void DeltaView::patch_one(PatchMap& m, graph::VertexId src,
                          graph::VertexId dst, const DeltaRecord& rec) {
  std::vector<Patch>& run = m[src];
  auto it = std::find_if(run.begin(), run.end(),
                         [dst](const Patch& p) { return p.dst == dst; });
  if (it == run.end()) {
    it = run.insert(run.end(), Patch{dst, 0.0, false});
  }
  if (rec.op == DeltaOp::kAddEdge) {
    it->add += rec.weight;
  } else {
    // DEL tombstones the base arc and voids adds logged before it; an ADD
    // after the DEL resurrects the arc with only the new weight.
    it->drop_base = true;
    it->add = 0.0;
  }
}

std::vector<graph::Arc> DeltaView::out_arcs(graph::VertexId u) const {
  std::vector<graph::Arc> out;
  for_each_out(u, [&out](const graph::Arc& a) { out.push_back(a); });
  return out;
}

std::vector<graph::Arc> DeltaView::in_arcs(graph::VertexId u) const {
  std::vector<graph::Arc> out;
  for_each_in(u, [&out](const graph::Arc& a) { out.push_back(a); });
  return out;
}

std::size_t DeltaView::out_degree(graph::VertexId u) const {
  std::size_t d = 0;
  for_each_out(u, [&d](const graph::Arc&) { ++d; });
  return d;
}

graph::CsrGraph DeltaView::materialize() const {
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(base_->num_arcs()) + batch_size_);
  for (graph::VertexId u = 0; u < n_; ++u) {
    for_each_out(u, [&edges, u](const graph::Arc& a) {
      edges.push_back(graph::Edge{u, a.dst, a.weight});
    });
  }
  // The merge emits ascending (src, dst) with parallel arcs already folded,
  // which is exactly the from_coalesced contract — no re-sort.
  graph::EdgeList el =
      graph::EdgeList::from_coalesced(std::move(edges), n_);
  return graph::CsrGraph::from_edges(el, n_);
}

}  // namespace asamap::dyn
