#include "asamap/sim/cache.hpp"

#include <bit>

#include "asamap/support/check.hpp"

namespace asamap::sim {

Cache::Cache(CacheConfig config, Cache* next, std::uint32_t memory_latency)
    : config_(std::move(config)), next_(next), memory_latency_(memory_latency) {
  ASAMAP_CHECK(std::has_single_bit(config_.line_bytes), "line size not pow2");
  ASAMAP_CHECK(config_.associativity >= 1, "associativity must be >= 1");
  const std::uint64_t lines = config_.size_bytes / config_.line_bytes;
  ASAMAP_CHECK(lines % config_.associativity == 0,
               "size/line/assoc mismatch");
  num_sets_ = static_cast<std::uint32_t>(lines / config_.associativity);
  ASAMAP_CHECK(std::has_single_bit(num_sets_), "set count not pow2");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config_.line_bytes));
  lines_.resize(lines);
}

std::uint32_t Cache::access(std::uint64_t addr) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t line_addr = addr >> line_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr) & (num_sets_ - 1);
  const std::uint64_t tag = line_addr;
  Line* base = lines_.data() + static_cast<std::size_t>(set) * config_.associativity;

  // Hit path.
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    Line& l = base[way];
    if (l.valid && l.tag == tag) {
      l.lru = tick_;
      if (l.prefetched) {
        l.prefetched = false;
        ++stats_.prefetch_hits;
      }
      return config_.latency_cycles;
    }
  }

  // Miss: recurse, then fill the LRU way.
  ++stats_.misses;
  const std::uint32_t below =
      next_ != nullptr ? next_->access(addr) : memory_latency_;

  // Stride prefetch: pull the following lines in the background.
  for (std::uint32_t p = 1; p <= config_.prefetch_lines; ++p) {
    prefetch_fill(addr + std::uint64_t{p} * config_.line_bytes);
  }

  // Prefer a free way; otherwise evict the least-recently-used one.
  Line* victim = base;
  for (std::uint32_t way = 1; way < config_.associativity && victim->valid;
       ++way) {
    Line& l = base[way];
    if (!l.valid || l.lru < victim->lru) victim = &l;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  victim->prefetched = false;
  return config_.latency_cycles + below;
}

void Cache::prefetch_fill(std::uint64_t addr) {
  const std::uint64_t line_addr = addr >> line_shift_;
  const std::uint32_t set =
      static_cast<std::uint32_t>(line_addr) & (num_sets_ - 1);
  Line* base = lines_.data() + static_cast<std::size_t>(set) * config_.associativity;
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    if (base[way].valid && base[way].tag == line_addr) return;  // resident
  }
  ++stats_.prefetches;
  // Insert at LRU-1 priority (standard prefetch de-prioritization: a bad
  // prefetch should be the first thing evicted).
  Line* victim = base;
  for (std::uint32_t way = 1;
       way < config_.associativity && victim->valid; ++way) {
    Line& l = base[way];
    if (!l.valid || l.lru < victim->lru) victim = &l;
  }
  victim->valid = true;
  victim->tag = line_addr;
  victim->lru = tick_ > 0 ? tick_ - 1 : 0;
  victim->prefetched = true;
}

std::uint32_t Cache::access_range(std::uint64_t addr, std::uint32_t bytes) {
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) >> line_shift_;
  std::uint32_t worst = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    const std::uint32_t lat = access(line << line_shift_);
    if (lat > worst) worst = lat;
  }
  return worst;
}

void Cache::flush() {
  for (Line& l : lines_) l = Line{};
  if (next_ != nullptr) next_->flush();
}

}  // namespace asamap::sim
