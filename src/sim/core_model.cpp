#include "asamap/sim/core_model.hpp"

namespace asamap::sim {

CoreModel::CoreModel(const CoreConfig& config, Cache* l3)
    : config_(config),
      predictor_(make_predictor(config.predictor)),
      l2_(config.l2, l3, config.memory_latency),
      l1_(config.l1, &l2_, config.memory_latency) {}

double CoreModel::cycles() const noexcept {
  return static_cast<double>(stats_.total_instructions()) * config_.base_cpi +
         static_cast<double>(stats_.branch_mispredicts) *
             config_.mispredict_penalty +
         stats_.stall_cycles;
}

double CoreModel::cpi() const noexcept {
  const std::uint64_t instr = stats_.total_instructions();
  return instr == 0 ? 0.0 : cycles() / static_cast<double>(instr);
}

void CoreModel::reset_stats() noexcept { stats_ = CoreStats{}; }

void CoreModel::reset_all() {
  reset_stats();
  predictor_->reset();
  l1_.flush();  // flushes l2 and l3 transitively
  l1_.reset_stats();
  l2_.reset_stats();
}

}  // namespace asamap::sim
