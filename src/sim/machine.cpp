#include "asamap/sim/machine.hpp"

#include <algorithm>

#include "asamap/support/check.hpp"

namespace asamap::sim {

MachineConfig paper_baseline_machine(std::uint32_t num_cores) {
  MachineConfig m;
  m.num_cores = num_cores;
  // CoreConfig and the 16MB L3 defaults already encode Table II.
  return m;
}

Machine::Machine(const MachineConfig& config)
    : config_(config),
      l3_(std::make_unique<Cache>(config.l3, nullptr,
                                  config.core.memory_latency)) {
  ASAMAP_CHECK(config.num_cores >= 1, "machine needs at least one core");
  cores_.reserve(config.num_cores);
  for (std::uint32_t i = 0; i < config.num_cores; ++i) {
    cores_.push_back(std::make_unique<CoreModel>(config.core, l3_.get()));
  }
}

CoreStats Machine::total_stats() const {
  CoreStats total;
  for (const auto& c : cores_) total += c->stats();
  return total;
}

double Machine::avg_instructions_per_core() const {
  const CoreStats t = total_stats();
  return static_cast<double>(t.total_instructions()) /
         static_cast<double>(cores_.size());
}

double Machine::avg_mispredicts_per_core() const {
  const CoreStats t = total_stats();
  return static_cast<double>(t.branch_mispredicts) /
         static_cast<double>(cores_.size());
}

double Machine::avg_cpi_per_core() const {
  double sum = 0.0;
  std::size_t active = 0;
  for (const auto& c : cores_) {
    if (c->stats().total_instructions() > 0) {
      sum += c->cpi();
      ++active;
    }
  }
  return active == 0 ? 0.0 : sum / static_cast<double>(active);
}

double Machine::simulated_seconds() const {
  double worst = 0.0;
  for (const auto& c : cores_) worst = std::max(worst, c->seconds());
  return worst;
}

void Machine::reset_stats() {
  for (auto& c : cores_) c->reset_stats();
}

void Machine::reset_all() {
  for (auto& c : cores_) c->reset_all();
  l3_->reset_stats();
}

}  // namespace asamap::sim
