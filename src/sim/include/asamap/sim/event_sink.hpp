#pragma once

/// \file event_sink.hpp
/// The contract between instrumented data structures (hashdb, asa) and the
/// microarchitecture cost model.  This replaces the paper's Pin/ZSim tooling:
/// instead of intercepting the real x86 instruction stream, the hot-path data
/// structures are instrumented at the source level to emit the same classes
/// of events ZSim observes — retired instructions, conditional branches with
/// their outcome, and data memory accesses — which the sim::CoreModel replays
/// through a branch predictor and a cache hierarchy.
///
/// Sinks are a *compile-time* concept so that the NullSink configuration
/// (used when only functional behaviour matters, e.g. unit tests of hash-map
/// semantics) compiles to zero overhead.

#include <concepts>
#include <cstdint>

namespace asamap::sim {

/// Identifies a static branch site (the "PC" of the branch).  Instrumented
/// code uses distinct small ids per source-level branch so pattern-history
/// predictors see realistic per-site streams.
using BranchSite = std::uint32_t;

template <typename S>
concept EventSink = requires(S s, std::uint64_t n, BranchSite site, bool taken,
                             std::uint64_t addr, std::uint32_t bytes) {
  { s.instructions(n) };           // n retired non-memory, non-branch µops
  { s.branch(site, taken) };       // one conditional branch (counts as 1 instr)
  { s.load(addr, bytes) };         // one data load (counts as 1 instr)
  { s.store(addr, bytes) };        // one data store (counts as 1 instr)
  { s.load_stream(addr, bytes) };  // load on a sequential-scan stream
  { s.load_dependent(addr, bytes) };  // load on a serial dependence chain
};

/// Discards every event; the zero-cost configuration.
struct NullSink {
  void instructions(std::uint64_t) noexcept {}
  void branch(BranchSite, bool) noexcept {}
  void load(std::uint64_t, std::uint32_t) noexcept {}
  void store(std::uint64_t, std::uint32_t) noexcept {}
  void load_stream(std::uint64_t, std::uint32_t) noexcept {}
  void load_dependent(std::uint64_t, std::uint32_t) noexcept {}
};

static_assert(EventSink<NullSink>);

/// Branch-site ids used by the instrumented libraries.  Keeping them in one
/// registry avoids accidental aliasing between unrelated branches (which
/// would pollute the predictor's pattern tables).
namespace sites {
inline constexpr BranchSite kChainedBucketEmpty = 1;
inline constexpr BranchSite kChainedKeyCompare = 2;
inline constexpr BranchSite kChainedChainContinue = 3;
inline constexpr BranchSite kChainedNeedRehash = 4;
inline constexpr BranchSite kOpenSlotState = 5;
inline constexpr BranchSite kOpenKeyCompare = 6;
inline constexpr BranchSite kOpenNeedGrow = 7;
inline constexpr BranchSite kAsaOverflowCheck = 8;
inline constexpr BranchSite kSortCompare = 9;
inline constexpr BranchSite kMergeSameKey = 10;
inline constexpr BranchSite kScanLoop = 11;
inline constexpr BranchSite kBestUpdate = 12;
}  // namespace sites

}  // namespace asamap::sim
