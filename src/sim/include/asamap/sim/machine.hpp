#pragma once

/// \file machine.hpp
/// Multi-core machine model: N CoreModels sharing one L3, mirroring the
/// paper's Table II "Baseline" configuration (8 cores/socket, 32KB L1,
/// 256KB private L2, 16MB shared L3, 2.6 GHz).
///
/// Multi-core experiments partition work across simulated cores and replay
/// each core's event stream; the shared L3 sees the interleaved footprint.
/// Like ZSim's bound-weave approach, we do not model cycle-accurate
/// interleaving — per-core counters (the quantities in Figs. 9-11) do not
/// require it.

#include <memory>
#include <vector>

#include "asamap/sim/core_model.hpp"

namespace asamap::sim {

struct MachineConfig {
  std::uint32_t num_cores = 1;
  CoreConfig core = {};
  CacheConfig l3 = {"L3", 16 * 1024 * 1024, 16, 64, 40};
};

/// Returns the paper's Table II "Baseline" machine: the given core count on
/// Ivy Bridge-like parameters.
MachineConfig paper_baseline_machine(std::uint32_t num_cores = 1);

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {});

  [[nodiscard]] std::uint32_t num_cores() const noexcept {
    return static_cast<std::uint32_t>(cores_.size());
  }

  [[nodiscard]] CoreModel& core(std::uint32_t i) { return *cores_[i]; }
  [[nodiscard]] const CoreModel& core(std::uint32_t i) const {
    return *cores_[i];
  }

  /// Aggregate counters over all cores.
  [[nodiscard]] CoreStats total_stats() const;

  /// Per-core averages (the unit of Figs. 9-11).
  [[nodiscard]] double avg_instructions_per_core() const;
  [[nodiscard]] double avg_mispredicts_per_core() const;
  [[nodiscard]] double avg_cpi_per_core() const;

  /// Parallel-region wall time: the slowest core's cycle count over the
  /// clock (cores run concurrently).
  [[nodiscard]] double simulated_seconds() const;

  [[nodiscard]] const Cache& l3() const noexcept { return *l3_; }

  void reset_stats();
  void reset_all();

 private:
  MachineConfig config_;
  std::unique_ptr<Cache> l3_;
  std::vector<std::unique_ptr<CoreModel>> cores_;
};

}  // namespace asamap::sim
