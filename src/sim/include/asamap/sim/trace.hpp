#pragma once

/// \file trace.hpp
/// Event-trace record and replay: capture the event stream of one
/// instrumented run, then replay it through arbitrary machine
/// configurations.  This is the trace-driven simulation mode every serious
/// microarchitecture toolchain grows (Pin itself is often used exactly this
/// way): the workload executes once, and cache/predictor sensitivity
/// studies become cheap deterministic replays.
///
/// Used by bench_ablation_l3 to answer a question the paper's Table II
/// leaves open — how much the ZSim 16 MB power-of-two L3 standing in for
/// the native 20 MB part matters.
///
/// Naming note: this is the *simulator's* synthetic memory-access event
/// stream, an input to the ASA cost model.  It is unrelated to
/// `asamap/obs/tracing.hpp`, the observability layer's request tracing
/// (wall-clock spans, flight recorder, Chrome trace-event export); see
/// the README Observability section for when to reach for which.

#include <cstdint>
#include <span>
#include <vector>

#include "asamap/sim/event_sink.hpp"

namespace asamap::sim {

enum class EventKind : std::uint8_t {
  kInstructions,
  kBranch,
  kLoad,
  kStore,
  kLoadStream,
  kLoadDependent,
};

/// One recorded event, 16 bytes.  For kInstructions, `value` is the count;
/// for memory events it is the address and `bytes` the width; for branches
/// `site`/`taken` apply.
struct TraceEvent {
  std::uint64_t value = 0;
  std::uint32_t bytes = 0;
  std::uint16_t site = 0;
  EventKind kind = EventKind::kInstructions;
  bool taken = false;
};
static_assert(sizeof(TraceEvent) == 16);

/// An EventSink that records everything it sees.
class TraceRecorder {
 public:
  void instructions(std::uint64_t n) {
    events_.push_back({n, 0, 0, EventKind::kInstructions, false});
  }
  void branch(BranchSite site, bool taken) {
    events_.push_back(
        {0, 0, static_cast<std::uint16_t>(site), EventKind::kBranch, taken});
  }
  void load(std::uint64_t addr, std::uint32_t bytes) {
    events_.push_back({addr, bytes, 0, EventKind::kLoad, false});
  }
  void store(std::uint64_t addr, std::uint32_t bytes) {
    events_.push_back({addr, bytes, 0, EventKind::kStore, false});
  }
  void load_stream(std::uint64_t addr, std::uint32_t bytes) {
    events_.push_back({addr, bytes, 0, EventKind::kLoadStream, false});
  }
  void load_dependent(std::uint64_t addr, std::uint32_t bytes) {
    events_.push_back({addr, bytes, 0, EventKind::kLoadDependent, false});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }
  void reserve(std::size_t n) { events_.reserve(n); }

 private:
  std::vector<TraceEvent> events_;
};

static_assert(EventSink<TraceRecorder>);

/// Replays a recorded trace into any sink (typically a CoreModel with a
/// different configuration).  Deterministic: replaying the same trace into
/// identically configured sinks yields identical statistics.
template <EventSink Sink>
void replay_trace(std::span<const TraceEvent> events, Sink& sink) {
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kInstructions:
        sink.instructions(e.value);
        break;
      case EventKind::kBranch:
        sink.branch(e.site, e.taken);
        break;
      case EventKind::kLoad:
        sink.load(e.value, e.bytes);
        break;
      case EventKind::kStore:
        sink.store(e.value, e.bytes);
        break;
      case EventKind::kLoadStream:
        sink.load_stream(e.value, e.bytes);
        break;
      case EventKind::kLoadDependent:
        sink.load_dependent(e.value, e.bytes);
        break;
    }
  }
}

}  // namespace asamap::sim
