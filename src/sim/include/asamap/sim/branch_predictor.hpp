#pragma once

/// \file branch_predictor.hpp
/// Branch predictor models.  The paper's misprediction counts come from
/// ZSim's OoO core model; we reproduce the mechanism with standard
/// predictors.  Gshare is the default (closest to the global-history
/// predictors of the Ivy Bridge era among simple models); bimodal and
/// always-taken exist for the predictor-robustness ablation.

#include <cstdint>
#include <memory>
#include <vector>

#include "asamap/sim/event_sink.hpp"

namespace asamap::sim {

/// Saturating 2-bit counter helper.
class TwoBitCounter {
 public:
  [[nodiscard]] bool predict_taken() const noexcept { return state_ >= 2; }
  void update(bool taken) noexcept {
    if (taken) {
      if (state_ < 3) ++state_;
    } else {
      if (state_ > 0) --state_;
    }
  }

 private:
  std::uint8_t state_ = 2;  // weakly taken, matches common reset state
};

/// Interface for predictor models: feed an outcome, learn, report
/// mispredicts.  Kept virtual — predictor choice is an ablation knob, not a
/// hot path (one call per branch event).
class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;

  /// Predicts, updates internal state with the real outcome, and returns
  /// whether the prediction was wrong.
  virtual bool mispredicted(BranchSite site, bool taken) = 0;

  virtual void reset() = 0;
};

/// Per-site 2-bit counters indexed by hashed site id.
class BimodalPredictor final : public BranchPredictor {
 public:
  explicit BimodalPredictor(unsigned index_bits = 12);
  bool mispredicted(BranchSite site, bool taken) override;
  void reset() override;

 private:
  unsigned bits_;
  std::vector<TwoBitCounter> table_;
};

/// Gshare: global history XOR site id indexes the pattern table.
class GsharePredictor final : public BranchPredictor {
 public:
  explicit GsharePredictor(unsigned index_bits = 14,
                           unsigned history_bits = 12);
  bool mispredicted(BranchSite site, bool taken) override;
  void reset() override;

 private:
  unsigned bits_;
  unsigned history_bits_;
  std::uint64_t history_ = 0;
  std::vector<TwoBitCounter> table_;
};

/// Static predict-taken; the ablation lower bound.
class AlwaysTakenPredictor final : public BranchPredictor {
 public:
  bool mispredicted(BranchSite, bool taken) override { return !taken; }
  void reset() override {}
};

enum class PredictorKind { kGshare, kBimodal, kAlwaysTaken };

/// Factory used by CoreModel configuration.
std::unique_ptr<BranchPredictor> make_predictor(PredictorKind kind);

}  // namespace asamap::sim
