#pragma once

/// \file core_model.hpp
/// Single-core cost model.  Replays the event stream emitted by instrumented
/// code (see event_sink.hpp) through a branch predictor and a private L1/L2
/// backed by a (possibly shared) L3, and charges cycles:
///
///   cycles = instructions * base_cpi                (steady-state pipeline)
///          + mispredicts  * mispredict_penalty      (pipeline flushes)
///          + sum(max(0, hit_latency - L1_latency))  (memory stalls)
///                 * memory_overlap                  (MLP discount)
///
/// This is the standard first-order OoO model (interval analysis without the
/// width transients); it captures exactly the three effects the paper
/// attributes ASA's win to — instruction count, branch mispredictions, and
/// irregular-access stalls — and produces the same counters ZSim reports
/// (instructions, mispredicted branches, CPI, cycle-derived runtime).

#include <cstdint>
#include <memory>

#include "asamap/sim/branch_predictor.hpp"
#include "asamap/sim/cache.hpp"
#include "asamap/sim/event_sink.hpp"

namespace asamap::sim {

struct CoreConfig {
  double base_cpi = 0.4;             ///< issue-limited CPI with no stalls
  std::uint32_t mispredict_penalty = 15;  ///< Ivy Bridge-class flush cost
  /// Fraction of a miss's latency that stalls the pipeline, per access
  /// class.  Plain loads/stores are *independent* accesses (gathers whose
  /// addresses come from registers or sequential state): an OoO window
  /// keeps several in flight, so only ~1/MLP of the latency is exposed.
  /// Stream loads are additionally covered by stride prefetchers.
  /// Dependent loads (the next address comes from the previous load —
  /// hash-chain walks) cannot overlap and pay full latency; this is the
  /// irregular-access effect the paper attributes the Baseline's stalls to.
  double memory_overlap = 0.2;
  double stream_overlap = 0.1;
  double dependent_overlap = 1.0;
  std::uint32_t memory_latency = 200;     ///< DRAM round trip, cycles
  double frequency_ghz = 2.6;        ///< Table II clock
  PredictorKind predictor = PredictorKind::kGshare;
  CacheConfig l1 = {"L1D", 32 * 1024, 8, 64, 4};
  CacheConfig l2 = {"L2", 256 * 1024, 8, 64, 12};
};

struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_mispredicts = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  double stall_cycles = 0.0;

  [[nodiscard]] std::uint64_t total_instructions() const noexcept {
    return instructions + branches + loads + stores;
  }

  CoreStats& operator+=(const CoreStats& o) noexcept {
    instructions += o.instructions;
    branches += o.branches;
    branch_mispredicts += o.branch_mispredicts;
    loads += o.loads;
    stores += o.stores;
    stall_cycles += o.stall_cycles;
    return *this;
  }
};

/// One simulated core.  Satisfies the EventSink concept.
class CoreModel {
 public:
  /// `l3` may be null (memory directly behind L2) or a shared level owned by
  /// the Machine.
  explicit CoreModel(const CoreConfig& config = {}, Cache* l3 = nullptr);

  void instructions(std::uint64_t n) noexcept { stats_.instructions += n; }

  void branch(BranchSite site, bool taken) {
    ++stats_.branches;
    if (predictor_->mispredicted(site, taken)) ++stats_.branch_mispredicts;
  }

  void load(std::uint64_t addr, std::uint32_t bytes) {
    ++stats_.loads;
    charge_memory(addr, bytes);
  }

  void store(std::uint64_t addr, std::uint32_t bytes) {
    ++stats_.stores;
    charge_memory(addr, bytes);
  }

  /// A load on a sequential-scan stream (CSR arc arrays, gathered-pair
  /// vectors).  Hardware stride prefetchers hide most of the miss latency on
  /// such streams — both Ivy Bridge and ZSim's core model include them — so
  /// the stall is discounted by `stream_overlap` instead of
  /// `memory_overlap`.
  void load_stream(std::uint64_t addr, std::uint32_t bytes) {
    ++stats_.loads;
    charge_overlapped(addr, bytes, config_.stream_overlap);
  }

  /// A load on a serial dependence chain (the next address comes from this
  /// load's result — hash-bucket chains, linked-list chases).  The OoO
  /// window cannot overlap these with each other, so the full miss latency
  /// stalls: this is the paper's "irregular memory access patterns that are
  /// difficult for hardware prefetchers to predict".
  void load_dependent(std::uint64_t addr, std::uint32_t bytes) {
    ++stats_.loads;
    charge_overlapped(addr, bytes, config_.dependent_overlap);
  }

  /// Total cycles charged so far (see formula in the file comment).
  [[nodiscard]] double cycles() const noexcept;

  /// Cycles retired per instruction.
  [[nodiscard]] double cpi() const noexcept;

  /// Cycle count converted to seconds at the configured clock.
  [[nodiscard]] double seconds() const noexcept {
    return cycles() / (config_.frequency_ghz * 1e9);
  }

  [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CoreConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Cache& l1() const noexcept { return l1_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }

  /// Clears counters but keeps cache/predictor state (warm measurement
  /// windows, as ZSim's fast-forward + ROI does).
  void reset_stats() noexcept;

  /// Clears counters *and* microarchitectural state.
  void reset_all();

 private:
  void charge_memory(std::uint64_t addr, std::uint32_t bytes) {
    charge_overlapped(addr, bytes, config_.memory_overlap);
  }

  void charge_overlapped(std::uint64_t addr, std::uint32_t bytes,
                         double overlap) {
    const std::uint32_t lat = l1_.access_range(addr, bytes);
    if (lat > config_.l1.latency_cycles) {
      stats_.stall_cycles +=
          static_cast<double>(lat - config_.l1.latency_cycles) * overlap;
    }
  }

  CoreConfig config_;
  std::unique_ptr<BranchPredictor> predictor_;
  Cache l2_;
  Cache l1_;
  CoreStats stats_;
};

static_assert(EventSink<CoreModel>);

}  // namespace asamap::sim
