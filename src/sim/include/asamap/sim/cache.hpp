#pragma once

/// \file cache.hpp
/// Set-associative cache model with true-LRU replacement.  Mirrors ZSim's
/// functional cache behaviour at the granularity we need: hit/miss per level
/// over 64-byte lines, with a private L1/L2 per core and a shared L3 per
/// machine (Table II of the paper).  Coherence is not modeled — the
/// instrumented kernels are data-parallel with thread-private accumulators,
/// so cross-core sharing of hot lines is negligible by construction.

#include <cstdint>
#include <string>
#include <vector>

namespace asamap::sim {

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t associativity = 8;
  std::uint32_t line_bytes = 64;
  std::uint32_t latency_cycles = 4;  ///< access latency when this level hits
  /// Next-line stride prefetcher: on a demand miss at line L, lines
  /// L+1..L+prefetch_lines are pulled into this level in the background
  /// (no stall charged — prefetches overlap with the demand fill).  0
  /// disables.  Off by default: the CoreModel's stream_overlap already
  /// discounts sequential scans, and enabling both would double-count; the
  /// prefetcher exists for ablations that model the mechanism explicitly.
  std::uint32_t prefetch_lines = 0;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t prefetches = 0;       ///< lines fetched speculatively
  std::uint64_t prefetch_hits = 0;    ///< demand hits on prefetched lines

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// One cache level.  `next` (may be null = main memory) is probed on miss.
class Cache {
 public:
  Cache(CacheConfig config, Cache* next, std::uint32_t memory_latency);

  /// Accesses one line-aligned address; returns the total latency in cycles
  /// of the deepest level that serviced it.  Writes allocate like reads
  /// (write-allocate, write-back — per the modeled Intel parts).
  std::uint32_t access(std::uint64_t addr);

  /// Splits an access of `bytes` at `addr` into line-sized probes and
  /// returns the worst-case (deepest) latency among them.
  std::uint32_t access_range(std::uint64_t addr, std::uint32_t bytes);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

  void reset_stats() noexcept { stats_ = {}; }
  /// Invalidates all lines (used between experiment repetitions).
  void flush();

 private:
  struct Line {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t lru = 0;  ///< last-touch tick; smaller = older
    bool valid = false;
    bool prefetched = false;  ///< filled speculatively, not yet demanded
  };

  /// Fills a line without recursing into lower levels' stats (the fill is
  /// modeled as free background bandwidth).
  void prefetch_fill(std::uint64_t addr);

  CacheConfig config_;
  Cache* next_;
  std::uint32_t memory_latency_;
  std::uint32_t num_sets_;
  std::uint32_t line_shift_;
  std::vector<Line> lines_;  ///< num_sets_ * associativity, set-major
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace asamap::sim
