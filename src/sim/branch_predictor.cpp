#include "asamap/sim/branch_predictor.hpp"

#include "asamap/support/check.hpp"
#include "asamap/support/hash.hpp"

namespace asamap::sim {

BimodalPredictor::BimodalPredictor(unsigned index_bits)
    : bits_(index_bits), table_(std::size_t{1} << index_bits) {
  ASAMAP_CHECK(index_bits >= 4 && index_bits <= 24, "index bits out of range");
}

bool BimodalPredictor::mispredicted(BranchSite site, bool taken) {
  const std::size_t idx =
      support::fibonacci_hash(site, bits_) & ((std::size_t{1} << bits_) - 1);
  TwoBitCounter& ctr = table_[idx];
  const bool predicted = ctr.predict_taken();
  ctr.update(taken);
  return predicted != taken;
}

void BimodalPredictor::reset() {
  table_.assign(table_.size(), TwoBitCounter{});
}

GsharePredictor::GsharePredictor(unsigned index_bits, unsigned history_bits)
    : bits_(index_bits),
      history_bits_(history_bits),
      table_(std::size_t{1} << index_bits) {
  ASAMAP_CHECK(index_bits >= 4 && index_bits <= 24, "index bits out of range");
  ASAMAP_CHECK(history_bits <= index_bits, "history wider than index");
}

bool GsharePredictor::mispredicted(BranchSite site, bool taken) {
  const std::uint64_t mask = (std::uint64_t{1} << bits_) - 1;
  const std::uint64_t site_hash = support::fibonacci_hash(site, bits_);
  const std::size_t idx =
      static_cast<std::size_t>((site_hash ^ history_) & mask);
  TwoBitCounter& ctr = table_[idx];
  const bool predicted = ctr.predict_taken();
  ctr.update(taken);
  history_ = ((history_ << 1) | static_cast<std::uint64_t>(taken)) &
             ((std::uint64_t{1} << history_bits_) - 1);
  return predicted != taken;
}

void GsharePredictor::reset() {
  history_ = 0;
  table_.assign(table_.size(), TwoBitCounter{});
}

std::unique_ptr<BranchPredictor> make_predictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kBimodal:
      return std::make_unique<BimodalPredictor>();
    case PredictorKind::kAlwaysTaken:
      return std::make_unique<AlwaysTakenPredictor>();
    case PredictorKind::kGshare:
      break;
  }
  return std::make_unique<GsharePredictor>();
}

}  // namespace asamap::sim
