#include "asamap/core/infomap.hpp"

#include <omp.h>

#include <algorithm>

#include "asamap/asa/accumulator.hpp"
#include "asamap/core/dense_accumulator.hpp"
#include "asamap/hashdb/flat_accumulator.hpp"
#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/support/parallel.hpp"

namespace asamap::core {

namespace {

template <typename Acc>
InfomapResult run_single(const graph::CsrGraph& g, const InfomapOptions& opts,
                         Acc& acc, sim::NullSink& sink) {
  Worker<Acc, sim::NullSink> worker{&acc, &sink};
  return run_multilevel(g, opts, std::span(&worker, 1));
}

/// Everything the parallel driver's FindBestCommunity needs, allocated once
/// at level-0 size and reused across sweeps, levels, and the refinement
/// pass.  Per-thread entries are cache-line padded — the proposal loop
/// updates its thread's accumulator and breakdown on every vertex, and
/// without padding those updates would ping-pong shared lines.
/// Parameterized on the native accumulation engine (FlatAccumulator or
/// HotSetAccumulator — both uninstrumented and bitwise-equivalent).
template <typename Acc>
struct ParallelWorkspace {
  int threads = 1;

  // Shared per-vertex buffers (indexed by current-level node id).
  std::vector<std::uint8_t> active;
  std::vector<std::uint8_t> next_active;
  std::vector<std::uint8_t> flagged;       ///< has a recorded proposal
  std::vector<MoveProposal> proposals;     ///< phase-1 output per vertex
  std::vector<std::uint64_t> stamp;        ///< epoch of last neighborhood change
  std::vector<VertexId> order;             ///< phase-1 schedule (degree-desc)

  // Per-thread state, shard-per-thread with a post-region fold
  // (obs::PerThread replaces the hand-rolled CacheAligned vectors plus
  // ad-hoc merge loops this driver used to carry).
  std::vector<support::CacheAligned<Acc>> accs;
  obs::PerThread<KernelBreakdown> breakdowns;
  obs::PerThread<double> propose_seconds;

  Acc apply_acc;  ///< serial verify/apply phase

  ParallelWorkspace(int num_threads, VertexId n)
      : threads(num_threads),
        active(n, 1),
        next_active(n, 0),
        flagged(n, 0),
        proposals(n),
        stamp(n, 0),
        accs(static_cast<std::size_t>(num_threads)),
        breakdowns(num_threads),
        propose_seconds(num_threads) {}

  /// Re-arms the first n entries for a fresh level or refinement pass.
  void reset(VertexId n) {
    std::fill_n(active.begin(), n, std::uint8_t{1});
    std::fill_n(next_active.begin(), n, std::uint8_t{0});
    std::fill_n(flagged.begin(), n, std::uint8_t{0});
    std::fill_n(stamp.begin(), n, std::uint64_t{0});
  }

  /// Folds per-thread hot-set counters into `result` (no-op for engines
  /// without them, e.g. FlatAccumulator).
  void fold_hot_stats(InfomapResult& result) {
    if constexpr (requires(Acc& a) { a.hot_stats(); }) {
      for (auto& acc : accs) {
        result.hotset += acc->hot_stats();
        acc->reset_hot_stats();
      }
      result.hotset += apply_acc.hot_stats();
      apply_acc.reset_hot_stats();
    } else {
      (void)result;
    }
  }
};

/// Fills `order` with the vertices of `fn` in descending total-degree order
/// (stable: ties stay in ascending vertex id).  Counting sort, O(n + D).
///
/// This is the phase-1 *schedule* only: hubs go first so (a) the dynamic
/// OpenMP chunks don't leave a heavy straggler for last, and (b) each
/// thread's hot set takes its capacity misses while it is cold, then stays
/// warm across the long tail of low-degree vertices.  Phase 2 still applies
/// proposals in vertex-id order, so the outcome is unchanged — proposals
/// are independent evaluations against the frozen snapshot.
void build_degree_order(const FlowNetwork& fn, std::vector<VertexId>& order) {
  const VertexId n = fn.num_nodes();
  order.resize(n);
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto d = static_cast<std::uint32_t>(
        fn.graph.out_neighbors(v).size() + fn.graph.in_neighbors(v).size());
    deg[v] = d;
    max_deg = std::max(max_deg, d);
  }
  std::vector<std::uint32_t> start(std::size_t{max_deg} + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++start[max_deg - deg[v] + 1];
  for (std::size_t b = 1; b < start.size(); ++b) start[b] += start[b - 1];
  for (VertexId v = 0; v < n; ++v) order[start[max_deg - deg[v]]++] = v;
}

/// Runs propose/verify sweeps on `state` until convergence or `max_sweeps`.
///
/// Phase 1 (parallel, one OpenMP region for *all* sweeps): every active
/// vertex evaluates its best move against the frozen module state and
/// records the full proposal (target + boundary flows).  Phase 2 (serial,
/// inside `omp single`): proposals are replayed in vertex order.  A
/// proposal's flows are exact iff no neighbor of the vertex moved since the
/// phase-1 snapshot — tracked with per-vertex epoch stamps bumped on every
/// applied move — in which case the code-length delta is re-derived from
/// live aggregates in O(1) and the move applies without touching the
/// accumulator.  Only vertices whose neighborhood changed re-run the full
/// accumulation.  Aggregates therefore stay exact, the module state is
/// incrementally maintained (no per-sweep recompute), and the outcome is
/// identical for every thread count.
///
/// Returns total moves; appends per-sweep traces when `record_trace`.
/// When `seed` is non-null the first sweep activates only those vertices
/// plus their 1-hop neighborhood (the incremental re-sweep of a delta
/// batch) instead of every vertex; activation then propagates from movers
/// exactly as in the full case.
template <typename Acc>
std::uint64_t parallel_sweeps(ModuleState& state, const FlowNetwork& fn,
                              const InfomapOptions& opts, int max_sweeps,
                              int level, const LevelAddresses& addrs,
                              const KernelCosts& costs,
                              ParallelWorkspace<Acc>& ws,
                              InfomapResult& result, bool record_trace,
                              const std::vector<VertexId>* seed = nullptr) {
  const VertexId n = fn.num_nodes();
  ws.reset(n);
  if (seed != nullptr) seed_active_set(fn, *seed, ws.active);
  build_degree_order(fn, ws.order);
  sim::NullSink sink;  // stateless: sharing across threads is race-free

  std::uint64_t epoch = 0;        // applied-move counter (phase 2 only)
  std::uint64_t total_moves = 0;
  double prev_codelength = state.codelength();
  bool done = false;
  support::WallTimer sweep_wall;  // reset by each sweep's phase-2 executor

  support::tsan_release(&ws);  // workspace + state: main -> team
#pragma omp parallel num_threads(ws.threads) default(shared)
  {
    support::tsan_acquire(&ws);
    const int tid = omp_get_thread_num();
    Acc& acc = *ws.accs[tid];
    KernelBreakdown& bd = ws.breakdowns.local(tid);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
      if (done) break;  // uniform: read after the end-of-sweep barrier

      support::WallTimer propose_wall;
      // Phase 1: propose against the frozen snapshot.  RelaxMap-style
      // relaxed reads are safe because nothing mutates state here, and
      // each iteration writes only its own vertex's slots.  Iteration runs
      // the degree-descending schedule (see build_degree_order); the
      // outcome is order-independent because proposals don't interact.
#pragma omp for schedule(dynamic, 1024) nowait
      for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
        const VertexId v = ws.order[static_cast<std::size_t>(vi)];
        if (!ws.active[v]) continue;
        const MoveProposal p = evaluate_move(state, fn, v, acc, sink, addrs,
                                             costs, bd, opts.time_wall);
        if (p.improving(state.module_of(v))) {
          ws.proposals[v] = p;
          ws.flagged[v] = 1;
        }
      }
      ws.propose_seconds.local(tid) = propose_wall.seconds();
      support::omp_barrier_sync(&ws);  // phase-1 writes -> phase-2 reads

#pragma omp single nowait
      {
        const std::uint64_t snapshot = epoch;
        std::uint64_t moves = 0;
        // Phase 2: verify and apply serially in vertex order — exact and
        // deterministic regardless of thread count.
        for (VertexId v = 0; v < n; ++v) {
          if (!ws.flagged[v]) continue;
          ws.flagged[v] = 0;
          bool moved = false;
          if (ws.stamp[v] <= snapshot) {
            // Neighborhood untouched since the snapshot: the recorded
            // flows are exact; only the delta needs refreshing (other
            // modules' aggregates moved under us), which is O(1).
            const MoveProposal& p = ws.proposals[v];
            if (p.target != state.module_of(v) &&
                state.delta_move(v, p.target, p.flows) < -1e-15) {
              state.apply_move(v, p.target, p.flows);
              ++result.breakdown.moves;
              moved = true;
            }
          } else {
            // A neighbor moved: flows are stale, re-run the accumulator.
            moved = find_best_community(state, fn, v, ws.apply_acc, sink,
                                        addrs, costs, result.breakdown,
                                        opts.time_wall);
          }
          if (moved) {
            ++moves;
            ++epoch;
            ws.stamp[v] = epoch;
            ws.next_active[v] = 1;
            for (const graph::Arc& arc : fn.graph.out_neighbors(v)) {
              ws.stamp[arc.dst] = epoch;
              ws.next_active[arc.dst] = 1;
            }
            for (const graph::Arc& arc : fn.graph.in_neighbors(v)) {
              ws.stamp[arc.dst] = epoch;
              ws.next_active[arc.dst] = 1;
            }
          }
        }
        total_moves += moves;

        if (record_trace) {
          SweepTrace st;
          st.level = level;
          st.sweep = sweep;
          st.moves = moves;
          st.codelength = state.codelength();
          st.wall_seconds = sweep_wall.seconds();
          double worst = 0.0;
          ws.propose_seconds.fold(
              worst, [](double& w, double s) { w = std::max(w, s); });
          st.sim_seconds = worst;
          result.trace.push_back(st);
        }

        if (moves == 0 ||
            prev_codelength - state.codelength() < opts.min_improvement_bits) {
          done = true;
        }
        // Cooperative cancellation, checked once per sweep in the serial
        // phase so `done` and `interrupted` stay single-writer.
        if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
          done = true;
          result.interrupted = true;
        }
        prev_codelength = state.codelength();
        ws.active.swap(ws.next_active);
        std::fill_n(ws.next_active.begin(), n, std::uint8_t{0});
        sweep_wall.reset();  // next sweep measures from here
      }
      // `done`, the applied moves, and the swapped active set become
      // visible to every thread before the next sweep begins.
      support::omp_barrier_sync(&ws);
    }
    // Team -> main: per-thread accumulators/breakdowns are folded after
    // the region, and libgomp's pool handoff is invisible to TSAN.
    support::omp_barrier_sync(&ws);
  }
  return total_moves;
}

}  // namespace

InfomapResult run_infomap(const graph::CsrGraph& g, const InfomapOptions& opts,
                          AccumulatorKind kind) {
  sim::NullSink sink;
  hashdb::AddressSpace addrs;
  switch (kind) {
    case AccumulatorKind::kFlat: {
      hashdb::FlatAccumulator acc;
      return run_single(g, opts, acc, sink);
    }
    case AccumulatorKind::kHotSet: {
      hashdb::HotSetAccumulator acc;
      return run_single(g, opts, acc, sink);
    }
    case AccumulatorKind::kOpen: {
      hashdb::OpenAccumulator<sim::NullSink> acc(sink, addrs);
      return run_single(g, opts, acc, sink);
    }
    case AccumulatorKind::kAsa: {
      asa::Cam cam;
      asa::AsaAccumulator<sim::NullSink> acc(sink, cam, addrs);
      return run_single(g, opts, acc, sink);
    }
    case AccumulatorKind::kDense: {
      DenseAccumulator<sim::NullSink> acc(sink, addrs, g.num_vertices());
      return run_single(g, opts, acc, sink);
    }
    case AccumulatorKind::kChained:
      break;
  }
  hashdb::ChainedAccumulator<sim::NullSink> acc(sink, addrs);
  return run_single(g, opts, acc, sink);
}

namespace {

/// The parallel driver body, parameterized on the native engine.
template <typename Acc>
InfomapResult run_parallel_impl(const graph::CsrGraph& g,
                                const InfomapOptions& opts, int num_threads) {
  InfomapResult result;
  // Resolve every kernel-span sink (timer slots + histogram handles) once;
  // the spans in the level loop then open/close allocation-free.
  obs::KernelTimers ktimers(result.kernel_wall, opts.metrics);
  FlowNetwork original;
  {
    obs::KernelSpan span(ktimers, obs::KernelPhase::kPageRank);
    original = build_flow(g, opts.flow);
  }
  // Level-0 reads `original` directly; contracted levels swap in the owned
  // supernode network.  Saves a full O(E) FlowNetwork copy per run.
  FlowNetwork contracted;
  const FlowNetwork* fn = &original;

  std::vector<VertexId> node_of_orig(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) node_of_orig[v] = v;

  result.one_level_codelength = one_level_codelength(original);

  const KernelCosts costs;
  hashdb::AddressSpace addrs_space;
  ParallelWorkspace<Acc> ws(num_threads, original.num_nodes());

  const bool warm = opts.warm_start != nullptr;
  const bool seeded = warm && opts.active_seed != nullptr;
  // Local repair (see InfomapOptions::warm_local_repair_fraction): a small
  // seeded perturbation converges at level 0; the coarse hierarchy the warm
  // partition came from is still valid, so skip rebuilding it.
  const bool local_repair =
      seeded && opts.warm_local_repair_fraction > 0.0 &&
      static_cast<double>(opts.active_seed->size()) <=
          opts.warm_local_repair_fraction *
              static_cast<double>(g.num_vertices());

  for (int level = 0; level < opts.max_levels; ++level) {
    ModuleState state = [&]() -> ModuleState {
      if (level == 0 && warm) {
        ASAMAP_CHECK(opts.warm_start->size() == fn->num_nodes(),
                     "warm_start must have one entry per vertex");
        Partition init = *opts.warm_start;
        const std::size_t k = compact_communities(init);
        return ModuleState(*fn, init, k);
      }
      return ModuleState(*fn);
    }();
    if (level == 0) result.initial_codelength = state.codelength();
    const LevelAddresses addrs = LevelAddresses::for_network(*fn, addrs_space);
    const VertexId n = fn->num_nodes();

    {
      obs::KernelSpan span(ktimers, obs::KernelPhase::kFindBestCommunity);
      parallel_sweeps(state, *fn, opts, opts.max_sweeps_per_level, level,
                      addrs, costs, ws, result, /*record_trace=*/true,
                      level == 0 && seeded ? opts.active_seed : nullptr);
    }
    // Incremental aggregates carry the whole level; one recompute here
    // sheds the accumulated floating-point drift before the partition is
    // extracted (the seed recomputed every sweep — O(n) per sweep gone).
    state.recompute();

    Partition assignment = state.assignment();
    std::vector<VertexId> relabel(fn->num_nodes(), graph::kInvalidVertex);
    VertexId next_id = 0;
    for (VertexId v = 0; v < n; ++v) {
      VertexId& slot = relabel[assignment[v]];
      if (slot == graph::kInvalidVertex) slot = next_id++;
      assignment[v] = slot;
    }
    const std::size_t k = next_id;

    {
      obs::KernelSpan span(ktimers, obs::KernelPhase::kUpdateMembers);
      const auto nv = static_cast<std::int64_t>(g.num_vertices());
      support::tsan_release(&node_of_orig);
#pragma omp parallel num_threads(num_threads)
      {
        support::tsan_acquire(&node_of_orig);
#pragma omp for schedule(static) nowait
        for (std::int64_t vi = 0; vi < nv; ++vi) {
          node_of_orig[vi] = assignment[node_of_orig[vi]];
        }
        support::omp_barrier_sync(&node_of_orig);
      }
    }

    result.level_assignments.push_back(assignment);
    result.codelength = state.codelength();
    result.levels = level + 1;
    if (level == 0 && local_repair) break;
    if (k == n || k <= 1) break;
    if (result.interrupted) break;

    {
      obs::KernelSpan span(ktimers, obs::KernelPhase::kConvert2SuperNode);
      contracted = contract_network_parallel(*fn, assignment, k, num_threads);
      fn = &contracted;
    }
  }

  result.communities = std::move(node_of_orig);
  result.num_communities = compact_communities(result.communities);
  if (local_repair) {
    // The level-0 state lived on the original network and was recomputed
    // after its last sweep, so result.codelength already holds the true
    // two-level value — no final re-evaluation, and the level-0 re-sweep
    // already converged over the active set, so refinement would only
    // re-walk the same vertices.
  } else {
    // True level-0 codelength of the final partition (coarse-level values
    // omit the leaf-entropy constant; see run_multilevel).
    ModuleState final_state(original, result.communities,
                            result.num_communities);
    result.codelength = final_state.codelength();

    // Refinement (fine-tuning), same propose/verify scheme on the original
    // network seeded with the final partition — see run_multilevel for the
    // rationale and the hierarchy re-basing rule.
    if (opts.refine_sweeps > 0 && result.levels > 1 &&
        result.num_communities > 1 && !result.interrupted) {
      obs::KernelSpan span(ktimers, obs::KernelPhase::kFindBestCommunity);
      const LevelAddresses addrs =
          LevelAddresses::for_network(original, addrs_space);
      // Incremental runs confine refinement to the seeded active set too —
      // a full-vertex refinement would erase the active-set speedup.
      const std::uint64_t refine_moves = parallel_sweeps(
          final_state, original, opts, opts.refine_sweeps, result.levels,
          addrs, costs, ws, result, /*record_trace=*/false,
          seeded ? opts.active_seed : nullptr);
      final_state.recompute();
      if (refine_moves > 0 && final_state.codelength() < result.codelength) {
        Partition flat = final_state.assignment();
        result.num_communities = compact_communities(flat);
        result.communities = flat;
        result.codelength = final_state.codelength();
        result.level_assignments = {std::move(flat)};
      }
    }
  }

  // Fold the per-thread proposal-phase breakdowns into the result (the
  // serial verify/apply phase charged result.breakdown directly).
  ws.breakdowns.fold(result.breakdown,
                     [](KernelBreakdown& into, const KernelBreakdown& bd) {
                       into += bd;
                     });
  ws.fold_hot_stats(result);
  publish_run_metrics(result, opts.metrics);
  return result;
}

}  // namespace

InfomapResult run_infomap_parallel(const graph::CsrGraph& g,
                                   const InfomapOptions& opts, int num_threads,
                                   AccumulatorKind kind) {
  if (num_threads <= 0) num_threads = omp_get_max_threads();
  ASAMAP_CHECK(
      kind == AccumulatorKind::kFlat || kind == AccumulatorKind::kHotSet,
      "run_infomap_parallel supports only the native engines (flat/hotset); "
      "instrumented kinds need the sequential simulated driver");
  return kind == AccumulatorKind::kFlat
             ? run_parallel_impl<hashdb::FlatAccumulator>(g, opts, num_threads)
             : run_parallel_impl<hashdb::HotSetAccumulator>(g, opts,
                                                            num_threads);
}

}  // namespace asamap::core
