#include "asamap/core/infomap.hpp"

#include <omp.h>

#include <algorithm>

#include "asamap/asa/accumulator.hpp"
#include "asamap/core/dense_accumulator.hpp"
#include "asamap/hashdb/software_accumulator.hpp"

namespace asamap::core {

namespace {

template <typename Acc>
InfomapResult run_single(const graph::CsrGraph& g, const InfomapOptions& opts,
                         Acc& acc, sim::NullSink& sink) {
  Worker<Acc, sim::NullSink> worker{&acc, &sink};
  return run_multilevel(g, opts, std::span(&worker, 1));
}

}  // namespace

InfomapResult run_infomap(const graph::CsrGraph& g, const InfomapOptions& opts,
                          AccumulatorKind kind) {
  sim::NullSink sink;
  hashdb::AddressSpace addrs;
  switch (kind) {
    case AccumulatorKind::kOpen: {
      hashdb::OpenAccumulator<sim::NullSink> acc(sink, addrs);
      return run_single(g, opts, acc, sink);
    }
    case AccumulatorKind::kAsa: {
      asa::Cam cam;
      asa::AsaAccumulator<sim::NullSink> acc(sink, cam, addrs);
      return run_single(g, opts, acc, sink);
    }
    case AccumulatorKind::kDense: {
      DenseAccumulator<sim::NullSink> acc(sink, addrs, g.num_vertices());
      return run_single(g, opts, acc, sink);
    }
    case AccumulatorKind::kChained:
      break;
  }
  hashdb::ChainedAccumulator<sim::NullSink> acc(sink, addrs);
  return run_single(g, opts, acc, sink);
}

InfomapResult run_infomap_parallel(const graph::CsrGraph& g,
                                   const InfomapOptions& opts,
                                   int num_threads) {
  if (num_threads <= 0) num_threads = omp_get_max_threads();

  InfomapResult result;
  FlowNetwork original;
  {
    support::ScopedPhase phase(result.kernel_wall, kernels::kPageRank);
    original = build_flow(g, opts.flow);
  }
  FlowNetwork fn = original;

  std::vector<VertexId> node_of_orig(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) node_of_orig[v] = v;

  {
    ModuleState trivial(original, Partition(original.num_nodes(), 0), 1);
    result.one_level_codelength = trivial.codelength();
  }

  const KernelCosts costs;
  sim::NullSink null_sink;
  hashdb::AddressSpace addrs_space;

  for (int level = 0; level < opts.max_levels; ++level) {
    ModuleState state(fn);
    if (level == 0) result.initial_codelength = state.codelength();
    const LevelAddresses addrs = LevelAddresses::for_network(fn, addrs_space);
    const VertexId n = fn.num_nodes();

    std::vector<std::uint8_t> active(n, 1);
    std::vector<std::uint8_t> next_active(n, 0);

    double prev_codelength = state.codelength();
    for (int sweep = 0; sweep < opts.max_sweeps_per_level; ++sweep) {
      SweepTrace st;
      st.level = level;
      st.sweep = sweep;
      support::WallTimer sweep_wall;

      // Phase 1 (parallel): propose against a frozen snapshot of the
      // module state.  RelaxMap-style relaxed reads are safe because
      // nothing mutates state here.
      std::vector<std::uint8_t> wants_move(n, 0);
      {
        support::ScopedPhase phase(result.kernel_wall,
                                   kernels::kFindBestCommunity);
#pragma omp parallel num_threads(num_threads)
        {
          sim::NullSink sink;
          hashdb::AddressSpace local_addrs;
          hashdb::ChainedAccumulator<sim::NullSink> acc(sink, local_addrs);
          KernelBreakdown scratch;
#pragma omp for schedule(dynamic, 1024)
          for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
            const auto v = static_cast<VertexId>(vi);
            if (!active[v]) continue;
            const MoveProposal p = evaluate_move(state, fn, v, acc, sink,
                                                 addrs, costs, scratch);
            wants_move[v] = p.improving(state.module_of(v)) ? 1 : 0;
          }
        }

        // Phase 2 (serial): re-evaluate flagged vertices against the live
        // state and apply.  Re-evaluation keeps aggregates exact even when
        // earlier applies invalidated a proposal.
        hashdb::ChainedAccumulator<sim::NullSink> acc(null_sink, addrs_space);
        for (VertexId v = 0; v < n; ++v) {
          if (!wants_move[v]) continue;
          if (find_best_community(state, fn, v, acc, null_sink, addrs, costs,
                                  result.breakdown)) {
            ++st.moves;
            mark_neighborhood(fn, v, next_active.data());
          }
        }
      }
      state.recompute();

      st.codelength = state.codelength();
      st.wall_seconds = sweep_wall.seconds();
      result.trace.push_back(st);

      if (st.moves == 0 ||
          prev_codelength - state.codelength() < opts.min_improvement_bits) {
        break;
      }
      prev_codelength = state.codelength();
      active.swap(next_active);
      std::fill(next_active.begin(), next_active.end(), 0);
    }

    Partition assignment = state.assignment();
    std::vector<VertexId> relabel(fn.num_nodes(), graph::kInvalidVertex);
    VertexId next_id = 0;
    for (VertexId v = 0; v < n; ++v) {
      VertexId& slot = relabel[assignment[v]];
      if (slot == graph::kInvalidVertex) slot = next_id++;
      assignment[v] = slot;
    }
    const std::size_t k = next_id;

    {
      support::ScopedPhase phase(result.kernel_wall, kernels::kUpdateMembers);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        node_of_orig[v] = assignment[node_of_orig[v]];
      }
    }

    result.level_assignments.push_back(assignment);
    result.codelength = state.codelength();
    result.levels = level + 1;
    if (k == n || k <= 1) break;

    {
      support::ScopedPhase phase(result.kernel_wall,
                                 kernels::kConvert2SuperNode);
      fn = contract_network(fn, assignment, k);
    }
  }

  result.communities = std::move(node_of_orig);
  result.num_communities = compact_communities(result.communities);
  {
    // True level-0 codelength of the final partition (coarse-level values
    // omit the leaf-entropy constant; see run_multilevel).
    ModuleState final_state(original, result.communities,
                            result.num_communities);
    result.codelength = final_state.codelength();
  }
  return result;
}

}  // namespace asamap::core
