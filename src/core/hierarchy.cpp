#include "asamap/core/hierarchy.hpp"

#include <algorithm>

#include "asamap/support/check.hpp"

namespace asamap::core {

ModuleHierarchy::ModuleHierarchy(std::vector<Partition> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty()) return;
  // Validate the chain: level k's node count equals level k-1's module
  // count.
  for (std::size_t k = 1; k < levels_.size(); ++k) {
    VertexId max_prev = 0;
    for (VertexId m : levels_[k - 1]) max_prev = std::max(max_prev, m);
    ASAMAP_CHECK(levels_[k].size() == std::size_t{max_prev} + 1,
                 "hierarchy level sizes do not chain");
  }

  // Precompose: flat_[k][v] for original vertices v.
  flat_.reserve(levels_.size());
  flat_.push_back(levels_[0]);
  for (std::size_t k = 1; k < levels_.size(); ++k) {
    Partition composed(levels_[0].size());
    for (std::size_t v = 0; v < composed.size(); ++v) {
      composed[v] = levels_[k][flat_[k - 1][v]];
    }
    flat_.push_back(std::move(composed));
  }
}

std::size_t ModuleHierarchy::modules_at(std::size_t k) const {
  ASAMAP_CHECK(k < levels_.size(), "level out of range");
  VertexId max_id = 0;
  for (VertexId m : levels_[k]) max_id = std::max(max_id, m);
  return std::size_t{max_id} + 1;
}

VertexId ModuleHierarchy::module_of(VertexId v, std::size_t k) const {
  ASAMAP_CHECK(k < flat_.size(), "level out of range");
  ASAMAP_CHECK(v < flat_[k].size(), "vertex out of range");
  return flat_[k][v];
}

const Partition& ModuleHierarchy::finest() const {
  ASAMAP_CHECK(!flat_.empty(), "empty hierarchy");
  return flat_.front();
}

Partition ModuleHierarchy::coarsest() const {
  ASAMAP_CHECK(!flat_.empty(), "empty hierarchy");
  return flat_.back();
}

std::string ModuleHierarchy::path_of(VertexId v) const {
  ASAMAP_CHECK(!flat_.empty(), "empty hierarchy");
  std::string path;
  for (std::size_t k = flat_.size(); k-- > 0;) {
    path += std::to_string(flat_[k][v]);
    if (k != 0) path += ':';
  }
  return path;
}

}  // namespace asamap::core
