#include "asamap/core/flow.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "asamap/graph/edge_list.hpp"
#include "asamap/support/check.hpp"

namespace asamap::core {

namespace {

/// Undirected flow model: the stationary distribution of an undirected
/// random walk is exactly degree-proportional, so no power iteration is
/// needed and enter == exit per module — the classic two-level map
/// equation.  This is the model Infomap itself uses for undirected input.
FlowNetwork build_flow_undirected(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  FlowNetwork fn;
  fn.graph = g;
  fn.total_orig = n;
  fn.orig_count.assign(n, 1);
  fn.teleport_flow.assign(n, 0.0);
  fn.pagerank_iterations = 0;

  const double total = g.total_arc_weight();
  ASAMAP_CHECK(total > 0.0, "graph has no edges");
  fn.node_flow.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    fn.node_flow[v] = g.out_weight(v) / total;
  }
  fn.out_flow.resize(g.num_arcs());
  fn.in_flow.resize(g.num_arcs());
  std::size_t e = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (const graph::Arc& arc : g.out_neighbors(u)) {
      fn.out_flow[e++] = arc.weight / total;
    }
  }
  e = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (const graph::Arc& arc : g.in_neighbors(v)) {
      fn.in_flow[e++] = arc.weight / total;
    }
  }
  return fn;
}

}  // namespace

FlowNetwork build_flow(const CsrGraph& g, const FlowOptions& options) {
  const VertexId n = g.num_vertices();
  ASAMAP_CHECK(n > 0, "flow on an empty graph");

  const FlowModel model =
      options.model != FlowModel::kAuto
          ? options.model
          : (g.is_symmetric() ? FlowModel::kUndirected : FlowModel::kDirected);
  if (model == FlowModel::kUndirected) {
    ASAMAP_CHECK(g.is_symmetric(),
                 "undirected flow model requires a symmetric graph");
    return build_flow_undirected(g);
  }

  const double tau = options.tau;

  FlowNetwork fn;
  fn.graph = g;
  fn.total_orig = n;
  fn.orig_count.assign(n, 1);

  // Power iteration: p' = tau/n + (1-tau) * (W^T D^-1 p + dangling/n).
  std::vector<double> p(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (VertexId u = 0; u < n; ++u) {
      const double s = g.out_weight(u);
      if (s <= 0.0) {
        dangling += p[u];
        continue;
      }
      const double scale = p[u] / s;
      for (const graph::Arc& arc : g.out_neighbors(u)) {
        next[arc.dst] += scale * arc.weight;
      }
    }
    const double base =
        tau / static_cast<double>(n) +
        (1.0 - tau) * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const double nv = base + (1.0 - tau) * next[v];
      delta += std::abs(nv - p[v]);
      next[v] = nv;
    }
    p.swap(next);
    if (delta < options.tolerance) {
      ++iter;
      break;
    }
  }
  fn.pagerank_iterations = iter;

  fn.node_flow = std::move(p);
  fn.teleport_flow.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    fn.teleport_flow[v] = tau * fn.node_flow[v];
  }

  // Arc flows.  Dangling vertices have no arcs, so their flow is pure
  // teleportation — consistent with the power iteration above.
  fn.out_flow.resize(g.num_arcs());
  fn.in_flow.resize(g.num_arcs());
  {
    std::size_t e = 0;
    for (VertexId u = 0; u < n; ++u) {
      const double s = g.out_weight(u);
      const double scale = s > 0.0 ? (1.0 - tau) * fn.node_flow[u] / s : 0.0;
      for (const graph::Arc& arc : g.out_neighbors(u)) {
        fn.out_flow[e++] = scale * arc.weight;
      }
    }
  }
  {
    std::size_t e = 0;
    for (VertexId v = 0; v < n; ++v) {
      for (const graph::Arc& arc : g.in_neighbors(v)) {
        const VertexId u = arc.dst;  // source of the incoming arc
        const double s = g.out_weight(u);
        const double scale = s > 0.0 ? (1.0 - tau) * fn.node_flow[u] / s : 0.0;
        fn.in_flow[e++] = scale * arc.weight;
      }
    }
  }
  return fn;
}

FlowNetwork contract_network(const FlowNetwork& fn, const Partition& modules,
                             std::size_t num_modules) {
  const VertexId n = fn.num_nodes();
  ASAMAP_CHECK(modules.size() == n, "partition size mismatch");

  FlowNetwork out;
  out.total_orig = fn.total_orig;
  out.node_flow.assign(num_modules, 0.0);
  out.teleport_flow.assign(num_modules, 0.0);
  out.orig_count.assign(num_modules, 0);

  graph::EdgeList super_edges;
  super_edges.ensure_vertex_count(static_cast<VertexId>(num_modules));

  std::size_t e = 0;
  for (VertexId u = 0; u < n; ++u) {
    const VertexId mu = modules[u];
    ASAMAP_CHECK(mu < num_modules, "module id out of range");
    out.node_flow[mu] += fn.node_flow[u];
    out.teleport_flow[mu] += fn.teleport_flow[u];
    out.orig_count[mu] += fn.orig_count[u];
    for (const graph::Arc& arc : fn.graph.out_neighbors(u)) {
      const VertexId mv = modules[arc.dst];
      // Super-arc weight carries *flow*, not raw weight, so higher levels
      // of the map equation see the aggregated random-walk rates directly.
      if (mu != mv) super_edges.add(mu, mv, fn.out_flow[e]);
      ++e;
    }
  }
  super_edges.coalesce();
  out.graph = CsrGraph::from_edges(super_edges,
                                   static_cast<VertexId>(num_modules));

  // At supernode levels, arc flow == arc weight (already aggregated flow).
  out.out_flow.resize(out.graph.num_arcs());
  out.in_flow.resize(out.graph.num_arcs());
  {
    std::size_t k = 0;
    for (VertexId u = 0; u < out.graph.num_vertices(); ++u) {
      for (const graph::Arc& arc : out.graph.out_neighbors(u)) {
        out.out_flow[k++] = arc.weight;
      }
    }
    k = 0;
    for (VertexId v = 0; v < out.graph.num_vertices(); ++v) {
      for (const graph::Arc& arc : out.graph.in_neighbors(v)) {
        out.in_flow[k++] = arc.weight;
      }
    }
  }
  return out;
}

}  // namespace asamap::core
