#include "asamap/core/flow.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "asamap/graph/edge_list.hpp"
#include "asamap/support/check.hpp"
#include "asamap/support/parallel.hpp"

namespace asamap::core {

namespace {

/// Undirected flow model: the stationary distribution of an undirected
/// random walk is exactly degree-proportional, so no power iteration is
/// needed and enter == exit per module — the classic two-level map
/// equation.  This is the model Infomap itself uses for undirected input.
FlowNetwork build_flow_undirected(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  FlowNetwork fn;
  fn.graph = g;
  fn.total_orig = n;
  fn.orig_count.assign(n, 1);
  fn.teleport_flow.assign(n, 0.0);
  fn.pagerank_iterations = 0;

  const double total = g.total_arc_weight();
  ASAMAP_CHECK(total > 0.0, "graph has no edges");
  fn.node_flow.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    fn.node_flow[v] = g.out_weight(v) / total;
  }
  fn.out_flow.resize(g.num_arcs());
  fn.in_flow.resize(g.num_arcs());
  std::size_t e = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (const graph::Arc& arc : g.out_neighbors(u)) {
      fn.out_flow[e++] = arc.weight / total;
    }
  }
  e = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (const graph::Arc& arc : g.in_neighbors(v)) {
      fn.in_flow[e++] = arc.weight / total;
    }
  }
  return fn;
}

}  // namespace

FlowNetwork build_flow(const CsrGraph& g, const FlowOptions& options) {
  const VertexId n = g.num_vertices();
  ASAMAP_CHECK(n > 0, "flow on an empty graph");

  const FlowModel model =
      options.model != FlowModel::kAuto
          ? options.model
          : (g.is_symmetric() ? FlowModel::kUndirected : FlowModel::kDirected);
  if (model == FlowModel::kUndirected) {
    ASAMAP_CHECK(g.is_symmetric(),
                 "undirected flow model requires a symmetric graph");
    return build_flow_undirected(g);
  }

  const double tau = options.tau;

  FlowNetwork fn;
  fn.graph = g;
  fn.total_orig = n;
  fn.orig_count.assign(n, 1);

  // Power iteration: p' = tau/n + (1-tau) * (W^T D^-1 p + dangling/n).
  std::vector<double> p(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (VertexId u = 0; u < n; ++u) {
      const double s = g.out_weight(u);
      if (s <= 0.0) {
        dangling += p[u];
        continue;
      }
      const double scale = p[u] / s;
      for (const graph::Arc& arc : g.out_neighbors(u)) {
        next[arc.dst] += scale * arc.weight;
      }
    }
    const double base =
        tau / static_cast<double>(n) +
        (1.0 - tau) * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const double nv = base + (1.0 - tau) * next[v];
      delta += std::abs(nv - p[v]);
      next[v] = nv;
    }
    p.swap(next);
    if (delta < options.tolerance) {
      ++iter;
      break;
    }
  }
  fn.pagerank_iterations = iter;

  fn.node_flow = std::move(p);
  fn.teleport_flow.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    fn.teleport_flow[v] = tau * fn.node_flow[v];
  }

  // Arc flows.  Dangling vertices have no arcs, so their flow is pure
  // teleportation — consistent with the power iteration above.
  fn.out_flow.resize(g.num_arcs());
  fn.in_flow.resize(g.num_arcs());
  {
    std::size_t e = 0;
    for (VertexId u = 0; u < n; ++u) {
      const double s = g.out_weight(u);
      const double scale = s > 0.0 ? (1.0 - tau) * fn.node_flow[u] / s : 0.0;
      for (const graph::Arc& arc : g.out_neighbors(u)) {
        fn.out_flow[e++] = scale * arc.weight;
      }
    }
  }
  {
    std::size_t e = 0;
    for (VertexId v = 0; v < n; ++v) {
      for (const graph::Arc& arc : g.in_neighbors(v)) {
        const VertexId u = arc.dst;  // source of the incoming arc
        const double s = g.out_weight(u);
        const double scale = s > 0.0 ? (1.0 - tau) * fn.node_flow[u] / s : 0.0;
        fn.in_flow[e++] = scale * arc.weight;
      }
    }
  }
  return fn;
}

FlowNetwork contract_network(const FlowNetwork& fn, const Partition& modules,
                             std::size_t num_modules) {
  const VertexId n = fn.num_nodes();
  ASAMAP_CHECK(modules.size() == n, "partition size mismatch");

  FlowNetwork out;
  out.total_orig = fn.total_orig;
  out.node_flow.assign(num_modules, 0.0);
  out.teleport_flow.assign(num_modules, 0.0);
  out.orig_count.assign(num_modules, 0);

  graph::EdgeList super_edges;
  super_edges.ensure_vertex_count(static_cast<VertexId>(num_modules));

  std::size_t e = 0;
  for (VertexId u = 0; u < n; ++u) {
    const VertexId mu = modules[u];
    ASAMAP_CHECK(mu < num_modules, "module id out of range");
    out.node_flow[mu] += fn.node_flow[u];
    out.teleport_flow[mu] += fn.teleport_flow[u];
    out.orig_count[mu] += fn.orig_count[u];
    for (const graph::Arc& arc : fn.graph.out_neighbors(u)) {
      const VertexId mv = modules[arc.dst];
      // Super-arc weight carries *flow*, not raw weight, so higher levels
      // of the map equation see the aggregated random-walk rates directly.
      if (mu != mv) super_edges.add(mu, mv, fn.out_flow[e]);
      ++e;
    }
  }
  super_edges.coalesce();
  out.graph = CsrGraph::from_edges(super_edges,
                                   static_cast<VertexId>(num_modules));

  // At supernode levels, arc flow == arc weight (already aggregated flow).
  out.out_flow.resize(out.graph.num_arcs());
  out.in_flow.resize(out.graph.num_arcs());
  {
    std::size_t k = 0;
    for (VertexId u = 0; u < out.graph.num_vertices(); ++u) {
      for (const graph::Arc& arc : out.graph.out_neighbors(u)) {
        out.out_flow[k++] = arc.weight;
      }
    }
    k = 0;
    for (VertexId v = 0; v < out.graph.num_vertices(); ++v) {
      for (const graph::Arc& arc : out.graph.in_neighbors(v)) {
        out.in_flow[k++] = arc.weight;
      }
    }
  }
  return out;
}

FlowNetwork contract_network_parallel(const FlowNetwork& fn,
                                      const Partition& modules,
                                      std::size_t num_modules,
                                      int num_threads) {
  const VertexId n = fn.num_nodes();
  ASAMAP_CHECK(modules.size() == n, "partition size mismatch");
  const int threads = std::max(1, num_threads);
  // Below this size the scatter/merge machinery costs more than it saves.
  if (threads == 1 || n < 1 << 14) {
    return contract_network(fn, modules, num_modules);
  }

  const std::size_t k = num_modules;
  FlowNetwork out;
  out.total_orig = fn.total_orig;
  out.node_flow.assign(k, 0.0);
  out.teleport_flow.assign(k, 0.0);
  out.orig_count.assign(k, 0);

  // The supernode id space is range-partitioned across owner threads; a
  // scanner thread appends each cross-module arc to the bucket of its
  // *source* supernode's owner, so each owner's merged slice covers a
  // disjoint, increasing src range and the slices concatenate sorted.
  const auto owner_of = [k, threads](VertexId m) {
    return static_cast<int>(std::uint64_t{m} * static_cast<unsigned>(threads) /
                            k);
  };

  std::vector<std::vector<std::vector<graph::Edge>>> buckets(
      threads, std::vector<std::vector<graph::Edge>>(threads));
  std::vector<std::vector<double>> flow_part(threads), tp_part(threads);
  std::vector<std::vector<std::uint64_t>> cnt_part(threads);
  std::vector<std::vector<graph::Edge>> merged(threads);

  support::tsan_release(&buckets);  // inputs + bucket vectors: main -> team
#pragma omp parallel num_threads(threads)
  {
    support::tsan_acquire(&buckets);
    const int t = omp_get_thread_num();

    // --- Scatter: scan this thread's vertex range in order.
    auto& nf = flow_part[t];
    auto& tp = tp_part[t];
    auto& cnt = cnt_part[t];
    nf.assign(k, 0.0);
    tp.assign(k, 0.0);
    cnt.assign(k, 0);
    const auto first = static_cast<VertexId>(std::uint64_t{n} * t / threads);
    const auto last =
        static_cast<VertexId>(std::uint64_t{n} * (t + 1) / threads);
    for (VertexId u = first; u < last; ++u) {
      const VertexId mu = modules[u];
      nf[mu] += fn.node_flow[u];
      tp[mu] += fn.teleport_flow[u];
      cnt[mu] += fn.orig_count[u];
      const std::size_t base = static_cast<std::size_t>(fn.graph.out_offset(u));
      const auto arcs = fn.graph.out_neighbors(u);
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        const VertexId mv = modules[arcs[i].dst];
        if (mu != mv) {
          buckets[t][owner_of(mu)].push_back(
              graph::Edge{mu, mv, fn.out_flow[base + i]});
        }
      }
    }
    support::omp_barrier_sync(&buckets);  // scatter writes -> merge reads

    // --- Merge: this thread owns supernodes [mfirst, mlast) and the arcs
    // whose source lies in that range.  Concatenating scanner buckets in
    // scanner order keeps duplicates in member-vertex order, so the stable
    // sort sums parallel super-arcs in a thread-count-invariant order.
    auto& mine = merged[t];
    std::size_t total = 0;
    for (int s = 0; s < threads; ++s) total += buckets[s][t].size();
    mine.reserve(total);
    for (int s = 0; s < threads; ++s) {
      mine.insert(mine.end(), buckets[s][t].begin(), buckets[s][t].end());
      buckets[s][t].clear();
      buckets[s][t].shrink_to_fit();
    }
    std::stable_sort(mine.begin(), mine.end(),
                     [](const graph::Edge& a, const graph::Edge& b) {
                       return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                     });
    std::size_t w = 0;
    for (std::size_t i = 0; i < mine.size();) {
      graph::Edge e = mine[i];
      std::size_t j = i + 1;
      while (j < mine.size() && mine[j].src == e.src && mine[j].dst == e.dst) {
        e.weight += mine[j].weight;
        ++j;
      }
      mine[w++] = e;
      i = j;
    }
    mine.resize(w);

    // Fold the per-scanner aggregate partials for the owned module range.
    const auto mfirst = static_cast<VertexId>(std::uint64_t{k} * t / threads);
    const auto mlast =
        static_cast<VertexId>(std::uint64_t{k} * (t + 1) / threads);
    for (VertexId m = mfirst; m < mlast; ++m) {
      for (int s = 0; s < threads; ++s) {
        out.node_flow[m] += flow_part[s][m];
        out.teleport_flow[m] += tp_part[s][m];
        out.orig_count[m] += cnt_part[s][m];
      }
    }
    support::omp_barrier_sync(&buckets);  // merged slices: team -> main
  }

  std::size_t total_edges = 0;
  for (const auto& m : merged) total_edges += m.size();
  std::vector<graph::Edge> edges;
  edges.reserve(total_edges);
  for (auto& m : merged) {
    edges.insert(edges.end(), m.begin(), m.end());
  }
  out.graph = graph::CsrGraph::from_edges(
      graph::EdgeList::from_coalesced(std::move(edges),
                                      static_cast<VertexId>(k)),
      static_cast<VertexId>(k));

  out.out_flow.resize(out.graph.num_arcs());
  out.in_flow.resize(out.graph.num_arcs());
  support::tsan_release(&out);
#pragma omp parallel num_threads(threads)
  {
    support::tsan_acquire(&out);
#pragma omp for schedule(static) nowait
    for (std::int64_t ui = 0; ui < static_cast<std::int64_t>(k); ++ui) {
      const auto u = static_cast<VertexId>(ui);
      const std::size_t obase =
          static_cast<std::size_t>(out.graph.out_offset(u));
      const auto oarcs = out.graph.out_neighbors(u);
      for (std::size_t i = 0; i < oarcs.size(); ++i) {
        out.out_flow[obase + i] = oarcs[i].weight;
      }
      const std::size_t ibase =
          static_cast<std::size_t>(out.graph.in_offset(u));
      const auto iarcs = out.graph.in_neighbors(u);
      for (std::size_t i = 0; i < iarcs.size(); ++i) {
        out.in_flow[ibase + i] = iarcs[i].weight;
      }
    }
    support::omp_barrier_sync(&out);
  }
  return out;
}

}  // namespace asamap::core
