#include "asamap/core/louvain.hpp"

#include <unordered_map>

#include "asamap/graph/edge_list.hpp"
#include "asamap/support/check.hpp"

namespace asamap::core {

namespace {

/// One Louvain level: local-move sweeps on graph `g`, returns the compacted
/// partition and number of communities.
std::size_t louvain_level(const graph::CsrGraph& g,
                          const LouvainOptions& opts, Partition& out) {
  const VertexId n = g.num_vertices();
  const double two_w = g.total_arc_weight();
  ASAMAP_CHECK(two_w > 0.0, "Louvain on an edgeless graph");

  Partition community(n);
  std::vector<double> comm_degree(n);   // sum of weighted degrees in c
  std::vector<double> self_loop(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    community[v] = v;
    comm_degree[v] = g.out_weight(v);
    for (const graph::Arc& arc : g.out_neighbors(v)) {
      if (arc.dst == v) self_loop[v] += arc.weight;
    }
  }

  std::unordered_map<VertexId, double> neighbor_weight;
  bool improved_any = true;
  for (int sweep = 0; sweep < opts.max_sweeps_per_level && improved_any;
       ++sweep) {
    improved_any = false;
    for (VertexId v = 0; v < n; ++v) {
      const VertexId old_c = community[v];
      const double k_v = g.out_weight(v);

      neighbor_weight.clear();
      neighbor_weight[old_c] = 0.0;  // allow evaluating "stay"
      for (const graph::Arc& arc : g.out_neighbors(v)) {
        if (arc.dst == v) continue;
        neighbor_weight[community[arc.dst]] += arc.weight;
      }

      // Remove v from its community.
      comm_degree[old_c] -= k_v;

      // Gain of joining community c:
      //   dQ = (w_vc - k_v * K_c / 2W) / W   (constant factors dropped)
      VertexId best_c = old_c;
      double best_gain = neighbor_weight[old_c] - k_v * comm_degree[old_c] / two_w;
      for (const auto& [c, w_vc] : neighbor_weight) {
        const double gain = w_vc - k_v * comm_degree[c] / two_w;
        if (gain > best_gain + opts.min_modularity_gain) {
          best_gain = gain;
          best_c = c;
        }
      }

      comm_degree[best_c] += k_v;
      community[v] = best_c;
      if (best_c != old_c) improved_any = true;
    }
  }

  // Compact ids.
  std::unordered_map<VertexId, VertexId> relabel;
  for (VertexId v = 0; v < n; ++v) {
    auto [it, inserted] = relabel.try_emplace(
        community[v], static_cast<VertexId>(relabel.size()));
    community[v] = it->second;
  }
  out = std::move(community);
  return relabel.size();
}

/// Contracts g by the partition, keeping self-loops (intra-community
/// weight), which Louvain's gain formula needs at the next level.
graph::CsrGraph contract_with_self_loops(const graph::CsrGraph& g,
                                         const Partition& community,
                                         std::size_t k) {
  graph::EdgeList edges;
  edges.ensure_vertex_count(static_cast<VertexId>(k));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const graph::Arc& arc : g.out_neighbors(u)) {
      edges.add(community[u], community[arc.dst], arc.weight);
    }
  }
  edges.coalesce(/*keep_self_loops=*/true);
  return graph::CsrGraph::from_edges(edges, static_cast<VertexId>(k));
}

double modularity_of(const graph::CsrGraph& g, const Partition& p,
                     std::size_t k) {
  const double two_w = g.total_arc_weight();
  std::vector<double> internal(k, 0.0), degree(k, 0.0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    degree[p[u]] += g.out_weight(u);
    for (const graph::Arc& arc : g.out_neighbors(u)) {
      if (p[arc.dst] == p[u]) internal[p[u]] += arc.weight;
    }
  }
  double q = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    q += internal[c] / two_w - (degree[c] / two_w) * (degree[c] / two_w);
  }
  return q;
}

}  // namespace

LouvainResult run_louvain(const graph::CsrGraph& g,
                          const LouvainOptions& opts) {
  ASAMAP_CHECK(g.is_symmetric(), "Louvain requires an undirected graph");

  LouvainResult result;
  result.communities.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) result.communities[v] = v;

  graph::CsrGraph level_graph = g;
  for (int level = 0; level < opts.max_levels; ++level) {
    Partition level_partition;
    const std::size_t k = louvain_level(level_graph, opts, level_partition);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      result.communities[v] = level_partition[result.communities[v]];
    }
    result.levels = level + 1;
    if (k == level_graph.num_vertices() || k <= 1) break;
    level_graph = contract_with_self_loops(level_graph, level_partition, k);
  }

  std::unordered_map<VertexId, VertexId> relabel;
  for (VertexId& c : result.communities) {
    auto [it, inserted] =
        relabel.try_emplace(c, static_cast<VertexId>(relabel.size()));
    c = it->second;
  }
  result.num_communities = relabel.size();
  result.modularity = modularity_of(g, result.communities, relabel.size());
  return result;
}

}  // namespace asamap::core
