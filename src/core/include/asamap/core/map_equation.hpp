#pragma once

/// \file map_equation.hpp
/// The map equation (Rosvall & Bergstrom 2008) over a FlowNetwork, with
/// O(1) move evaluation — the `calc(outFlowToNewMod, inFlowFromMod)` of
/// Algorithm 1 line 20.
///
/// We use the standard expanded form (logs base 2, bits):
///
///   L(M) =  plogp(S)                      S = sum_i enter_i
///         - sum_i plogp(enter_i)
///         - sum_i plogp(exit_i)
///         + sum_i plogp(exit_i + flow_i)
///         - sum_a plogp(p_a)              (constant w.r.t. the partition)
///
/// where for module i
///   exit_i  = out_link_i + tp_i * (N - n_i) / N
///   enter_i = in_link_i  + (n_i / N) * (TP - tp_i)
/// with out/in_link the boundary-crossing random-walk flow, tp_i the
/// module's aggregated teleportation flow, n_i its original-vertex count,
/// N the level-0 vertex count, and TP the total teleport flow.  With the
/// undirected flow model tp == 0 and enter == exit, recovering the classic
/// two-level undirected map equation exactly.

#include <cstdint>
#include <vector>

#include "asamap/core/flow.hpp"

namespace asamap::core {

/// x * log2(x), with plogp(0) = 0.
double plogp(double x) noexcept;

/// Codelength of the trivial all-in-one-module partition, in O(n): the
/// single module has exactly zero exit and enter flow, so the map equation
/// collapses to plogp(total_flow) - sum_v plogp(p_v).  Bitwise identical to
/// evaluating ModuleState over that partition (same accumulation order)
/// without its three O(E) aggregate passes.
double one_level_codelength(const FlowNetwork& fn);

class ModuleState {
 public:
  /// Initializes with every node in its own module (the start state of the
  /// FindBestCommunity phase).
  explicit ModuleState(const FlowNetwork& fn);

  /// Initializes from an existing assignment with `num_modules` modules
  /// (ids must be < num_modules).
  ModuleState(const FlowNetwork& fn, const Partition& init,
              std::size_t num_modules);

  /// Link flows between a node v and two modules, as produced by the flow
  /// accumulators.  "current" refers to v's present module *excluding v
  /// itself*.
  struct MoveFlows {
    double out_to_target = 0.0;
    double in_from_target = 0.0;
    double out_to_current = 0.0;
    double in_from_current = 0.0;
  };

  /// Code-length change (bits) if node v moves to `target`.  Negative is an
  /// improvement.  Returns 0 when target == current module.
  [[nodiscard]] double delta_move(VertexId v, VertexId target,
                                  const MoveFlows& f) const;

  /// Applies the move and updates the code length incrementally.
  void apply_move(VertexId v, VertexId target, const MoveFlows& f);

  [[nodiscard]] double codelength() const noexcept { return codelength_; }

  /// Index-codebook part of L (between-module movements).
  [[nodiscard]] double index_codelength() const noexcept;
  /// Module-codebook part of L (within-module movements).
  [[nodiscard]] double module_codelength() const noexcept {
    return codelength_ - index_codelength();
  }

  [[nodiscard]] VertexId module_of(VertexId v) const { return module_of_[v]; }
  [[nodiscard]] const Partition& assignment() const noexcept {
    return module_of_;
  }
  /// Number of non-empty modules.
  [[nodiscard]] std::size_t live_modules() const;

  /// Module aggregates, exposed for tests and the contraction step.
  [[nodiscard]] double module_flow(VertexId m) const { return mod_flow_[m]; }
  [[nodiscard]] double module_exit(VertexId m) const { return exit_of(m); }

  /// Rebuilds all running sums from the raw aggregates.  Incremental
  /// updates accumulate floating-point drift over millions of moves; the
  /// driver calls this between sweeps, and tests assert it is a no-op up to
  /// tolerance.
  void recompute();

 private:
  void init_aggregates();
  [[nodiscard]] double exit_of(VertexId m) const noexcept;
  [[nodiscard]] double enter_of(VertexId m) const noexcept;
  [[nodiscard]] double exit_from(double out_link, double tp,
                                 std::uint64_t cnt) const noexcept;
  [[nodiscard]] double enter_from(double in_link, double tp,
                                  std::uint64_t cnt) const noexcept;

  const FlowNetwork* fn_;
  Partition module_of_;

  // Per-module aggregates.
  std::vector<double> mod_flow_;      ///< sum of member node flow
  std::vector<double> mod_tp_;        ///< sum of member teleport flow
  std::vector<double> mod_out_link_;  ///< boundary out-flow
  std::vector<double> mod_in_link_;   ///< boundary in-flow
  std::vector<std::uint64_t> mod_cnt_;  ///< original vertices represented

  // Per-node totals (all link flow leaving/entering the node).
  std::vector<double> node_out_;
  std::vector<double> node_in_;

  double total_tp_ = 0.0;    ///< TP
  double enter_sum_ = 0.0;   ///< S
  double sum_plogp_enter_ = 0.0;
  double sum_plogp_exit_ = 0.0;
  double sum_plogp_exit_flow_ = 0.0;
  double node_flow_log_ = 0.0;  ///< constant term
  double codelength_ = 0.0;
};

}  // namespace asamap::core
