#pragma once

/// \file dense_accumulator.hpp
/// Ablation accumulator: a version-stamped dense array over the module-id
/// space plus a touched list.  This is the "infinite CAM" upper bound — no
/// collisions, no chains, no overflow — but it pays a random memory access
/// into an array as large as the module space per accumulate, so on big
/// levels its cache behaviour is *worse* than an 8 KB CAM.  The accumulator
/// ablation bench uses it to show the CAM's on-chip locality, not just its
/// branchlessness, is what wins.

#include <cstdint>
#include <span>
#include <vector>

#include "asamap/hashdb/address_space.hpp"
#include "asamap/hashdb/kv.hpp"
#include "asamap/sim/event_sink.hpp"

namespace asamap::core {

template <sim::EventSink Sink>
class DenseAccumulator {
 public:
  static constexpr std::uint32_t kCellBytes = 16;  // value + version stamp
  static constexpr std::uint32_t kPairBytes = 16;

  /// `capacity` must cover the largest module id that will be accumulated
  /// (the node count of the level).
  DenseAccumulator(Sink& sink, hashdb::AddressSpace& addrs,
                   std::size_t capacity)
      : sink_(&sink),
        values_(capacity, 0.0),
        stamps_(capacity, 0),
        dense_base_(addrs.alloc_array(capacity * kCellBytes)),
        scratch_base_(addrs.alloc_array(1ULL << 20)) {}

  void begin() {
    ++version_;
    touched_.clear();
    scratch_.clear();
    finalized_ = false;
  }

  void accumulate(std::uint32_t key, double value) {
    sink_->instructions(2);
    sink_->load(dense_base_ + std::uint64_t{key} * kCellBytes, kCellBytes);
    const bool fresh = stamps_[key] != version_;
    sink_->branch(sim::sites::kOpenSlotState, fresh);
    if (fresh) {
      stamps_[key] = version_;
      values_[key] = value;
      touched_.push_back(key);
      sink_->instructions(2);
    } else {
      values_[key] += value;
    }
    sink_->store(dense_base_ + std::uint64_t{key} * kCellBytes, kCellBytes);
  }

  std::span<const hashdb::KeyValue> finalize() {
    if (!finalized_) {
      for (std::uint32_t key : touched_) {
        sink_->instructions(2);
        sink_->load(dense_base_ + std::uint64_t{key} * kCellBytes, kCellBytes);
        sink_->store(scratch_base_ + scratch_.size() * kPairBytes, kPairBytes);
        scratch_.push_back(hashdb::KeyValue{key, values_[key]});
      }
      finalized_ = true;
    }
    return scratch_;
  }

  [[nodiscard]] std::size_t distinct() const noexcept {
    return touched_.size();
  }

 private:
  Sink* sink_;
  std::vector<double> values_;
  std::vector<std::uint64_t> stamps_;
  std::vector<std::uint32_t> touched_;
  std::vector<hashdb::KeyValue> scratch_;
  std::uint64_t dense_base_;
  std::uint64_t scratch_base_;
  std::uint64_t version_ = 0;
  bool finalized_ = false;
};

}  // namespace asamap::core
