#pragma once

/// \file kernel.hpp
/// The FindBestCommunity kernel (Algorithms 1 and 2 of the paper), written
/// once and parameterized on the flow-accumulation engine:
///
///   - hashdb::ChainedAccumulator  -> Algorithm 1 (Baseline, software hash)
///   - asa::AsaAccumulator         -> Algorithm 2 (ASA accelerator)
///   - hashdb::OpenAccumulator,
///     core::DenseAccumulator      -> ablations
///
/// Per vertex the kernel
///   1. accumulates link flow to/from neighboring modules through the
///      accumulator (the paper's "HashOperations" phase),
///   2. materializes the (module, flow) pairs,
///   3. scans them computing the code-length delta per candidate module and
///      greedily applies the best improving move.
/// Every step emits instruction/branch/memory events to the sink, and the
/// kernel attributes cycles and wall time to HashOperations vs the rest so
/// the Fig. 2b / Table V / Fig. 7 breakdowns fall out directly.

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>

#include "asamap/core/map_equation.hpp"
#include "asamap/hashdb/accumulator_concept.hpp"
#include "asamap/hashdb/address_space.hpp"
#include "asamap/hashdb/kv.hpp"
#include "asamap/sim/event_sink.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::core {

/// The flow accumulator is the shared key/value accumulation concept (see
/// hashdb/accumulator_concept.hpp) — the same engines also drive the
/// SpGEMM kernel in spgemm/.
template <typename A>
concept FlowAccumulator = hashdb::KvAccumulator<A>;

/// Simulated base addresses of the per-level shared arrays the kernel
/// touches.  CSR arc scans are sequential (stream loads); the module-id
/// gather per neighbor is the kernel's intrinsic random access.
struct LevelAddresses {
  std::uint64_t out_arcs = 0;    ///< 16 B per arc (dst, weight/flow)
  std::uint64_t in_arcs = 0;
  std::uint64_t module_of = 0;   ///< 4 B per node
  std::uint64_t module_agg = 0;  ///< 48 B per module (flow/exit aggregates)
  std::uint64_t pair_scan = 0;   ///< materialized (module, flow) pairs

  static LevelAddresses for_network(const FlowNetwork& fn,
                                    hashdb::AddressSpace& addrs) {
    LevelAddresses a;
    a.out_arcs = addrs.alloc_array(fn.graph.num_arcs() * 16);
    a.in_arcs = addrs.alloc_array(fn.graph.num_arcs() * 16);
    a.module_of = addrs.alloc_array(std::uint64_t{fn.num_nodes()} * 4);
    a.module_agg = addrs.alloc_array(std::uint64_t{fn.num_nodes()} * 48);
    a.pair_scan = addrs.alloc_array(1ULL << 20);
    return a;
  }
};

/// Instruction costs of the non-accumulation work, identical across
/// accumulator variants so the comparison isolates the hash machinery.
struct KernelCosts {
  std::uint32_t per_vertex = 12;     ///< loop control, setup
  std::uint32_t per_link = 3;        ///< flow multiply + accumulate setup
  std::uint32_t per_scan_pair = 2;   ///< current-module pre-scan step
  std::uint32_t per_candidate = 80;  ///< calc(): several plogp/log2 calls
  std::uint32_t apply_move = 6;      ///< module bookkeeping update
};

/// Cycle/wall attribution between the accumulation ("HashOperations") phase
/// and the decision phase, plus move counters.
struct KernelBreakdown {
  double hash_cycles = 0.0;
  double other_cycles = 0.0;
  double hash_seconds = 0.0;   ///< native wall time (when timing enabled)
  double other_seconds = 0.0;
  std::uint64_t vertices = 0;
  std::uint64_t moves = 0;
  std::uint64_t accumulate_calls = 0;

  KernelBreakdown& operator+=(const KernelBreakdown& o) noexcept {
    hash_cycles += o.hash_cycles;
    other_cycles += o.other_cycles;
    hash_seconds += o.hash_seconds;
    other_seconds += o.other_seconds;
    vertices += o.vertices;
    moves += o.moves;
    accumulate_calls += o.accumulate_calls;
    return *this;
  }

  [[nodiscard]] double total_cycles() const noexcept {
    return hash_cycles + other_cycles;
  }
};

/// How many arcs ahead the accumulation loops prefetch the neighbor's
/// module-id slot.  The module gather is the kernel's intrinsic random
/// access (the arc stream itself is sequential and covered by the hardware
/// prefetcher); issuing the load a few arcs early hides most of its
/// latency.  Published as `asamap_kernel_prefetch_distance`.
inline constexpr std::size_t kModulePrefetchDistance = 4;

#if defined(__GNUC__) || defined(__clang__)
#define ASAMAP_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 1)
#else
#define ASAMAP_PREFETCH_READ(addr) ((void)0)
#endif

namespace detail {

template <typename Sink>
double cycles_of(const Sink& sink) {
  if constexpr (requires { sink.cycles(); }) {
    return sink.cycles();
  } else {
    return 0.0;
  }
}

}  // namespace detail

/// Outcome of evaluating one vertex's candidate moves.
struct MoveProposal {
  VertexId target = 0;
  double delta = 0.0;  ///< code-length change in bits (negative = better)
  ModuleState::MoveFlows flows;
  [[nodiscard]] bool improving(VertexId current) const noexcept {
    return target != current && delta < -1e-15;
  }
};

/// Evaluates the best community for one vertex/supernode without mutating
/// state: the accumulation + decision scan of Algorithms 1/2.  Shared by the
/// sequential driver (which then applies) and the parallel proposal phase.
template <FlowAccumulator Acc, sim::EventSink Sink>
MoveProposal evaluate_move(const ModuleState& state, const FlowNetwork& fn,
                           VertexId v, Acc& acc, Sink& sink,
                           const LevelAddresses& addrs,
                           const KernelCosts& costs,
                           KernelBreakdown& breakdown,
                           bool time_wall = false) {
  const graph::CsrGraph& g = fn.graph;
  ++breakdown.vertices;

  // One timer, armed only when the caller wants the hash/other wall split:
  // an unconditional WallTimer costs two clock reads per vertex, which is
  // real money at millions of low-degree vertices per sweep.
  support::WallTimer wall{support::WallTimer::Disarmed{}};
  if (time_wall) wall.reset();
  const double cycles_before = detail::cycles_of(sink);
  const VertexId* const modules = state.assignment().data();

  // --- Accumulation phase (Alg. 1 lines 4-14 / Alg. 2 lines 5-13): scan
  // the adjacency, gather each neighbor's module id, and accumulate the arc
  // flow.  The scan and the module-id gather cost the same under every
  // engine; "HashOperations" (the quantity of Fig. 2b / Tab. V) is the
  // accumulate/materialize machinery itself — per-call cycle snapshots
  // attribute exactly that.
  double hash_cycles = 0.0;
  acc.begin();
  {
    const std::size_t base = static_cast<std::size_t>(g.out_offset(v));
    const auto arcs = g.out_neighbors(v);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (i + kModulePrefetchDistance < arcs.size()) {
        ASAMAP_PREFETCH_READ(modules + arcs[i + kModulePrefetchDistance].dst);
      }
      sink.load_stream(addrs.out_arcs + (base + i) * 16, 16);
      sink.load(addrs.module_of + std::uint64_t{arcs[i].dst} * 4, 4);
      sink.instructions(costs.per_link);
      const double t0 = detail::cycles_of(sink);
      acc.accumulate(modules[arcs[i].dst], fn.out_flow[base + i]);
      hash_cycles += detail::cycles_of(sink) - t0;
    }
    breakdown.accumulate_calls += arcs.size();
    // Accumulators that track stats in bulk (HotSetAccumulator) get one
    // addition per neighborhood instead of a counter in every accumulate().
    if constexpr (requires { acc.note_accumulates(std::uint64_t{}); }) {
      acc.note_accumulates(arcs.size());
    }
  }
  {
    const std::size_t base = static_cast<std::size_t>(g.in_offset(v));
    const auto arcs = g.in_neighbors(v);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (i + kModulePrefetchDistance < arcs.size()) {
        ASAMAP_PREFETCH_READ(modules + arcs[i + kModulePrefetchDistance].dst);
      }
      sink.load_stream(addrs.in_arcs + (base + i) * 16, 16);
      sink.load(addrs.module_of + std::uint64_t{arcs[i].dst} * 4, 4);
      sink.instructions(costs.per_link);
      const double t0 = detail::cycles_of(sink);
      acc.accumulate(modules[arcs[i].dst], fn.in_flow[base + i]);
      hash_cycles += detail::cycles_of(sink) - t0;
    }
    breakdown.accumulate_calls += arcs.size();
    if constexpr (requires { acc.note_accumulates(std::uint64_t{}); }) {
      acc.note_accumulates(arcs.size());
    }
  }
  const double t_finalize = detail::cycles_of(sink);
  const std::span<const hashdb::KeyValue> pairs = acc.finalize();
  hash_cycles += detail::cycles_of(sink) - t_finalize;

  breakdown.hash_cycles += hash_cycles;
  breakdown.other_cycles +=
      detail::cycles_of(sink) - cycles_before - hash_cycles;
  if (time_wall) {
    breakdown.hash_seconds += wall.seconds();
    wall.reset();  // re-arm for the decision phase
  }
  const double cycles_mid = detail::cycles_of(sink);

  // --- Decision phase (Alg. 1 lines 15-25 / Alg. 2 line 14).
  // Pre-scan for the flow between v and its current module, needed by every
  // delta evaluation.  Pair values hold out+in flow combined; the symmetric
  // flow models used here split it evenly (exact for undirected networks).
  // The scan is branch-free (a predicated add — each key appears at most
  // once, so adding the masked value equals selecting it), which lets the
  // compiler vectorize it once the sink calls compile away (NullSink).
  sink.instructions(costs.per_vertex);
  const VertexId current = state.module_of(v);
  double flow_current = 0.0;
  if constexpr (requires { acc.lookup(current); }) {
    // Accumulators that stay queryable after accumulation (the hot set)
    // answer the current-module pre-scan with one O(1) probe instead of a
    // pass over every materialized pair.  The probe reads the same stored
    // double the scan would have summed (each key appears exactly once),
    // so the result is bitwise identical.
    flow_current = acc.lookup(current);
  } else {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      sink.instructions(costs.per_scan_pair);
      sink.load_stream(addrs.pair_scan + i * 16, 16);
      const bool is_current = pairs[i].key == current;
      sink.branch(sim::sites::kScanLoop, is_current);
      flow_current += is_current ? pairs[i].value : 0.0;
    }
  }

  ModuleState::MoveFlows best_flows;
  best_flows.out_to_current = flow_current / 2.0;
  best_flows.in_from_current = flow_current / 2.0;

  // Ties within kTieBits are broken toward the smaller module id.  This
  // keeps decisions identical across accumulation engines, whose different
  // pair orders (bucket order vs CAM scan order vs sorted) and different
  // floating-point summation orders would otherwise flip coin-toss ties.
  constexpr double kTieBits = 1e-12;
  double best_delta = 0.0;
  VertexId best_module = current;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const VertexId target = pairs[i].key;
    if (target == current) continue;
    sink.instructions(costs.per_candidate);
    sink.load_stream(addrs.pair_scan + i * 16, 16);
    // The delta evaluation reads the candidate module's aggregates (flow,
    // exit, counts) — a data-dependent gather over the module table that
    // both Algorithm 1 and Algorithm 2 pay identically.
    sink.load(addrs.module_agg + std::uint64_t{target} * 48, 48);
    ModuleState::MoveFlows f = best_flows;
    f.out_to_target = pairs[i].value / 2.0;
    f.in_from_target = pairs[i].value / 2.0;
    const double delta = state.delta_move(v, target, f);
    const bool better = delta < best_delta - kTieBits;
    const bool tie_preferred = !better && delta < best_delta + kTieBits &&
                               best_module != current &&
                               target < best_module;
    const bool improved = better || tie_preferred;
    sink.branch(sim::sites::kBestUpdate, improved);
    if (improved) {
      best_delta = std::min(best_delta, delta);
      best_module = target;
      best_flows.out_to_target = f.out_to_target;
      best_flows.in_from_target = f.in_from_target;
    }
  }

  breakdown.other_cycles += detail::cycles_of(sink) - cycles_mid;
  if (time_wall) breakdown.other_seconds += wall.seconds();

  MoveProposal proposal;
  proposal.target = best_module;
  proposal.delta = best_delta;
  proposal.flows = best_flows;
  return proposal;
}

/// Runs FindBestCommunity for one vertex/supernode: Algorithm 1/2 depending
/// on the accumulator.  Applies the best improving move to `state` and
/// returns whether a move happened.
template <FlowAccumulator Acc, sim::EventSink Sink>
bool find_best_community(ModuleState& state, const FlowNetwork& fn, VertexId v,
                         Acc& acc, Sink& sink, const LevelAddresses& addrs,
                         const KernelCosts& costs, KernelBreakdown& breakdown,
                         bool time_wall = false) {
  const MoveProposal p = evaluate_move(state, fn, v, acc, sink, addrs, costs,
                                       breakdown, time_wall);
  if (!p.improving(state.module_of(v))) return false;
  const double cycles_before_apply = detail::cycles_of(sink);
  sink.instructions(costs.apply_move);
  sink.store(addrs.module_of + std::uint64_t{v} * 4, 4);
  // Both modules' aggregates are rewritten.
  sink.store(addrs.module_agg + std::uint64_t{state.module_of(v)} * 48, 48);
  sink.store(addrs.module_agg + std::uint64_t{p.target} * 48, 48);
  state.apply_move(v, p.target, p.flows);
  breakdown.other_cycles += detail::cycles_of(sink) - cycles_before_apply;
  ++breakdown.moves;
  return true;
}

/// Marks v and its neighborhood for re-evaluation next sweep.
inline void mark_neighborhood(const FlowNetwork& fn, VertexId v,
                              std::uint8_t* next_active) {
  next_active[v] = 1;
  for (const graph::Arc& arc : fn.graph.out_neighbors(v)) {
    next_active[arc.dst] = 1;
  }
  for (const graph::Arc& arc : fn.graph.in_neighbors(v)) {
    next_active[arc.dst] = 1;
  }
}

/// One sweep over [first, last): greedily moves each vertex to its best
/// module.  Returns the number of moves.
///
/// Active-set pruning (the standard RelaxMap/HyPC-Map optimization, and the
/// reason the paper's per-iteration times in Tables III/IV fall so steeply):
/// when `active` is non-null, vertices whose flag is clear are skipped, and
/// each applied move marks the mover's neighborhood in `next_active` for the
/// following sweep.
template <FlowAccumulator Acc, sim::EventSink Sink>
std::uint64_t sweep_range(ModuleState& state, const FlowNetwork& fn,
                          VertexId first, VertexId last, Acc& acc, Sink& sink,
                          const LevelAddresses& addrs, const KernelCosts& costs,
                          KernelBreakdown& breakdown, bool time_wall = false,
                          const std::uint8_t* active = nullptr,
                          std::uint8_t* next_active = nullptr) {
  std::uint64_t moves = 0;
  for (VertexId v = first; v < last; ++v) {
    if (active != nullptr && !active[v]) continue;
    if (find_best_community(state, fn, v, acc, sink, addrs, costs, breakdown,
                            time_wall)) {
      ++moves;
      if (next_active != nullptr) mark_neighborhood(fn, v, next_active);
    }
  }
  return moves;
}

}  // namespace asamap::core
