#pragma once

/// \file hierarchy.hpp
/// Multilevel module hierarchy — the tree the multilevel driver implicitly
/// builds as it contracts supernodes.  Real Infomap reports communities as
/// paths like "2:7:1" (top module 2, submodule 7, leaf 1); this reconstructs
/// the same structure from the per-level assignments the driver records.
///
/// Level 0 holds the finest modules (vertex-level communities); each later
/// level groups the previous level's modules.  The last level is the
/// coarsest (top) partition.

#include <cstdint>
#include <string>
#include <vector>

#include "asamap/core/flow.hpp"

namespace asamap::core {

class ModuleHierarchy {
 public:
  ModuleHierarchy() = default;

  /// Builds from per-level assignments: `levels[k][node]` is the module of
  /// `node` at level k, where level-k nodes are level-(k-1) modules (and
  /// level-0 nodes are original vertices).  Assignments must be compacted
  /// (ids 0..k-1), as the driver produces them.
  explicit ModuleHierarchy(std::vector<Partition> levels);

  [[nodiscard]] std::size_t depth() const noexcept { return levels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return levels_.empty(); }

  /// Number of modules at hierarchy level k (0 = finest).
  [[nodiscard]] std::size_t modules_at(std::size_t k) const;

  /// The module of original vertex v at level k.
  [[nodiscard]] VertexId module_of(VertexId v, std::size_t k) const;

  /// Finest-level community per original vertex (equals
  /// InfomapResult::communities).
  [[nodiscard]] const Partition& finest() const;

  /// Coarsest (top-level) community per original vertex.
  [[nodiscard]] Partition coarsest() const;

  /// Infomap-style path string for vertex v, coarsest first: "2:7:1".
  [[nodiscard]] std::string path_of(VertexId v) const;

  /// Per-level assignments as given (level k maps level-(k-1) modules).
  [[nodiscard]] const std::vector<Partition>& levels() const noexcept {
    return levels_;
  }

 private:
  std::vector<Partition> levels_;
  /// flat_[k][v] = module of original vertex v at level k (precomposed).
  std::vector<Partition> flat_;
};

}  // namespace asamap::core
