#pragma once

/// \file flow.hpp
/// Random-walk flow on a network: the PageRank kernel of HyPC-Map and the
/// flow bookkeeping that the map equation consumes.
///
/// At level 0 the ergodic vertex visit rates p_v come from power iteration
/// with teleportation probability tau (Section II-C of the paper: "This
/// kernel computes the ergodic vertex visit probability (PageRank) for all
/// of the vertices taking teleportation into account").  Arc flows are
///   f(u->v) = (1 - tau) * p_u * w(u,v) / s_u
/// with s_u the total outgoing weight of u.  Teleportation flow is tracked
/// separately per vertex (tp_v = tau * p_v) because a module's teleport exit
/// depends on how many *original* vertices it contains.
///
/// At supernode levels (Convert2SuperNode) flows are aggregated, not
/// recomputed: a super-arc's flow is the sum of member-arc flows, a
/// supernode's visit rate is the sum of member visit rates.

#include <cstdint>
#include <vector>

#include "asamap/graph/csr_graph.hpp"

namespace asamap::core {

using graph::CsrGraph;
using graph::VertexId;

/// A vertex-community assignment at one level.
using Partition = std::vector<VertexId>;

enum class FlowModel {
  kAuto,        ///< undirected when the graph is symmetric, else directed
  kUndirected,  ///< p_v = s_v / 2W, f_e = w_e / 2W, no teleportation terms
  kDirected,    ///< PageRank visit rates with recorded teleportation
};

struct FlowOptions {
  FlowModel model = FlowModel::kAuto;
  double tau = 0.15;          ///< teleportation probability (directed model)
  int max_iterations = 100;   ///< power-iteration cap
  double tolerance = 1e-12;   ///< L1 convergence threshold
};

/// A graph annotated with random-walk flow.  Owns its graph (levels above 0
/// are contracted copies; level 0 copies the input so a FlowNetwork is
/// self-contained).
struct FlowNetwork {
  CsrGraph graph;
  std::vector<double> node_flow;      ///< p_v, sums to 1
  std::vector<double> teleport_flow;  ///< tau * p_v aggregated over members
  std::vector<double> out_flow;       ///< per CSR out-arc flow, arc order
  std::vector<double> in_flow;        ///< per CSR in-arc flow, arc order
  std::vector<std::uint64_t> orig_count;  ///< original vertices per node
  std::uint64_t total_orig = 0;       ///< vertex count at level 0
  int pagerank_iterations = 0;        ///< iterations the power method used

  [[nodiscard]] VertexId num_nodes() const noexcept {
    return graph.num_vertices();
  }
};

/// Builds the level-0 flow network: runs the PageRank kernel and derives arc
/// flows.  Works for directed and undirected graphs alike.
FlowNetwork build_flow(const CsrGraph& g, const FlowOptions& options = {});

/// Convert2SuperNode: contracts a flow network by a partition (community id
/// per node, already compacted to 0..k-1).  Member vertices of one module
/// become one supernode; parallel super-arcs are merged with accumulated
/// flow ("If multiple vertices of one super node are connected to another
/// super node, a single super edge is created with accumulated edge
/// weights").  Intra-module flow disappears into the supernode.
FlowNetwork contract_network(const FlowNetwork& fn, const Partition& modules,
                             std::size_t num_modules);

/// Parallel Convert2SuperNode (the PCPM-style partition-centric shape):
/// scanner threads walk disjoint vertex ranges and scatter cross-module
/// arcs into per-(scanner, owner) buckets partitioned by source supernode;
/// owner threads then stable-sort and merge their slice, and the slices
/// concatenate into a globally sorted coalesced super-edge list with no
/// serial sort.  Super-arc weights are summed in member-vertex order, so
/// the result is identical to the serial contract_network up to the
/// floating-point rounding of the per-thread aggregate merge.
FlowNetwork contract_network_parallel(const FlowNetwork& fn,
                                      const Partition& modules,
                                      std::size_t num_modules,
                                      int num_threads);

}  // namespace asamap::core
