#pragma once

/// \file infomap.hpp
/// The multilevel Infomap driver — the four HyPC-Map kernels wired together:
///
///   PageRank            -> build_flow (flow.hpp)
///   FindBestCommunity   -> sweep loop over kernel.hpp, per level
///   Convert2SuperNode   -> contract_network (flow.hpp)
///   UpdateMembers       -> composition of level partitions
///
/// The driver is parameterized on a set of *workers*, each an (accumulator,
/// event sink) pair bound to one simulated core; with a single
/// NullSink-backed worker it is a plain fast community detector, with
/// CoreModel-backed workers it is the paper's simulated Baseline or ASA
/// configuration.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "asamap/core/hierarchy.hpp"
#include "asamap/core/kernel.hpp"
#include "asamap/core/map_equation.hpp"
#include "asamap/hashdb/hot_set_accumulator.hpp"
#include "asamap/obs/trace.hpp"
#include "asamap/support/check.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::core {

struct InfomapOptions {
  FlowOptions flow = {};
  int max_sweeps_per_level = 30;   ///< FindBestCommunity iterations per level
  int max_levels = 30;             ///< supernode recursion cap
  double min_improvement_bits = 1e-10;
  std::uint32_t interleave_block = 4096;  ///< multi-worker window size
  bool time_wall = false;          ///< collect native hash/other split
  /// Fine-tuning (Infomap's refinement step): after the multilevel loop
  /// converges, re-run vertex-level sweeps on the *original* graph seeded
  /// with the final partition, letting individual vertices correct
  /// coarse-level misassignments.  Improves codelength, never worsens it.
  int refine_sweeps = 2;
  /// Cooperative cancellation: when non-null and set (by another thread —
  /// a deadline watchdog, a job scheduler's cancel), the driver stops at
  /// the next sweep boundary and returns the best partition found so far,
  /// with InfomapResult::interrupted set.  The partition is always a
  /// consistent (if unconverged) assignment — moves apply atomically at
  /// sweep granularity.
  const std::atomic<bool>* cancel = nullptr;
  /// When non-null, kernel-phase spans and run-level counters are published
  /// into this registry (under `asamap_kernel_seconds{kernel="..."}` etc.)
  /// in addition to the per-run InfomapResult fields.  The registry must
  /// outlive the run; recording is lock-cheap and safe to scrape
  /// concurrently from another thread.
  obs::MetricRegistry* metrics = nullptr;
  /// Warm start (incremental reclustering, DESIGN.md §4f): when non-null,
  /// the level-0 sweep starts from this membership (one id per vertex; ids
  /// need not be compact — the driver compacts a copy) instead of
  /// all-singletons.  InfomapResult::initial_codelength then reports the
  /// warm partition's codelength, which is the publish-on-improvement
  /// baseline: greedy sweeps only ever lower it.  Must outlive the run.
  const Partition* warm_start = nullptr;
  /// Active-set seed for a warm-started run: when non-null (and warm_start
  /// is set), the level-0 and refinement sweeps activate only these
  /// vertices plus their 1-hop neighborhood instead of the full vertex set
  /// — the incremental re-sweep around a delta batch.  Activation still
  /// propagates from movers sweep over sweep, so the result is a valid
  /// (locally converged) partition; vertices the wavefront never reaches
  /// simply keep their warm assignment.  Coarser levels are unaffected
  /// (supernode counts are already small).  Must outlive the run.
  const std::vector<VertexId>* active_seed = nullptr;
  /// Local-repair shortcut for seeded warm runs: when the active seed covers
  /// at most this fraction of the vertex set, the perturbation is local — the
  /// run stops after the (converged) level-0 re-sweep instead of rebuilding
  /// the coarse supernode hierarchy.  The hierarchy rebuild costs several
  /// O(E) passes (contraction + coarse sweeps) to recover merges the warm
  /// partition already encodes; measured on a 100k/600k graph at 0.1% churn
  /// it changes codelength by ~0.006% while taking ~40% of the run.  Large
  /// perturbations (seed above the threshold) still rebuild the full
  /// hierarchy.  Set 0 to always rebuild.  Ignored without an active_seed.
  double warm_local_repair_fraction = 0.05;
};

/// One FindBestCommunity iteration's record (a row of Tables III/IV).
/// `codelength` is the level-local value: at supernode levels it omits the
/// (constant within the level) leaf-entropy term, so values are comparable
/// within a level but not across levels.  InfomapResult::codelength is the
/// true level-0 value of the final partition.
struct SweepTrace {
  int level = 0;
  int sweep = 0;
  std::uint64_t moves = 0;
  double codelength = 0.0;
  double wall_seconds = 0.0;  ///< native time of this sweep
  /// Slowest worker's time for this sweep: with simulated (CoreModel)
  /// workers this is simulated seconds from the cycle counters; in the
  /// native parallel driver it is the slowest thread's proposal-phase wall
  /// time (the sweep's critical path, i.e. what limits scaling).
  double sim_seconds = 0.0;
};

struct InfomapResult {
  Partition communities;          ///< final community per original vertex
  std::size_t num_communities = 0;
  double codelength = 0.0;        ///< bits per step, of the final partition
                                  ///< evaluated over the original network
  double one_level_codelength = 0.0;  ///< L of the trivial partition
  double initial_codelength = 0.0;    ///< L of the level-0 start state —
                                      ///< all-singletons, or the warm_start
                                      ///< partition when one was given;
                                      ///< codelength <= this is guaranteed
  int levels = 0;                 ///< supernode levels processed
  bool interrupted = false;       ///< stopped early via InfomapOptions::cancel
  std::vector<SweepTrace> trace;
  support::PhaseTimer kernel_wall;  ///< Fig. 2a: per-kernel native seconds
  KernelBreakdown breakdown;        ///< Fig. 2b / Tab. V attribution
  /// Aggregated hot-set counters when the run used HotSetAccumulator
  /// (begins == 0 otherwise) — the software analogue of asa::CamStats.
  hashdb::HotSetStats hotset;

  /// Per-level compacted assignments (level k maps level-(k-1) modules;
  /// level 0 maps original vertices).  Feed to ModuleHierarchy for
  /// Infomap-style "2:7:1" module paths.  When the refinement pass
  /// (InfomapOptions::refine_sweeps) moved vertices, the hierarchy is
  /// re-based to a single flat level — refinement edits the leaf partition
  /// directly, invalidating the intermediate tree; set refine_sweeps = 0 to
  /// keep the full tree.
  std::vector<Partition> level_assignments;

  [[nodiscard]] ModuleHierarchy hierarchy() const {
    return ModuleHierarchy(level_assignments);
  }
};

/// Kernel phase names used in InfomapResult::kernel_wall.
namespace kernels {
inline const std::string kPageRank = "PageRank";
inline const std::string kFindBestCommunity = "FindBestCommunity";
inline const std::string kConvert2SuperNode = "Convert2SuperNode";
inline const std::string kUpdateMembers = "UpdateMembers";
}  // namespace kernels

/// Publishes one finished run's summary counters and gauges into `reg`
/// (no-op when null).  Shared by every driver so serial, parallel, and
/// simulated runs report under the same names; kernel-phase histograms are
/// recorded live by obs::KernelSpan, not here.
inline void publish_run_metrics(const InfomapResult& result,
                                obs::MetricRegistry* reg) {
  if (reg == nullptr) return;
  reg->counter("asamap_runs_total").inc();
  if (result.interrupted) reg->counter("asamap_runs_interrupted_total").inc();
  std::uint64_t moves = 0;
  std::uint64_t sweeps = 0;
  for (const SweepTrace& st : result.trace) {
    moves += st.moves;
    ++sweeps;
  }
  reg->counter("asamap_run_moves_total").inc(moves);
  reg->counter("asamap_run_sweeps_total").inc(sweeps);
  reg->gauge("asamap_run_levels").set(static_cast<double>(result.levels));
  reg->gauge("asamap_run_communities")
      .set(static_cast<double>(result.num_communities));
  reg->gauge("asamap_run_codelength_bits").set(result.codelength);
  reg->gauge("asamap_kernel_prefetch_distance")
      .set(static_cast<double>(kModulePrefetchDistance));
  if (result.hotset.begins > 0) {
    reg->counter("asamap_hotset_accumulates_total")
        .inc(result.hotset.accumulates);
    reg->counter("asamap_hotset_hits_total").inc(result.hotset.hot_hits());
    reg->counter("asamap_hotset_spills_total").inc(result.hotset.spills);
    reg->gauge("asamap_hotset_hit_rate").set(result.hotset.hit_rate());
    reg->gauge("asamap_hotset_vertex_coverage")
        .set(result.hotset.vertex_coverage());
  }
}

/// Renumbers community ids to 0..k-1 in first-appearance order; returns k.
inline std::size_t compact_communities(Partition& p) {
  VertexId max_id = 0;
  for (VertexId c : p) max_id = std::max(max_id, c);
  std::vector<VertexId> relabel(std::size_t{max_id} + 1,
                                graph::kInvalidVertex);
  VertexId next_id = 0;
  for (VertexId& c : p) {
    if (relabel[c] == graph::kInvalidVertex) relabel[c] = next_id++;
    c = relabel[c];
  }
  return next_id;
}

/// Zeroes `active` and re-marks `seed` plus its 1-hop neighborhood — the
/// level-0 / refinement start state of an incremental (active_seed) run.
/// Out-of-range seeds are ignored (a delta batch can reference vertices the
/// caller's graph snapshot predates).
inline void seed_active_set(const FlowNetwork& fn,
                            std::span<const VertexId> seed,
                            std::vector<std::uint8_t>& active) {
  std::fill(active.begin(), active.end(), 0);
  const VertexId n = fn.num_nodes();
  for (const VertexId s : seed) {
    if (s >= n) continue;
    active[s] = 1;
    for (const graph::Arc& a : fn.graph.out_neighbors(s)) active[a.dst] = 1;
    for (const graph::Arc& a : fn.graph.in_neighbors(s)) active[a.dst] = 1;
  }
}

/// Number of distinct community ids in a partition.
inline std::size_t count_distinct_communities(const Partition& p) {
  VertexId max_id = 0;
  for (VertexId c : p) max_id = std::max(max_id, c);
  std::vector<bool> seen(std::size_t{max_id} + 1, false);
  std::size_t distinct = 0;
  for (VertexId c : p) {
    if (!seen[c]) {
      seen[c] = true;
      ++distinct;
    }
  }
  return distinct;
}

/// A simulated core's view of the computation.
template <FlowAccumulator Acc, sim::EventSink Sink>
struct Worker {
  Acc* acc = nullptr;
  Sink* sink = nullptr;
};

/// Multilevel Infomap over an arbitrary worker set.  Vertices of each level
/// are range-partitioned across workers (HyPC-Map's distribution); blocks of
/// `interleave_block` vertices rotate across workers so a shared L3 in the
/// sink sees interleaved footprints.  Moves apply to the shared ModuleState
/// in processing order, so results are deterministic for a fixed worker
/// count.
template <FlowAccumulator Acc, sim::EventSink Sink>
InfomapResult run_multilevel(const graph::CsrGraph& g,
                             const InfomapOptions& opts,
                             std::span<Worker<Acc, Sink>> workers) {
  ASAMAP_CHECK(!workers.empty(), "need at least one worker");
  InfomapResult result;
  // Resolve every kernel-span sink (timer slots + histogram handles) once;
  // the spans in the level loop then open/close allocation-free.
  obs::KernelTimers ktimers(result.kernel_wall, opts.metrics);
  const auto cancelled = [&opts] {
    return opts.cancel && opts.cancel->load(std::memory_order_relaxed);
  };

  // --- PageRank kernel.  `original` stays untouched for the final
  // level-0 codelength evaluation and refinement; `fn` is the working
  // network that gets contracted level by level.
  FlowNetwork original;
  {
    obs::KernelSpan span(ktimers, obs::KernelPhase::kPageRank);
    original = build_flow(g, opts.flow);
  }
  // Level-0 reads `original` directly; contracted levels swap in the owned
  // supernode network.  Saves a full O(E) FlowNetwork copy per run.
  FlowNetwork contracted;
  const FlowNetwork* fn = &original;

  // UpdateMembers state: original vertex -> current-level node.
  std::vector<VertexId> node_of_orig(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) node_of_orig[v] = v;

  // The proper one-level codelength is the entropy of node visit rates; a
  // single module with zero exit gives exactly that.
  result.one_level_codelength = one_level_codelength(original);

  hashdb::AddressSpace level_addrs;  // fresh simulated regions per run
  const KernelCosts costs;

  const bool warm = opts.warm_start != nullptr;
  const bool seeded = warm && opts.active_seed != nullptr;
  // Local repair (see InfomapOptions::warm_local_repair_fraction): a small
  // seeded perturbation converges at level 0; the coarse hierarchy the warm
  // partition came from is still valid, so skip rebuilding it.
  const bool local_repair =
      seeded && opts.warm_local_repair_fraction > 0.0 &&
      static_cast<double>(opts.active_seed->size()) <=
          opts.warm_local_repair_fraction *
              static_cast<double>(g.num_vertices());

  for (int level = 0; level < opts.max_levels; ++level) {
    ModuleState state = [&]() -> ModuleState {
      if (level == 0 && warm) {
        ASAMAP_CHECK(opts.warm_start->size() == fn->num_nodes(),
                     "warm_start must have one entry per vertex");
        Partition init = *opts.warm_start;
        const std::size_t k = compact_communities(init);
        return ModuleState(*fn, init, k);
      }
      return ModuleState(*fn);
    }();
    if (level == 0) result.initial_codelength = state.codelength();
    const LevelAddresses addrs = LevelAddresses::for_network(*fn, level_addrs);
    const VertexId n = fn->num_nodes();

    // Per-worker contiguous ranges.
    const std::uint32_t w = static_cast<std::uint32_t>(workers.size());
    std::vector<VertexId> range_begin(w), range_end(w);
    for (std::uint32_t i = 0; i < w; ++i) {
      range_begin[i] = static_cast<VertexId>(std::uint64_t{n} * i / w);
      range_end[i] = static_cast<VertexId>(std::uint64_t{n} * (i + 1) / w);
    }

    // Active-set pruning: all vertices active on the first sweep, then only
    // neighborhoods of movers.  An incremental run instead seeds level 0
    // with the delta batch's touched vertices + 1-hop frontier.
    std::vector<std::uint8_t> active(n, 1);
    std::vector<std::uint8_t> next_active(n, 0);
    if (level == 0 && seeded) seed_active_set(*fn, *opts.active_seed, active);

    double prev_codelength = state.codelength();
    int sweeps_done = 0;
    for (int sweep = 0; sweep < opts.max_sweeps_per_level; ++sweep) {
      if (cancelled()) {
        result.interrupted = true;
        break;
      }
      SweepTrace st;
      st.level = level;
      st.sweep = sweep;
      support::WallTimer sweep_wall;
      std::vector<double> worker_cycles_before(w);
      for (std::uint32_t i = 0; i < w; ++i) {
        worker_cycles_before[i] = detail::cycles_of(*workers[i].sink);
      }

      std::uint64_t moves = 0;
      {
        obs::KernelSpan span(ktimers, obs::KernelPhase::kFindBestCommunity);
        // Interleaved windows across workers.
        bool any_left = true;
        std::vector<VertexId> cursor(range_begin);
        while (any_left) {
          any_left = false;
          for (std::uint32_t i = 0; i < w; ++i) {
            if (cursor[i] >= range_end[i]) continue;
            const VertexId stop =
                static_cast<VertexId>(std::min<std::uint64_t>(
                    std::uint64_t{cursor[i]} + opts.interleave_block,
                    range_end[i]));
            moves += sweep_range(state, *fn, cursor[i], stop, *workers[i].acc,
                                 *workers[i].sink, addrs, costs,
                                 result.breakdown, opts.time_wall,
                                 active.data(), next_active.data());
            cursor[i] = stop;
            if (cursor[i] < range_end[i]) any_left = true;
          }
        }
      }
      state.recompute();  // shed incremental floating-point drift

      st.moves = moves;
      st.codelength = state.codelength();
      st.wall_seconds = sweep_wall.seconds();
      double worst = 0.0;
      for (std::uint32_t i = 0; i < w; ++i) {
        const double dc =
            detail::cycles_of(*workers[i].sink) - worker_cycles_before[i];
        if constexpr (requires { workers[0].sink->config(); }) {
          worst = std::max(
              worst, dc / (workers[i].sink->config().frequency_ghz * 1e9));
        }
      }
      st.sim_seconds = worst;
      result.trace.push_back(st);
      ++sweeps_done;

      if (moves == 0 ||
          prev_codelength - state.codelength() < opts.min_improvement_bits) {
        break;
      }
      prev_codelength = state.codelength();
      active.swap(next_active);
      std::fill(next_active.begin(), next_active.end(), 0);
    }
    (void)sweeps_done;

    // Compact the level partition.
    Partition assignment = state.assignment();
    std::vector<VertexId> relabel(fn->num_nodes(), graph::kInvalidVertex);
    VertexId next_id = 0;
    for (VertexId v = 0; v < n; ++v) {
      VertexId& slot = relabel[assignment[v]];
      if (slot == graph::kInvalidVertex) slot = next_id++;
      assignment[v] = slot;
    }
    const std::size_t k = next_id;

    // UpdateMembers kernel: propagate to original vertices.
    {
      obs::KernelSpan span(ktimers, obs::KernelPhase::kUpdateMembers);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        node_of_orig[v] = assignment[node_of_orig[v]];
      }
    }

    result.level_assignments.push_back(assignment);
    result.codelength = state.codelength();
    result.levels = level + 1;

    if (level == 0 && local_repair) break;
    if (k == n || k <= 1) break;  // no aggregation or fully merged: done
    if (result.interrupted) break;

    // Convert2SuperNode kernel.
    {
      obs::KernelSpan span(ktimers, obs::KernelPhase::kConvert2SuperNode);
      contracted = contract_network(*fn, assignment, k);
      fn = &contracted;
    }
  }

  result.communities = std::move(node_of_orig);
  result.num_communities = compact_communities(result.communities);

  // --- Final codelength, evaluated over the *original* network.  The
  // coarse-level values recorded in the trace omit the (level-constant)
  // leaf-entropy term, so only a level-0 evaluation yields the true
  // two-level map-equation value of the final partition.
  if (local_repair) {
    // The level-0 state lived on the original network and was recomputed
    // after its last sweep — result.codelength already holds the true
    // two-level value, and the seeded re-sweep converged over the active
    // set, so refinement would only re-walk the same vertices.
  } else {
    ModuleState state(original, result.communities, result.num_communities);
    result.codelength = state.codelength();

    // Refinement (fine-tuning): vertex-level sweeps seeded with the final
    // partition correct vertices that were dragged along with their
    // supernode into a suboptimal module.  Greedy moves only ever improve.
    if (opts.refine_sweeps > 0 && result.levels > 1 &&
        result.num_communities > 1 && !result.interrupted) {
      obs::KernelSpan span(ktimers, obs::KernelPhase::kFindBestCommunity);
      const LevelAddresses addrs =
          LevelAddresses::for_network(original, level_addrs);
      // Incremental runs confine refinement to the same seeded active set
      // (plus whatever the move wavefront reaches) — a full-vertex
      // refinement would erase the active-set speedup.
      std::vector<std::uint8_t> refine_active;
      std::vector<std::uint8_t> refine_next;
      if (seeded) {
        refine_active.assign(g.num_vertices(), 0);
        refine_next.assign(g.num_vertices(), 0);
        seed_active_set(original, *opts.active_seed, refine_active);
      }
      std::uint64_t refine_moves = 0;
      for (int sweep = 0; sweep < opts.refine_sweeps; ++sweep) {
        if (cancelled()) {
          result.interrupted = true;
          break;
        }
        std::uint64_t moves = 0;
        const std::uint32_t w = static_cast<std::uint32_t>(workers.size());
        for (std::uint32_t i = 0; i < w; ++i) {
          const auto first = static_cast<VertexId>(
              std::uint64_t{g.num_vertices()} * i / w);
          const auto last = static_cast<VertexId>(
              std::uint64_t{g.num_vertices()} * (i + 1) / w);
          moves += sweep_range(state, original, first, last, *workers[i].acc,
                               *workers[i].sink, addrs, costs,
                               result.breakdown, opts.time_wall,
                               seeded ? refine_active.data() : nullptr,
                               seeded ? refine_next.data() : nullptr);
        }
        state.recompute();
        refine_moves += moves;
        if (moves == 0) break;
        if (seeded) {
          refine_active.swap(refine_next);
          std::fill(refine_next.begin(), refine_next.end(), 0);
        }
      }

      if (refine_moves > 0 && state.codelength() < result.codelength) {
        // Adopt the refined partition; re-base the hierarchy to this flat
        // level (see the level_assignments doc comment).
        Partition flat = state.assignment();
        result.num_communities = compact_communities(flat);
        result.communities = flat;
        result.codelength = state.codelength();
        result.level_assignments = {std::move(flat)};
      }
    }
  }
  if constexpr (requires { workers[0].acc->hot_stats(); }) {
    for (const Worker<Acc, Sink>& w : workers) result.hotset += w.acc->hot_stats();
  }
  publish_run_metrics(result, opts.metrics);
  return result;
}

/// Which accumulation engine a convenience run should use.
///
/// kChained/kOpen/kAsa/kDense are the paper's *modeled* engines — they emit
/// sink events so simulated runs can cost every probe.  kFlat and kHotSet
/// are the native fast paths: uninstrumented and cache-friendly.  kHotSet
/// (hashdb::HotSetAccumulator) fronts the flat table with a fixed 8 KB
/// SIMD-probed hot set mirroring the paper's CAM, and is the default for
/// the parallel driver.
enum class AccumulatorKind { kChained, kOpen, kAsa, kDense, kFlat, kHotSet };

/// Plain, uninstrumented community detection (NullSink, one worker).
/// The default configuration a library user wants: the flat native-speed
/// accumulator.  Pick an instrumented kind to reproduce the modeled
/// engines' decisions bit-for-bit (all kinds yield identical partitions).
InfomapResult run_infomap(const graph::CsrGraph& g,
                          const InfomapOptions& opts = {},
                          AccumulatorKind kind = AccumulatorKind::kFlat);

/// Shared-memory parallel variant: proposals are computed in parallel with
/// OpenMP against a snapshot of the module state, then verified and applied
/// serially (RelaxMap-style relaxed concurrency, made deterministic).
///
/// Phase 1 records full move proposals (target + flows), not just flags;
/// phase 2 replays them in vertex order and only re-runs the accumulator
/// for vertices whose neighborhood changed since the snapshot (tracked by
/// per-vertex epoch stamps).  Aggregates stay exact because recorded flows
/// are only reused when provably unchanged, and the code-length delta is
/// re-derived from live aggregates in O(1) before applying.  The result is
/// deterministic *and* thread-count-invariant up to the floating-point
/// noise of parallel contraction.
///
/// `kind` selects the native accumulation engine: kHotSet (default — the
/// software-CAM two-level accumulator) or kFlat.  The instrumented kinds
/// are not supported here (their sinks are not thread-safe); both native
/// engines produce bitwise-identical results by construction.
InfomapResult run_infomap_parallel(const graph::CsrGraph& g,
                                   const InfomapOptions& opts = {},
                                   int num_threads = 0,
                                   AccumulatorKind kind = AccumulatorKind::kHotSet);

}  // namespace asamap::core
