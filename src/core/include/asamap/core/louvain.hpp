#pragma once

/// \file louvain.hpp
/// Louvain modularity maximization (Blondel et al. 2008) — the
/// modularity-based comparator the paper's introduction positions Infomap
/// against (quality on LFR, the resolution-limit discussion).  The examples
/// use it to reproduce the "Infomap beats modularity methods on LFR"
/// observation with NMI.

#include <cstdint>
#include <vector>

#include "asamap/core/flow.hpp"

namespace asamap::core {

struct LouvainOptions {
  int max_sweeps_per_level = 30;
  int max_levels = 30;
  double min_modularity_gain = 1e-9;
};

struct LouvainResult {
  Partition communities;  ///< community id per original vertex
  std::size_t num_communities = 0;
  double modularity = 0.0;
  int levels = 0;
};

/// Runs Louvain on an undirected (symmetric) graph.
LouvainResult run_louvain(const graph::CsrGraph& g,
                          const LouvainOptions& opts = {});

}  // namespace asamap::core
