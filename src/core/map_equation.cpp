#include "asamap/core/map_equation.hpp"

#include <cmath>

#include "asamap/support/check.hpp"

namespace asamap::core {

double plogp(double x) noexcept {
  return x > 0.0 ? x * std::log2(x) : 0.0;
}

double one_level_codelength(const FlowNetwork& fn) {
  // One module holding every node: all arcs are intra-module, so exit and
  // enter are exactly zero and the index codebook vanishes.  Accumulate in
  // the same vertex order as ModuleState::init_aggregates so the value is
  // bitwise identical to the ModuleState evaluation it replaces.
  double total_flow = 0.0;
  double node_flow_log = 0.0;
  for (VertexId v = 0; v < fn.num_nodes(); ++v) {
    total_flow += fn.node_flow[v];
    node_flow_log += plogp(fn.node_flow[v]);
  }
  return plogp(total_flow) - node_flow_log;
}

ModuleState::ModuleState(const FlowNetwork& fn) : fn_(&fn) {
  const VertexId n = fn.num_nodes();
  module_of_.resize(n);
  for (VertexId v = 0; v < n; ++v) module_of_[v] = v;
  mod_flow_.assign(n, 0.0);
  mod_tp_.assign(n, 0.0);
  mod_out_link_.assign(n, 0.0);
  mod_in_link_.assign(n, 0.0);
  mod_cnt_.assign(n, 0);
  init_aggregates();
}

ModuleState::ModuleState(const FlowNetwork& fn, const Partition& init,
                         std::size_t num_modules)
    : fn_(&fn), module_of_(init) {
  ASAMAP_CHECK(init.size() == fn.num_nodes(), "partition size mismatch");
  mod_flow_.assign(num_modules, 0.0);
  mod_tp_.assign(num_modules, 0.0);
  mod_out_link_.assign(num_modules, 0.0);
  mod_in_link_.assign(num_modules, 0.0);
  mod_cnt_.assign(num_modules, 0);
  init_aggregates();
}

void ModuleState::init_aggregates() {
  const FlowNetwork& fn = *fn_;
  const VertexId n = fn.num_nodes();

  node_out_.assign(n, 0.0);
  node_in_.assign(n, 0.0);
  {
    std::size_t e = 0;
    for (VertexId u = 0; u < n; ++u) {
      for ([[maybe_unused]] const graph::Arc& arc : fn.graph.out_neighbors(u)) {
        node_out_[u] += fn.out_flow[e++];
      }
    }
    e = 0;
    for (VertexId v = 0; v < n; ++v) {
      for ([[maybe_unused]] const graph::Arc& arc : fn.graph.in_neighbors(v)) {
        node_in_[v] += fn.in_flow[e++];
      }
    }
  }

  total_tp_ = 0.0;
  node_flow_log_ = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    total_tp_ += fn.teleport_flow[v];
    node_flow_log_ += plogp(fn.node_flow[v]);
    const VertexId m = module_of_[v];
    mod_flow_[m] += fn.node_flow[v];
    mod_tp_[m] += fn.teleport_flow[v];
    mod_cnt_[m] += fn.orig_count[v];
  }

  // Boundary link flows.
  std::fill(mod_out_link_.begin(), mod_out_link_.end(), 0.0);
  std::fill(mod_in_link_.begin(), mod_in_link_.end(), 0.0);
  {
    std::size_t e = 0;
    for (VertexId u = 0; u < n; ++u) {
      const VertexId mu = module_of_[u];
      for (const graph::Arc& arc : fn.graph.out_neighbors(u)) {
        const VertexId mv = module_of_[arc.dst];
        if (mu != mv) {
          mod_out_link_[mu] += fn.out_flow[e];
          mod_in_link_[mv] += fn.out_flow[e];
        }
        ++e;
      }
    }
  }

  recompute();
}

double ModuleState::exit_from(double out_link, double tp,
                              std::uint64_t cnt) const noexcept {
  const double N = static_cast<double>(fn_->total_orig);
  return out_link + tp * (N - static_cast<double>(cnt)) / N;
}

double ModuleState::enter_from(double in_link, double tp,
                               std::uint64_t cnt) const noexcept {
  const double N = static_cast<double>(fn_->total_orig);
  return in_link + (static_cast<double>(cnt) / N) * (total_tp_ - tp);
}

double ModuleState::exit_of(VertexId m) const noexcept {
  return exit_from(mod_out_link_[m], mod_tp_[m], mod_cnt_[m]);
}

double ModuleState::enter_of(VertexId m) const noexcept {
  return enter_from(mod_in_link_[m], mod_tp_[m], mod_cnt_[m]);
}

void ModuleState::recompute() {
  enter_sum_ = 0.0;
  sum_plogp_enter_ = 0.0;
  sum_plogp_exit_ = 0.0;
  sum_plogp_exit_flow_ = 0.0;
  for (VertexId m = 0; m < mod_flow_.size(); ++m) {
    if (mod_flow_[m] <= 0.0 && mod_cnt_[m] == 0) continue;
    const double ex = exit_of(m);
    const double en = enter_of(m);
    enter_sum_ += en;
    sum_plogp_enter_ += plogp(en);
    sum_plogp_exit_ += plogp(ex);
    sum_plogp_exit_flow_ += plogp(ex + mod_flow_[m]);
  }
  codelength_ = plogp(enter_sum_) - sum_plogp_enter_ - sum_plogp_exit_ +
                sum_plogp_exit_flow_ - node_flow_log_;
}

double ModuleState::index_codelength() const noexcept {
  return plogp(enter_sum_) - sum_plogp_enter_;
}

std::size_t ModuleState::live_modules() const {
  std::size_t live = 0;
  for (VertexId m = 0; m < mod_flow_.size(); ++m) {
    if (mod_cnt_[m] > 0) ++live;
  }
  return live;
}

double ModuleState::delta_move(VertexId v, VertexId target,
                               const MoveFlows& f) const {
  const VertexId o = module_of_[v];
  if (o == target) return 0.0;
  const FlowNetwork& fn = *fn_;

  // Old-module aggregates after removing v.
  const double o_out = mod_out_link_[o] - (node_out_[v] - f.out_to_current) +
                       f.in_from_current;
  const double o_in = mod_in_link_[o] - (node_in_[v] - f.in_from_current) +
                      f.out_to_current;
  const double o_flow = mod_flow_[o] - fn.node_flow[v];
  const double o_tp = mod_tp_[o] - fn.teleport_flow[v];
  const std::uint64_t o_cnt = mod_cnt_[o] - fn.orig_count[v];

  // Target-module aggregates after adding v.
  const double t_out = mod_out_link_[target] +
                       (node_out_[v] - f.out_to_target) - f.in_from_target;
  const double t_in = mod_in_link_[target] +
                      (node_in_[v] - f.in_from_target) - f.out_to_target;
  const double t_flow = mod_flow_[target] + fn.node_flow[v];
  const double t_tp = mod_tp_[target] + fn.teleport_flow[v];
  const std::uint64_t t_cnt = mod_cnt_[target] + fn.orig_count[v];

  const double old_exit_o = exit_of(o);
  const double old_exit_t = exit_of(target);
  const double old_enter_o = enter_of(o);
  const double old_enter_t = enter_of(target);
  const double new_exit_o = exit_from(o_out, o_tp, o_cnt);
  const double new_exit_t = exit_from(t_out, t_tp, t_cnt);
  const double new_enter_o = enter_from(o_in, o_tp, o_cnt);
  const double new_enter_t = enter_from(t_in, t_tp, t_cnt);

  const double new_enter_sum =
      enter_sum_ - old_enter_o - old_enter_t + new_enter_o + new_enter_t;

  double delta = plogp(new_enter_sum) - plogp(enter_sum_);
  delta -= plogp(new_enter_o) + plogp(new_enter_t) - plogp(old_enter_o) -
           plogp(old_enter_t);
  delta -= plogp(new_exit_o) + plogp(new_exit_t) - plogp(old_exit_o) -
           plogp(old_exit_t);
  delta += plogp(new_exit_o + o_flow) + plogp(new_exit_t + t_flow) -
           plogp(old_exit_o + mod_flow_[o]) -
           plogp(old_exit_t + mod_flow_[target]);
  return delta;
}

void ModuleState::apply_move(VertexId v, VertexId target, const MoveFlows& f) {
  const VertexId o = module_of_[v];
  if (o == target) return;
  const FlowNetwork& fn = *fn_;

  // Retire the old plogp contributions of both modules.
  const double old_enter_o = enter_of(o);
  const double old_enter_t = enter_of(target);
  sum_plogp_enter_ -= plogp(old_enter_o) + plogp(old_enter_t);
  sum_plogp_exit_ -= plogp(exit_of(o)) + plogp(exit_of(target));
  sum_plogp_exit_flow_ -= plogp(exit_of(o) + mod_flow_[o]) +
                          plogp(exit_of(target) + mod_flow_[target]);
  enter_sum_ -= old_enter_o + old_enter_t;

  // Update raw aggregates (same algebra as delta_move).
  mod_out_link_[o] += -(node_out_[v] - f.out_to_current) + f.in_from_current;
  mod_in_link_[o] += -(node_in_[v] - f.in_from_current) + f.out_to_current;
  mod_flow_[o] -= fn.node_flow[v];
  mod_tp_[o] -= fn.teleport_flow[v];
  mod_cnt_[o] -= fn.orig_count[v];

  mod_out_link_[target] += (node_out_[v] - f.out_to_target) - f.in_from_target;
  mod_in_link_[target] += (node_in_[v] - f.in_from_target) - f.out_to_target;
  mod_flow_[target] += fn.node_flow[v];
  mod_tp_[target] += fn.teleport_flow[v];
  mod_cnt_[target] += fn.orig_count[v];

  module_of_[v] = target;

  // Admit the new contributions.
  const double new_enter_o = enter_of(o);
  const double new_enter_t = enter_of(target);
  sum_plogp_enter_ += plogp(new_enter_o) + plogp(new_enter_t);
  sum_plogp_exit_ += plogp(exit_of(o)) + plogp(exit_of(target));
  sum_plogp_exit_flow_ += plogp(exit_of(o) + mod_flow_[o]) +
                          plogp(exit_of(target) + mod_flow_[target]);
  enter_sum_ += new_enter_o + new_enter_t;

  codelength_ = plogp(enter_sum_) - sum_plogp_enter_ - sum_plogp_exit_ +
                sum_plogp_exit_flow_ - node_flow_log_;
}

}  // namespace asamap::core
