#include "asamap/fault/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "asamap/obs/metrics.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/support/hash.hpp"
#include "asamap/support/rng.hpp"

namespace asamap::fault {

namespace {

constexpr std::array<const char*, kNumSites> kSiteNames = {
    "ingest.parse", "scheduler.dispatch", "cluster.sweep", "registry.evict",
    "session.io"};

constexpr int site_index(Site site) noexcept { return static_cast<int>(site); }

/// Uniform double in [0, 1) keyed on (seed, site, rule, hit) through
/// SplitMix64.  Pure function — the determinism contract lives here.
double keyed_unit(std::uint64_t seed, int site, std::size_t rule,
                  std::uint64_t hit) noexcept {
  support::SplitMix64 sm(seed ^ support::mix64(0xA5A5u + static_cast<std::uint64_t>(site)) ^
                         support::mix64((rule + 1) * 0x9e3779b97f4a7c15ULL) ^
                         support::mix64(hit));
  return static_cast<double>(sm() >> 11) * 0x1.0p-53;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool parse_double(std::string_view text, double& out) {
  if (text.empty()) return false;
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

PlanParseError err_at(int line, std::string message) {
  return PlanParseError{line, std::move(message)};
}

}  // namespace

const char* to_string(Site site) noexcept {
  const int i = site_index(site);
  return (i >= 0 && i < kNumSites) ? kSiteNames[static_cast<std::size_t>(i)]
                                   : "unknown";
}

std::optional<Site> site_from_string(std::string_view name) noexcept {
  for (int i = 0; i < kNumSites; ++i) {
    if (name == kSiteNames[static_cast<std::size_t>(i)]) {
      return static_cast<Site>(i);
    }
  }
  return std::nullopt;
}

const char* to_string(Effect effect) noexcept {
  switch (effect) {
    case Effect::kNone: return "none";
    case Effect::kError: return "error";
    case Effect::kLatency: return "latency";
    case Effect::kCancel: return "cancel";
    case Effect::kPartialWrite: return "partial";
  }
  return "unknown";
}

std::optional<Effect> effect_from_string(std::string_view name) noexcept {
  if (name == "error") return Effect::kError;
  if (name == "latency") return Effect::kLatency;
  if (name == "cancel") return Effect::kCancel;
  if (name == "partial") return Effect::kPartialWrite;
  return std::nullopt;
}

PlanParseResult parse_fault_plan(std::istream& in) {
  PlanParseResult result;
  std::string line;
  int lineno = 0;
  bool saw_seed = false;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;

    if (word == "seed") {
      std::string value;
      if (!(ls >> value) || !parse_u64(value, result.plan.seed)) {
        result.error = err_at(lineno, "seed wants one unsigned integer");
        return result;
      }
      saw_seed = true;
      continue;
    }

    if (word != "site") {
      result.error = err_at(lineno, "unknown directive '" + word +
                                        "' (expected 'seed' or 'site')");
      return result;
    }

    FaultRule rule;
    std::string site_name;
    std::string effect_name;
    if (!(ls >> site_name >> effect_name)) {
      result.error = err_at(lineno, "site wants: site <site> <effect> [k=v ...]");
      return result;
    }
    const auto site = site_from_string(site_name);
    if (!site) {
      result.error = err_at(lineno, "unknown site '" + site_name + "'");
      return result;
    }
    const auto effect = effect_from_string(effect_name);
    if (!effect) {
      result.error = err_at(lineno, "unknown effect '" + effect_name +
                                        "' (error|latency|cancel|partial)");
      return result;
    }
    rule.site = *site;
    rule.effect = *effect;

    std::uint64_t latency_ms = 0;
    while (ls >> word) {
      const auto eq = word.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == word.size()) {
        result.error = err_at(lineno, "malformed option '" + word +
                                          "' (expected key=value)");
        return result;
      }
      const std::string_view key(word.data(), eq);
      const std::string_view value(word.data() + eq + 1, word.size() - eq - 1);
      bool ok = false;
      if (key == "p") {
        ok = parse_double(value, rule.probability) && rule.probability > 0.0 &&
             rule.probability <= 1.0;
      } else if (key == "every") {
        ok = parse_u64(value, rule.every_nth) && rule.every_nth > 0;
      } else if (key == "once") {
        ok = parse_u64(value, rule.one_shot_at) && rule.one_shot_at > 0;
      } else if (key == "max") {
        ok = parse_u64(value, rule.max_fires) && rule.max_fires > 0;
      } else if (key == "ms") {
        ok = parse_u64(value, latency_ms) && latency_ms > 0;
      } else {
        result.error = err_at(lineno, "unknown option '" + std::string(key) +
                                          "' (p|every|once|max|ms)");
        return result;
      }
      if (!ok) {
        result.error = err_at(lineno, "bad value for '" + std::string(key) +
                                          "': '" + std::string(value) + "'");
        return result;
      }
    }

    const int triggers = (rule.probability > 0.0 ? 1 : 0) +
                         (rule.every_nth > 0 ? 1 : 0) +
                         (rule.one_shot_at > 0 ? 1 : 0);
    if (triggers != 1) {
      result.error = err_at(
          lineno, "rule wants exactly one trigger among p=/every=/once=");
      return result;
    }
    if (rule.effect == Effect::kLatency && latency_ms == 0) {
      result.error = err_at(lineno, "latency effect wants ms=<millis>");
      return result;
    }
    if (rule.effect != Effect::kLatency && latency_ms != 0) {
      result.error = err_at(lineno, "ms= only applies to the latency effect");
      return result;
    }
    rule.latency = std::chrono::milliseconds(latency_ms);
    result.plan.rules.push_back(rule);
  }
  if (!result.plan.rules.empty() && !saw_seed) {
    result.error = err_at(lineno, "plan wants a 'seed <n>' directive");
    return result;
  }
  return result;
}

PlanParseResult parse_fault_plan_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_fault_plan(in);
}

PlanParseResult load_fault_plan_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    PlanParseResult result;
    result.error = err_at(0, "cannot open fault plan '" + path + "'");
    return result;
  }
  return parse_fault_plan(in);
}

void FaultInjector::attach_metrics(obs::MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    injected_counters_.fill(nullptr);
    return;
  }
  for (int i = 0; i < kNumSites; ++i) {
    const std::string labels =
        std::string("site=\"") + kSiteNames[static_cast<std::size_t>(i)] + "\"";
    injected_counters_[static_cast<std::size_t>(i)] =
        &registry->counter("asamap_faults_injected_total", labels);
  }
}

void FaultInjector::load(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  for (auto& per_site : rules_by_site_) per_site.clear();
  for (std::size_t ri = 0; ri < plan_.rules.size(); ++ri) {
    rules_by_site_[static_cast<std::size_t>(site_index(plan_.rules[ri].site))]
        .push_back(ri);
  }
  hits_.fill(0);
  injected_.fill(0);
  fires_.assign(plan_.rules.size(), 0);
  armed_.store(!plan_.rules.empty(), std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan{};
  for (auto& per_site : rules_by_site_) per_site.clear();
  hits_.fill(0);
  injected_.fill(0);
  fires_.clear();
}

FaultDecision FaultInjector::decide(Site site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return {};
  const auto si = static_cast<std::size_t>(site_index(site));
  const std::uint64_t hit = ++hits_[si];
  for (std::size_t ri : rules_by_site_[si]) {
    const FaultRule& rule = plan_.rules[ri];
    if (rule.max_fires != 0 && fires_[ri] >= rule.max_fires) continue;
    bool fire = false;
    if (rule.one_shot_at != 0) {
      fire = (hit == rule.one_shot_at);
    } else if (rule.every_nth != 0) {
      fire = (hit % rule.every_nth == 0);
    } else if (rule.probability > 0.0) {
      fire = keyed_unit(plan_.seed, site_index(site), ri, hit) <
             rule.probability;
    }
    if (!fire) continue;
    ++fires_[ri];
    ++injected_[si];
    if (injected_counters_[si] != nullptr) injected_counters_[si]->inc();
    // Annotate the active request's trace: in a dump, the injected fault
    // shows up as an instant event at the site, inside whichever span the
    // caller was in (ingest, dispatch, verb, ...).
    obs::FlightRecorder::instance().instant(kSiteNames[si],
                                            obs::TraceCat::kFault);
    return FaultDecision{rule.effect, rule.latency};
  }
  return {};
}

std::uint64_t FaultInjector::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_.seed;
}

std::size_t FaultInjector::rule_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_.rules.size();
}

std::uint64_t FaultInjector::hits(Site site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_[static_cast<std::size_t>(site_index(site))];
}

std::uint64_t FaultInjector::injected(Site site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_[static_cast<std::size_t>(site_index(site))];
}

std::uint64_t FaultInjector::injected_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (std::uint64_t v : injected_) total += v;
  return total;
}

}  // namespace asamap::fault
