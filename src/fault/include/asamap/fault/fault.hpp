#pragma once

/// \file fault.hpp
/// asamap::fault — deterministic fault injection for the serving stack.
///
/// The serving layer (asamap::serve) is exercised in CI and benches under
/// *injected* failures: a `FaultPlan` names injection sites inside the stack
/// and, per site, rules for when to fire (probability, every-Nth hit, or a
/// one-shot at hit N) and what to inject (an error return, a latency spike,
/// a cancellation, or a simulated partial write).  Decisions are a pure
/// function of (plan seed, site, rule index, per-site hit counter) through a
/// SplitMix64-keyed hash, so two runs of the same workload under the same
/// plan inject the *identical* fault sequence — the deterministic-replay
/// contract that makes chaos tests debuggable (DESIGN.md §4e).
///
/// Injection is compile-time gated: unless the build sets
/// `-DASAMAP_FAULT_INJECTION=ON` (which defines the ASAMAP_FAULT_INJECTION
/// macro), `fault::check()` is a constexpr-folded no-op and every site in
/// the serve hot paths costs zero instructions.  Plan parsing, the injector
/// bookkeeping, and the retry/breaker machinery in retry.hpp are ordinary
/// code in both build flavors — only the *sites* disappear.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <istream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace asamap::obs {
class MetricRegistry;
class Counter;
}  // namespace asamap::obs

namespace asamap::fault {

#if defined(ASAMAP_FAULT_INJECTION) && ASAMAP_FAULT_INJECTION
inline constexpr bool kFaultInjectionEnabled = true;
#else
inline constexpr bool kFaultInjectionEnabled = false;
#endif

/// Where in the serving stack a fault can be injected.
enum class Site : int {
  kIngestParse = 0,     ///< GraphRegistry::put_text, before parsing
  kSchedulerDispatch,   ///< JobScheduler worker, after pop / before run
  kClusterSweep,        ///< inside the re-cluster job body
  kRegistryEvict,       ///< GraphRegistry LRU eviction loop
  kSessionIo,           ///< ServeSession::handle_line entry
};
inline constexpr int kNumSites = 5;

[[nodiscard]] const char* to_string(Site site) noexcept;
[[nodiscard]] std::optional<Site> site_from_string(std::string_view name) noexcept;

/// What an armed rule injects when it fires.
enum class Effect : int {
  kNone = 0,
  kError,         ///< the site reports failure (retryable where wired)
  kLatency,       ///< the site sleeps for the rule's `ms=` duration
  kCancel,        ///< the site behaves as if the caller cancelled
  kPartialWrite,  ///< the site does its work but drops the publish/commit
};

[[nodiscard]] const char* to_string(Effect effect) noexcept;
[[nodiscard]] std::optional<Effect> effect_from_string(std::string_view name) noexcept;

/// One line of a plan: a site, an effect, and exactly one trigger.
struct FaultRule {
  Site site = Site::kSessionIo;
  Effect effect = Effect::kNone;
  double probability = 0.0;              ///< `p=` — fire with this chance per hit
  std::uint64_t every_nth = 0;           ///< `every=` — fire on hits N, 2N, ...
  std::uint64_t one_shot_at = 0;         ///< `once=` — fire exactly on hit N (1-based)
  std::uint64_t max_fires = 0;           ///< `max=` — stop after this many fires (0 = no cap)
  std::chrono::milliseconds latency{0};  ///< `ms=` — spike size for kLatency
};

/// A parsed plan: the seed that keys every probabilistic decision plus the
/// rule list in file order (first matching rule per hit wins).
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
};

/// Plan text format, one directive per line (`#` comments, blank lines ok):
///
///   seed 20230807
///   site ingest.parse error p=0.3
///   site scheduler.dispatch error every=7
///   site cluster.sweep latency p=0.1 ms=5
///   site session.io cancel once=3
///   site registry.evict error p=0.5 max=10
struct PlanParseError {
  int line = 0;  ///< 1-based; 0 when the file could not be opened
  std::string message;
};

struct PlanParseResult {
  FaultPlan plan;
  std::optional<PlanParseError> error;
  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

[[nodiscard]] PlanParseResult parse_fault_plan(std::istream& in);
[[nodiscard]] PlanParseResult parse_fault_plan_text(std::string_view text);
[[nodiscard]] PlanParseResult load_fault_plan_file(const std::string& path);

/// What a site should do right now.  kNone means proceed normally.
struct FaultDecision {
  Effect effect = Effect::kNone;
  std::chrono::milliseconds latency{0};
};

/// The runtime half: owns the loaded plan, the per-site hit counters, and
/// the deterministic decision function.  decide() takes a mutex — only the
/// chaos path pays it; production builds compile the call sites out and
/// un-armed injectors short-circuit on one relaxed atomic load.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Pre-registers asamap_faults_injected_total{site=...} for every site so
  /// the scrape schema is stable whether or not faults ever fire.
  void attach_metrics(obs::MetricRegistry* registry);

  /// Install a plan (resetting all counters) and arm if it has rules.
  void load(FaultPlan plan);

  /// Disarm and drop the plan; counters reset.
  void clear();

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Record a hit at `site` and evaluate its rules in plan order; the first
  /// rule that fires wins.  Deterministic: the decision depends only on the
  /// plan seed, the site, the rule index, and this site's hit ordinal.
  [[nodiscard]] FaultDecision decide(Site site);

  [[nodiscard]] std::uint64_t seed() const;
  [[nodiscard]] std::size_t rule_count() const;
  [[nodiscard]] std::uint64_t hits(Site site) const;
  [[nodiscard]] std::uint64_t injected(Site site) const;
  [[nodiscard]] std::uint64_t injected_total() const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  FaultPlan plan_;
  std::array<std::vector<std::size_t>, kNumSites> rules_by_site_{};
  std::array<std::uint64_t, kNumSites> hits_{};
  std::array<std::uint64_t, kNumSites> injected_{};
  std::vector<std::uint64_t> fires_;  ///< per-rule fire counts (max= caps)
  std::array<obs::Counter*, kNumSites> injected_counters_{};
};

/// The one call sites make.  When the build is configured without
/// ASAMAP_FAULT_INJECTION this folds to `return {};` — zero instructions on
/// the hot path; when configured with it, a null or un-armed injector costs
/// one branch (+ one relaxed load).
[[nodiscard]] inline FaultDecision check(FaultInjector* injector, Site site) {
  if constexpr (!kFaultInjectionEnabled) {
    (void)injector;
    (void)site;
    return {};
  } else {
    if (injector == nullptr || !injector->armed()) return {};
    return injector->decide(site);
  }
}

}  // namespace asamap::fault
