#pragma once

/// \file retry.hpp
/// asamap::fault — retry policies and the per-session circuit breaker.
///
/// RetryPolicy bounds how hard a component fights a transient failure:
/// total attempts, plus the base/cap of the decorrelated-jitter backoff
/// schedule (support::DecorrelatedBackoff).  Callers are budget-aware —
/// the scheduler checks a job's deadline before sleeping and fails the job
/// as kExpired when the next backoff would not fit.
///
/// CircuitBreaker implements the classic three-state machine:
///
///   closed ──K consecutive failures──▶ open ──timer──▶ half-open
///     ▲                                  ▲                 │
///     └──────── probe succeeds ──────────┴─ probe fails ───┘
///
/// While open, allow() answers false so callers can degrade immediately
/// (serve a stale snapshot) instead of queueing doomed work.  After
/// `open_duration` the breaker admits a single probe (half-open); the
/// probe's outcome either closes the breaker or re-opens it for another
/// full timer period.  All transitions report to an optional listener so
/// the session can mirror state into asamap_breaker_state and shed load.

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

namespace asamap::fault {

/// Bounds for one retry loop.  max_attempts counts the first try: 1 means
/// "no retries", 3 means "one try plus up to two retries".
struct RetryPolicy {
  int max_attempts = 3;
  std::chrono::milliseconds initial_backoff{2};
  std::chrono::milliseconds max_backoff{50};
};

struct BreakerConfig {
  int failure_threshold = 5;  ///< consecutive failures that trip the breaker
  std::chrono::milliseconds open_duration{1000};  ///< open -> half-open timer
  int half_open_successes = 1;  ///< probe successes needed to close again
};

class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
  using Clock = std::chrono::steady_clock;
  /// Called on every state change, while the breaker lock is held — keep it
  /// cheap and never call back into the breaker.
  using Listener = std::function<void(State)>;

  explicit CircuitBreaker(const BreakerConfig& config = {})
      : config_(config) {}

  void set_listener(Listener listener) {
    std::lock_guard<std::mutex> lock(mu_);
    listener_ = std::move(listener);
  }

  /// May this request proceed?  Closed: always.  Open: no, until the timer
  /// promotes to half-open.  Half-open: yes for one in-flight probe at a
  /// time; further callers are refused until the probe resolves via
  /// record_success()/record_failure().
  [[nodiscard]] bool allow() {
    std::lock_guard<std::mutex> lock(mu_);
    maybe_half_open_locked();
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        return false;
      case State::kHalfOpen:
        if (probe_in_flight_) return false;
        probe_in_flight_ = true;
        return true;
    }
    return true;
  }

  void record_success() {
    std::lock_guard<std::mutex> lock(mu_);
    maybe_half_open_locked();
    if (state_ == State::kHalfOpen) {
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.half_open_successes) {
        transition_locked(State::kClosed);
      }
      return;
    }
    consecutive_failures_ = 0;
  }

  void record_failure() {
    std::lock_guard<std::mutex> lock(mu_);
    maybe_half_open_locked();
    if (state_ == State::kHalfOpen) {
      probe_in_flight_ = false;
      transition_locked(State::kOpen);
      return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= config_.failure_threshold) {
      transition_locked(State::kOpen);
    }
  }

  /// Current state; reflects a pending open -> half-open timer promotion.
  [[nodiscard]] State state() {
    std::lock_guard<std::mutex> lock(mu_);
    maybe_half_open_locked();
    return state_;
  }

  [[nodiscard]] std::uint64_t transitions_to(State to) {
    std::lock_guard<std::mutex> lock(mu_);
    return transition_counts_[static_cast<std::size_t>(to)];
  }

 private:
  void maybe_half_open_locked() {
    if (state_ == State::kOpen && Clock::now() >= reopen_at_) {
      transition_locked(State::kHalfOpen);
    }
  }

  void transition_locked(State to) {
    state_ = to;
    ++transition_counts_[static_cast<std::size_t>(to)];
    consecutive_failures_ = 0;
    half_open_successes_ = 0;
    probe_in_flight_ = false;
    if (to == State::kOpen) reopen_at_ = Clock::now() + config_.open_duration;
    if (listener_) listener_(to);
  }

  BreakerConfig config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point reopen_at_{};
  std::uint64_t transition_counts_[3] = {0, 0, 0};
  Listener listener_;
};

[[nodiscard]] constexpr const char* to_string(CircuitBreaker::State s) noexcept {
  switch (s) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

}  // namespace asamap::fault
