#include "asamap/net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "asamap/net/frame.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::net {
namespace {

// epoll_event.data.u64 tags.  Connection ids start high so they can never
// collide with the fixed tags or a worker index.
constexpr std::uint64_t kTagStop = 0;
constexpr std::uint64_t kTagListener = 1;
constexpr std::uint64_t kTagWorkerBase = 2;
constexpr std::uint64_t kTagConnBase = std::uint64_t{1} << 16;

constexpr std::size_t kReadChunk = 64 * 1024;

/// The reject-with-reason backpressure answer (bounded_queue semantics:
/// full means refuse now, not queue forever).
constexpr std::string_view kRejectMsg =
    "ERR rejected worker ring full; retry later";

void eventfd_signal(int fd) {
  const std::uint64_t one = 1;
  ssize_t r;
  do {
    r = ::write(fd, &one, sizeof(one));
  } while (r < 0 && errno == EINTR);
}

void eventfd_drain(int fd) {
  std::uint64_t value = 0;
  ssize_t r;
  do {
    r = ::read(fd, &value, sizeof(value));
  } while (r < 0 && errno == EINTR);
}

serve::ServeStatus errno_status(const char* what) {
  return serve::ServeStatus::error(
      serve::ServeCode::kUnavailable,
      std::string(what) + ": " + std::strerror(errno));
}

/// True when the request line's first token is QUIT — on the network plane
/// that means "close THIS connection" (the server keeps serving others).
bool is_quit(std::string_view payload) {
  std::size_t i = 0;
  while (i < payload.size() && (payload[i] == ' ' || payload[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < payload.size() && payload[j] != ' ' && payload[j] != '\t' &&
         payload[j] != '\r') {
    ++j;
  }
  return payload.substr(i, j - i) == "QUIT";
}

}  // namespace

NetServer::NetServer(serve::RequestHandler& handler, const NetConfig& config)
    : handler_(handler), config_(config) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.max_batch < 1) config_.max_batch = 1;
  obs::MetricRegistry& m = handler_.metrics();
  connections_total_ = &m.counter("asamap_net_connections_total");
  connections_active_ = &m.gauge("asamap_net_connections_active");
  requests_text_ = &m.counter("asamap_net_requests_total", "proto=\"text\"");
  requests_binary_ =
      &m.counter("asamap_net_requests_total", "proto=\"binary\"");
  batches_total_ = &m.counter("asamap_net_batches_total");
  rejected_total_ = &m.counter("asamap_net_rejected_total");
  frame_errors_total_ = &m.counter("asamap_net_frame_errors_total");
  bytes_read_ = &m.counter("asamap_net_bytes_total", "dir=\"read\"");
  bytes_written_ = &m.counter("asamap_net_bytes_total", "dir=\"written\"");
  batch_seconds_ = &m.histogram("asamap_net_batch_seconds");
}

NetServer::~NetServer() { stop(); }

serve::ServeStatus NetServer::start() {
  if (started_) {
    return serve::ServeStatus::error_static(serve::ServeCode::kUnavailable,
                                            "server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return serve::ServeStatus::error(
        serve::ServeCode::kInvalidArgument,
        "bad bind address '" + config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, config_.backlog) < 0) {
    const serve::ServeStatus st = errno_status("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  stop_event_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || stop_event_ < 0) {
    const serve::ServeStatus st = errno_status("epoll/eventfd");
    stop();
    return st;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagStop;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_event_, &ev);
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kTagListener;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);

  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>(config_.ring_capacity);
    // The request eventfd is a blocking read on the worker side; the reply
    // eventfd sits in epoll, so non-blocking.
    w->request_event = ::eventfd(0, EFD_CLOEXEC);
    w->reply_event = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (w->request_event < 0 || w->reply_event < 0) {
      const serve::ServeStatus st = errno_status("eventfd");
      if (w->request_event >= 0) ::close(w->request_event);
      if (w->reply_event >= 0) ::close(w->reply_event);
      stop();
      return st;
    }
    ev.events = EPOLLIN;
    ev.data.u64 = kTagWorkerBase + static_cast<std::uint64_t>(i);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, w->reply_event, &ev);
    workers_.push_back(std::move(w));
  }

  started_ = true;
  stopped_.store(false, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  for (int i = 0; i < config_.workers; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(i); });
  }
  socket_thread_ = std::thread([this] { socket_loop(); });
  return serve::ServeStatus::success();
}

void NetServer::stop() {
  if (!started_) {
    // start() may call stop() for cleanup before threads exist.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (stop_event_ >= 0) ::close(stop_event_);
    listen_fd_ = epoll_fd_ = stop_event_ = -1;
    workers_.clear();
    return;
  }
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  eventfd_signal(stop_event_);
  if (socket_thread_.joinable()) socket_thread_.join();
  for (auto& w : workers_) {
    eventfd_signal(w->request_event);
    if (w->thread.joinable()) w->thread.join();
    ::close(w->request_event);
    ::close(w->reply_event);
  }
  workers_.clear();
  conns_.clear();
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(stop_event_);
  listen_fd_ = epoll_fd_ = stop_event_ = -1;
  started_ = false;
}

// --- worker side -----------------------------------------------------------

void NetServer::worker_loop(int index) {
  Worker& w = *workers_[static_cast<std::size_t>(index)];
  std::vector<std::string_view> lines;
  std::vector<std::string> responses;
  for (;;) {
    Batch batch;
    if (!w.requests.try_pop(batch)) {
      if (stopping_.load(std::memory_order_acquire)) return;
      eventfd_drain(w.request_event);  // blocks until signalled
      continue;
    }

    support::WallTimer wall;
    Reply reply;
    reply.conn_id = batch.conn_id;
    lines.clear();
    for (const Item& it : batch.items) lines.push_back(batch.payload(it));
    {
      // The batch's trace root: every verb span (and everything a CLUSTER
      // fans out to) parents under it, keyed by the connection id.
      obs::TraceSpan span("net.batch", obs::TraceCat::kSession,
                          obs::FlightRecorder::instance(), batch.conn_id);
      handler_.handle_batch(lines, responses);
    }
    for (std::size_t i = 0; i < responses.size(); ++i) {
      append_message(responses[i], batch.items[i].binary, reply.data);
      if (is_quit(batch.payload(batch.items[i]))) reply.close = true;
    }
    batches_total_->inc();
    batch_seconds_->record_seconds(wall.seconds());

    // The reply ring can only back up while the socket thread is busy; it
    // always drains, so a bounded spin-yield is safe (and unlike blocking
    // primitives it costs the fast path nothing).
    while (!w.replies.try_push(std::move(reply))) {
      if (stopping_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
    eventfd_signal(w.reply_event);
  }
}

// --- socket side -----------------------------------------------------------

void NetServer::socket_loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool running = true;
  while (running) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kTagStop) {
        eventfd_drain(stop_event_);
        running = false;
      } else if (tag == kTagListener) {
        accept_ready();
      } else if (tag < kTagConnBase) {
        const int widx = static_cast<int>(tag - kTagWorkerBase);
        eventfd_drain(workers_[static_cast<std::size_t>(widx)]->reply_event);
        drain_replies(widx);
      } else {
        // A connection may have been destroyed by an earlier event in this
        // same wakeup; the id lookup makes stale events harmless.
        Conn* conn = find_conn(tag);
        if (conn == nullptr) continue;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          destroy(*conn);
          continue;
        }
        if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
          conn_readable(*conn);
        }
        conn = find_conn(tag);  // conn_readable may destroy
        if (conn != nullptr && (events[i].events & EPOLLOUT) != 0) {
          conn_writable(*conn);
        }
      }
    }
  }
  // Shutdown: every connection is dropped; workers are joined by stop()
  // after this thread exits, so no replies race the teardown.
  for (auto& [id, conn] : conns_) {
    ::close(conn->fd);
  }
  conns_.clear();
  connections_active_->set(0.0);
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = kTagConnBase + next_conn_id_++;
    conn->worker = static_cast<int>(conn->id %
                                    static_cast<std::uint64_t>(
                                        config_.workers));
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_total_->inc();
    Conn& ref = *conn;
    conns_.emplace(conn->id, std::move(conn));
    connections_active_->set(static_cast<double>(conns_.size()));
    // Data may already be waiting (edge-triggered: we must not rely on a
    // future edge for bytes that arrived before the ADD).
    conn_readable(ref);
  }
}

void NetServer::conn_readable(Conn& conn) {
  bool eof = false;
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t r = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (r > 0) {
      conn.rbuf.append(chunk, static_cast<std::size_t>(r));
      bytes_read_->inc(static_cast<std::uint64_t>(r));
      continue;  // edge-triggered: read until EAGAIN
    }
    if (r == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    destroy(conn);
    return;
  }

  if (conn.closing) {
    conn.rbuf.clear();  // a closing connection reads only to detect EOF
  }

  // Decode everything complete, splitting into max_batch-sized handoffs.
  std::size_t off = 0;
  Batch batch;
  batch.conn_id = conn.id;
  while (!conn.closing) {
    const Decoded d =
        decode_one(std::string_view(conn.rbuf).substr(off));
    if (d.status == DecodeStatus::kNeedMore) break;
    if (d.status == DecodeStatus::kError) {
      frame_errors_total_->inc();
      std::string msg = "ERR invalid_argument ";
      msg += d.error;
      append_message(msg, false, conn.wbuf);
      conn.closing = true;  // the stream cannot be re-synchronised
      break;
    }
    (d.status == DecodeStatus::kBinary ? requests_binary_ : requests_text_)
        ->inc();
    batch.items.push_back({static_cast<std::uint32_t>(batch.arena.size()),
                           static_cast<std::uint32_t>(d.payload.size()),
                           d.status == DecodeStatus::kBinary});
    batch.arena.append(d.payload);
    off += d.consumed;
    if (batch.items.size() >= config_.max_batch) {
      dispatch(conn, std::move(batch));
      batch = Batch{};
      batch.conn_id = conn.id;
    }
  }
  conn.rbuf.erase(0, off);
  if (!batch.items.empty()) dispatch(conn, std::move(batch));

  if (eof) {
    // Half-close support: a client may shutdown(SHUT_WR) after a pipelined
    // burst and still read its answers — finish replying, then close.
    conn.closing = true;
    conn.rbuf.clear();
  }
  flush(conn);
}

void NetServer::dispatch(Conn& conn, Batch&& batch) {
  Worker& w = *workers_[static_cast<std::size_t>(conn.worker)];
  const std::size_t n = batch.items.size();
  if (!w.requests.try_push(std::move(batch))) {
    // Ring full: refuse now with a reason (batch is untouched on a failed
    // push), in the request's own encoding.
    rejected_total_->inc(n);
    for (const Item& it : batch.items) {
      append_message(kRejectMsg, it.binary, conn.wbuf);
    }
    return;
  }
  ++conn.inflight;
  eventfd_signal(w.request_event);
}

void NetServer::drain_replies(int index) {
  Worker& w = *workers_[static_cast<std::size_t>(index)];
  Reply reply;
  while (w.replies.try_pop(reply)) {
    Conn* conn = find_conn(reply.conn_id);
    if (conn == nullptr) continue;  // connection died before its answer
    --conn->inflight;
    conn->wbuf.append(reply.data);
    if (reply.close) conn->closing = true;
    flush(*conn);
  }
}

void NetServer::conn_writable(Conn& conn) { flush(conn); }

void NetServer::flush(Conn& conn) {
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t r = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (r > 0) {
      conn.woff += static_cast<std::size_t>(r);
      bytes_written_->inc(static_cast<std::uint64_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
        ev.data.u64 = conn.id;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
      }
      return;
    }
    if (r < 0 && errno == EINTR) continue;
    destroy(conn);  // EPIPE/ECONNRESET: the peer is gone
    return;
  }
  // Drained.
  conn.wbuf.clear();
  conn.woff = 0;
  if (conn.want_write) {
    conn.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }
  if (conn.closing && conn.inflight == 0) destroy(conn);
}

void NetServer::destroy(Conn& conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conns_.erase(conn.id);  // invalidates conn
  connections_active_->set(static_cast<double>(conns_.size()));
}

NetServer::Conn* NetServer::find_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

}  // namespace asamap::net
