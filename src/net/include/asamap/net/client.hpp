#pragma once

/// \file client.hpp
/// asamap::net::Client — a blocking, single-connection protocol client for
/// the frame codec (frame.hpp).  The router holds one per shard endpoint
/// (pooled, one in-flight request at a time per connection); tests and
/// tools use it as the canonical "talk to an asamap endpoint" helper.
///
/// Requests go out binary-framed (length-prefixed, so payloads may embed
/// anything); the response is decoded with the same autodetecting codec
/// the server uses, so either encoding is accepted.  All socket waits are
/// bounded by SO_RCVTIMEO/SO_SNDTIMEO — a dead peer surfaces as
/// kUnavailable within `timeout_ms`, never a hang.  Not thread-safe:
/// callers serialize access (the router guards each shard connection with
/// a mutex).

#include <cstdint>
#include <string>
#include <string_view>

#include "asamap/serve/status.hpp"

namespace asamap::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Per-syscall send/receive timeout.  One request() may take a small
  /// multiple of this when a response trickles in across several reads.
  int timeout_ms = 5000;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (TCP_NODELAY, timeouts armed).  Idempotent: an existing
  /// connection is closed first.  kUnavailable with errno text on failure.
  serve::ServeStatus connect(const ClientConfig& config);

  /// Sends one request line and blocks for exactly one response message.
  /// On any transport error the connection is closed (a later request()
  /// via the router reconnects) and kUnavailable is returned; `response`
  /// is only written on success.
  serve::ServeStatus request(std::string_view line, std::string& response);

  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }

 private:
  int fd_ = -1;
  std::string rbuf_;  ///< bytes received past the last decoded message
  std::string last_error_;
};

}  // namespace asamap::net
