#pragma once

/// \file server.hpp
/// asamap::net — the epoll-multiplexed TCP request plane over ServeSession.
///
/// Threading model (DESIGN.md §4g):
///
///   socket thread            worker 0..N-1
///   ─────────────            ─────────────
///   epoll: listener (ET),    blocks on an eventfd; drains its request
///   conn fds (ET), one       ring; runs each batch through
///   response-eventfd per     ServeSession::handle_batch under a
///   worker, one stop fd      "net.batch" trace root; pushes the encoded
///                            reply + rings the response eventfd
///
/// One socket thread owns every fd and every connection's buffers — no
/// locks on the connection state, ever.  Socket→worker and worker→socket
/// handoff are bounded lock-free SPSC rings (spsc_ring.hpp), one pair per
/// worker; a connection is pinned to worker `conn_id % workers`, which
/// together with ring FIFO order preserves per-connection response order
/// without any sequencing protocol.
///
/// Backpressure is reject-with-reason, the support::BoundedQueue
/// discipline: when a worker's request ring is full the socket thread
/// answers every request of the batch with `ERR rejected ...` immediately
/// instead of queuing unboundedly (asamap_net_rejected_total counts them).
///
/// Batching is the throughput lever: everything readable from one
/// connection in one epoll wakeup is decoded into one batch (capped at
/// `max_batch`), handed off as one ring slot + one eventfd ring, and a
/// contiguous run of read verbs inside it is answered under a single
/// snapshot acquire (see ServeSession::handle_batch).  Framing is
/// autodetected per message (frame.hpp): binary requests get binary-framed
/// responses, text requests newline-terminated ones — `nc` still works.
///
/// QUIT closes that connection (never the server); stop() / the driver's
/// SIGTERM path shuts the listener, drains, and joins.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "asamap/net/spsc_ring.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/serve/handler.hpp"
#include "asamap/serve/status.hpp"

namespace asamap::net {

struct NetConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// IPv4 address to bind.  Loopback by default — exposing the endpoint is
  /// an explicit operator decision (the protocol has no auth).
  std::string bind_address = "127.0.0.1";
  /// Protocol worker threads (each owns one request/response ring pair).
  /// The container benches run everything on one core, so one worker is
  /// the default; scale with cores.
  int workers = 1;
  /// Slots per SPSC ring, in *batches* (rounded up to a power of two).
  /// Full ring = reject-with-reason, so this bounds queued work per worker
  /// at ring_capacity * max_batch requests.
  std::size_t ring_capacity = 1024;
  /// Max requests decoded into one socket→worker batch (and thus the max
  /// run length sharing one snapshot acquire).
  std::size_t max_batch = 64;
  /// listen(2) backlog.
  int backlog = 128;
};

class NetServer {
 public:
  /// Registers the asamap_net_* metrics on `handler.metrics()`.  The
  /// handler (a ServeSession, dist::ShardSession, or dist::Router) must
  /// outlive the server.
  NetServer(serve::RequestHandler& handler, const NetConfig& config = {});
  ~NetServer();  ///< stop()s if still running

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens and spawns the socket thread and workers.  On failure
  /// (port in use, bad address) returns kUnavailable with the errno text
  /// and owns no resources.
  serve::ServeStatus start();

  /// Closes the listener, fails over in-flight work (drains rings), joins
  /// every thread, closes every connection.  Idempotent.
  void stop();

  /// The bound port (resolves port 0), valid after a successful start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] bool running() const noexcept {
    return started_ && !stopped_.load(std::memory_order_acquire);
  }

 private:
  /// One decoded request inside a batch: a span of the batch's payload
  /// arena plus the encoding its response must use.
  struct Item {
    std::uint32_t offset = 0;  ///< into Batch::arena
    std::uint32_t length = 0;
    bool binary = false;  ///< respond in the encoding the request used
  };
  /// One ring slot: everything one epoll wakeup decoded from one
  /// connection (capped at max_batch).  Payload bytes live in one arena
  /// string — one allocation per batch instead of one per request, and no
  /// cross-thread frees of per-request strings on the worker.
  struct Batch {
    std::uint64_t conn_id = 0;
    std::string arena;        ///< concatenated payloads, no terminators
    std::vector<Item> items;
    [[nodiscard]] std::string_view payload(const Item& it) const {
      return std::string_view(arena).substr(it.offset, it.length);
    }
  };
  /// The worker's answer: all responses of the batch, already encoded.
  struct Reply {
    std::uint64_t conn_id = 0;
    std::string data;
    bool close = false;  ///< the batch contained QUIT
  };

  struct Worker {
    explicit Worker(std::size_t ring_slots)
        : requests(ring_slots), replies(ring_slots) {}
    SpscRing<Batch> requests;  ///< socket thread -> worker
    SpscRing<Reply> replies;   ///< worker -> socket thread
    int request_event = -1;    ///< worker blocks here when idle
    int reply_event = -1;      ///< registered in epoll
    std::thread thread;
  };

  /// Per-connection state machine, owned exclusively by the socket thread.
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    int worker = 0;
    std::string rbuf;        ///< unconsumed inbound bytes
    std::string wbuf;        ///< pending outbound bytes
    std::size_t woff = 0;    ///< wbuf bytes already written
    std::uint32_t inflight = 0;  ///< batches at the worker, not yet replied
    bool want_write = false;     ///< EPOLLOUT currently armed
    bool closing = false;  ///< no more reads; close once drained + replied
  };

  void socket_loop();
  void worker_loop(int index);
  void accept_ready();
  void conn_readable(Conn& conn);
  void conn_writable(Conn& conn);
  /// Hands a batch to the connection's worker, or rejects every request in
  /// it with reason when the ring is full.
  void dispatch(Conn& conn, Batch&& batch);
  /// Appends replies sitting in worker `index`'s response ring to their
  /// connections' write buffers and flushes.
  void drain_replies(int index);
  /// Writes as much of conn.wbuf as the socket accepts; manages EPOLLOUT
  /// interest; destroys the connection when it is closing and done.
  void flush(Conn& conn);
  void destroy(Conn& conn);
  [[nodiscard]] Conn* find_conn(std::uint64_t id);

  serve::RequestHandler& handler_;
  NetConfig config_;

  // asamap_net_* handles, pre-registered at construction (stable scrape
  // schema whether or not a connection ever arrives).
  obs::Counter* connections_total_ = nullptr;
  obs::Gauge* connections_active_ = nullptr;
  obs::Counter* requests_text_ = nullptr;
  obs::Counter* requests_binary_ = nullptr;
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* rejected_total_ = nullptr;
  obs::Counter* frame_errors_total_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Histogram* batch_seconds_ = nullptr;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int stop_event_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread socket_thread_;

  // Socket-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 0;
};

}  // namespace asamap::net
