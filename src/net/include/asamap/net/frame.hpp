#pragma once

/// \file frame.hpp
/// Wire framing of the network request plane (asamap::net).
///
/// Two message encodings coexist on every connection, autodetected per
/// message by the first byte:
///
///   binary   magic (0xA5) | u32 payload length (little-endian) | payload
///   text     any byte != 0xA5 ... '\n'   (trailing '\r' tolerated)
///
/// The payload of a binary frame and the body of a text line are the SAME
/// protocol request/response strings ServeSession speaks — framing decides
/// where a message *ends*, not what it means.  That is what lets a load
/// balancer pipeline thousands of length-prefixed requests per syscall
/// while `nc`/`telnet` debugging keeps working on the same port: a binary
/// request is answered with a binary frame, a text request with a
/// newline-terminated line.
///
/// 0xA5 never begins a text request: protocol verbs are uppercase ASCII,
/// and the driver-level conveniences (blank lines, `#` comments) are ASCII
/// too, so the magic byte is an unambiguous discriminator.
///
/// The decoder is an incremental pull parser over whatever prefix of the
/// stream has arrived: it either consumes exactly one message, asks for
/// more bytes, or reports an unrecoverable framing error (oversized or
/// malformed length header) — the caller is expected to answer with an
/// error and close, because a stream that lied about a length can never be
/// re-synchronised.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace asamap::net {

/// First byte of every binary frame.
inline constexpr unsigned char kFrameMagic = 0xA5;

/// magic + u32 little-endian payload length.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Hard cap on one message, both directions and both encodings.  Requests
/// are one protocol line (tiny); responses are bounded by METRICS / TRACE
/// DUMP payloads, which sit in the tens-of-KB range — 16 MiB is generous
/// headroom, while still rejecting a garbage length header (e.g. text
/// accidentally parsed as a frame) before it makes the server buffer 4 GiB.
inline constexpr std::size_t kMaxMessageBytes = std::size_t{16} << 20;

enum class DecodeStatus : std::uint8_t {
  kNeedMore,  ///< the buffer holds only a prefix of the next message
  kText,      ///< one newline-terminated text request decoded
  kBinary,    ///< one length-prefixed binary frame decoded
  kError,     ///< unrecoverable framing error; close the connection
};

/// Result of decoding one message off the front of a receive buffer.
struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  /// The message body (no newline, no header), viewing into the caller's
  /// buffer — valid only until the buffer is mutated.  For kText a single
  /// trailing '\r' has already been stripped (CRLF clients).
  std::string_view payload{};
  /// Bytes of the buffer this message consumed (0 for kNeedMore/kError);
  /// the caller erases this prefix before the next decode.
  std::size_t consumed = 0;
  /// Static reason for kError.
  const char* error = "";
};

/// Decodes one message from the front of `buffer`.  Never throws; never
/// reads past `buffer`; consumes nothing unless a whole message is present.
[[nodiscard]] inline Decoded decode_one(std::string_view buffer) {
  Decoded out;
  if (buffer.empty()) return out;
  if (static_cast<unsigned char>(buffer[0]) == kFrameMagic) {
    if (buffer.size() < kFrameHeaderBytes) return out;  // header incomplete
    const auto b = [&](std::size_t i) {
      return static_cast<std::uint32_t>(
          static_cast<unsigned char>(buffer[1 + i]));
    };
    const std::uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
    if (len > kMaxMessageBytes) {
      out.status = DecodeStatus::kError;
      out.error = "frame length exceeds limit";
      return out;
    }
    if (buffer.size() < kFrameHeaderBytes + len) return out;  // body pending
    out.status = DecodeStatus::kBinary;
    out.payload = buffer.substr(kFrameHeaderBytes, len);
    out.consumed = kFrameHeaderBytes + len;
    return out;
  }
  const std::size_t nl = buffer.find('\n');
  if (nl == std::string_view::npos) {
    if (buffer.size() > kMaxMessageBytes) {
      out.status = DecodeStatus::kError;
      out.error = "text line exceeds length limit";
    }
    return out;
  }
  std::string_view line = buffer.substr(0, nl);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  out.status = DecodeStatus::kText;
  out.payload = line;
  out.consumed = nl + 1;
  return out;
}

/// Appends one binary frame carrying `payload` to `out`.
inline void append_frame(std::string_view payload, std::string& out) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.append(payload);
}

/// Appends `payload` in the given encoding: a binary frame, or the payload
/// plus the terminating newline of the text protocol.
inline void append_message(std::string_view payload, bool binary,
                           std::string& out) {
  if (binary) {
    append_frame(payload, out);
  } else {
    out.append(payload);
    out.push_back('\n');
  }
}

}  // namespace asamap::net
