#pragma once

/// \file spsc_ring.hpp
/// Bounded lock-free single-producer/single-consumer ring, the handoff
/// primitive between the socket thread and a protocol worker.
///
/// Design (the classic cached-index SPSC queue): producer and consumer
/// each own one monotonically increasing position; an item is visible to
/// the consumer once the producer's release store of `tail_` happens, and
/// a slot is reusable once the consumer's release store of `head_` lands.
/// Each side keeps a *cached* copy of the other side's index so the hot
/// path usually touches only its own cache line — the cross-core load
/// happens only when the cached view says "maybe full/empty".
///
/// try_push never blocks: a full ring reports false and the caller applies
/// the same reject-with-reason backpressure discipline as
/// support::BoundedQueue — bounded memory, explicit rejection, never an
/// unbounded queue hiding an overload.  (BoundedQueue itself stays the
/// right tool for the MPMC job lanes; this ring exists for the exactly-two
/// -thread socket->worker edge where a mutex per message would dominate
/// the cost of a pipelined read.)

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace asamap::net {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  False when the ring is full (item untouched).
  bool try_push(T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool try_push(T&& item) { return try_push(item); }

  /// Consumer side.  False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Power-of-two slot count.
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Racy size estimate (monitoring only).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer position
  alignas(64) std::size_t cached_tail_ = 0;       ///< consumer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer position
  alignas(64) std::size_t cached_head_ = 0;       ///< producer's view of head_
};

}  // namespace asamap::net
