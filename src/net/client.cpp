#include "asamap/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "asamap/net/frame.hpp"

namespace asamap::net {

namespace {

serve::ServeStatus errno_status(const char* what) {
  return serve::ServeStatus::error(
      serve::ServeCode::kUnavailable,
      std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

serve::ServeStatus Client::connect(const ClientConfig& config) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    last_error_ = std::strerror(errno);
    return errno_status("socket");
  }
  timeval tv{};
  tv.tv_sec = config.timeout_ms / 1000;
  tv.tv_usec = (config.timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    last_error_ = "bad address " + config.host;
    return serve::ServeStatus::error(serve::ServeCode::kInvalidArgument,
                                     last_error_);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    last_error_ = std::strerror(errno);
    ::close(fd);
    return errno_status("connect");
  }
  fd_ = fd;
  return serve::ServeStatus::success();
}

serve::ServeStatus Client::request(std::string_view line,
                                   std::string& response) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return serve::ServeStatus::error(serve::ServeCode::kUnavailable,
                                     "not connected");
  }
  std::string wire;
  wire.reserve(line.size() + 8);
  append_frame(line, wire);
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      last_error_ = std::strerror(errno);
      close();
      return errno_status("send");
    }
    off += static_cast<std::size_t>(n);
  }
  // One response message, either encoding.  Leftover bytes past it (a
  // pipelined peer) stay in rbuf_ for the next call.
  for (;;) {
    const Decoded d = decode_one(rbuf_);
    if (d.status == DecodeStatus::kError) {
      last_error_ = d.error != nullptr ? d.error : "frame error";
      close();
      return serve::ServeStatus::error(serve::ServeCode::kUnavailable,
                                       last_error_);
    }
    if (d.status != DecodeStatus::kNeedMore) {
      response.assign(d.payload);
      rbuf_.erase(0, d.consumed);
      return serve::ServeStatus::success();
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      last_error_ = "connection closed";
      close();
      return serve::ServeStatus::error(serve::ServeCode::kUnavailable,
                                       "connection closed");
    }
    if (n < 0) {
      last_error_ = std::strerror(errno);
      close();
      return errno_status("recv");
    }
    rbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace asamap::net
