#include "asamap/support/rng.hpp"

#include <cmath>

namespace asamap::support {

std::uint32_t sample_power_law(Xoshiro256& rng, std::uint32_t min_deg,
                               std::uint32_t max_deg, double gamma) {
  if (min_deg >= max_deg) return min_deg;
  // Inverse-CDF of the continuous power law truncated to [min_deg, max_deg+1):
  //   x = [ (b^(1-g) - a^(1-g)) * u + a^(1-g) ]^(1/(1-g))
  const double a = static_cast<double>(min_deg);
  const double b = static_cast<double>(max_deg) + 1.0;
  const double one_minus_g = 1.0 - gamma;
  const double u = rng.next_double();
  double x;
  if (std::abs(one_minus_g) < 1e-12) {
    // gamma == 1 degenerates to log-uniform sampling.
    x = a * std::pow(b / a, u);
  } else {
    const double lo = std::pow(a, one_minus_g);
    const double hi = std::pow(b, one_minus_g);
    x = std::pow((hi - lo) * u + lo, 1.0 / one_minus_g);
  }
  auto k = static_cast<std::uint32_t>(x);
  if (k < min_deg) k = min_deg;
  if (k > max_deg) k = max_deg;
  return k;
}

}  // namespace asamap::support
