#include "asamap/support/timer.hpp"

namespace asamap::support {

void PhaseTimer::add(const std::string& name, double seconds) {
  auto [it, inserted] = totals_.try_emplace(name, 0.0);
  if (inserted) order_.push_back(name);
  it->second += seconds;
}

double& PhaseTimer::slot(const std::string& name) {
  auto [it, inserted] = totals_.try_emplace(name, 0.0);
  if (inserted) order_.push_back(name);
  return it->second;
}

double PhaseTimer::total(const std::string& name) const {
  auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second;
}

double PhaseTimer::grand_total() const {
  double sum = 0.0;
  for (const auto& [name, secs] : totals_) sum += secs;
  return sum;
}

void PhaseTimer::clear() {
  totals_.clear();
  order_.clear();
}

}  // namespace asamap::support
