#pragma once

/// \file bounded_queue.hpp
/// Mutex-based bounded MPMC FIFO used by the serving layer's job lanes.
/// Capacity is a hard limit: try_push never blocks and reports full-ness to
/// the caller, which is what gives the JobScheduler its backpressure
/// semantics (reject-with-reason instead of unbounded queue growth).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace asamap::support {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Appends without blocking; false when the queue is full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Removes the oldest item without blocking; nullopt when empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks until an item arrives or the queue is closed.  After close(),
  /// remaining items still drain; nullopt means closed *and* empty.
  std::optional<T> pop_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops accepting pushes and wakes every blocked pop_wait().
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace asamap::support
