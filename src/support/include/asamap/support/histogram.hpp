#pragma once

/// \file histogram.hpp
/// Log-bucketed latency histogram for the serving layer's request metrics.
/// Buckets are base-2 exponents with 4 linear sub-buckets each (HdrHistogram
/// shape), so relative error is bounded at ~12.5% across the full nanosecond
/// to hours range with a fixed 256-slot footprint.  Per-thread instances are
/// merged after a run; no synchronization inside.

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>

namespace asamap::support {

class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 4;  // linear slots per power of two
  static constexpr int kBuckets = 256;   // covers the full uint64 ns range

  void record_ns(std::uint64_t ns) {
    counts_[bucket_of(ns)] += 1;
    count_ += 1;
    sum_ns_ += static_cast<double>(ns);
    if (ns < min_ns_) min_ns_ = ns;
    if (ns > max_ns_) max_ns_ = ns;
  }

  void record_seconds(double seconds) {
    // Round to the nearest ns: truncation biased every sample low by up to
    // 1ns, which shows up at the bottom of the range (0.9999ns -> bucket 0).
    record_ns(seconds <= 0.0
                  ? 0
                  : static_cast<std::uint64_t>(seconds * 1e9 + 0.5));
  }

  void merge(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.min_ns_ < min_ns_) min_ns_ = other.min_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  }

  /// Removes an earlier cumulative snapshot, leaving only the samples
  /// recorded since it — the windowed-metrics delta.  `base` must be a
  /// prefix of this histogram's history (per-bucket counts subtract
  /// saturating, so a racy snapshot degrades to a clamped delta rather than
  /// wrapping).  min/max cannot be subtracted, so they are re-derived from
  /// the surviving buckets' edges: quantiles stay clamped to a range every
  /// remaining sample could actually occupy, rather than to the stale
  /// lifetime extremes.
  void subtract(const LatencyHistogram& base) {
    count_ = 0;
    sum_ns_ = std::fmax(0.0, sum_ns_ - base.sum_ns_);
    min_ns_ = std::numeric_limits<std::uint64_t>::max();
    max_ns_ = 0;
    for (int b = 0; b < kBuckets; ++b) {
      counts_[b] -= counts_[b] > base.counts_[b] ? base.counts_[b]
                                                 : counts_[b];
      if (counts_[b] == 0) continue;
      count_ += counts_[b];
      const auto lo = static_cast<std::uint64_t>(bucket_lo_ns(b));
      const auto hi = static_cast<std::uint64_t>(bucket_lo_ns(b) +
                                                 bucket_width_ns(b) - 1.0);
      if (lo < min_ns_) min_ns_ = lo;
      if (hi > max_ns_) max_ns_ = hi;
    }
    if (count_ == 0) sum_ns_ = 0.0;
  }

  /// Sparse wire form of the bucket array: `b:c` pairs, comma-separated,
  /// empty for an empty histogram.  Together with count/sum/min/max this is
  /// the mergeable representation the router's fleet scrape ships across
  /// processes; decode() below is the exact inverse.
  [[nodiscard]] std::string encode_buckets() const {
    std::string out;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      if (!out.empty()) out += ',';
      out += std::to_string(b);
      out += ':';
      out += std::to_string(counts_[b]);
    }
    return out;
  }

  /// Rebuilds a histogram from its scraped fields + encode_buckets() text.
  /// Bucket pairs that fail to parse are skipped; the scalar fields are
  /// trusted (they came from the same scrape), so a decoded histogram
  /// merges and quantiles exactly like the in-process original.
  static LatencyHistogram decode(double sum_seconds, double min_seconds,
                                 double max_seconds,
                                 std::string_view buckets) {
    LatencyHistogram h;
    std::size_t at = 0;
    while (at < buckets.size()) {
      std::size_t end = buckets.find(',', at);
      if (end == std::string_view::npos) end = buckets.size();
      const std::string_view pair = buckets.substr(at, end - at);
      at = end + 1;
      const std::size_t colon = pair.find(':');
      if (colon == std::string_view::npos) continue;
      const std::string bs(pair.substr(0, colon));
      const std::string cs(pair.substr(colon + 1));
      const long b = std::strtol(bs.c_str(), nullptr, 10);
      const unsigned long long c = std::strtoull(cs.c_str(), nullptr, 10);
      if (b < 0 || b >= kBuckets || c == 0) continue;
      h.counts_[static_cast<std::size_t>(b)] += c;
      h.count_ += c;
    }
    h.sum_ns_ = sum_seconds * 1e9;
    if (h.count_ > 0) {
      h.min_ns_ = static_cast<std::uint64_t>(std::fmax(min_seconds, 0.0) * 1e9 + 0.5);
      h.max_ns_ = static_cast<std::uint64_t>(std::fmax(max_seconds, 0.0) * 1e9 + 0.5);
    }
    return h;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double total_seconds() const noexcept { return sum_ns_ * 1e-9; }
  [[nodiscard]] double mean_seconds() const noexcept {
    return count_ == 0 ? 0.0 : sum_ns_ * 1e-9 / static_cast<double>(count_);
  }
  [[nodiscard]] double min_seconds() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(min_ns_) * 1e-9;
  }
  [[nodiscard]] double max_seconds() const noexcept {
    return static_cast<double>(max_ns_) * 1e-9;
  }

  /// Value at quantile q in [0, 1] (q=0.5 -> p50), interpolated by rank
  /// within the bucket holding that rank: the bucket's m samples are treated
  /// as spread evenly across its value range, so the j-th of them sits at
  /// lo + (j + 0.5)/m * width.  Clamped to the observed min/max so p0/p100
  /// are exact and a single-sample distribution reports the sample itself.
  [[nodiscard]] double quantile_seconds(double q) const noexcept {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return min_seconds();
    if (q >= 1.0) return max_seconds();
    const double target = q * static_cast<double>(count_ - 1);
    double seen = 0.0;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      const double m = static_cast<double>(counts_[b]);
      if (seen + m > target) {
        const double in_bucket = target - seen;  // in [0, m)
        const double v = bucket_lo_ns(b) +
                         (in_bucket + 0.5) / m * bucket_width_ns(b);
        const double lo = static_cast<double>(min_ns_);
        const double hi = static_cast<double>(max_ns_);
        return std::fmin(std::fmax(v, lo), hi) * 1e-9;
      }
      seen += m;
    }
    return max_seconds();  // unreachable when counts are consistent
  }

 private:
  /// ns < 4 map to buckets 0..3; otherwise (exp-1)*4 + top-2-mantissa-bits,
  /// which continues the sequence without gaps (ns=4..7 -> buckets 4..7).
  static int bucket_of(std::uint64_t ns) noexcept {
    if (ns < kSubBuckets) return static_cast<int>(ns);
    const int exp = 63 - std::countl_zero(ns);
    const int sub = static_cast<int>((ns >> (exp - 2)) & 3);
    return (exp - 1) * kSubBuckets + sub;
  }

  /// Lower edge of bucket b's value range, in ns.
  static double bucket_lo_ns(int b) noexcept {
    if (b < kSubBuckets) return static_cast<double>(b);
    const int exp = b / kSubBuckets + 1;
    const int sub = b % kSubBuckets;
    return std::ldexp(static_cast<double>(kSubBuckets + sub), exp - 2);
  }

  /// Width of bucket b's value range, in ns (exact buckets below
  /// kSubBuckets have width 1).
  static double bucket_width_ns(int b) noexcept {
    if (b < kSubBuckets) return 1.0;
    return std::ldexp(1.0, b / kSubBuckets - 1);
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ns_ = 0.0;
  std::uint64_t min_ns_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ns_ = 0;
};

}  // namespace asamap::support
