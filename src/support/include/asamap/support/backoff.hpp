#pragma once

/// \file backoff.hpp
/// Deterministic retry backoff schedule: capped exponential growth with
/// decorrelated jitter.
///
/// "Decorrelated jitter" (the AWS architecture blog's variant) samples each
/// sleep uniformly from [base, min(cap, 3 * previous)] instead of scaling a
/// fixed exponential curve.  Retries from many contenders spread out instead
/// of synchronizing into retry storms, while the expected sleep still grows
/// geometrically until it hits the cap.  The jitter stream comes from the
/// repo's deterministic xoshiro256** generator, so a given (seed, attempt
/// index) always produces the same schedule — required by the fault layer's
/// deterministic-replay contract (see DESIGN.md §4e).

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "asamap/support/rng.hpp"

namespace asamap::support {

class DecorrelatedBackoff {
 public:
  using Millis = std::chrono::milliseconds;

  DecorrelatedBackoff(Millis base, Millis cap, std::uint64_t seed) noexcept
      : base_(base.count() > 0 ? base : Millis{1}),
        cap_(std::max(cap, base_)),
        prev_(base_),
        rng_(seed) {}

  /// The sleep before the next retry attempt.  First call returns a value in
  /// [base, base] .. [base, 3*base]; subsequent calls grow toward the cap.
  Millis next() noexcept {
    const auto lo = static_cast<std::uint64_t>(base_.count());
    const auto hi = std::max(
        lo, std::min(static_cast<std::uint64_t>(cap_.count()),
                     static_cast<std::uint64_t>(prev_.count()) * 3));
    prev_ = Millis{static_cast<Millis::rep>(rng_.next_in(lo, hi))};
    return prev_;
  }

  /// Restart the schedule (e.g. after a success resets the retry streak).
  void reset() noexcept { prev_ = base_; }

 private:
  Millis base_;
  Millis cap_;
  Millis prev_;
  Xoshiro256 rng_;
};

}  // namespace asamap::support
