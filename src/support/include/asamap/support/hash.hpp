#pragma once

/// \file hash.hpp
/// Integer hashing primitives shared by the software hash tables (hashdb) and
/// the ASA CAM index function.  Both sides of the paper's comparison hash the
/// same keys (module ids), so using one family here keeps the comparison fair.

#include <cstdint>

namespace asamap::support {

/// Murmur3 64-bit finalizer — full-avalanche mix of a 64-bit key.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Fibonacci multiplicative hash: maps a 64-bit key to `bits` well-spread
/// bits.  Cheap (one multiply + shift) — this models the kind of hash an
/// accelerator would implement in hardware.
constexpr std::uint64_t fibonacci_hash(std::uint64_t key, unsigned bits) noexcept {
  return (key * 0x9e3779b97f4a7c15ULL) >> (64 - bits);
}

/// Reduces a 64-bit hash to a bucket index for a power-of-two table size.
constexpr std::size_t bucket_of(std::uint64_t hash, std::size_t pow2_size) noexcept {
  return static_cast<std::size_t>(hash) & (pow2_size - 1);
}

/// Rounds up to the next power of two (returns 1 for 0).
constexpr std::size_t next_pow2(std::size_t v) noexcept {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  if constexpr (sizeof(std::size_t) == 8) v |= v >> 32;
  return v + 1;
}

}  // namespace asamap::support
