#pragma once

/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation for workload
/// generators and property tests.
///
/// All experiments in this repository must be reproducible from a single
/// 64-bit seed, so we avoid std::mt19937 (whose seeding via seed_seq is easy
/// to get subtly wrong) and implement SplitMix64 (for seeding / cheap
/// streams) and xoshiro256** (the main generator).  Both follow the public
/// domain reference implementations by Blackman & Vigna.

#include <array>
#include <cstdint>
#include <limits>

namespace asamap::support {

/// SplitMix64: tiny, passes BigCrush, ideal for seeding other generators and
/// for hashing small integer streams into well-mixed 64-bit values.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator.  4x64-bit state, period 2^256-1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed through SplitMix64,
  /// as recommended by the xoshiro authors.
  constexpr explicit Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  Uses the top 53 bits.
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Jump function: advances 2^128 steps, used to hand independent
  /// subsequences to worker threads.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t jump_word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump_word & (1ULL << b)) {
          for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Samples a power-law distributed integer degree in [min_deg, max_deg] with
/// exponent `gamma` (P(k) ~ k^-gamma) using inverse-CDF sampling on the
/// continuous approximation.  This is what gives the synthetic stand-in
/// networks the scale-free shape in Fig. 4 of the paper.
std::uint32_t sample_power_law(Xoshiro256& rng, std::uint32_t min_deg,
                               std::uint32_t max_deg, double gamma);

}  // namespace asamap::support
