#pragma once

/// \file parallel.hpp
/// Small helpers for shared-memory parallel code.  The library's OpenMP
/// drivers keep one workspace entry per thread in a plain vector; without
/// padding, adjacent entries share cache lines and every per-thread counter
/// update becomes a coherence miss (false sharing).  `CacheAligned<T>` pads
/// each entry to its own line(s).

#include <cstddef>
#include <new>

namespace asamap::support {

/// 64 B covers every mainstream x86/ARM core; a fixed value keeps the
/// layout ABI-stable (std::hardware_destructive_interference_size varies
/// with -mtune, which GCC warns about for exactly that reason).
inline constexpr std::size_t kCacheLineBytes = 64;

/// A T on its own cache line(s); use as vector<CacheAligned<T>> for
/// per-thread mutable state.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

// --- ThreadSanitizer happens-before annotations for OpenMP sync points ---
//
// GCC's libgomp implements team barriers (and the implicit barriers of
// `for`/`single`/region exit) with raw futexes that TSAN's interceptors
// cannot see, so every perfectly-synchronized cross-barrier access gets
// reported as a race.  These helpers re-state, in TSAN's vocabulary, the
// ordering the real barrier already enforces: each thread releases `tag`
// before waiting and acquires it after, giving an all-to-all happens-before
// edge across the barrier.  They compile to nothing outside TSAN builds.
// (LLVM's libomp ships these annotations built in; libgomp does not.)

#if defined(__SANITIZE_THREAD__)
#define ASAMAP_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ASAMAP_TSAN_ENABLED 1
#endif
#endif

#ifdef ASAMAP_TSAN_ENABLED
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#endif

/// Publishes this thread's prior writes to `tag` (no-op outside TSAN).
inline void tsan_release([[maybe_unused]] void* tag) {
#ifdef ASAMAP_TSAN_ENABLED
  __tsan_release(tag);
#endif
}

/// Observes all writes published to `tag` (no-op outside TSAN).
inline void tsan_acquire([[maybe_unused]] void* tag) {
#ifdef ASAMAP_TSAN_ENABLED
  __tsan_acquire(tag);
#endif
}

/// An `omp barrier` ThreadSanitizer understands.  Call from every thread of
/// the innermost enclosing parallel team, like the raw pragma.
inline void omp_barrier_sync(void* tag) {
  tsan_release(tag);
#ifdef _OPENMP
#pragma omp barrier
#endif
  tsan_acquire(tag);
}

}  // namespace asamap::support
