#pragma once

/// \file check.hpp
/// Precondition checking.  ASAMAP_CHECK is always on (throws
/// std::logic_error with location info) and is used on public API boundaries;
/// ASAMAP_DCHECK compiles away in release builds and guards internal
/// invariants on hot paths.

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace asamap::support {

[[noreturn]] inline void check_failed(
    std::string_view expr, std::string_view msg,
    std::source_location loc = std::source_location::current()) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace asamap::support

#define ASAMAP_CHECK(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) ::asamap::support::check_failed(#cond, (msg));   \
  } while (0)

#ifdef NDEBUG
#define ASAMAP_DCHECK(cond, msg) ((void)0)
#else
#define ASAMAP_DCHECK(cond, msg) ASAMAP_CHECK(cond, msg)
#endif
