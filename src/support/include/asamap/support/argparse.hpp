#pragma once

/// \file argparse.hpp
/// Minimal command-line option parsing shared by the batch CLI
/// (asamap_cli), the serve driver (asamap_serve), and the bench drivers, so
/// all front ends accept the same `--key value` / `--key=value` spellings
/// for the same options (engine selection, deadlines, thread counts).
///
/// Boolean flags must be declared up front — without a schema, `--directed
/// foo.txt` is ambiguous between a flag followed by a positional and an
/// option consuming a value.

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace asamap::support {

class ArgParser {
 public:
  /// Parses argv[first_arg..).  `flag_keys` lists the value-less options
  /// (without the leading "--"); every other `--key` consumes one value,
  /// either inline (`--key=v`) or as the next argument.
  ArgParser(int argc, char** argv, int first_arg,
            std::initializer_list<std::string_view> flag_keys = {}) {
    const std::unordered_set<std::string_view> flag_set(flag_keys);
    for (int i = first_arg; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.size() < 3 || arg.substr(0, 2) != "--") {
        positional_.emplace_back(arg);
        continue;
      }
      arg.remove_prefix(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      } else if (flag_set.contains(arg)) {
        flags_.insert(std::string(arg));
      } else if (i + 1 < argc) {
        values_[std::string(arg)] = argv[++i];
      } else {
        missing_value_.emplace_back(arg);
      }
    }
  }

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// True when a declared boolean flag was present.
  [[nodiscard]] bool flag(std::string_view key) const {
    return flags_.contains(std::string(key));
  }

  [[nodiscard]] std::optional<std::string> get(std::string_view key) const {
    const auto it = values_.find(std::string(key));
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string get_or(std::string_view key,
                                   std::string fallback) const {
    const auto v = get(key);
    return v ? *v : std::move(fallback);
  }

  /// Strict integer parse: the whole token must be a base-10 integer in
  /// long long range.  Returns false for empty input, leading whitespace,
  /// trailing junk ("12abc"), and overflow.
  [[nodiscard]] static bool parse_int(const std::string& text,
                                      long long& out) {
    if (text.empty() ||
        std::isspace(static_cast<unsigned char>(text.front()))) {
      return false;
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size() ||
        end == text.c_str()) {
      return false;
    }
    out = v;
    return true;
  }

  /// Strict floating-point parse with the same whole-token rules.
  [[nodiscard]] static bool parse_double(const std::string& text,
                                         double& out) {
    if (text.empty() ||
        std::isspace(static_cast<unsigned char>(text.front()))) {
      return false;
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end != text.c_str() + text.size() ||
        end == text.c_str()) {
      return false;
    }
    out = v;
    return true;
  }

  /// Throws std::invalid_argument on malformed values instead of silently
  /// reading them as 0 (the old strtoll(..., nullptr, 10) behaviour, which
  /// turned `--deadline-ms=1s` into an immediate deadline).
  [[nodiscard]] long long int_or(std::string_view key,
                                 long long fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    long long out = 0;
    if (!parse_int(*v, out)) {
      throw std::invalid_argument("--" + std::string(key) +
                                  ": expected an integer, got '" + *v + "'");
    }
    return out;
  }

  [[nodiscard]] double double_or(std::string_view key, double fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    double out = 0.0;
    if (!parse_double(*v, out)) {
      throw std::invalid_argument("--" + std::string(key) +
                                  ": expected a number, got '" + *v + "'");
    }
    return out;
  }

  /// Option keys present on the command line but in neither the declared
  /// flags nor `value_keys` — callers turn a non-empty result into a usage
  /// error.  Also reports trailing `--key` options that got no value.
  [[nodiscard]] std::vector<std::string> unknown_keys(
      std::initializer_list<std::string_view> value_keys) const {
    const std::unordered_set<std::string_view> known(value_keys);
    std::vector<std::string> unknown = missing_value_;
    for (const auto& [key, value] : values_) {
      if (!known.contains(key)) unknown.push_back(key);
    }
    return unknown;
  }

 private:
  std::vector<std::string> positional_;
  std::unordered_map<std::string, std::string> values_;
  std::unordered_set<std::string> flags_;
  std::vector<std::string> missing_value_;
};

}  // namespace asamap::support
