#pragma once

/// \file timer.hpp
/// Wall-clock timing used for the "Native" columns of Tables III/IV and the
/// kernel breakdown of Fig. 2.  Simulated ("Baseline"/"ASA") times come from
/// the sim:: cost model instead.

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace asamap::support {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  /// Disarmed construction: no clock read.  For hot paths that only
  /// sometimes time themselves — construct disarmed, reset() when armed.
  /// seconds() before a reset() is meaningless.
  struct Disarmed {};
  explicit WallTimer(Disarmed) noexcept : start_{} {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase timings — the Fig. 2 kernel breakdown is a
/// PhaseTimer over {PageRank, FindBestCommunity, Convert2SuperNode,
/// UpdateMembers} with a nested one over {HashOperations, Other}.
class PhaseTimer {
 public:
  /// Adds `seconds` to phase `name` (creates the phase on first use).
  void add(const std::string& name, double seconds);

  /// Stable reference to the accumulator for `name` (created at 0.0 on
  /// first use).  References stay valid across later add()/slot() calls —
  /// node-based map — so hot paths can resolve a phase once and then
  /// accumulate without any lookup or allocation.
  [[nodiscard]] double& slot(const std::string& name);

  /// Total seconds recorded for `name`, 0.0 if never recorded.
  [[nodiscard]] double total(const std::string& name) const;

  /// Sum over all phases.
  [[nodiscard]] double grand_total() const;

  /// Phase names in first-recorded order.
  [[nodiscard]] const std::vector<std::string>& phases() const { return order_; }

  void clear();

 private:
  std::unordered_map<std::string, double> totals_;
  std::vector<std::string> order_;
};

/// RAII helper: times a scope into a PhaseTimer phase.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, std::string name)
      : timer_(timer), name_(std::move(name)) {}
  ~ScopedPhase() { timer_.add(name_, watch_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
  std::string name_;
  WallTimer watch_;
};

}  // namespace asamap::support
