#include "asamap/graph/csr_graph.hpp"

#include <algorithm>
#include <cmath>

#include "asamap/support/check.hpp"

namespace asamap::graph {

CsrGraph CsrGraph::from_edges(const EdgeList& edges, VertexId n_hint) {
  CsrGraph g;
  g.n_ = std::max(edges.vertex_count(), n_hint);
  const std::size_t n = g.n_;
  const auto& es = edges.edges();

  // Counting-sort style CSR construction for both directions.
  std::vector<EdgeId> out_count(n, 0);
  std::vector<EdgeId> in_count(n, 0);
  for (const Edge& e : es) {
    ASAMAP_CHECK(e.src < n && e.dst < n, "edge endpoint out of range");
    ++out_count[e.src];
    ++in_count[e.dst];
  }

  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    g.out_offsets_[u + 1] = g.out_offsets_[u] + out_count[u];
    g.in_offsets_[u + 1] = g.in_offsets_[u] + in_count[u];
  }

  g.out_arcs_.resize(es.size());
  g.in_arcs_.resize(es.size());
  std::vector<EdgeId> out_cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
  std::vector<EdgeId> in_cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Edge& e : es) {
    g.out_arcs_[out_cursor[e.src]++] = Arc{e.dst, e.weight};
    g.in_arcs_[in_cursor[e.dst]++] = Arc{e.src, e.weight};
  }
  // Keep adjacency sorted by neighbor id for deterministic iteration and
  // binary-search lookups.  (in_arcs_ arrive sorted by src already because
  // es is sorted by (src, dst) after coalesce; out_arcs_ likewise — but we
  // sort defensively since from_edges does not require coalesced input to
  // be sorted.)
  for (std::size_t u = 0; u < n; ++u) {
    auto cmp = [](const Arc& a, const Arc& b) { return a.dst < b.dst; };
    std::sort(g.out_arcs_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[u]),
              g.out_arcs_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[u + 1]),
              cmp);
    std::sort(g.in_arcs_.begin() + static_cast<std::ptrdiff_t>(g.in_offsets_[u]),
              g.in_arcs_.begin() + static_cast<std::ptrdiff_t>(g.in_offsets_[u + 1]),
              cmp);
  }

  g.out_weight_.assign(n, 0.0);
  g.in_weight_.assign(n, 0.0);
  for (const Edge& e : es) {
    g.out_weight_[e.src] += e.weight;
    g.in_weight_[e.dst] += e.weight;
    g.total_weight_ += e.weight;
  }

  // Symmetry check: for every vertex the sorted out and in adjacency must
  // match arc-for-arc.
  g.symmetric_ = true;
  for (std::size_t u = 0; u < n && g.symmetric_; ++u) {
    const auto out = g.out_neighbors(static_cast<VertexId>(u));
    const auto in = g.in_neighbors(static_cast<VertexId>(u));
    if (out.size() != in.size()) {
      g.symmetric_ = false;
      break;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].dst != in[i].dst ||
          std::abs(out[i].weight - in[i].weight) > 1e-12) {
        g.symmetric_ = false;
        break;
      }
    }
  }
  return g;
}

}  // namespace asamap::graph
