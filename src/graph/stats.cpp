#include "asamap/graph/stats.hpp"

#include <algorithm>
#include <cmath>

namespace asamap::graph {

DegreeHistogram degree_histogram(const CsrGraph& g) {
  DegreeHistogram h;
  const VertexId n = g.num_vertices();
  if (n == 0) {
    h.counts = {0};
    return h;
  }
  std::size_t max_deg = 0;
  for (VertexId u = 0; u < n; ++u) max_deg = std::max(max_deg, g.out_degree(u));
  h.counts.assign(max_deg + 1, 0);
  double total = 0.0;
  for (VertexId u = 0; u < n; ++u) {
    const std::size_t d = g.out_degree(u);
    ++h.counts[d];
    total += static_cast<double>(d);
  }
  h.max_degree = max_deg;
  h.mean_degree = total / static_cast<double>(n);
  return h;
}

double coverage_at_capacity(const DegreeHistogram& h, std::size_t cap) {
  std::uint64_t total = 0;
  std::uint64_t covered = 0;
  for (std::size_t k = 0; k < h.counts.size(); ++k) {
    total += h.counts[k];
    if (k <= cap) covered += h.counts[k];
  }
  return total == 0 ? 1.0
                    : static_cast<double>(covered) / static_cast<double>(total);
}

std::vector<double> coverage_cdf(const DegreeHistogram& h,
                                 const std::vector<std::size_t>& capacities) {
  std::vector<double> out;
  out.reserve(capacities.size());
  for (std::size_t cap : capacities) out.push_back(coverage_at_capacity(h, cap));
  return out;
}

double fit_power_law_exponent(const DegreeHistogram& h,
                              std::size_t min_degree) {
  // Simple OLS on (log k, log count) for k >= min_degree.  Bins with very
  // few vertices are dropped: the bounded-tail noise (single-count bins up
  // to the degree cap) otherwise flattens the slope far below the body's
  // exponent.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t m = 0;
  for (std::size_t k = std::max<std::size_t>(min_degree, 1);
       k < h.counts.size(); ++k) {
    if (h.counts[k] < 5) continue;
    const double x = std::log(static_cast<double>(k));
    const double y = std::log(static_cast<double>(h.counts[k]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  if (m < 2) return 0.0;
  const double denom = static_cast<double>(m) * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  const double slope = (static_cast<double>(m) * sxy - sx * sy) / denom;
  return -slope;  // P(k) ~ k^-gamma
}

}  // namespace asamap::graph
