#include "asamap/graph/edge_list.hpp"

#include <algorithm>

#include "asamap/support/check.hpp"

namespace asamap::graph {

EdgeList EdgeList::from_coalesced(std::vector<Edge> edges, VertexId n) {
  EdgeList list;
  list.edges_ = std::move(edges);
  if (n > 0) list.max_vertex_ = n - 1;
  for (const Edge& e : list.edges_) {
    list.max_vertex_ = std::max({list.max_vertex_, e.src, e.dst});
  }
  return list;
}

void EdgeList::add(VertexId u, VertexId v, Weight w) {
  ASAMAP_CHECK(u != kInvalidVertex && v != kInvalidVertex,
               "vertex id out of range");
  edges_.push_back(Edge{u, v, w});
  max_vertex_ = std::max({max_vertex_, u, v});
}

void EdgeList::add_undirected(VertexId u, VertexId v, Weight w) {
  add(u, v, w);
  if (u != v) add(v, u, w);
}

void EdgeList::symmetrize() {
  const std::size_t n = edges_.size();
  edges_.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const Edge e = edges_[i];
    if (e.src != e.dst) edges_.push_back(Edge{e.dst, e.src, e.weight});
  }
}

void EdgeList::coalesce(bool keep_self_loops) {
  if (!keep_self_loops) {
    std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  // Merge runs of identical (src, dst) by summing weights, in place.
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size();) {
    Edge merged = edges_[i];
    std::size_t j = i + 1;
    while (j < edges_.size() && edges_[j].src == merged.src &&
           edges_[j].dst == merged.dst) {
      merged.weight += edges_[j].weight;
      ++j;
    }
    edges_[out++] = merged;
    i = j;
  }
  edges_.resize(out);
}

void EdgeList::ensure_vertex_count(VertexId n) {
  if (n > 0 && n - 1 > max_vertex_) max_vertex_ = n - 1;
}

}  // namespace asamap::graph
