#pragma once

/// \file types.hpp
/// Fundamental graph types shared across the library.

#include <cstdint>
#include <limits>

namespace asamap::graph {

/// Vertex identifier.  32 bits covers the paper's largest network (Orkut,
/// 3.07M vertices) with a huge margin while halving CSR memory traffic
/// relative to 64-bit ids — the same choice production graph frameworks make.
using VertexId = std::uint32_t;

/// Edge index into CSR arrays.  Orkut has 117M edges (234M directed arcs),
/// so edge offsets need 64 bits.
using EdgeId = std::uint64_t;

/// Edge weight / flow value.  Infomap's map equation works on probabilities,
/// so double precision throughout.
using Weight = double;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// A weighted directed arc (u -> v, w).
struct Edge {
  VertexId src{};
  VertexId dst{};
  Weight weight{1.0};

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// (neighbor, weight) pair as stored in CSR adjacency.
struct Arc {
  VertexId dst{};
  Weight weight{1.0};

  friend bool operator==(const Arc&, const Arc&) = default;
};

}  // namespace asamap::graph
