#pragma once

/// \file csr_graph.hpp
/// Immutable compressed-sparse-row graph.  Stores both out-adjacency and
/// in-adjacency because Infomap needs outgoing *and* incoming flow per vertex
/// (Algorithm 1 accumulates `outFlowtoModules` and `inFlowFromModules`).
/// For graphs built from undirected edge lists the two sides are identical
/// but are still materialized separately so directed inputs work unchanged.

#include <span>
#include <vector>

#include "asamap/graph/edge_list.hpp"
#include "asamap/graph/types.hpp"

namespace asamap::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Freezes a coalesced edge list (call EdgeList::coalesce first — duplicate
  /// arcs are not merged here).  `n_hint` lets callers include trailing
  /// isolated vertices.
  static CsrGraph from_edges(const EdgeList& edges, VertexId n_hint = 0);

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_arcs() const noexcept {
    return static_cast<EdgeId>(out_arcs_.size());
  }

  /// Outgoing arcs of u.
  [[nodiscard]] std::span<const Arc> out_neighbors(VertexId u) const noexcept {
    return {out_arcs_.data() + out_offsets_[u],
            out_arcs_.data() + out_offsets_[u + 1]};
  }

  /// Incoming arcs of u (Arc::dst is the *source* vertex of the arc).
  [[nodiscard]] std::span<const Arc> in_neighbors(VertexId u) const noexcept {
    return {in_arcs_.data() + in_offsets_[u],
            in_arcs_.data() + in_offsets_[u + 1]};
  }

  /// Index of u's first out-arc in global arc order (matches the order of
  /// FlowNetwork::out_flow and the simulated arc-array addresses).
  [[nodiscard]] EdgeId out_offset(VertexId u) const noexcept {
    return out_offsets_[u];
  }
  [[nodiscard]] EdgeId in_offset(VertexId u) const noexcept {
    return in_offsets_[u];
  }

  [[nodiscard]] std::size_t out_degree(VertexId u) const noexcept {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  [[nodiscard]] std::size_t in_degree(VertexId u) const noexcept {
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  /// Sum of weights of outgoing arcs of u.
  [[nodiscard]] Weight out_weight(VertexId u) const noexcept {
    return out_weight_[u];
  }
  [[nodiscard]] Weight in_weight(VertexId u) const noexcept {
    return in_weight_[u];
  }

  /// Total weight over all arcs.
  [[nodiscard]] Weight total_arc_weight() const noexcept {
    return total_weight_;
  }

  /// True when for every arc u->v there is v->u with the same weight —
  /// detected at build time; lets Infomap use the cheaper undirected flow
  /// model.
  [[nodiscard]] bool is_symmetric() const noexcept { return symmetric_; }

 private:
  VertexId n_ = 0;
  std::vector<EdgeId> out_offsets_{0};
  std::vector<Arc> out_arcs_;
  std::vector<EdgeId> in_offsets_{0};
  std::vector<Arc> in_arcs_;
  std::vector<Weight> out_weight_;
  std::vector<Weight> in_weight_;
  Weight total_weight_ = 0.0;
  bool symmetric_ = true;
};

}  // namespace asamap::graph
