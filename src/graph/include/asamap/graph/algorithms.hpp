#pragma once

/// \file algorithms.hpp
/// Classic graph algorithms used around the experiment suite: connected
/// components (community detectors should be run per component; LFR
/// instances are validated for connectivity), BFS distances, and clustering
/// coefficients (a standard characterization of the social-network
/// stand-ins alongside the degree distribution).

#include <cstdint>
#include <vector>

#include "asamap/graph/csr_graph.hpp"

namespace asamap::graph {

struct ComponentResult {
  std::vector<VertexId> component;  ///< component id per vertex, 0..k-1
  std::size_t count = 0;            ///< number of components
  std::size_t largest_size = 0;     ///< vertices in the biggest component
};

/// Weakly connected components (treats arcs as undirected).
ComponentResult connected_components(const CsrGraph& g);

/// BFS hop distances from `source` over out-arcs;
/// unreachable vertices get kUnreachable.
inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};
std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, VertexId source);

/// Local clustering coefficient of vertex v: the fraction of its neighbor
/// pairs that are themselves connected.  0 for degree < 2.  The graph must
/// be symmetric.
double local_clustering(const CsrGraph& g, VertexId v);

/// Average of local clustering coefficients over all vertices
/// (Watts-Strogatz's C).
double average_clustering(const CsrGraph& g);

/// Global transitivity: 3 * triangles / connected triples.
double transitivity(const CsrGraph& g);

}  // namespace asamap::graph
