#pragma once

/// \file edge_list.hpp
/// Mutable edge-list staging area used to assemble graphs before freezing
/// them into CSR form.  Handles duplicate-edge accumulation, self-loop
/// removal, and symmetrization, which the SNAP datasets (and our synthetic
/// stand-ins) all require.

#include <cstddef>
#include <vector>

#include "asamap/graph/types.hpp"

namespace asamap::graph {

class EdgeList {
 public:
  EdgeList() = default;

  /// Adopts an edge vector that is *already* coalesced — sorted by
  /// (src, dst), parallel arcs merged, self-loops removed.  Skips the
  /// O(m log m) re-sort of coalesce(); used by parallel graph builders
  /// whose per-partition merge produces globally sorted output.
  static EdgeList from_coalesced(std::vector<Edge> edges, VertexId n);

  /// Reserves space for `n` edges.
  void reserve(std::size_t n) { edges_.reserve(n); }

  /// Appends an arc u -> v with weight w.  Vertex ids may arrive in any
  /// order; the maximum id seen defines the vertex count.
  void add(VertexId u, VertexId v, Weight w = 1.0);

  /// Adds both u -> v and v -> u (undirected edge).
  void add_undirected(VertexId u, VertexId v, Weight w = 1.0);

  /// Ensures every arc has its reverse (weights mirrored); duplicates are
  /// merged by coalesce() later.
  void symmetrize();

  /// Sorts by (src, dst) and merges parallel arcs by summing weights.
  /// Self-loops are dropped unless `keep_self_loops`.
  void coalesce(bool keep_self_loops = false);

  [[nodiscard]] std::size_t size() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }

  /// Number of vertices implied by the highest id seen (0 when empty).
  [[nodiscard]] VertexId vertex_count() const noexcept {
    return empty() && max_vertex_ == 0 ? 0 : max_vertex_ + 1;
  }

  /// Forces the vertex count to at least `n` (to include isolated vertices).
  void ensure_vertex_count(VertexId n);

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

 private:
  std::vector<Edge> edges_;
  VertexId max_vertex_ = 0;
};

}  // namespace asamap::graph
