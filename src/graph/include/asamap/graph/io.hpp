#pragma once

/// \file io.hpp
/// SNAP-style edge-list text I/O.  The paper's datasets come from the SNAP
/// collection, whose on-disk format is one `u <tab/space> v` pair per line
/// with `#`-prefixed comment lines.  Weighted variants add a third column.

#include <filesystem>
#include <istream>
#include <ostream>

#include "asamap/graph/csr_graph.hpp"
#include "asamap/graph/edge_list.hpp"

namespace asamap::graph {

struct SnapReadOptions {
  /// Treat each line as an undirected edge (add both arcs).  SNAP's
  /// com-Amazon/com-DBLP/com-Youtube/com-Orkut are undirected; soc-Pokec and
  /// soc-LiveJournal are directed.
  bool undirected = true;
  /// Drop self loops while reading.
  bool drop_self_loops = true;
};

/// Parses SNAP edge-list text from a stream.  Throws std::runtime_error on
/// malformed lines.  Vertex ids are used as-is (no re-labeling), so sparse id
/// spaces produce isolated vertices.
EdgeList read_snap_stream(std::istream& in, const SnapReadOptions& opts = {});

/// Convenience: read + coalesce + freeze to CSR.
CsrGraph load_snap_file(const std::filesystem::path& path,
                        const SnapReadOptions& opts = {});

/// Writes a graph's arcs in SNAP format (with weights when any weight != 1).
void write_snap_stream(std::ostream& out, const CsrGraph& g);
void save_snap_file(const std::filesystem::path& path, const CsrGraph& g);

}  // namespace asamap::graph
