#pragma once

/// \file io.hpp
/// SNAP-style edge-list text I/O.  The paper's datasets come from the SNAP
/// collection, whose on-disk format is one `u <tab/space> v` pair per line
/// with `#`-prefixed comment lines.  Weighted variants add a third column.
///
/// Two parsing entry points: parse_snap_stream reports malformed input as a
/// structured error with the offending line number (what a service needs to
/// reject a bad upload with a message), read_snap_stream wraps it and throws
/// for batch callers that just want to fail loudly.

#include <filesystem>
#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "asamap/graph/csr_graph.hpp"
#include "asamap/graph/edge_list.hpp"

namespace asamap::graph {

struct SnapReadOptions {
  /// Treat each line as an undirected edge (add both arcs).  SNAP's
  /// com-Amazon/com-DBLP/com-Youtube/com-Orkut are undirected; soc-Pokec and
  /// soc-LiveJournal are directed.
  bool undirected = true;
  /// Drop self loops while reading.
  bool drop_self_loops = true;
  /// Largest accepted vertex id.  The default rejects only the
  /// kInvalidVertex sentinel (which would corrupt downstream bookkeeping);
  /// services lower it to bound the memory a single upload can demand —
  /// vertex ids are used as-is, so one line saying `0 4000000000` would
  /// otherwise allocate four billion CSR slots.
  VertexId max_vertex_id = kInvalidVertex - 1;
};

/// A rejected input line: 1-based line number plus a human-readable reason
/// that names the offending token.
struct SnapParseError {
  std::size_t line = 0;
  std::string message;
};

struct SnapParseResult {
  EdgeList edges;                      ///< valid only when !error
  std::optional<SnapParseError> error; ///< first malformed line, if any
  std::size_t lines_read = 0;          ///< lines consumed (incl. comments)

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

/// Parses SNAP edge-list text, stopping at the first malformed line and
/// reporting it as a structured error (non-numeric tokens, out-of-range or
/// sentinel vertex ids, truncated lines, trailing garbage, non-finite or
/// negative weights).  Never throws on malformed input.
SnapParseResult parse_snap_stream(std::istream& in,
                                  const SnapReadOptions& opts = {});

/// Throwing wrapper over parse_snap_stream: raises std::runtime_error with
/// the line number and reason on malformed input.  Vertex ids are used as-is
/// (no re-labeling), so sparse id spaces produce isolated vertices.
EdgeList read_snap_stream(std::istream& in, const SnapReadOptions& opts = {});

/// Convenience: read + coalesce + freeze to CSR.
CsrGraph load_snap_file(const std::filesystem::path& path,
                        const SnapReadOptions& opts = {});

/// Writes a graph's arcs in SNAP format (with weights when any weight != 1).
void write_snap_stream(std::ostream& out, const CsrGraph& g);
void save_snap_file(const std::filesystem::path& path, const CsrGraph& g);

}  // namespace asamap::graph
