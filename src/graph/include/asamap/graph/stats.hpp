#pragma once

/// \file stats.hpp
/// Degree-distribution analysis backing Fig. 4 (power-law histograms) and
/// Fig. 5 (fraction of vertices whose neighbor list fits in a CAM of a given
/// capacity).

#include <cstdint>
#include <vector>

#include "asamap/graph/csr_graph.hpp"

namespace asamap::graph {

/// Degree histogram: `counts[k]` = number of vertices with out-degree k.
struct DegreeHistogram {
  std::vector<std::uint64_t> counts;  ///< indexed by degree
  std::size_t max_degree = 0;
  double mean_degree = 0.0;

  /// Number of vertices with degree exactly k (0 if k beyond max).
  [[nodiscard]] std::uint64_t at(std::size_t k) const {
    return k < counts.size() ? counts[k] : 0;
  }
};

DegreeHistogram degree_histogram(const CsrGraph& g);

/// Fraction of vertices with out-degree <= cap, i.e. whose full neighbor
/// list fits in a CAM with `cap` entries without overflow.  This is the
/// quantity plotted in Fig. 5 (the paper converts CAM bytes to entries).
double coverage_at_capacity(const DegreeHistogram& h, std::size_t cap);

/// CDF over the given capacities; returns one coverage fraction per entry.
std::vector<double> coverage_cdf(const DegreeHistogram& h,
                                 const std::vector<std::size_t>& capacities);

/// Least-squares fit of log(count) ~ -gamma * log(degree) over degrees with
/// nonzero counts in [min_degree, max fitted degree].  Returns the estimated
/// power-law exponent gamma.  Used by tests to verify generator output and
/// by the Fig. 4 bench to annotate the histograms.
double fit_power_law_exponent(const DegreeHistogram& h,
                              std::size_t min_degree = 2);

}  // namespace asamap::graph
