#include "asamap/graph/io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace asamap::graph {
namespace {

/// Skips spaces/tabs, then parses one token; returns the remaining view.
/// Throws on parse failure so corrupt inputs fail loudly.
template <typename T>
std::string_view parse_token(std::string_view s, T& out, std::size_t line_no) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  s.remove_prefix(i);
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  std::from_chars_result r{};
  if constexpr (std::is_floating_point_v<T>) {
    // GCC 12 supports floating-point from_chars.
    r = std::from_chars(begin, end, out);
  } else {
    r = std::from_chars(begin, end, out);
  }
  if (r.ec != std::errc{}) {
    throw std::runtime_error("SNAP parse error at line " +
                             std::to_string(line_no));
  }
  return s.substr(static_cast<std::size_t>(r.ptr - begin));
}

bool has_more_tokens(std::string_view s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\r') return true;
  }
  return false;
}

}  // namespace

EdgeList read_snap_stream(std::istream& in, const SnapReadOptions& opts) {
  EdgeList edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view s = line;
    // Trim leading whitespace; skip blanks and comments.
    std::size_t i = 0;
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    s.remove_prefix(i);
    if (s.empty() || s.front() == '#' || s.front() == '%') continue;

    VertexId u{}, v{};
    s = parse_token(s, u, line_no);
    s = parse_token(s, v, line_no);
    Weight w = 1.0;
    if (has_more_tokens(s)) s = parse_token(s, w, line_no);

    if (opts.drop_self_loops && u == v) continue;
    if (opts.undirected) {
      edges.add_undirected(u, v, w);
    } else {
      edges.add(u, v, w);
    }
  }
  return edges;
}

CsrGraph load_snap_file(const std::filesystem::path& path,
                        const SnapReadOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open graph file: " + path.string());
  }
  EdgeList edges = read_snap_stream(in, opts);
  edges.coalesce();
  return CsrGraph::from_edges(edges);
}

void write_snap_stream(std::ostream& out, const CsrGraph& g) {
  out << "# asamap graph: " << g.num_vertices() << " vertices, "
      << g.num_arcs() << " arcs\n";
  bool weighted = false;
  for (VertexId u = 0; u < g.num_vertices() && !weighted; ++u) {
    for (const Arc& a : g.out_neighbors(u)) {
      if (std::abs(a.weight - 1.0) > 1e-12) {
        weighted = true;
        break;
      }
    }
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.out_neighbors(u)) {
      out << u << '\t' << a.dst;
      if (weighted) out << '\t' << a.weight;
      out << '\n';
    }
  }
}

void save_snap_file(const std::filesystem::path& path, const CsrGraph& g) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write graph file: " + path.string());
  }
  write_snap_stream(out, g);
}

}  // namespace asamap::graph
