#include "asamap/graph/io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace asamap::graph {
namespace {

std::string_view skip_blanks(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  s.remove_prefix(i);
  return s;
}

/// The whitespace-delimited token at the front of `s`, for error messages.
std::string_view front_token(std::string_view s) {
  s = skip_blanks(s);
  std::size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t' && s[end] != '\r') {
    ++end;
  }
  return s.substr(0, end);
}

bool has_more_tokens(std::string_view s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\r') return true;
  }
  return false;
}

/// Parses one numeric token; on failure fills `err` with a reason naming the
/// token (`what` says which field it was) and returns false.
template <typename T>
bool parse_token(std::string_view& s, T& out, std::string_view what,
                 std::string* err) {
  s = skip_blanks(s);
  if (!has_more_tokens(s)) {
    *err = "truncated line: missing " + std::string(what);
    return false;
  }
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const std::from_chars_result r = std::from_chars(begin, end, out);
  if (r.ec == std::errc::invalid_argument) {
    *err = "expected a number for " + std::string(what) + ", got '" +
           std::string(front_token(s)) + "'";
    return false;
  }
  if (r.ec == std::errc::result_out_of_range) {
    *err = std::string(what) + " out of range: '" +
           std::string(front_token(s)) + "'";
    return false;
  }
  s.remove_prefix(static_cast<std::size_t>(r.ptr - begin));
  return true;
}

/// Vertex ids parse through 64 bits so `5000000000` reports "exceeds
/// maximum" rather than a bare overflow.
bool parse_vertex(std::string_view& s, VertexId& out, std::string_view what,
                  VertexId max_id, std::string* err) {
  std::uint64_t wide{};
  if (!parse_token(s, wide, what, err)) return false;
  if (wide > max_id) {
    *err = std::string(what) + " " + std::to_string(wide) +
           " exceeds maximum vertex id " + std::to_string(max_id);
    return false;
  }
  out = static_cast<VertexId>(wide);
  return true;
}

}  // namespace

SnapParseResult parse_snap_stream(std::istream& in,
                                  const SnapReadOptions& opts) {
  SnapParseResult result;
  std::string line;
  std::string err;
  while (std::getline(in, line)) {
    ++result.lines_read;
    std::string_view s = skip_blanks(line);
    if (s.empty() || s.front() == '#' || s.front() == '%') continue;

    VertexId u{}, v{};
    Weight w = 1.0;
    if (!parse_vertex(s, u, "source vertex id", opts.max_vertex_id, &err) ||
        !parse_vertex(s, v, "target vertex id", opts.max_vertex_id, &err)) {
      result.error = {result.lines_read, err};
      return result;
    }
    if (has_more_tokens(s)) {
      const std::string weight_token(front_token(s));
      if (!parse_token(s, w, "edge weight", &err)) {
        result.error = {result.lines_read, err};
        return result;
      }
      if (!std::isfinite(w) || w < 0.0) {
        result.error = {result.lines_read,
                        "edge weight must be finite and non-negative, got '" +
                            weight_token + "'"};
        return result;
      }
    }
    if (has_more_tokens(s)) {
      result.error = {result.lines_read,
                      "unexpected trailing text '" +
                          std::string(front_token(s)) + "'"};
      return result;
    }

    if (opts.drop_self_loops && u == v) continue;
    if (opts.undirected) {
      result.edges.add_undirected(u, v, w);
    } else {
      result.edges.add(u, v, w);
    }
  }
  return result;
}

EdgeList read_snap_stream(std::istream& in, const SnapReadOptions& opts) {
  SnapParseResult result = parse_snap_stream(in, opts);
  if (!result.ok()) {
    throw std::runtime_error("SNAP parse error at line " +
                             std::to_string(result.error->line) + ": " +
                             result.error->message);
  }
  return std::move(result.edges);
}

CsrGraph load_snap_file(const std::filesystem::path& path,
                        const SnapReadOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open graph file: " + path.string());
  }
  EdgeList edges = read_snap_stream(in, opts);
  edges.coalesce();
  return CsrGraph::from_edges(edges);
}

void write_snap_stream(std::ostream& out, const CsrGraph& g) {
  out << "# asamap graph: " << g.num_vertices() << " vertices, "
      << g.num_arcs() << " arcs\n";
  bool weighted = false;
  for (VertexId u = 0; u < g.num_vertices() && !weighted; ++u) {
    for (const Arc& a : g.out_neighbors(u)) {
      if (std::abs(a.weight - 1.0) > 1e-12) {
        weighted = true;
        break;
      }
    }
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.out_neighbors(u)) {
      out << u << '\t' << a.dst;
      if (weighted) out << '\t' << a.weight;
      out << '\n';
    }
  }
}

void save_snap_file(const std::filesystem::path& path, const CsrGraph& g) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write graph file: " + path.string());
  }
  write_snap_stream(out, g);
}

}  // namespace asamap::graph
