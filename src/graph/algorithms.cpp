#include "asamap/graph/algorithms.hpp"

#include <algorithm>

#include "asamap/support/check.hpp"

namespace asamap::graph {

ComponentResult connected_components(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  ComponentResult result;
  result.component.assign(n, kInvalidVertex);

  std::vector<VertexId> stack;
  std::vector<std::size_t> sizes;
  for (VertexId root = 0; root < n; ++root) {
    if (result.component[root] != kInvalidVertex) continue;
    const auto comp = static_cast<VertexId>(sizes.size());
    sizes.push_back(0);
    stack.push_back(root);
    result.component[root] = comp;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      ++sizes.back();
      auto visit = [&](VertexId w) {
        if (result.component[w] == kInvalidVertex) {
          result.component[w] = comp;
          stack.push_back(w);
        }
      };
      for (const Arc& arc : g.out_neighbors(u)) visit(arc.dst);
      for (const Arc& arc : g.in_neighbors(u)) visit(arc.dst);
    }
  }
  result.count = sizes.size();
  result.largest_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return result;
}

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, VertexId source) {
  ASAMAP_CHECK(source < g.num_vertices(), "source out of range");
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::vector<VertexId> frontier = {source};
  dist[source] = 0;
  std::uint32_t hops = 0;
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    ++hops;
    next.clear();
    for (VertexId u : frontier) {
      for (const Arc& arc : g.out_neighbors(u)) {
        if (dist[arc.dst] == kUnreachable) {
          dist[arc.dst] = hops;
          next.push_back(arc.dst);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

namespace {

/// Counts edges among the neighbors of v (each counted once).
std::uint64_t links_among_neighbors(const CsrGraph& g, VertexId v) {
  const auto nbrs = g.out_neighbors(v);
  std::uint64_t links = 0;
  for (const Arc& a : nbrs) {
    if (a.dst == v) continue;
    // For each neighbor u, count its neighbors that are also neighbors of
    // v with a higher id (avoid double counting).  Both lists are sorted.
    const auto u_nbrs = g.out_neighbors(a.dst);
    std::size_t i = 0, j = 0;
    while (i < nbrs.size() && j < u_nbrs.size()) {
      if (nbrs[i].dst < u_nbrs[j].dst) {
        ++i;
      } else if (nbrs[i].dst > u_nbrs[j].dst) {
        ++j;
      } else {
        if (nbrs[i].dst > a.dst && nbrs[i].dst != v) ++links;
        ++i;
        ++j;
      }
    }
  }
  return links;
}

}  // namespace

double local_clustering(const CsrGraph& g, VertexId v) {
  ASAMAP_CHECK(g.is_symmetric(), "clustering needs an undirected graph");
  const std::size_t d = g.out_degree(v);
  if (d < 2) return 0.0;
  const double possible = static_cast<double>(d) * (d - 1) / 2.0;
  return static_cast<double>(links_among_neighbors(g, v)) / possible;
}

double average_clustering(const CsrGraph& g) {
  ASAMAP_CHECK(g.is_symmetric(), "clustering needs an undirected graph");
  const VertexId n = g.num_vertices();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (VertexId v = 0; v < n; ++v) sum += local_clustering(g, v);
  return sum / static_cast<double>(n);
}

double transitivity(const CsrGraph& g) {
  ASAMAP_CHECK(g.is_symmetric(), "transitivity needs an undirected graph");
  std::uint64_t triangles3 = 0;  // 3 * triangle count
  std::uint64_t triples = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t d = g.out_degree(v);
    if (d >= 2) triples += d * (d - 1) / 2;
    triangles3 += links_among_neighbors(g, v);
  }
  return triples == 0 ? 0.0
                      : static_cast<double>(triangles3) /
                            static_cast<double>(triples);
}

}  // namespace asamap::graph
