#include "asamap/gen/datasets.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "asamap/gen/generators.hpp"
#include "asamap/support/rng.hpp"

namespace asamap::gen {
namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  return out;
}

/// Stable 64-bit seed from the dataset name so graphs are reproducible
/// across processes without a shared state file.
std::uint64_t name_seed(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char ch : lower(name)) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const std::vector<DatasetSpec>& dataset_registry() {
  // Stand-in sizes are the paper's Table I counts divided by a per-network
  // scale factor (20x-50x), keeping mean degree exact and matching the
  // degree exponent reported in the SNAP literature for each network.
  static const std::vector<DatasetSpec> kRegistry = {
      //  name          paper V   paper E     V       E        gamma  maxdeg
      {"Amazon",        334863,   925872,    16743,   46294,   3.0,   400},
      {"DBLP",          317080,   1049866,   15854,   52493,   3.2,   300},
      {"YouTube",       1134890,  2987624,   37830,   99587,   2.0,   3000},
      {"soc-Pokec",     1632803,  30622564,  40820,   765564,  2.4,   1500},
      {"LiveJournal",   3997962,  34681189,  99949,   867030,  2.4,   2000},
      {"Orkut",         3072441,  117185083, 61449,   2343702, 2.7,   3000},
  };
  return kRegistry;
}

const DatasetSpec& dataset_spec(std::string_view name) {
  const std::string needle = lower(name);
  for (const DatasetSpec& spec : dataset_registry()) {
    const std::string have = lower(spec.name);
    if (have == needle || have == "soc-" + needle ||
        ("soc-" + needle) == have || needle == "soc-" + have) {
      return spec;
    }
    // Accept "Pokec" for "soc-Pokec".
    if (have.size() > 4 && have.substr(4) == needle) return spec;
  }
  throw std::out_of_range("unknown dataset: " + std::string(name));
}

graph::CsrGraph make_dataset(const DatasetSpec& spec) {
  ChungLuParams params;
  params.n = spec.vertices;
  params.target_edges = spec.edges;
  params.gamma = spec.gamma;
  params.min_deg = 1;
  params.max_deg = spec.max_degree;
  return chung_lu(params, name_seed(spec.name));
}

graph::CsrGraph make_dataset(std::string_view name) {
  return make_dataset(dataset_spec(name));
}

}  // namespace asamap::gen
