#pragma once

/// \file lfr.hpp
/// Lancichinetti–Fortunato–Radicchi benchmark generator.  The paper's
/// opening claim — that Infomap beats modularity methods on quality — is an
/// LFR result, so the reproduction ships a working LFR generator to let the
/// examples and tests re-check community quality (NMI against the planted
/// partition) across the mixing parameter mu.
///
/// Construction follows the published recipe:
///   1. vertex degrees  ~ power law, exponent tau1, bounded mean degree
///   2. community sizes ~ power law, exponent tau2
///   3. each vertex gets (1-mu)*k internal stubs and mu*k external stubs
///   4. internal stubs matched within the community, external stubs matched
///      across communities (configuration-model matching with retry)

#include <cstdint>
#include <vector>

#include "asamap/graph/csr_graph.hpp"

namespace asamap::gen {

struct LfrParams {
  graph::VertexId n = 1000;
  double mu = 0.3;           ///< mixing: fraction of each vertex's edges leaving its community
  double tau1 = 2.5;         ///< degree exponent
  double tau2 = 1.5;         ///< community-size exponent
  std::uint32_t min_degree = 4;
  std::uint32_t max_degree = 50;
  std::uint32_t min_community = 10;
  std::uint32_t max_community = 100;
};

struct LfrGraph {
  graph::CsrGraph graph;
  std::vector<graph::VertexId> ground_truth;  ///< community id per vertex
  std::size_t num_communities = 0;
};

/// Generates an LFR benchmark instance.  Deterministic given the seed.
/// Throws std::invalid_argument when the parameter combination is
/// unsatisfiable (e.g. max internal degree exceeds max community size).
LfrGraph lfr_benchmark(const LfrParams& params, std::uint64_t seed);

}  // namespace asamap::gen
