#pragma once

/// \file datasets.hpp
/// Registry of synthetic stand-ins for the paper's six SNAP networks
/// (Table I).  Each stand-in is a Chung-Lu power-law graph whose mean degree
/// and degree exponent match the real network, scaled down so the full
/// experiment suite runs on one machine.  The scale factor is recorded so
/// EXPERIMENTS.md can report it.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asamap/graph/csr_graph.hpp"

namespace asamap::gen {

struct DatasetSpec {
  std::string name;              ///< paper's name, e.g. "soc-Pokec"
  std::uint64_t paper_vertices;  ///< Table I vertex count
  std::uint64_t paper_edges;     ///< Table I edge count
  graph::VertexId vertices;      ///< stand-in vertex count (scaled)
  std::uint64_t edges;           ///< stand-in target undirected edge count
  double gamma;                  ///< power-law exponent of the stand-in
  std::uint32_t max_degree;      ///< degree cap for the stand-in
};

/// The six networks of Table I, in paper order.
const std::vector<DatasetSpec>& dataset_registry();

/// Looks up a spec by (case-insensitive) name; throws std::out_of_range on
/// unknown names.  Accepts both "soc-Pokec" and "Pokec" style names.
const DatasetSpec& dataset_spec(std::string_view name);

/// Materializes the stand-in graph for a spec.  Deterministic: the seed is
/// derived from the dataset name, so every bench and test sees the same
/// graph.
graph::CsrGraph make_dataset(const DatasetSpec& spec);

/// Convenience overload.
graph::CsrGraph make_dataset(std::string_view name);

}  // namespace asamap::gen
