#pragma once

/// \file alias_table.hpp
/// Walker/Vose alias method: O(1) sampling from a fixed discrete
/// distribution after O(n) setup.  The Chung-Lu generator draws millions of
/// edge endpoints proportional to expected degrees, so constant-time
/// sampling matters.

#include <cstdint>
#include <vector>

#include "asamap/support/rng.hpp"

namespace asamap::gen {

class AliasTable {
 public:
  /// Builds the table from non-negative weights.  Zero-weight entries are
  /// never sampled.  Throws std::invalid_argument if all weights are zero.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index distributed proportionally to the construction weights.
  [[nodiscard]] std::size_t sample(support::Xoshiro256& rng) const noexcept {
    const std::size_t i = rng.next_below(prob_.size());
    return rng.next_double() < prob_[i] ? i : alias_[i];
  }

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace asamap::gen
