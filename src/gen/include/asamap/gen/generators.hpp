#pragma once

/// \file generators.hpp
/// Random-graph generators.  All are deterministic given the seed, produce
/// simple undirected graphs (coalesced, no self loops), and return CSR form.
///
/// These are the substitution for the paper's SNAP downloads: the
/// experiments depend on sparsity and degree-distribution shape (Figs. 4-5)
/// and on hash-accumulation behaviour over neighborhoods, both of which the
/// generators control directly.

#include <cstdint>

#include "asamap/graph/csr_graph.hpp"

namespace asamap::gen {

using graph::CsrGraph;
using graph::VertexId;

/// Erdős–Rényi G(n, p) via geometric edge skipping — O(n + m), not O(n^2).
CsrGraph erdos_renyi(VertexId n, double p, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches
/// `m_per_vertex` edges to existing vertices with probability proportional
/// to degree.  Produces gamma ≈ 3 power-law tails.
CsrGraph barabasi_albert(VertexId n, std::uint32_t m_per_vertex,
                         std::uint64_t seed);

/// Chung-Lu with a power-law expected-degree sequence: draws `target_arcs/2`
/// undirected edges with endpoints sampled proportional to expected degrees
/// drawn from P(k) ~ k^-gamma on [min_deg, max_deg].  This is the generator
/// behind the paper-network stand-ins — gamma and mean degree are matched to
/// the real SNAP networks.
struct ChungLuParams {
  VertexId n = 0;
  std::uint64_t target_edges = 0;  ///< undirected edge count before dedup
  double gamma = 2.5;
  std::uint32_t min_deg = 1;
  std::uint32_t max_deg = 0;  ///< 0 => n - 1
};
CsrGraph chung_lu(const ChungLuParams& params, std::uint64_t seed);

/// R-MAT (recursive matrix): the Graph500-style generator, with per-edge
/// quadrant probabilities (a, b, c, d).  Produces skewed degrees and
/// community-ish block structure.
struct RmatParams {
  std::uint32_t scale = 16;         ///< n = 2^scale vertices
  std::uint64_t edges_per_vertex = 8;
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c
};
CsrGraph rmat(const RmatParams& params, std::uint64_t seed);

/// Watts-Strogatz small world: a ring lattice with `k` neighbors per side,
/// each edge rewired with probability `beta`.  High clustering at low beta,
/// short paths at any beta > 0 — the classic small-world regime, used to
/// exercise the clustering-coefficient statistics and as a non-power-law
/// contrast workload.
CsrGraph watts_strogatz(VertexId n, std::uint32_t k, double beta,
                        std::uint64_t seed);

/// Planted partition: `num_communities` equal groups; intra-group edges with
/// probability p_in, inter-group with p_out.  Returns the ground-truth
/// assignment used by quality tests (NMI ~ 1 when p_in >> p_out).
struct PlantedPartition {
  CsrGraph graph;
  std::vector<VertexId> ground_truth;  ///< community id per vertex
};
PlantedPartition planted_partition(VertexId n, VertexId num_communities,
                                   double p_in, double p_out,
                                   std::uint64_t seed);

}  // namespace asamap::gen
