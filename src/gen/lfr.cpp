#include "asamap/gen/lfr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "asamap/graph/edge_list.hpp"
#include "asamap/support/check.hpp"
#include "asamap/support/rng.hpp"

namespace asamap::gen {

using graph::EdgeList;
using graph::VertexId;
using support::Xoshiro256;

namespace {

/// Matches stubs within `stubs` (each entry one half-edge) into edges,
/// shuffling and pairing consecutive entries; rejects self loops by
/// re-rolling a partner a few times, then dropping the stub.  LFR tolerates
/// a small deficit of edges — the reference implementation does the same.
void match_stubs(std::vector<VertexId>& stubs, EdgeList& edges,
                 Xoshiro256& rng) {
  // Fisher-Yates shuffle.
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
  }
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    VertexId u = stubs[i];
    VertexId v = stubs[i + 1];
    if (u == v) {
      // Try to swap v with a later stub belonging to a different vertex.
      for (std::size_t j = i + 2; j < stubs.size(); ++j) {
        if (stubs[j] != u) {
          std::swap(stubs[i + 1], stubs[j]);
          v = stubs[i + 1];
          break;
        }
      }
      if (u == v) continue;  // all remaining stubs are u's: drop
    }
    edges.add_undirected(u, v);
  }
}

}  // namespace

LfrGraph lfr_benchmark(const LfrParams& params, std::uint64_t seed) {
  ASAMAP_CHECK(params.n >= 10, "LFR needs at least 10 vertices");
  ASAMAP_CHECK(params.mu >= 0.0 && params.mu <= 1.0, "mu out of [0,1]");
  ASAMAP_CHECK(params.min_community <= params.max_community,
               "community size bounds inverted");
  ASAMAP_CHECK(params.min_degree <= params.max_degree,
               "degree bounds inverted");
  if (static_cast<double>(params.max_degree) * (1.0 - params.mu) >
      static_cast<double>(params.max_community)) {
    throw std::invalid_argument(
        "LFR: internal degree can exceed the largest community size");
  }

  Xoshiro256 rng(seed);
  const VertexId n = params.n;

  // 1. Degree sequence.
  std::vector<std::uint32_t> degree(n);
  for (auto& k : degree) {
    k = support::sample_power_law(rng, params.min_degree, params.max_degree,
                                  params.tau1);
  }

  // 2. Community sizes: draw until they cover n, then trim the last one.
  std::vector<std::uint32_t> comm_size;
  std::uint64_t covered = 0;
  while (covered < n) {
    std::uint32_t s = support::sample_power_law(
        rng, params.min_community, params.max_community, params.tau2);
    if (covered + s > n) {
      s = static_cast<std::uint32_t>(n - covered);
      if (s < params.min_community && !comm_size.empty()) {
        // Fold the remainder into the previous community instead of
        // creating an undersized one.
        comm_size.back() += s;
        covered += s;
        break;
      }
    }
    comm_size.push_back(s);
    covered += s;
  }
  const std::size_t c = comm_size.size();

  // 3. Assign vertices to communities such that each vertex's internal
  // degree fits: vertex with internal degree d needs a community of size
  // > d.  Greedy: process vertices in decreasing internal degree, place
  // each into the community with the most remaining slots that satisfies
  // the constraint.
  std::vector<VertexId> membership(n, graph::kInvalidVertex);
  std::vector<std::uint32_t> remaining = comm_size;
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return degree[a] > degree[b];
  });
  for (VertexId u : order) {
    const auto internal = static_cast<std::uint32_t>(
        std::lround((1.0 - params.mu) * degree[u]));
    // Pick the feasible community with the most free slots (ties by index).
    std::size_t best = c;
    std::uint32_t best_slots = 0;
    for (std::size_t i = 0; i < c; ++i) {
      if (remaining[i] == 0) continue;
      if (comm_size[i] <= internal) continue;  // cannot host this vertex
      if (remaining[i] > best_slots) {
        best_slots = remaining[i];
        best = i;
      }
    }
    if (best == c) {
      // No feasible community with space: relax into the largest community.
      best = static_cast<std::size_t>(std::distance(
          comm_size.begin(), std::max_element(comm_size.begin(), comm_size.end())));
    } else {
      --remaining[best];
    }
    membership[u] = static_cast<VertexId>(best);
  }

  // 4. Stub matching: internal per community, external globally.
  std::vector<std::vector<VertexId>> internal_stubs(c);
  std::vector<VertexId> external_stubs;
  for (VertexId u = 0; u < n; ++u) {
    const std::size_t comm = membership[u];
    auto internal = static_cast<std::uint32_t>(
        std::lround((1.0 - params.mu) * degree[u]));
    internal = std::min(internal, comm_size[comm] > 0 ? comm_size[comm] - 1
                                                      : 0);
    const std::uint32_t external = degree[u] - std::min(degree[u], internal);
    for (std::uint32_t s = 0; s < internal; ++s) {
      internal_stubs[comm].push_back(u);
    }
    for (std::uint32_t s = 0; s < external; ++s) external_stubs.push_back(u);
  }

  EdgeList edges;
  edges.ensure_vertex_count(n);
  for (auto& stubs : internal_stubs) match_stubs(stubs, edges, rng);

  // External matching must avoid intra-community pairs where possible:
  // shuffle, then pair with local repair.
  {
    auto& stubs = external_stubs;
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
    }
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      VertexId u = stubs[i];
      VertexId v = stubs[i + 1];
      if (u == v || membership[u] == membership[v]) {
        for (std::size_t j = i + 2; j < stubs.size(); ++j) {
          if (stubs[j] != u && membership[stubs[j]] != membership[u]) {
            std::swap(stubs[i + 1], stubs[j]);
            v = stubs[i + 1];
            break;
          }
        }
      }
      if (u == v) continue;
      edges.add_undirected(u, v);
    }
  }

  edges.coalesce();
  LfrGraph out;
  out.graph = graph::CsrGraph::from_edges(edges, n);
  out.ground_truth = std::move(membership);
  out.num_communities = c;
  return out;
}

}  // namespace asamap::gen
