#include "asamap/gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "asamap/gen/alias_table.hpp"
#include "asamap/graph/edge_list.hpp"
#include "asamap/support/check.hpp"
#include "asamap/support/rng.hpp"

namespace asamap::gen {

using graph::EdgeList;
using support::Xoshiro256;

CsrGraph erdos_renyi(VertexId n, double p, std::uint64_t seed) {
  ASAMAP_CHECK(p >= 0.0 && p <= 1.0, "edge probability out of [0,1]");
  EdgeList edges;
  edges.ensure_vertex_count(n);
  if (n >= 2 && p > 0.0) {
    Xoshiro256 rng(seed);
    // Iterate the upper triangle as one flat index stream and skip ahead by
    // geometrically distributed gaps: the next present edge after position t
    // is t + 1 + Geom(p).
    const double log1mp = std::log1p(-p);
    const __uint128_t total =
        static_cast<__uint128_t>(n) * (n - 1) / 2;  // upper-triangle cells
    __uint128_t t = 0;
    const bool dense = p >= 1.0;
    while (t < total) {
      if (!dense) {
        const double u = 1.0 - rng.next_double();  // in (0, 1]
        const double skip = std::floor(std::log(u) / log1mp);
        t += static_cast<__uint128_t>(skip);
        if (t >= total) break;
      }
      // Decode flat upper-triangle index t -> (i, j), i < j.
      // Row i owns (n - 1 - i) cells; walk rows analytically.
      const double tf = static_cast<double>(t);
      const double nf = static_cast<double>(n);
      double i_est = nf - 0.5 -
                     std::sqrt((nf - 0.5) * (nf - 0.5) - 2.0 * tf);
      auto i = static_cast<VertexId>(std::max(0.0, std::floor(i_est)));
      // Fix up float error.
      auto row_start = [&](VertexId r) -> __uint128_t {
        return static_cast<__uint128_t>(r) * n - static_cast<__uint128_t>(r) * (r + 1) / 2;
      };
      while (i + 1 < n && row_start(i + 1) <= t) ++i;
      while (i > 0 && row_start(i) > t) --i;
      const auto j = static_cast<VertexId>(
          i + 1 + static_cast<std::uint64_t>(t - row_start(i)));
      edges.add_undirected(i, j);
      ++t;
    }
  }
  edges.coalesce();
  return CsrGraph::from_edges(edges, n);
}

CsrGraph barabasi_albert(VertexId n, std::uint32_t m_per_vertex,
                         std::uint64_t seed) {
  ASAMAP_CHECK(m_per_vertex >= 1, "need at least one edge per new vertex");
  ASAMAP_CHECK(n > m_per_vertex, "n must exceed edges-per-vertex");
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.ensure_vertex_count(n);

  // "Repeated nodes" list: every endpoint occurrence is one entry, so a
  // uniform draw from the list is a degree-proportional draw of a vertex.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2ULL * m_per_vertex * n);

  // Seed clique over the first m+1 vertices.
  const VertexId seed_size = m_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      edges.add_undirected(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> chosen;
  chosen.reserve(m_per_vertex);
  for (VertexId u = seed_size; u < n; ++u) {
    chosen.clear();
    // Sample m distinct existing targets, degree-proportionally.
    while (chosen.size() < m_per_vertex) {
      const VertexId cand = endpoints[rng.next_below(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
        chosen.push_back(cand);
      }
    }
    for (VertexId v : chosen) {
      edges.add_undirected(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  edges.coalesce();
  return CsrGraph::from_edges(edges, n);
}

CsrGraph chung_lu(const ChungLuParams& params, std::uint64_t seed) {
  ASAMAP_CHECK(params.n >= 2, "need at least two vertices");
  Xoshiro256 rng(seed);
  const std::uint32_t max_deg =
      params.max_deg == 0 ? params.n - 1
                          : std::min<std::uint32_t>(params.max_deg, params.n - 1);

  // Expected-degree sequence ~ power law.
  std::vector<double> weights(params.n);
  for (auto& w : weights) {
    w = static_cast<double>(
        support::sample_power_law(rng, params.min_deg, max_deg, params.gamma));
  }

  AliasTable table(weights);
  EdgeList edges;
  edges.ensure_vertex_count(params.n);
  edges.reserve(2 * params.target_edges);
  for (std::uint64_t e = 0; e < params.target_edges; ++e) {
    const auto u = static_cast<VertexId>(table.sample(rng));
    const auto v = static_cast<VertexId>(table.sample(rng));
    if (u == v) continue;  // slight undershoot; matches Chung-Lu expectations
    edges.add_undirected(u, v);
  }
  edges.coalesce();
  return CsrGraph::from_edges(edges, params.n);
}

CsrGraph rmat(const RmatParams& params, std::uint64_t seed) {
  const double d = 1.0 - params.a - params.b - params.c;
  ASAMAP_CHECK(d >= -1e-9, "R-MAT probabilities exceed 1");
  Xoshiro256 rng(seed);
  const VertexId n = VertexId{1} << params.scale;
  const std::uint64_t m = params.edges_per_vertex * n;

  EdgeList edges;
  edges.ensure_vertex_count(n);
  edges.reserve(2 * m);
  for (std::uint64_t e = 0; e < m; ++e) {
    VertexId u = 0, v = 0;
    for (std::uint32_t bit = params.scale; bit-- > 0;) {
      const double r = rng.next_double();
      // Quadrant choice with light noise per level (standard practice to
      // avoid exact self-similarity artifacts).
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < params.a + params.b) {
        v |= VertexId{1} << bit;
      } else if (r < params.a + params.b + params.c) {
        u |= VertexId{1} << bit;
      } else {
        u |= VertexId{1} << bit;
        v |= VertexId{1} << bit;
      }
    }
    if (u == v) continue;
    edges.add_undirected(u, v);
  }
  edges.coalesce();
  return CsrGraph::from_edges(edges, n);
}

CsrGraph watts_strogatz(VertexId n, std::uint32_t k, double beta,
                        std::uint64_t seed) {
  ASAMAP_CHECK(k >= 1 && 2ULL * k < n, "ring degree out of range");
  ASAMAP_CHECK(beta >= 0.0 && beta <= 1.0, "beta out of [0,1]");
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.ensure_vertex_count(n);
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.next_double() < beta) {
        // Rewire to a uniform random non-self target; duplicate edges are
        // merged at coalesce, slightly lowering the realized degree — the
        // standard WS construction accepts the same.
        VertexId w;
        do {
          w = static_cast<VertexId>(rng.next_below(n));
        } while (w == u);
        v = w;
      }
      edges.add_undirected(u, v);
    }
  }
  edges.coalesce();
  return CsrGraph::from_edges(edges, n);
}

PlantedPartition planted_partition(VertexId n, VertexId num_communities,
                                   double p_in, double p_out,
                                   std::uint64_t seed) {
  ASAMAP_CHECK(num_communities >= 1 && num_communities <= n,
               "community count out of range");
  ASAMAP_CHECK(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1,
               "probabilities out of [0,1]");
  Xoshiro256 rng(seed);

  PlantedPartition result;
  result.ground_truth.resize(n);
  for (VertexId u = 0; u < n; ++u) {
    result.ground_truth[u] = u % num_communities;
  }

  EdgeList edges;
  edges.ensure_vertex_count(n);
  // Geometric skipping over the flat upper triangle, with per-pair thinning:
  // sample at rate p_max, keep a candidate (u, v) with probability
  // p(u,v)/p_max.  Exact and O(m) in expectation.
  const double p_max = std::max(p_in, p_out);
  if (p_max > 0.0 && n >= 2) {
    const double log1mp = std::log1p(-std::min(p_max, 1.0 - 1e-15));
    const __uint128_t total = static_cast<__uint128_t>(n) * (n - 1) / 2;
    auto row_start = [&](VertexId r) -> __uint128_t {
      return static_cast<__uint128_t>(r) * n -
             static_cast<__uint128_t>(r) * (r + 1) / 2;
    };
    __uint128_t t = 0;
    while (t < total) {
      if (p_max < 1.0) {
        const double u01 = 1.0 - rng.next_double();
        t += static_cast<__uint128_t>(std::floor(std::log(u01) / log1mp));
        if (t >= total) break;
      }
      const double tf = static_cast<double>(t);
      const double nf = static_cast<double>(n);
      double i_est =
          nf - 0.5 - std::sqrt((nf - 0.5) * (nf - 0.5) - 2.0 * tf);
      auto i = static_cast<VertexId>(std::max(0.0, std::floor(i_est)));
      while (i + 1 < n && row_start(i + 1) <= t) ++i;
      while (i > 0 && row_start(i) > t) --i;
      const auto j = static_cast<VertexId>(
          i + 1 + static_cast<std::uint64_t>(t - row_start(i)));
      const double p_pair =
          result.ground_truth[i] == result.ground_truth[j] ? p_in : p_out;
      if (rng.next_double() < p_pair / p_max) edges.add_undirected(i, j);
      ++t;
    }
  }
  edges.coalesce();
  result.graph = CsrGraph::from_edges(edges, n);
  return result;
}

}  // namespace asamap::gen
