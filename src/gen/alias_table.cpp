#include "asamap/gen/alias_table.hpp"

#include <numeric>
#include <stdexcept>

namespace asamap::gen {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0)) {
    throw std::invalid_argument("AliasTable: all weights zero");
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's algorithm: partition scaled probabilities into "small" (< 1) and
  // "large" (>= 1), then pair each small cell with a large donor.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Residual cells are exactly 1 up to rounding.
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;
}

}  // namespace asamap::gen
