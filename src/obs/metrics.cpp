#include "asamap/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "asamap/support/check.hpp"

namespace asamap::obs {
namespace {

std::string make_key(std::string_view name, std::string_view labels) {
  std::string key;
  key.reserve(name.size() + labels.size() + 2);
  key += name;
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Escapes one stretch of label-value text for the exposition format,
/// passing already-escaped sequences (`\\`, `\"`, `\n`) through unchanged
/// so sanitizing is idempotent.
std::string escape_label_chunk(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const char c = v[i];
    if (c == '\\') {
      if (i + 1 < v.size() &&
          (v[i + 1] == '\\' || v[i + 1] == '"' || v[i + 1] == 'n')) {
        out += c;
        out += v[i + 1];
        ++i;
      } else {
        out += "\\\\";
      }
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Renders a stored label body (`key="value",...`) with every label value
/// escaped per the Prometheus exposition rules.  Writers are expected to
/// pass clean values (or run them through escape_label_value), but a raw
/// `"`, `\`, or newline that slipped into a value must not corrupt the
/// scrape: a value's closing quote is recognized only when followed by
/// `,` or end-of-body, so embedded quotes are treated as content.
std::string sanitize_labels(std::string_view labels) {
  std::string out;
  out.reserve(labels.size());
  std::size_t i = 0;
  while (i < labels.size()) {
    const std::size_t eq = labels.find('=', i);
    if (eq == std::string_view::npos || eq + 1 >= labels.size() ||
        labels[eq + 1] != '"') {
      // Not the key="value" shape: keep the text but neutralize newlines,
      // which would otherwise break the line-oriented exposition.
      out += escape_label_chunk(labels.substr(i));
      break;
    }
    out.append(labels.substr(i, eq + 2 - i));  // key="
    std::size_t close = eq + 2;
    while (close < labels.size() &&
           !(labels[close] == '"' && (close + 1 == labels.size() ||
                                      labels[close + 1] == ','))) {
      ++close;
    }
    out += escape_label_chunk(
        labels.substr(eq + 2, std::min(close, labels.size()) - (eq + 2)));
    out += '"';
    if (close >= labels.size()) break;
    i = close + 1;
    if (i < labels.size() && labels[i] == ',') {
      out += ',';
      ++i;
    }
  }
  return out;
}

/// `name{labels,extra}` with braces elided when there is nothing to wrap.
std::string prom_series(const std::string& name, const std::string& labels,
                        std::string_view extra = {}) {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name;
  out += '{';
  out += sanitize_labels(labels);
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  return escape_label_chunk(value);
}

MetricRegistry::Entry& MetricRegistry::find_or_create(MetricKind kind,
                                                      std::string_view name,
                                                      std::string_view labels) {
  const std::string key = make_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    Entry& e = *entries_[it->second];
    ASAMAP_CHECK(e.kind == kind, "metric '" + key + "' already registered as " +
                                     std::string(to_string(e.kind)));
    return e;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = std::string(name);
  entry->labels = std::string(labels);
  switch (kind) {
    case MetricKind::kCounter: entry->c = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: entry->g = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      entry->h = std::make_unique<Histogram>();
      break;
  }
  index_[key] = entries_.size();
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

const MetricRegistry::Entry* MetricRegistry::find(
    std::string_view name, std::string_view labels) const {
  const std::string key = make_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : entries_[it->second].get();
}

Counter& MetricRegistry::counter(std::string_view name,
                                 std::string_view labels) {
  return *find_or_create(MetricKind::kCounter, name, labels).c;
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view labels) {
  return *find_or_create(MetricKind::kGauge, name, labels).g;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::string_view labels) {
  return *find_or_create(MetricKind::kHistogram, name, labels).h;
}

std::vector<MetricSample> MetricRegistry::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.kind = e->kind;
    s.name = e->name;
    s.labels = e->labels;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e->c->value());
        break;
      case MetricKind::kGauge: s.value = e->g->value(); break;
      case MetricKind::kHistogram: s.hist = e->h->merged(); break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricRegistry::write_prometheus(std::ostream& os) const {
  const auto all = samples();
  // Exposition format requires all samples of a metric name to sit
  // contiguously under one `# TYPE` line, so group by name (names ordered
  // by first registration, label sets in registration order within one).
  std::vector<std::string> name_order;
  std::unordered_map<std::string, std::vector<const MetricSample*>> by_name;
  for (const auto& s : all) {
    auto& group = by_name[s.name];
    if (group.empty()) name_order.push_back(s.name);
    group.push_back(&s);
  }
  for (const auto& name : name_order) {
    const auto& group = by_name[name];
    os << "# TYPE " << name << ' ' << to_string(group.front()->kind) << '\n';
    for (const MetricSample* sp : group) write_prometheus_sample(os, *sp);
  }
}

void MetricRegistry::write_prometheus_sample(std::ostream& os,
                                             const MetricSample& s) {
  switch (s.kind) {
    case MetricKind::kCounter:
      os << prom_series(s.name, s.labels) << ' '
         << static_cast<std::uint64_t>(s.value) << '\n';
      break;
    case MetricKind::kGauge:
      os << prom_series(s.name, s.labels) << ' ' << fmt_double(s.value)
         << '\n';
      break;
    case MetricKind::kHistogram: {
      for (const double q : {0.5, 0.9, 0.99}) {
        os << prom_series(s.name, s.labels,
                          "quantile=\"" + fmt_double(q) + "\"")
           << ' ' << fmt_double(s.hist.quantile_seconds(q)) << '\n';
      }
      os << prom_series(s.name + "_sum", s.labels) << ' '
         << fmt_double(s.hist.total_seconds()) << '\n';
      os << prom_series(s.name + "_count", s.labels) << ' ' << s.hist.count()
         << '\n';
      break;
    }
  }
}

void MetricRegistry::write_json(std::ostream& os, const char* indent) const {
  const auto all = samples();
  if (all.empty()) {
    os << "{}";
    return;
  }
  os << "{\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& s = all[i];
    os << indent << "  \"" << escape_json(prom_series(s.name, s.labels))
       << "\": ";
    switch (s.kind) {
      case MetricKind::kCounter:
        os << static_cast<std::uint64_t>(s.value);
        break;
      case MetricKind::kGauge: os << fmt_double(s.value); break;
      case MetricKind::kHistogram:
        os << "{\"count\": " << s.hist.count()
           << ", \"sum\": " << fmt_double(s.hist.total_seconds())
           << ", \"mean\": " << fmt_double(s.hist.mean_seconds())
           << ", \"min\": " << fmt_double(s.hist.min_seconds())
           << ", \"max\": " << fmt_double(s.hist.max_seconds())
           << ", \"p50\": " << fmt_double(s.hist.quantile_seconds(0.5))
           << ", \"p90\": " << fmt_double(s.hist.quantile_seconds(0.9))
           << ", \"p99\": " << fmt_double(s.hist.quantile_seconds(0.99))
           << ", \"buckets\": \"" << s.hist.encode_buckets() << "\"}";
        break;
    }
    os << (i + 1 < all.size() ? ",\n" : "\n");
  }
  os << indent << '}';
}

std::uint64_t MetricRegistry::counter_total(std::string_view name,
                                            std::string_view labels) const {
  const Entry* e = find(name, labels);
  return e != nullptr && e->kind == MetricKind::kCounter ? e->c->value() : 0;
}

double MetricRegistry::gauge_value(std::string_view name,
                                   std::string_view labels) const {
  const Entry* e = find(name, labels);
  return e != nullptr && e->kind == MetricKind::kGauge ? e->g->value() : 0.0;
}

std::uint64_t MetricRegistry::counter_sum(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t sum = 0;
  for (const auto& e : entries_) {
    if (e->kind == MetricKind::kCounter && e->name == name) {
      sum += e->c->value();
    }
  }
  return sum;
}

support::LatencyHistogram MetricRegistry::histogram_merged(
    std::string_view name, std::string_view labels) const {
  const Entry* e = find(name, labels);
  return e != nullptr && e->kind == MetricKind::kHistogram
             ? e->h->merged()
             : support::LatencyHistogram{};
}

support::LatencyHistogram MetricRegistry::histogram_merged_all(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  support::LatencyHistogram out;
  for (const auto& e : entries_) {
    if (e->kind == MetricKind::kHistogram && e->name == name) {
      out.merge(e->h->merged());
    }
  }
  return out;
}

double MetricRegistry::histogram_total_seconds(std::string_view name,
                                               std::string_view labels) const {
  return histogram_merged(name, labels).total_seconds();
}

}  // namespace asamap::obs
