#include "asamap/obs/tracing.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "asamap/support/hash.hpp"

namespace asamap::obs {

namespace {

thread_local TraceContext g_current;

/// Process-wide monotone thread index; thread N records into ring
/// N % kMaxRings.  Same shape as Histogram's shard index.
std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t resolve_ring_capacity(std::size_t requested) noexcept {
  if (requested == 0) {
    requested = 4096;
    if (const char* env = std::getenv("ASAMAP_TRACE_RING")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        requested = static_cast<std::size_t>(v);
      }
    }
  }
  return std::clamp(round_up_pow2(requested), std::size_t{64},
                    std::size_t{1} << 20);
}

int kind_rank(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kBegin: return 0;
    case TraceKind::kInstant: return 1;
    case TraceKind::kComplete: return 2;
    case TraceKind::kEnd: return 3;
  }
  return 4;
}

char kind_phase(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kBegin: return 'B';
    case TraceKind::kEnd: return 'E';
    case TraceKind::kComplete: return 'X';
    case TraceKind::kInstant: return 'i';
  }
  return 'i';
}

void write_escaped(std::ostream& os, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      os << '\\' << *p;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << *p;
    }
  }
}

}  // namespace

const char* to_string(TraceCat cat) noexcept {
  switch (cat) {
    case TraceCat::kSession: return "session";
    case TraceCat::kScheduler: return "scheduler";
    case TraceCat::kRegistry: return "registry";
    case TraceCat::kKernel: return "kernel";
    case TraceCat::kFault: return "fault";
    case TraceCat::kUser: return "user";
  }
  return "user";
}

TraceContext current_trace() noexcept { return g_current; }

std::uint64_t mint_trace_id() noexcept {
  // Seeded per process so ids minted by cooperating processes (router and
  // shards merging spans under one trace via TRACECTX) don't collide the
  // way a plain 1,2,3,... counter would.  |1 keeps 0 = "no trace".
  static std::atomic<std::uint64_t> next{
      support::mix64(static_cast<std::uint64_t>(::getpid()) ^
                     static_cast<std::uint64_t>(
                         std::chrono::steady_clock::now()
                             .time_since_epoch()
                             .count())) |
      1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// One ring cell.  Every field is atomic so a concurrent dump never races
/// with a writer at the memory-model level; the stamp seqlock decides
/// whether the decoded value is coherent.  stamp == index+1 marks a fully
/// written cell for that wrap; 0 marks "being rewritten".
struct FlightRecorder::Cell {
  std::atomic<std::uint64_t> stamp{0};
  std::atomic<std::uint64_t> ts{0};
  std::atomic<std::uint64_t> dur{0};
  std::atomic<std::uint64_t> trace{0};
  std::atomic<std::uint64_t> span{0};
  std::atomic<std::uint64_t> parent{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint32_t> meta{0};  // kind | cat<<8 | tid<<16
};

struct FlightRecorder::Ring {
  explicit Ring(std::size_t capacity)
      : mask(capacity - 1), cells(new Cell[capacity]) {}
  std::atomic<std::uint64_t> head{0};  // next logical index to claim
  const std::uint64_t mask;
  std::unique_ptr<Cell[]> cells;
};

FlightRecorder::FlightRecorder(std::size_t events_per_ring)
    : ring_capacity_(resolve_ring_capacity(events_per_ring)) {}

FlightRecorder::~FlightRecorder() {
  for (auto& slot : rings_) {
    delete slot.load(std::memory_order_acquire);
  }
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

std::uint64_t FlightRecorder::now_ns() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() noexcept {
  const std::size_t slot = thread_index() % kMaxRings;
  Ring* ring = rings_[slot].load(std::memory_order_acquire);
  if (ring != nullptr) return ring;
  auto fresh = std::make_unique<Ring>(ring_capacity_);
  Ring* expected = nullptr;
  if (rings_[slot].compare_exchange_strong(expected, fresh.get(),
                                           std::memory_order_acq_rel)) {
    return fresh.release();
  }
  return expected;  // another thread published first
}

void FlightRecorder::record(TraceKind kind, TraceCat cat, const char* name,
                            std::uint64_t trace_id, std::uint64_t span_id,
                            std::uint64_t parent_id, std::uint64_t ts_ns,
                            std::uint64_t dur_ns, std::uint64_t arg) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = ring_for_this_thread();
  const std::uint64_t idx =
      ring->head.fetch_add(1, std::memory_order_relaxed);
  Cell& cell = ring->cells[idx & ring->mask];
  // Invalidate, write the payload, then publish the stamp: a dump that
  // observes stamp == idx+1 with an acquire load sees every payload store.
  cell.stamp.store(0, std::memory_order_release);
  cell.ts.store(ts_ns, std::memory_order_relaxed);
  cell.dur.store(dur_ns, std::memory_order_relaxed);
  cell.trace.store(trace_id, std::memory_order_relaxed);
  cell.span.store(span_id, std::memory_order_relaxed);
  cell.parent.store(parent_id, std::memory_order_relaxed);
  cell.arg.store(arg, std::memory_order_relaxed);
  cell.name.store(name, std::memory_order_relaxed);
  cell.meta.store(static_cast<std::uint32_t>(kind) |
                      (static_cast<std::uint32_t>(cat) << 8) |
                      (thread_index() << 16),
                  std::memory_order_relaxed);
  cell.stamp.store(idx + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::complete(const char* name, TraceCat cat,
                                       TraceContext ctx, std::uint64_t ts_ns,
                                       std::uint64_t dur_ns,
                                       std::uint64_t arg) noexcept {
  const std::uint64_t span = mint_trace_id();
  record(TraceKind::kComplete, cat, name, ctx.trace_id, span, ctx.span_id,
         ts_ns, dur_ns, arg);
  return span;
}

void FlightRecorder::instant(const char* name, TraceCat cat,
                             std::uint64_t arg) noexcept {
  const TraceContext ctx = g_current;
  record(TraceKind::kInstant, cat, name, ctx.trace_id, 0, ctx.span_id,
         now_ns(), 0, arg);
}

const char* FlightRecorder::intern(std::string_view text) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  for (const auto& entry : interned_) {
    if (*entry == text) return entry->c_str();
  }
  if (interned_.size() >= 256) return "mark";  // keep memory bounded
  interned_.push_back(std::make_unique<std::string>(text));
  return interned_.back()->c_str();
}

TraceStats FlightRecorder::stats() const {
  TraceStats out;
  out.ring_capacity = ring_capacity_;
  out.enabled = enabled();
  for (const auto& slot : rings_) {
    const Ring* ring = slot.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    ++out.rings;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    out.recorded += head;
    if (head > ring_capacity_) out.dropped += head - ring_capacity_;
  }
  if (out.recorded > 0) {
    out.dropped_fraction = static_cast<double>(out.dropped) /
                           static_cast<double>(out.recorded);
  }
  return out;
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  for (const auto& slot : rings_) {
    const Ring* ring = slot.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = ring->mask + 1;
    const std::uint64_t lo = head > capacity ? head - capacity : 0;
    for (std::uint64_t i = lo; i < head; ++i) {
      const Cell& cell = ring->cells[i & ring->mask];
      if (cell.stamp.load(std::memory_order_acquire) != i + 1) continue;
      TraceEvent e;
      e.ts_ns = cell.ts.load(std::memory_order_relaxed);
      e.dur_ns = cell.dur.load(std::memory_order_relaxed);
      e.trace_id = cell.trace.load(std::memory_order_relaxed);
      e.span_id = cell.span.load(std::memory_order_relaxed);
      e.parent_id = cell.parent.load(std::memory_order_relaxed);
      e.arg = cell.arg.load(std::memory_order_relaxed);
      e.name = cell.name.load(std::memory_order_relaxed);
      const std::uint32_t meta = cell.meta.load(std::memory_order_relaxed);
      // Re-check the stamp: if a writer reclaimed the cell mid-read the
      // decoded fields may be torn — drop the cell.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (cell.stamp.load(std::memory_order_relaxed) != i + 1) continue;
      e.kind = static_cast<TraceKind>(meta & 0xff);
      e.cat = static_cast<TraceCat>((meta >> 8) & 0xff);
      e.tid = meta >> 16;
      if (e.name == nullptr) continue;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              const int ra = kind_rank(a.kind);
              const int rb = kind_rank(b.kind);
              if (ra != rb) return ra < rb;
              return a.span_id < b.span_id;
            });
  return out;
}

void FlightRecorder::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  char ts_buf[40];
  for (const TraceEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    write_escaped(os, e.name);
    os << "\",\"cat\":\"" << to_string(e.cat) << "\",\"ph\":\""
       << kind_phase(e.kind) << "\",\"ts\":";
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f",
                  static_cast<double>(e.ts_ns) / 1000.0);
    os << ts_buf;
    if (e.kind == TraceKind::kComplete) {
      std::snprintf(ts_buf, sizeof(ts_buf), "%.3f",
                    static_cast<double>(e.dur_ns) / 1000.0);
      os << ",\"dur\":" << ts_buf;
    }
    if (e.kind == TraceKind::kInstant) os << ",\"s\":\"t\"";
    os << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{\"trace\":\""
       << e.trace_id << "\",\"span\":\"" << e.span_id << "\",\"parent\":\""
       << e.parent_id << '"';
    if (e.arg != 0) os << ",\"job\":" << e.arg;
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

TraceScope::TraceScope(TraceContext ctx) noexcept : saved_(g_current) {
  g_current = ctx;
}

TraceScope::~TraceScope() { g_current = saved_; }

TraceSpan::TraceSpan(const char* name, TraceCat cat, FlightRecorder& rec,
                     std::uint64_t arg) noexcept
    : rec_(rec), name_(name), cat_(cat), arg_(arg), prev_(g_current) {
  ctx_.trace_id = prev_.active() ? prev_.trace_id : mint_trace_id();
  ctx_.span_id = mint_trace_id();
  g_current = ctx_;
  rec_.record(TraceKind::kBegin, cat_, name_, ctx_.trace_id, ctx_.span_id,
              prev_.span_id, FlightRecorder::now_ns(), 0, arg_);
}

TraceSpan::~TraceSpan() {
  rec_.record(TraceKind::kEnd, cat_, name_, ctx_.trace_id, ctx_.span_id,
              prev_.span_id, FlightRecorder::now_ns(), 0, arg_);
  g_current = prev_;
}

}  // namespace asamap::obs
