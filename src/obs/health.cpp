#include "asamap/obs/health.hpp"

#include <cstdio>
#include <utility>

namespace asamap::obs {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string HealthReport::render() const {
  std::string out;
  for (const auto& slo : slos) {
    out += "slo=";
    out += slo.name;
    out += " status=";
    out += to_string(slo.status);
    if (!slo.detail.empty()) {
      out += ' ';
      out += slo.detail;
    }
    out += '\n';
  }
  return out;
}

HealthTracker::HealthTracker(MetricRegistry& registry, WindowStore& window,
                             SloConfig config, std::string requests_counter,
                             std::string errors_counter,
                             std::string latency_histogram,
                             std::string breaker_gauge)
    : registry_(registry),
      window_(window),
      config_(config),
      requests_counter_(std::move(requests_counter)),
      errors_counter_(std::move(errors_counter)),
      latency_histogram_(std::move(latency_histogram)),
      breaker_gauge_(std::move(breaker_gauge)) {
  status_gauge_ = &registry_.gauge("asamap_health_status");
  burn_fast_ = &registry_.gauge("asamap_health_burn_rate", "window=\"fast\"");
  burn_slow_ = &registry_.gauge("asamap_health_burn_rate", "window=\"slow\"");
  p99_fast_ =
      &registry_.gauge("asamap_health_latency_p99_seconds", "window=\"fast\"");
}

HealthReport HealthTracker::evaluate(std::uint64_t now_ns,
                                     const Inputs& inputs) {
  HealthReport report;

  // ---- availability: fast/slow burn rates against the error budget ----
  const double budget = 1.0 - config_.availability_target;
  const auto frac = [&](std::size_t tier) -> double {
    const auto reqs = window_.delta(requests_counter_, now_ns, tier);
    if (reqs == 0) return 0.0;
    const auto errs = window_.delta(errors_counter_, now_ns, tier);
    return static_cast<double>(errs) / static_cast<double>(reqs);
  };
  const double frac_fast = frac(config_.fast_tier);
  const double frac_slow = frac(config_.slow_tier);
  const double burn_fast = budget <= 0.0 ? 0.0 : frac_fast / budget;
  const double burn_slow = budget <= 0.0 ? 0.0 : frac_slow / budget;
  burn_fast_->set(burn_fast);
  burn_slow_->set(burn_slow);
  {
    SloResult slo;
    slo.name = "availability";
    const bool fast_hot = burn_fast >= config_.fast_burn_threshold;
    const bool slow_hot = burn_slow >= config_.slow_burn_threshold;
    slo.status = fast_hot && slow_hot ? SloStatus::kViolated
                 : fast_hot || slow_hot ? SloStatus::kWarn
                                        : SloStatus::kOk;
    slo.detail = "target=" + fmt_double(config_.availability_target) +
                 " err_fraction_fast=" + fmt_double(frac_fast) +
                 " err_fraction_slow=" + fmt_double(frac_slow) +
                 " burn_fast=" + fmt_double(burn_fast) +
                 " burn_slow=" + fmt_double(burn_slow);
    report.slos.push_back(std::move(slo));
  }

  // ---- latency: windowed p99 against the declared bound ----
  {
    const double p99_fast =
        window_.window_histogram(latency_histogram_, now_ns, config_.fast_tier)
            .quantile_seconds(0.99);
    const double p99_slow =
        window_.window_histogram(latency_histogram_, now_ns, config_.slow_tier)
            .quantile_seconds(0.99);
    p99_fast_->set(p99_fast);
    SloResult slo;
    slo.name = "latency_p99";
    const bool fast_over = p99_fast > config_.latency_p99_bound_seconds;
    const bool slow_over = p99_slow > config_.latency_p99_bound_seconds;
    slo.status = fast_over && slow_over ? SloStatus::kViolated
                 : fast_over            ? SloStatus::kWarn
                                        : SloStatus::kOk;
    slo.detail =
        "bound_ms=" + fmt_double(config_.latency_p99_bound_seconds * 1e3) +
        " p99_fast_ms=" + fmt_double(p99_fast * 1e3) +
        " p99_slow_ms=" + fmt_double(p99_slow * 1e3);
    report.slos.push_back(std::move(slo));
  }

  // ---- breaker: open = shedding by design = degraded ----
  if (!breaker_gauge_.empty()) {
    const double state = registry_.gauge_value(breaker_gauge_);
    SloResult slo;
    slo.name = "breaker";
    slo.status = state == 1.0 ? SloStatus::kWarn : SloStatus::kOk;
    slo.detail = std::string("state=") + (state == 1.0   ? "open"
                                          : state == 2.0 ? "half_open"
                                                         : "closed");
    report.slos.push_back(std::move(slo));
  }

  // ---- shard liveness (router view, fed per evaluation) ----
  if (inputs.have_shards) {
    SloResult slo;
    slo.name = "shards";
    const std::size_t total = inputs.shards_up + inputs.shards_down;
    slo.status = inputs.shards_down == 0 ? SloStatus::kOk
                 : inputs.shards_down * 2 > total ? SloStatus::kViolated
                                                  : SloStatus::kWarn;
    slo.detail = "up=" + std::to_string(inputs.shards_up) +
                 " down=" + std::to_string(inputs.shards_down);
    if (!inputs.down_list.empty()) {
      slo.detail += " shards_down=" + inputs.down_list;
    }
    report.slos.push_back(std::move(slo));
  }

  report.status = HealthStatus::kHealthy;
  for (const auto& slo : report.slos) {
    if (slo.status == SloStatus::kViolated) {
      report.status = HealthStatus::kUnhealthy;
      break;
    }
    if (slo.status == SloStatus::kWarn) {
      report.status = HealthStatus::kDegraded;
    }
  }
  status_gauge_->set(static_cast<double>(report.status));
  return report;
}

}  // namespace asamap::obs
