#include "asamap/obs/window.hpp"

#include <algorithm>
#include <cstdio>

namespace asamap::obs {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string sample_key(const MetricSample& s) {
  if (s.labels.empty()) return s.name;
  return s.name + '{' + s.labels + '}';
}

/// `name{labels,window="fast"}` (or `name{window="fast"}`).
std::string windowed_series(const std::string& name,
                            const std::string& labels, const char* window,
                            std::string_view extra = {}) {
  std::string out = name;
  out += '{';
  if (!labels.empty()) {
    out += labels;
    out += ',';
  }
  out += "window=\"";
  out += window;
  out += '"';
  if (!extra.empty()) {
    out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

WindowStore::WindowStore(const MetricRegistry& registry, WindowConfig config,
                         std::uint64_t now_ns)
    : registry_(registry), config_(std::move(config)) {
  if (config_.tiers.empty()) config_.tiers = WindowConfig{}.tiers;
  tiers_.resize(config_.tiers.size());
  const Snapshot initial = take_snapshot(now_ns);
  for (auto& t : tiers_) {
    t.ring.push_back(initial);
    t.last_tick_ns = now_ns;
  }
}

WindowStore::Snapshot WindowStore::take_snapshot(
    std::uint64_t now_ns) const {
  Snapshot snap;
  snap.taken_ns = now_ns;
  for (auto& s : registry_.samples()) {
    switch (s.kind) {
      case MetricKind::kCounter:
        snap.counters.emplace(sample_key(s), s.value);
        break;
      case MetricKind::kHistogram:
        snap.hists.emplace(sample_key(s), std::move(s.hist));
        break;
      case MetricKind::kGauge:
        break;  // gauges are instantaneous; windows add nothing
    }
  }
  return snap;
}

void WindowStore::tick(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_locked(now_ns);
}

void WindowStore::tick_locked(std::uint64_t now_ns) {
  // One registry snapshot serves every tier that rotates this tick.
  bool have_snap = false;
  Snapshot snap;
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    Tier& tier = tiers_[t];
    const std::uint64_t interval = config_.tiers[t].interval_ns;
    if (now_ns < tier.last_tick_ns + interval) continue;
    const std::uint64_t crossed = (now_ns - tier.last_tick_ns) / interval;
    tier.last_tick_ns += crossed * interval;
    if (!have_snap) {
      snap = take_snapshot(now_ns);
      have_snap = true;
    }
    // Snapshots carry the time they were actually taken, so a gap (missed
    // ticks) shrinks the covered span instead of diluting rates: the
    // window start is whatever the surviving front bucket really saw.
    const std::size_t depth = config_.tiers[t].depth;
    if (crossed >= depth) {
      tier.ring.clear();
      tier.ring.push_back(snap);
      continue;
    }
    for (std::uint64_t k = 0; k < crossed; ++k) tier.ring.push_back(snap);
    while (tier.ring.size() > depth) tier.ring.erase(tier.ring.begin());
  }
}

std::uint64_t WindowStore::delta(std::string_view name,
                                 std::uint64_t now_ns, std::size_t tier) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_locked(now_ns);
  if (tier >= tiers_.size()) return 0;
  const double live = static_cast<double>(registry_.counter_sum(name));
  double base = 0.0;
  for (const auto& [key, v] : tiers_[tier].ring.front().counters) {
    if (key == name ||
        (key.size() > name.size() && key[name.size()] == '{' &&
         key.compare(0, name.size(), name) == 0)) {
      base += v;
    }
  }
  return live <= base ? 0
                      : static_cast<std::uint64_t>(live - base + 0.5);
}

double WindowStore::rate(std::string_view name, std::uint64_t now_ns,
                         std::size_t tier) {
  const std::uint64_t d = delta(name, now_ns, tier);
  const double span = window_seconds(tier, now_ns);
  return span <= 0.0 ? 0.0 : static_cast<double>(d) / span;
}

support::LatencyHistogram WindowStore::window_histogram(
    std::string_view name, std::uint64_t now_ns, std::size_t tier) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_locked(now_ns);
  if (tier >= tiers_.size()) return {};
  support::LatencyHistogram live = registry_.histogram_merged_all(name);
  support::LatencyHistogram base;
  for (const auto& [key, h] : tiers_[tier].ring.front().hists) {
    if (key == name ||
        (key.size() > name.size() && key[name.size()] == '{' &&
         key.compare(0, name.size(), name) == 0)) {
      base.merge(h);
    }
  }
  live.subtract(base);
  return live;
}

double WindowStore::window_seconds(std::size_t tier, std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_locked(now_ns);
  if (tier >= tiers_.size()) return 0.0;
  const std::uint64_t start = tiers_[tier].ring.front().taken_ns;
  return now_ns <= start ? 0.0
                         : static_cast<double>(now_ns - start) * 1e-9;
}

void WindowStore::write_prometheus(std::ostream& os, std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_locked(now_ns);
  const auto live = registry_.samples();
  // Group by name so each derived series sits under one # TYPE line, the
  // same exposition discipline as the cumulative scrape.
  std::vector<const MetricSample*> counters, hists;
  for (const auto& s : live) {
    if (s.kind == MetricKind::kCounter) counters.push_back(&s);
    if (s.kind == MetricKind::kHistogram) hists.push_back(&s);
  }
  std::string last_name;
  for (const MetricSample* s : counters) {
    if (s->name != last_name) {
      os << "# TYPE " << s->name << "_rate gauge\n";
      last_name = s->name;
    }
    for (std::size_t t = 0; t < tiers_.size(); ++t) {
      const Snapshot& front = tiers_[t].ring.front();
      const std::uint64_t start = front.taken_ns;
      const double span =
          now_ns <= start ? 0.0
                          : static_cast<double>(now_ns - start) * 1e-9;
      const auto it = front.counters.find(sample_key(*s));
      const double base = it == front.counters.end() ? 0.0 : it->second;
      const double d = std::max(0.0, s->value - base);
      os << windowed_series(s->name + "_rate", s->labels,
                            config_.tiers[t].label)
         << ' ' << fmt_double(span <= 0.0 ? 0.0 : d / span) << '\n';
    }
  }
  last_name.clear();
  for (const MetricSample* s : hists) {
    if (s->name != last_name) {
      os << "# TYPE " << s->name << "_window summary\n";
      last_name = s->name;
    }
    for (std::size_t t = 0; t < tiers_.size(); ++t) {
      const Snapshot& front = tiers_[t].ring.front();
      support::LatencyHistogram h = s->hist;
      if (const auto it = front.hists.find(sample_key(*s));
          it != front.hists.end()) {
        h.subtract(it->second);
      }
      const char* w = config_.tiers[t].label;
      for (const double q : {0.5, 0.9, 0.99}) {
        os << windowed_series(s->name + "_window", s->labels, w,
                              "quantile=\"" + fmt_double(q) + "\"")
           << ' ' << fmt_double(h.quantile_seconds(q)) << '\n';
      }
      os << windowed_series(s->name + "_window_count", s->labels, w) << ' '
         << h.count() << '\n';
    }
  }
}

void WindowStore::write_json(std::ostream& os, std::uint64_t now_ns,
                             const char* indent) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_locked(now_ns);
  const auto live = registry_.samples();
  os << "{\n";
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    const Snapshot& front = tiers_[t].ring.front();
    const std::uint64_t start = front.taken_ns;
    const double span =
        now_ns <= start ? 0.0 : static_cast<double>(now_ns - start) * 1e-9;
    os << indent << "  \"" << config_.tiers[t].label << "\": {\n"
       << indent << "    \"window_seconds\": " << fmt_double(span) << ",\n"
       << indent << "    \"interval_seconds\": "
       << fmt_double(static_cast<double>(config_.tiers[t].interval_ns) *
                     1e-9)
       << ",\n"
       << indent << "    \"depth\": " << config_.tiers[t].depth << ",\n";
    os << indent << "    \"rates\": {";
    bool first = true;
    for (const auto& s : live) {
      if (s.kind != MetricKind::kCounter) continue;
      const auto it = front.counters.find(sample_key(s));
      const double base = it == front.counters.end() ? 0.0 : it->second;
      const double d = std::max(0.0, s.value - base);
      os << (first ? "\n" : ",\n") << indent << "      \""
         << json_escape(sample_key(s))
         << "\": " << fmt_double(span <= 0.0 ? 0.0 : d / span);
      first = false;
    }
    os << '\n' << indent << "    },\n";
    os << indent << "    \"histograms\": {";
    first = true;
    for (const auto& s : live) {
      if (s.kind != MetricKind::kHistogram) continue;
      support::LatencyHistogram h = s.hist;
      if (const auto it = front.hists.find(sample_key(s));
          it != front.hists.end()) {
        h.subtract(it->second);
      }
      os << (first ? "\n" : ",\n") << indent << "      \""
         << json_escape(sample_key(s)) << "\": {\"count\": " << h.count()
         << ", \"rate\": "
         << fmt_double(span <= 0.0
                           ? 0.0
                           : static_cast<double>(h.count()) / span)
         << ", \"p50\": " << fmt_double(h.quantile_seconds(0.5))
         << ", \"p90\": " << fmt_double(h.quantile_seconds(0.9))
         << ", \"p99\": " << fmt_double(h.quantile_seconds(0.99)) << '}';
      first = false;
    }
    os << '\n' << indent << "    }\n";
    os << indent << "  }" << (t + 1 < tiers_.size() ? ",\n" : "\n");
  }
  os << indent << '}';
}

}  // namespace asamap::obs
