#include "asamap/obs/build_info.hpp"

#include <chrono>

namespace asamap::obs {
namespace {

std::chrono::steady_clock::time_point process_start() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// Pin the start time during static initialization so the first caller does
// not define "process start" arbitrarily late.
[[maybe_unused]] const auto kPinStart = process_start();

}  // namespace

const char* build_git_rev() noexcept {
#ifdef ASAMAP_GIT_REV
  return ASAMAP_GIT_REV;
#else
  return "unknown";
#endif
}

const char* build_mode() noexcept {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

double process_uptime_seconds() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_start())
      .count();
}

}  // namespace asamap::obs
