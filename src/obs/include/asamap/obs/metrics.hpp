#pragma once

/// \file metrics.hpp
/// asamap::obs — the unified observability layer's named-metric registry.
///
/// The paper's whole argument is counter-driven (per-kernel time breakdowns,
/// branch-misprediction and CPI tables), and the serving layer needs the
/// same discipline at runtime: one place where every subsystem registers
/// monotonic counters, gauges, and latency histograms under stable
/// Prometheus-style names, and one scrape path that renders them all.
///
/// Concurrency model: registration (the name -> handle lookup) takes a
/// registry mutex, but handles are resolved once and cached by hot paths.
/// Recording through a handle is lock-cheap — counters and gauges are
/// single relaxed atomics, histograms shard per thread (each shard owns a
/// support::LatencyHistogram behind an effectively uncontended mutex) and
/// are merged only on scrape.  Scraping concurrently with recording is safe
/// and TSAN-clean by construction.
///
/// Naming conventions (see DESIGN.md §4d for the full inventory):
///   asamap_<subsystem>_<quantity>[_total]   e.g. asamap_jobs_rejected_total
///   labels as a literal Prometheus label body: `verb="MEMBER"`,
///   `kernel="PageRank"`, `lane="batch"` — comma-separated when several.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asamap/support/histogram.hpp"

namespace asamap::obs {

/// Monotonically increasing event count.  inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A value that can go up and down (queue depth, resident bytes, the last
/// run's codelength).  set()/value() are single atomic ops; add() is a CAS
/// loop (atomic<double>::fetch_add is C++20 but spotty across toolchains).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Latency distribution: per-thread shards over support::LatencyHistogram,
/// merged on scrape.  Each recording thread hashes to its own shard, so the
/// per-record mutex is uncontended in steady state; merged() takes every
/// shard lock briefly, which is what makes scrape-while-record race-free.
class Histogram {
 public:
  static constexpr int kShards = 16;

  void record_ns(std::uint64_t ns) {
    Shard& s = shards_[shard_index()];
    std::lock_guard<std::mutex> lock(s.mu);
    s.h.record_ns(ns);
  }
  void record_seconds(double seconds) {
    Shard& s = shards_[shard_index()];
    std::lock_guard<std::mutex> lock(s.mu);
    s.h.record_seconds(seconds);
  }

  /// One consistent merged view (each shard is merged under its own lock;
  /// recordings that land mid-scrape appear in the next scrape).
  [[nodiscard]] support::LatencyHistogram merged() const {
    support::LatencyHistogram out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      out.merge(s.h);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    support::LatencyHistogram h;
  };

  /// Stable per-thread shard slot: threads are numbered in first-use order
  /// (shared across all Histogram instances — it is a thread id, not a
  /// metric id).
  static int shard_index() noexcept {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned mine =
        next.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int>(mine % kShards);
  }

  std::array<Shard, kShards> shards_;
};

/// Escapes a label *value* for use inside a label body (`\` → `\\`,
/// `"` → `\"`, newline → `\n`); already-escaped sequences pass through, so
/// double-escaping is impossible.  Writers building labels from external
/// text (graph names, file paths) should run it through this; the
/// Prometheus renderer additionally sanitizes every value defensively at
/// scrape time so a raw value cannot corrupt the exposition.
[[nodiscard]] std::string escape_label_value(std::string_view value);

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "summary";
  }
  return "unknown";
}

/// One scraped metric: a point-in-time copy safe to read without locks.
struct MetricSample {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  std::string labels;          ///< label body without braces, may be empty
  double value = 0.0;          ///< counter / gauge value
  support::LatencyHistogram hist;  ///< populated for histograms
};

/// The named-metric registry.  Handles returned by counter()/gauge()/
/// histogram() are valid for the registry's lifetime and stable across
/// further registrations; repeated calls with the same (name, labels)
/// return the same handle.  A (name, labels) pair registered under two
/// different kinds is a programming error and throws.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {});

  /// Point-in-time copy of every metric, in registration order.
  [[nodiscard]] std::vector<MetricSample> samples() const;

  /// Prometheus text exposition: `# TYPE` per metric name, counters and
  /// gauges as single samples, histograms as summaries (p50/p90/p99 +
  /// _sum/_count).  Lines end with '\n'.
  void write_prometheus(std::ostream& os) const;

  /// The registry as one JSON object: scalar metrics map to numbers,
  /// histograms to {count, sum, mean, min, max, p50, p90, p99, buckets}
  /// objects — `buckets` is the sparse LatencyHistogram::encode_buckets()
  /// form, the mergeable representation the router's fleet scrape decodes.
  /// Keys are `name` or `name{label="v"}`.  Lines after the first are
  /// prefixed with `indent` so the object nests into a caller's envelope;
  /// no trailing newline.
  void write_json(std::ostream& os, const char* indent = "  ") const;

  /// Exact-key scalar lookups (0 when the metric is absent).
  [[nodiscard]] std::uint64_t counter_total(std::string_view name,
                                            std::string_view labels = {}) const;
  [[nodiscard]] double gauge_value(std::string_view name,
                                   std::string_view labels = {}) const;

  /// Sum of every counter registered under `name`, across all label sets.
  [[nodiscard]] std::uint64_t counter_sum(std::string_view name) const;

  /// Merged view of one histogram (exact key); empty when absent.
  [[nodiscard]] support::LatencyHistogram histogram_merged(
      std::string_view name, std::string_view labels = {}) const;

  /// Merged view across every label set of `name`.
  [[nodiscard]] support::LatencyHistogram histogram_merged_all(
      std::string_view name) const;

  /// Sum of recorded values, in seconds, of one histogram (exact key).
  [[nodiscard]] double histogram_total_seconds(
      std::string_view name, std::string_view labels = {}) const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::string name;
    std::string labels;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  static void write_prometheus_sample(std::ostream& os,
                                      const MetricSample& s);
  Entry& find_or_create(MetricKind kind, std::string_view name,
                        std::string_view labels);
  [[nodiscard]] const Entry* find(std::string_view name,
                                  std::string_view labels) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
  std::unordered_map<std::string, std::size_t> index_;  ///< key -> entries_
};

}  // namespace asamap::obs
