#pragma once

/// \file tracing.hpp
/// Request-scoped causal tracing: TraceContext propagation plus an
/// always-on, lock-free flight recorder exportable as Chrome trace-event
/// JSON (loadable in Perfetto / chrome://tracing).
///
/// This is the *observability* trace layer — wall-clock span events keyed
/// by a 64-bit trace id, answering "where did THIS request's time go?".
/// It is unrelated to `asamap/sim/trace.hpp`, which records the simulator's
/// synthetic memory-access event stream for the ASA cost model; see the
/// README Observability section for when to reach for which.
///
/// Model
/// -----
/// A TraceContext is {trace_id, span_id}.  TraceSpan (RAII) mints a fresh
/// span id, adopts the ambient trace id (or mints one at a root), installs
/// itself as the thread's current context, and emits begin/end events.
/// TraceScope re-installs a captured context on another thread — the
/// scheduler uses it so a job body's spans parent under the submitting
/// verb's span.  Retroactive intervals (queue wait, retry backoff) are
/// emitted as single "complete" events with an explicit start + duration.
///
/// The FlightRecorder stores events in per-thread ring buffers of atomic
/// cells (overwrite-oldest, seqlock-stamped so a dump concurrent with
/// recording rejects torn cells instead of locking writers).  Memory is
/// fixed by ring capacity regardless of run length, so it is cheap enough
/// to leave on in production and dump after the fact — hence "flight
/// recorder".

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace asamap::obs {

/// Event kind, mapping 1:1 onto Chrome trace-event phases.
enum class TraceKind : std::uint8_t {
  kBegin = 0,    ///< ph "B": span opened
  kEnd = 1,      ///< ph "E": span closed
  kComplete = 2, ///< ph "X": retroactive interval with explicit duration
  kInstant = 3,  ///< ph "i": point event (marks, fault injections)
};

/// Event category, rendered as the Chrome "cat" field.
enum class TraceCat : std::uint8_t {
  kSession = 0,   ///< protocol verbs, CLI runs
  kScheduler = 1, ///< queue wait, dispatch retries, job bodies
  kRegistry = 2,  ///< graph ingest and its retries
  kKernel = 3,    ///< the four HyPC-Map kernel phases
  kFault = 4,     ///< injected-fault annotations
  kUser = 5,      ///< TRACE MARK
};

[[nodiscard]] const char* to_string(TraceCat cat) noexcept;

/// The propagated causal identity: which request (trace_id) and which
/// enclosing span (span_id).  Zero-initialised means "no active trace" —
/// the next TraceSpan becomes a root and mints a fresh trace id.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// The calling thread's current context (thread-local).
[[nodiscard]] TraceContext current_trace() noexcept;

/// One decoded event, as returned by FlightRecorder::snapshot().
struct TraceEvent {
  std::uint64_t ts_ns = 0;     ///< nanoseconds since the recorder epoch
  std::uint64_t dur_ns = 0;    ///< kComplete only
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;   ///< 0 for kInstant
  std::uint64_t parent_id = 0; ///< enclosing span id, 0 at a root
  std::uint64_t arg = 0;       ///< optional payload (job id); 0 = absent
  const char* name = nullptr;
  TraceKind kind = TraceKind::kInstant;
  TraceCat cat = TraceCat::kUser;
  std::uint32_t tid = 0;       ///< recorder thread index
};

/// Recorder occupancy, for TRACE STATUS.
struct TraceStats {
  std::uint64_t recorded = 0; ///< events ever written (monotone)
  std::uint64_t dropped = 0;  ///< overwritten by ring wrap (monotone)
  /// dropped / recorded (0.0 when nothing recorded).  A value near 1.0
  /// means the rings wrapped many times over and a dump holds only the
  /// newest sliver of the run — consumers should warn, not silently
  /// present a near-empty trace as complete.
  double dropped_fraction = 0.0;
  int rings = 0;              ///< rings touched so far
  std::size_t ring_capacity = 0;
  bool enabled = true;
};

/// Always-on, bounded, lock-free-on-record event sink.
///
/// Writers: any thread, wait-free (one fetch_add + relaxed stores + one
/// release store per event).  Each thread maps to one of kMaxRings rings
/// via a process-wide monotone thread index; a ring overwrites its oldest
/// cell when full.  Readers (snapshot/dump) run concurrently with writers
/// and skip cells whose seqlock stamp changed mid-read — every access to
/// cell memory is atomic, so the protocol is TSAN-clean by construction.
///
/// Names are stored as `const char*` and must outlive the recorder: use
/// string literals, or intern() for dynamic text (TRACE MARK labels).
class FlightRecorder {
 public:
  /// `events_per_ring` is rounded up to a power of two; 0 means "use the
  /// ASAMAP_TRACE_RING environment knob, default 4096".
  explicit FlightRecorder(std::size_t events_per_ring = 0);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every production span records into.
  [[nodiscard]] static FlightRecorder& instance();

  /// Nanoseconds since the process trace epoch (steady clock), the
  /// timebase of every recorded event.
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one event.  `name` must point at storage that outlives the
  /// recorder (literal or intern()ed).
  void record(TraceKind kind, TraceCat cat, const char* name,
              std::uint64_t trace_id, std::uint64_t span_id,
              std::uint64_t parent_id, std::uint64_t ts_ns,
              std::uint64_t dur_ns = 0, std::uint64_t arg = 0) noexcept;

  /// Retroactive interval [ts_ns, ts_ns + dur_ns] parented under `ctx`.
  /// Mints a span id so children recorded inside the interval could refer
  /// to it; returns the minted id.
  std::uint64_t complete(const char* name, TraceCat cat, TraceContext ctx,
                         std::uint64_t ts_ns, std::uint64_t dur_ns,
                         std::uint64_t arg = 0) noexcept;

  /// Point event under the calling thread's current context.
  void instant(const char* name, TraceCat cat, std::uint64_t arg = 0) noexcept;

  /// Copies a stable interned copy of `text` (for dynamic event names).
  /// Bounded: past a small cap, returns a shared fallback label.
  [[nodiscard]] const char* intern(std::string_view text);

  [[nodiscard]] TraceStats stats() const;

  /// Decodes every readable cell, sorted by timestamp (begin before end at
  /// equal stamps).  Safe concurrent with record(); torn cells are skipped.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Writes the snapshot as one line of Chrome trace-event JSON
  /// (`{"traceEvents":[...],"displayTimeUnit":"ms"}`).  Ids are emitted as
  /// decimal strings under args{trace,span,parent} because u64 ids do not
  /// survive a double round-trip.
  void write_chrome_json(std::ostream& os) const;

  /// Ring fan-out bound; threads beyond it share rings by index modulo.
  static constexpr std::size_t kMaxRings = 64;

 private:
  struct Cell;
  struct Ring;

  Ring* ring_for_this_thread() noexcept;

  std::size_t ring_capacity_ = 0; // power of two
  std::atomic<bool> enabled_{true};
  std::atomic<Ring*> rings_[kMaxRings] = {};

  mutable std::mutex intern_mu_;
  std::vector<std::unique_ptr<std::string>> interned_;
};

/// Re-installs a captured TraceContext for a scope — the bridge that
/// carries a request's identity across the scheduler's thread hop.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span: begin event at construction, end event at destruction.
/// Child spans opened while this one is alive parent under it; if no trace
/// is active, this span becomes the root of a freshly minted trace.
class TraceSpan {
 public:
  TraceSpan(const char* name, TraceCat cat,
            FlightRecorder& rec = FlightRecorder::instance(),
            std::uint64_t arg = 0) noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  [[nodiscard]] TraceContext context() const noexcept { return ctx_; }

 private:
  FlightRecorder& rec_;
  const char* name_;
  TraceCat cat_;
  std::uint64_t arg_;
  TraceContext ctx_;   // this span's identity
  TraceContext prev_;  // restored at destruction; prev_.span_id is parent
};

/// Mints a process-unique nonzero id (shared counter for trace and span
/// ids).  Exposed for retroactive-interval builders.
[[nodiscard]] std::uint64_t mint_trace_id() noexcept;

}  // namespace asamap::obs
