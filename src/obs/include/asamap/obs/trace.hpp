#pragma once

/// \file trace.hpp
/// Phase-scoped tracing spans for the four HyPC-Map kernels, plus the
/// per-thread fold helper that replaces hand-rolled per-thread breakdown
/// aggregation in the parallel driver.
///
/// A KernelSpan times one kernel-phase execution and charges the elapsed
/// wall time to BOTH sinks: the run-local support::PhaseTimer (the Fig. 2
/// per-kernel breakdown that InfomapResult carries) and, when a registry is
/// attached, the process-level `asamap_kernel_seconds{kernel="..."}`
/// histogram.  One measurement, two views — the registry can never drift
/// from the result struct.  Every sink handle is resolved once per run by
/// KernelTimers, so opening and closing a span allocates nothing; each span
/// also emits begin/end events into the trace flight recorder
/// (asamap/obs/tracing.hpp) under the caller's active TraceContext.
///
/// Naming note: this header and `asamap/obs/tracing.hpp` are the
/// *observability* trace layer (wall-clock spans of real executions).
/// `asamap/sim/trace.hpp` is unrelated — it records the simulator's
/// synthetic memory-access event stream for the ASA cost model.

#include <string>
#include <string_view>
#include <vector>

#include "asamap/obs/metrics.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/support/parallel.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::obs {

/// Histogram of kernel-phase span durations; one label set per kernel.
inline constexpr std::string_view kKernelSpanMetric = "asamap_kernel_seconds";

/// The label body a kernel span records under: `kernel="PageRank"`.
[[nodiscard]] inline std::string kernel_label(std::string_view kernel) {
  std::string out = "kernel=\"";
  out += kernel;
  out += '"';
  return out;
}

/// The four HyPC-Map kernel phases of Fig. 2, in paper order.
enum class KernelPhase : int {
  kPageRank = 0,
  kFindBestCommunity = 1,
  kConvert2SuperNode = 2,
  kUpdateMembers = 3,
};

inline constexpr int kNumKernelPhases = 4;

/// Phase names; must match core::kernels so PhaseTimer totals keyed by
/// either spelling agree.
inline constexpr const char* kKernelPhaseNames[kNumKernelPhases] = {
    "PageRank", "FindBestCommunity", "Convert2SuperNode", "UpdateMembers"};

[[nodiscard]] constexpr const char* to_string(KernelPhase phase) noexcept {
  return kKernelPhaseNames[static_cast<int>(phase)];
}

/// Pre-resolved per-phase sink handles: one PhaseTimer accumulator slot and
/// (when a registry is attached) one histogram handle per kernel phase.
/// Construct once per Infomap run; KernelSpan then opens and closes with
/// zero allocations and zero name lookups.  All four phases are created in
/// the PhaseTimer eagerly (at 0.0), in paper order.
class KernelTimers {
 public:
  struct Slot {
    double* wall = nullptr;
    Histogram* hist = nullptr;
    const char* name = nullptr;
  };

  explicit KernelTimers(support::PhaseTimer& timer,
                        MetricRegistry* registry = nullptr) {
    for (int i = 0; i < kNumKernelPhases; ++i) {
      const char* name = kKernelPhaseNames[i];
      slots_[i].name = name;
      slots_[i].wall = &timer.slot(name);
      slots_[i].hist = registry == nullptr
                           ? nullptr
                           : &registry->histogram(kKernelSpanMetric,
                                                  kernel_label(name));
    }
  }

  [[nodiscard]] const Slot& slot(KernelPhase phase) const noexcept {
    return slots_[static_cast<int>(phase)];
  }

 private:
  Slot slots_[kNumKernelPhases];
};

/// RAII span over one kernel-phase execution.  Allocation-free on both open
/// and close (test-enforced): the destructor is two pointer-target updates
/// plus the trace end event (a handful of atomic stores).
class KernelSpan {
 public:
  KernelSpan(const KernelTimers& timers, KernelPhase phase) noexcept
      : slot_(timers.slot(phase)), span_(slot_.name, TraceCat::kKernel) {}

  KernelSpan(const KernelSpan&) = delete;
  KernelSpan& operator=(const KernelSpan&) = delete;

  ~KernelSpan() {
    const double s = watch_.seconds();
    *slot_.wall += s;
    if (slot_.hist != nullptr) slot_.hist->record_seconds(s);
  }

 private:
  const KernelTimers::Slot& slot_;
  TraceSpan span_;  // begin fires before the watch starts, end after it stops
  support::WallTimer watch_;
};

/// Fixed-size per-thread value shards, cache-line padded so each thread's
/// hot updates stay on its own line, with a fold step that merges them
/// after the parallel region.  This is the common shape behind the parallel
/// driver's per-thread KernelBreakdown and proposal-phase timings (which
/// each used to hand-roll a vector<CacheAligned<T>> plus an ad-hoc merge
/// loop).
template <typename T>
class PerThread {
 public:
  explicit PerThread(int threads)
      : slots_(static_cast<std::size_t>(threads)) {}

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(slots_.size());
  }

  [[nodiscard]] T& local(int tid) noexcept {
    return *slots_[static_cast<std::size_t>(tid)];
  }
  [[nodiscard]] const T& local(int tid) const noexcept {
    return *slots_[static_cast<std::size_t>(tid)];
  }

  /// Merges every shard into `into` via `f(into, shard)`, in thread order.
  /// Call only outside the parallel region that writes the shards.
  template <typename Into, typename Fold>
  void fold(Into& into, Fold&& f) const {
    for (const auto& slot : slots_) f(into, *slot);
  }

 private:
  std::vector<support::CacheAligned<T>> slots_;
};

}  // namespace asamap::obs
