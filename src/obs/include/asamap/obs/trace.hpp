#pragma once

/// \file trace.hpp
/// Phase-scoped tracing spans for the four HyPC-Map kernels, plus the
/// per-thread fold helper that replaces hand-rolled per-thread breakdown
/// aggregation in the parallel driver.
///
/// A KernelSpan times one kernel-phase execution and charges the elapsed
/// wall time to BOTH sinks: the run-local support::PhaseTimer (the Fig. 2
/// per-kernel breakdown that InfomapResult carries) and, when a registry is
/// attached, the process-level `asamap_kernel_seconds{kernel="..."}`
/// histogram.  One measurement, two views — the registry can never drift
/// from the result struct.

#include <string>
#include <string_view>
#include <vector>

#include "asamap/obs/metrics.hpp"
#include "asamap/support/parallel.hpp"
#include "asamap/support/timer.hpp"

namespace asamap::obs {

/// Histogram of kernel-phase span durations; one label set per kernel.
inline constexpr std::string_view kKernelSpanMetric = "asamap_kernel_seconds";

/// The label body a kernel span records under: `kernel="PageRank"`.
[[nodiscard]] inline std::string kernel_label(std::string_view kernel) {
  std::string out = "kernel=\"";
  out += kernel;
  out += '"';
  return out;
}

/// RAII span over one kernel-phase execution.  Registry may be null (plain
/// PhaseTimer behaviour, zero extra cost on the uninstrumented path).
class KernelSpan {
 public:
  KernelSpan(support::PhaseTimer& timer, const std::string& kernel,
             MetricRegistry* registry = nullptr)
      : timer_(timer), kernel_(kernel), registry_(registry) {}

  KernelSpan(const KernelSpan&) = delete;
  KernelSpan& operator=(const KernelSpan&) = delete;

  ~KernelSpan() {
    const double s = watch_.seconds();
    timer_.add(kernel_, s);
    if (registry_ != nullptr) {
      registry_->histogram(kKernelSpanMetric, kernel_label(kernel_))
          .record_seconds(s);
    }
  }

 private:
  support::PhaseTimer& timer_;
  std::string kernel_;
  MetricRegistry* registry_;
  support::WallTimer watch_;
};

/// Fixed-size per-thread value shards, cache-line padded so each thread's
/// hot updates stay on its own line, with a fold step that merges them
/// after the parallel region.  This is the common shape behind the parallel
/// driver's per-thread KernelBreakdown and proposal-phase timings (which
/// each used to hand-roll a vector<CacheAligned<T>> plus an ad-hoc merge
/// loop).
template <typename T>
class PerThread {
 public:
  explicit PerThread(int threads)
      : slots_(static_cast<std::size_t>(threads)) {}

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(slots_.size());
  }

  [[nodiscard]] T& local(int tid) noexcept {
    return *slots_[static_cast<std::size_t>(tid)];
  }
  [[nodiscard]] const T& local(int tid) const noexcept {
    return *slots_[static_cast<std::size_t>(tid)];
  }

  /// Merges every shard into `into` via `f(into, shard)`, in thread order.
  /// Call only outside the parallel region that writes the shards.
  template <typename Into, typename Fold>
  void fold(Into& into, Fold&& f) const {
    for (const auto& slot : slots_) f(into, *slot);
  }

 private:
  std::vector<support::CacheAligned<T>> slots_;
};

}  // namespace asamap::obs
