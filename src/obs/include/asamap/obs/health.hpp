#pragma once

/// \file health.hpp
/// obs::HealthTracker — the machine-checkable health/SLO answer (ISSUE 10).
///
/// Declares a small set of SLOs over the WindowStore's fast/slow windows
/// and evaluates them into one `healthy | degraded | unhealthy` verdict
/// plus one line per SLO — the payload of the HEALTH verb:
///
///   availability  error budget = 1 - target; the burn rate is the
///                 window's error fraction divided by the budget.  Both
///                 the fast and the slow window burning past their
///                 thresholds is a *violation* (the classic multiwindow
///                 page: sustained AND current); only one window burning
///                 is a *warning* (either a fresh spike the slow window
///                 hasn't absorbed, or an old burn already subsiding).
///   latency       windowed p99 against a declared bound.  Fast window
///                 over the bound warns; fast AND slow over it violates.
///   breaker       an open circuit breaker (gauge = 1) warns — the stack
///                 is shedding by design, which is degraded, not down.
///   shards        (router only, via Inputs) any shard down warns; more
///                 than half down violates.
///
/// Overall: any violation ⇒ unhealthy, else any warning ⇒ degraded, else
/// healthy.  Every evaluation also publishes asamap_health_* gauges on
/// the registry, so plain METRICS scrapes and the fleet federation see
/// the verdict without speaking the HEALTH verb.
///
/// Evaluation is caller-clocked like the WindowStore (pass a monotonic
/// now_ns), so tests drive synthetic timelines.

#include <cstdint>
#include <string>
#include <vector>

#include "asamap/obs/metrics.hpp"
#include "asamap/obs/window.hpp"

namespace asamap::obs {

struct SloConfig {
  double availability_target = 0.999;  ///< non-ERR fraction of requests
  /// Burn-rate thresholds (err_fraction / error_budget).  Defaults follow
  /// the SRE multiwindow shape: the fast window must burn hard (a real
  /// spike, not noise) and the slow window must confirm it is sustained.
  double fast_burn_threshold = 14.0;
  double slow_burn_threshold = 6.0;
  double latency_p99_bound_seconds = 0.050;  ///< windowed p99 bound
  std::size_t fast_tier = 0;  ///< WindowStore tier index of the fast window
  std::size_t slow_tier = 1;  ///< ... and the slow one
};

enum class HealthStatus { kHealthy, kDegraded, kUnhealthy };

[[nodiscard]] constexpr const char* to_string(HealthStatus s) noexcept {
  switch (s) {
    case HealthStatus::kHealthy: return "healthy";
    case HealthStatus::kDegraded: return "degraded";
    case HealthStatus::kUnhealthy: return "unhealthy";
  }
  return "unknown";
}

enum class SloStatus { kOk, kWarn, kViolated };

[[nodiscard]] constexpr const char* to_string(SloStatus s) noexcept {
  switch (s) {
    case SloStatus::kOk: return "ok";
    case SloStatus::kWarn: return "warn";
    case SloStatus::kViolated: return "violated";
  }
  return "unknown";
}

struct SloResult {
  std::string name;
  SloStatus status = SloStatus::kOk;
  std::string detail;  ///< `key=value` pairs after the status token
};

struct HealthReport {
  HealthStatus status = HealthStatus::kHealthy;
  std::vector<SloResult> slos;
  /// One `slo=<name> status=<s> <detail>` line per SLO, '\n'-terminated —
  /// the HEALTH verb's payload.
  [[nodiscard]] std::string render() const;
};

/// Cross-process inputs the registry cannot see (the router's shard
/// liveness view).
struct HealthInputs {
  bool have_shards = false;
  std::size_t shards_up = 0;
  std::size_t shards_down = 0;
  std::string down_list;  ///< comma-separated shard ids, may be empty
};

class HealthTracker {
 public:
  using Inputs = HealthInputs;

  /// `requests` / `errors` are counter names summed across label sets;
  /// `latency` a histogram name; `breaker_gauge` optional (empty skips the
  /// breaker SLO).  Registers the asamap_health_* gauges immediately so a
  /// fresh scrape carries the schema.  Registry and window must outlive
  /// the tracker.
  HealthTracker(MetricRegistry& registry, WindowStore& window,
                SloConfig config, std::string requests_counter,
                std::string errors_counter, std::string latency_histogram,
                std::string breaker_gauge = {});

  HealthTracker(const HealthTracker&) = delete;
  HealthTracker& operator=(const HealthTracker&) = delete;

  [[nodiscard]] HealthReport evaluate(std::uint64_t now_ns,
                                      const Inputs& inputs = HealthInputs());

  [[nodiscard]] const SloConfig& config() const noexcept { return config_; }

 private:
  MetricRegistry& registry_;
  WindowStore& window_;
  SloConfig config_;
  std::string requests_counter_;
  std::string errors_counter_;
  std::string latency_histogram_;
  std::string breaker_gauge_;

  Gauge* status_gauge_ = nullptr;  ///< 0 healthy, 1 degraded, 2 unhealthy
  Gauge* burn_fast_ = nullptr;
  Gauge* burn_slow_ = nullptr;
  Gauge* p99_fast_ = nullptr;
};

}  // namespace asamap::obs
