#pragma once

/// \file window.hpp
/// obs::WindowStore — windowed rates and rolling quantiles on top of the
/// cumulative MetricRegistry (ISSUE 10).
///
/// The registry's counters only ever go up; operators and the health layer
/// need *rates over recent windows* ("requests/sec over the last 10s",
/// "p99 over the last minute").  The store keeps, per configured tier, a
/// fixed ring of buckets; each bucket is a cumulative snapshot of every
/// registered counter and histogram, stamped with the monotonic time it
/// was taken.  A windowed value is then live-minus-oldest: counter deltas
/// divide by the real covered span for rates, histogram deltas subtract
/// bucket counts (support::LatencyHistogram::subtract) so rolling
/// quantiles come from exactly the samples recorded inside the window.
///
/// Ticking is caller-driven: every query passes a monotonic `now_ns` and
/// the store rotates as many buckets as intervals have elapsed — there is
/// no hidden clock thread, which keeps tests deterministic (feed synthetic
/// timestamps) and keeps the record path untouched (recording threads
/// never see the store; only scrapes pay for snapshots).  A gap longer
/// than a tier's whole window resets that tier's ring with one fresh
/// snapshot.
///
/// Default tiers (configurable): fast = 10 × 1s (a 10s window), slow =
/// 6 × 10s (a 60s window) — the fast/slow pair the burn-rate health rules
/// in health.hpp consume.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asamap/obs/metrics.hpp"
#include "asamap/support/histogram.hpp"

namespace asamap::obs {

struct WindowTierConfig {
  std::uint64_t interval_ns = 1'000'000'000;  ///< bucket width
  std::size_t depth = 10;                     ///< buckets in the ring
  const char* label = "fast";                 ///< window= label on output
};

struct WindowConfig {
  std::vector<WindowTierConfig> tiers{
      {1'000'000'000ULL, 10, "fast"},   // 10 × 1s  = 10s window
      {10'000'000'000ULL, 6, "slow"},   // 6 × 10s  = 60s window
  };
};

class WindowStore {
 public:
  /// The registry must outlive the store.  The first snapshot (bucket 0 of
  /// every tier) is taken at construction, stamped `now_ns`; callers must
  /// pass the same monotonic clock here that they will feed to every later
  /// call (it only has to never go backwards).  Passing a clock that is
  /// already far past `now_ns` would make the first tick look like a
  /// window-sized gap and reset the rings.
  explicit WindowStore(const MetricRegistry& registry,
                       WindowConfig config = {}, std::uint64_t now_ns = 0);

  WindowStore(const WindowStore&) = delete;
  WindowStore& operator=(const WindowStore&) = delete;

  /// Rotates every tier whose interval has elapsed since its last tick.
  /// Queries call this themselves; an explicit tick is only needed to
  /// advance time without reading (e.g. a bench's scraper loop).
  void tick(std::uint64_t now_ns);

  /// Counter increase over `tier`'s window (summed across every label set
  /// of `name`), as of `now_ns`.  0 when the name is unknown.
  [[nodiscard]] std::uint64_t delta(std::string_view name,
                                    std::uint64_t now_ns,
                                    std::size_t tier = 0);

  /// delta() divided by the window's real covered span, in per-second
  /// units.  0 before any time has passed.
  [[nodiscard]] double rate(std::string_view name, std::uint64_t now_ns,
                            std::size_t tier = 0);

  /// The merged histogram of samples recorded inside `tier`'s window,
  /// across every label set of `name` — rolling-window quantiles come from
  /// quantile_seconds() on the result.
  [[nodiscard]] support::LatencyHistogram window_histogram(
      std::string_view name, std::uint64_t now_ns, std::size_t tier = 0);

  /// Seconds the tier's window actually covers right now (ramps up from 0
  /// after a reset until the ring is full).
  [[nodiscard]] double window_seconds(std::size_t tier,
                                      std::uint64_t now_ns);

  [[nodiscard]] std::size_t num_tiers() const { return tiers_.size(); }
  [[nodiscard]] const WindowTierConfig& tier_config(std::size_t t) const {
    return config_.tiers[t];
  }

  /// Every counter's per-tier rate and every histogram's windowed
  /// quantiles, as `name{...,window="fast"}`-style Prometheus lines
  /// (`_rate` / windowed summary suffixes) or one JSON object.  Drives the
  /// METRICS WINDOW verb.
  void write_prometheus(std::ostream& os, std::uint64_t now_ns);
  void write_json(std::ostream& os, std::uint64_t now_ns,
                  const char* indent = "  ");

 private:
  /// One cumulative snapshot: key (`name` or `name{labels}`) → value.
  struct Snapshot {
    std::uint64_t taken_ns = 0;
    std::unordered_map<std::string, double> counters;
    std::unordered_map<std::string, support::LatencyHistogram> hists;
  };
  struct Tier {
    std::vector<Snapshot> ring;  ///< front = oldest; size = depth once warm
    std::uint64_t last_tick_ns = 0;
  };

  Snapshot take_snapshot(std::uint64_t now_ns) const;
  void tick_locked(std::uint64_t now_ns);

  const MetricRegistry& registry_;
  WindowConfig config_;
  std::mutex mu_;  ///< guards tiers_; never held while recording metrics
  std::vector<Tier> tiers_;
};

}  // namespace asamap::obs
