#pragma once

/// \file build_info.hpp
/// Build identity for scrapes and STATS lines (ISSUE 10): which binary
/// produced these numbers.  The git revision is baked in at configure time
/// (ASAMAP_GIT_REV, see the top-level CMakeLists) so serving binaries never
/// shell out; uptime is measured from the first call in the process, which
/// the serving sessions make at construction.

#include <cstdint>

namespace asamap::obs {

/// Short git revision the binary was configured from ("unknown" outside a
/// git checkout).
[[nodiscard]] const char* build_git_rev() noexcept;

/// "release" (NDEBUG) or "debug".
[[nodiscard]] const char* build_mode() noexcept;

/// Seconds since the process's build-info clock was first read.  Drives
/// the asamap_uptime_seconds gauge; monotonic.
[[nodiscard]] double process_uptime_seconds() noexcept;

}  // namespace asamap::obs
