// Tests for the observability layer: metric registry semantics (handle
// identity, kind safety, scrape helpers), both render formats, concurrent
// record-while-scrape, the KernelSpan dual-sink invariant, PerThread folds,
// and the end-to-end acceptance check that registry kernel timings agree
// with the driver's own SweepTrace accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "asamap/core/infomap.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/obs/trace.hpp"
#include "asamap/support/timer.hpp"

namespace {

using namespace asamap;
using namespace asamap::obs;

// --- MetricRegistry ------------------------------------------------------

TEST(MetricRegistry, CounterHandleIsStableAndShared) {
  MetricRegistry reg;
  Counter& a = reg.counter("asamap_test_total", "k=\"x\"");
  Counter& b = reg.counter("asamap_test_total", "k=\"x\"");
  EXPECT_EQ(&a, &b);  // same (name, labels) -> same handle
  a.inc();
  b.inc(4);
  EXPECT_EQ(reg.counter_total("asamap_test_total", "k=\"x\""), 5u);
  EXPECT_EQ(reg.counter_total("asamap_test_total", "k=\"y\""), 0u);
  EXPECT_EQ(reg.counter_total("absent_total"), 0u);
}

TEST(MetricRegistry, CounterSumSpansLabelSets) {
  MetricRegistry reg;
  reg.counter("asamap_test_total", "k=\"x\"").inc(2);
  reg.counter("asamap_test_total", "k=\"y\"").inc(3);
  reg.counter("asamap_other_total").inc(100);
  EXPECT_EQ(reg.counter_sum("asamap_test_total"), 5u);
}

TEST(MetricRegistry, GaugeSetAndAdd) {
  MetricRegistry reg;
  Gauge& g = reg.gauge("asamap_test_gauge");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("asamap_test_gauge"), 1.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("absent_gauge"), 0.0);
}

TEST(MetricRegistry, HistogramMergesAcrossLabelSets) {
  MetricRegistry reg;
  reg.histogram("asamap_test_seconds", "k=\"a\"").record_seconds(1e-6);
  reg.histogram("asamap_test_seconds", "k=\"a\"").record_seconds(3e-6);
  reg.histogram("asamap_test_seconds", "k=\"b\"").record_seconds(5e-6);
  EXPECT_EQ(reg.histogram_merged("asamap_test_seconds", "k=\"a\"").count(),
            2u);
  EXPECT_EQ(reg.histogram_merged_all("asamap_test_seconds").count(), 3u);
  EXPECT_NEAR(reg.histogram_total_seconds("asamap_test_seconds", "k=\"a\""),
              4e-6, 1e-9);
  EXPECT_EQ(reg.histogram_merged("absent_seconds").count(), 0u);
}

TEST(MetricRegistry, KindMismatchThrows) {
  MetricRegistry reg;
  reg.counter("asamap_test_total");
  EXPECT_THROW(reg.gauge("asamap_test_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("asamap_test_total"), std::logic_error);
}

TEST(MetricRegistry, PrometheusGroupsSamplesUnderOneTypeLine) {
  MetricRegistry reg;
  // Interleave registration on purpose: the exposition must still emit all
  // samples of one name contiguously under a single `# TYPE` line.
  reg.counter("asamap_req_total", "verb=\"A\"").inc(1);
  reg.histogram("asamap_req_seconds", "verb=\"A\"").record_seconds(1e-3);
  reg.counter("asamap_req_total", "verb=\"B\"").inc(2);
  reg.histogram("asamap_req_seconds", "verb=\"B\"").record_seconds(2e-3);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();

  auto count_of = [&text](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# TYPE asamap_req_total counter"), 1u);
  EXPECT_EQ(count_of("# TYPE asamap_req_seconds summary"), 1u);
  EXPECT_NE(text.find("asamap_req_total{verb=\"A\"} 1"), std::string::npos);
  EXPECT_NE(text.find("asamap_req_total{verb=\"B\"} 2"), std::string::npos);
  EXPECT_NE(text.find("asamap_req_seconds_count{verb=\"A\"} 1"),
            std::string::npos);
  // Contiguity: the two counter samples sit between their TYPE line and the
  // next TYPE line.
  const auto type_total = text.find("# TYPE asamap_req_total");
  const auto type_seconds = text.find("# TYPE asamap_req_seconds");
  const auto total_b = text.find("asamap_req_total{verb=\"B\"}");
  ASSERT_NE(type_total, std::string::npos);
  ASSERT_NE(type_seconds, std::string::npos);
  ASSERT_NE(total_b, std::string::npos);
  if (type_total < type_seconds) {
    EXPECT_LT(total_b, type_seconds);
  } else {
    EXPECT_GT(total_b, type_total);
  }
}

TEST(MetricRegistry, JsonRendersScalarsAndHistogramObjects) {
  MetricRegistry reg;
  reg.counter("asamap_req_total", "verb=\"A\"").inc(7);
  reg.gauge("asamap_depth").set(3.0);
  reg.histogram("asamap_req_seconds").record_seconds(1e-3);

  std::ostringstream os;
  reg.write_json(os, "");
  const std::string text = os.str();
  EXPECT_NE(text.find("\"asamap_req_total{verb=\\\"A\\\"}\": 7"),
            std::string::npos);
  EXPECT_NE(text.find("\"asamap_depth\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"asamap_req_seconds\": {\"count\": 1"),
            std::string::npos);
  EXPECT_NE(text.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
}

TEST(MetricRegistry, JsonHistogramCarriesMergeableBuckets) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("asamap_req_seconds");
  for (int i = 1; i <= 100; ++i) h.record_seconds(i * 1e-4);

  std::ostringstream os;
  reg.write_json(os, "");
  const std::string text = os.str();
  // The `buckets` field is the sparse wire encoding the router's fleet
  // federation decodes — it must match the in-process encoding verbatim.
  const std::string want =
      "\"buckets\": \"" +
      reg.histogram_merged_all("asamap_req_seconds").encode_buckets() + "\"";
  EXPECT_NE(text.find(want), std::string::npos) << text;
}

TEST(EscapeLabelValue, EscapesSpecialsAndIsIdempotent) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  // Applying the escape twice must not double-escape: already-escaped
  // sequences pass through untouched.
  for (const std::string raw : {"a\"b", "a\\b", "a\nb", "g\"x\ny\\z"}) {
    const std::string once = escape_label_value(raw);
    EXPECT_EQ(escape_label_value(once), once) << raw;
  }
}

TEST(MetricRegistry, PrometheusSanitizesHostileLabelValues) {
  // Negative test: a writer that skips escape_label_value and embeds a raw
  // quote + newline in a label value must NOT be able to corrupt the
  // exposition — the renderer sanitizes values at scrape time, so every
  // sample stays on one line with balanced quotes.
  MetricRegistry reg;
  reg.counter("asamap_evil_total",
              "g=\"bad\"name\nwith=\"inject\"").inc(1);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  bool found = false;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    if (line.rfind("asamap_evil_total{", 0) == 0) {
      found = true;
      EXPECT_EQ(line.back(), '1') << line;  // value survives on the line
      // Quotes inside the line's label body must be balanced: an odd count
      // would mean the raw quote leaked through unescaped.
      std::size_t quotes = 0, backslashed = 0;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"') {
          ++quotes;
          if (i > 0 && line[i - 1] == '\\') ++backslashed;
        }
      }
      EXPECT_EQ((quotes - backslashed) % 2, 0u) << line;
    }
    start = end + 1;
  }
  EXPECT_TRUE(found)
      << "hostile sample vanished instead of being sanitized:\n" << text;
}

TEST(MetricRegistry, EmptyRendersCleanly) {
  const MetricRegistry reg;
  std::ostringstream prom, js;
  reg.write_prometheus(prom);
  reg.write_json(js);
  EXPECT_TRUE(prom.str().empty());
  EXPECT_EQ(js.str(), "{}");
}

// Scrape-while-record: writers hammer a counter and a histogram while a
// reader scrapes both render formats.  Correctness here is "no torn state
// and final totals add up"; TSAN (the serve sanitizer job builds this
// binary too) checks the memory model.
TEST(MetricRegistry, ConcurrentRecordAndScrape) {
  MetricRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream os;
      reg.write_prometheus(os);
      reg.write_json(os);
      (void)reg.histogram_merged_all("asamap_stress_seconds");
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&reg, w] {
      Counter& c = reg.counter("asamap_stress_total");
      Histogram& h = reg.histogram("asamap_stress_seconds",
                                   w % 2 == 0 ? "k=\"even\"" : "k=\"odd\"");
      for (int i = 0; i < kPerWriter; ++i) {
        c.inc();
        h.record_ns(static_cast<std::uint64_t>(i) + 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(reg.counter_total("asamap_stress_total"),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(reg.histogram_merged_all("asamap_stress_seconds").count(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

// --- KernelSpan ----------------------------------------------------------

TEST(KernelSpan, ChargesTimerAndRegistryFromOneMeasurement) {
  support::PhaseTimer timer;
  MetricRegistry reg;
  KernelTimers ktimers(timer, &reg);
  {
    KernelSpan span(ktimers, KernelPhase::kPageRank);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double timer_s = timer.total("PageRank");
  const double reg_s =
      reg.histogram_total_seconds(kKernelSpanMetric, kernel_label("PageRank"));
  EXPECT_GT(timer_s, 0.0);
  // Same WallTimer read feeds both sinks; they differ only by the
  // histogram's nanosecond rounding.
  EXPECT_NEAR(reg_s, timer_s, 2e-9);
  EXPECT_EQ(
      reg.histogram_merged(kKernelSpanMetric, kernel_label("PageRank")).count(),
      1u);
}

TEST(KernelSpan, NullRegistryStillFeedsTimer) {
  support::PhaseTimer timer;
  KernelTimers ktimers(timer);
  {
    KernelSpan span(ktimers, KernelPhase::kUpdateMembers);
  }
  EXPECT_GE(timer.total("UpdateMembers"), 0.0);
  // KernelTimers eagerly creates every phase slot, in paper order.
  const std::vector<std::string> all = {"PageRank", "FindBestCommunity",
                                        "Convert2SuperNode", "UpdateMembers"};
  EXPECT_EQ(timer.phases(), all);
}

// --- PerThread -----------------------------------------------------------

TEST(PerThread, LocalSlotsFoldInThreadOrder) {
  PerThread<double> shards(4);
  EXPECT_EQ(shards.threads(), 4);
  for (int t = 0; t < 4; ++t) shards.local(t) = t + 1.0;  // 1..4
  double sum = 0.0;
  shards.fold(sum, [](double& into, double v) { into += v; });
  EXPECT_DOUBLE_EQ(sum, 10.0);
  double worst = 0.0;
  shards.fold(worst, [](double& w, double v) { w = std::max(w, v); });
  EXPECT_DOUBLE_EQ(worst, 4.0);
}

TEST(PerThread, SlotsAreValueInitialized) {
  const PerThread<std::uint64_t> shards(3);
  std::uint64_t sum = 1;
  shards.fold(sum, [](std::uint64_t& into, std::uint64_t v) { into += v; });
  EXPECT_EQ(sum, 1u);  // all shards started at zero
}

// --- End-to-end: registry vs the driver's own accounting -----------------

// The acceptance criterion for the observability layer: on a real 10k-vertex
// clustering run, the per-kernel span timings scraped from the registry must
// agree with the driver's SweepTrace wall times within 5%.  With
// refine_sweeps=0 every FindBestCommunity span is a traced level sweep
// (refinement records spans but suppresses traces), so the two accountings
// cover the same work.
TEST(ObsEndToEnd, RegistryKernelSecondsMatchSweepTrace) {
  const auto pp = gen::planted_partition(10000, 20, 0.05, 0.0005, 4242);

  core::InfomapOptions opts;
  opts.refine_sweeps = 0;
  MetricRegistry reg;
  opts.metrics = &reg;
  const auto result = core::run_infomap_parallel(pp.graph, opts, 2);
  ASSERT_FALSE(result.trace.empty());

  double trace_wall = 0.0;
  for (const auto& st : result.trace) trace_wall += st.wall_seconds;
  const double reg_fbc = reg.histogram_total_seconds(
      kKernelSpanMetric, kernel_label(core::kernels::kFindBestCommunity));
  EXPECT_GT(reg_fbc, 0.0);
  EXPECT_NEAR(reg_fbc, trace_wall, 0.05 * trace_wall);

  // The strong invariant behind that 5%: each span charges the *same*
  // measurement to the PhaseTimer and the registry, so per kernel the two
  // sinks agree to nanosecond rounding (1ns per recorded span).
  for (const std::string& kernel :
       {core::kernels::kPageRank, core::kernels::kFindBestCommunity,
        core::kernels::kConvert2SuperNode, core::kernels::kUpdateMembers}) {
    const auto merged =
        reg.histogram_merged(kKernelSpanMetric, kernel_label(kernel));
    EXPECT_GT(merged.count(), 0u) << kernel;
    EXPECT_NEAR(merged.total_seconds(), result.kernel_wall.total(kernel),
                1e-9 * static_cast<double>(merged.count()) + 1e-12)
        << kernel;
  }

  // Run-level counters published at the end of the run.
  EXPECT_EQ(reg.counter_total("asamap_runs_total"), 1u);
  EXPECT_EQ(reg.counter_total("asamap_run_sweeps_total"),
            result.trace.size());
  std::uint64_t moves = 0;
  for (const auto& st : result.trace) moves += st.moves;
  EXPECT_EQ(reg.counter_total("asamap_run_moves_total"), moves);
  EXPECT_DOUBLE_EQ(reg.gauge_value("asamap_run_communities"),
                   static_cast<double>(result.num_communities));
  EXPECT_DOUBLE_EQ(reg.gauge_value("asamap_run_codelength_bits"),
                   result.codelength);
}

// Serial driver: same registry contract, and an uninstrumented run (null
// registry) must behave identically — the span's fast path.
TEST(ObsEndToEnd, SerialRunPublishesAndNullRegistryIsHarmless) {
  const auto pp = gen::planted_partition(2000, 10, 0.1, 0.002, 99);

  core::InfomapOptions opts;
  MetricRegistry reg;
  opts.metrics = &reg;
  const auto with = core::run_infomap(pp.graph, opts);

  core::InfomapOptions plain;
  const auto without = core::run_infomap(pp.graph, plain);

  EXPECT_EQ(with.communities, without.communities);
  EXPECT_DOUBLE_EQ(with.codelength, without.codelength);
  EXPECT_EQ(reg.counter_total("asamap_runs_total"), 1u);
  EXPECT_GT(reg.histogram_merged_all(std::string(kKernelSpanMetric)).count(),
            0u);
}

}  // namespace
