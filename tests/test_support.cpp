// Unit tests for the support library: RNG determinism and statistical
// sanity, hashing primitives, timers, and the check macros.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "asamap/support/argparse.hpp"
#include "asamap/support/bounded_queue.hpp"
#include "asamap/support/check.hpp"
#include "asamap/support/hash.hpp"
#include "asamap/support/histogram.hpp"
#include "asamap/support/rng.hpp"
#include "asamap/support/timer.hpp"

namespace {

using namespace asamap::support;

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(99);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowZeroBoundReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kN / static_cast<int>(kBuckets), kN / 100);
  }
}

TEST(Xoshiro256, NextInIsInclusive) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_in(4, 6));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{4, 5, 6}));
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(PowerLaw, StaysInBounds) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t k = sample_power_law(rng, 3, 500, 2.5);
    EXPECT_GE(k, 3u);
    EXPECT_LE(k, 500u);
  }
}

TEST(PowerLaw, DegenerateRangeReturnsMin) {
  Xoshiro256 rng(17);
  EXPECT_EQ(sample_power_law(rng, 7, 7, 2.5), 7u);
  EXPECT_EQ(sample_power_law(rng, 9, 3, 2.5), 9u);
}

TEST(PowerLaw, HeavierTailForSmallerGamma) {
  // Smaller gamma => more mass at high degrees => larger mean.
  Xoshiro256 rng(23);
  auto mean_for = [&](double gamma) {
    double sum = 0.0;
    for (int i = 0; i < 50000; ++i) {
      sum += sample_power_law(rng, 1, 10000, gamma);
    }
    return sum / 50000.0;
  };
  const double mean_21 = mean_for(2.1);
  const double mean_30 = mean_for(3.0);
  EXPECT_GT(mean_21, 2.0 * mean_30);
}

TEST(PowerLaw, EmpiricalExponentMatches) {
  // Histogram the sampler and fit log-log slope; should recover gamma.
  Xoshiro256 rng(31);
  constexpr double kGamma = 2.5;
  std::vector<double> counts(2000, 0.0);
  for (int i = 0; i < 400000; ++i) {
    const std::uint32_t k = sample_power_law(rng, 1, 1999, kGamma);
    counts[k] += 1.0;
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int m = 0;
  for (std::size_t k = 2; k < 200; ++k) {
    if (counts[k] < 5) continue;
    const double x = std::log(static_cast<double>(k));
    const double y = std::log(counts[k]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  ASSERT_GT(m, 10);
  const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  EXPECT_NEAR(-slope, kGamma, 0.2);
}

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit should flip ~half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x12345678ULL);
    const std::uint64_t b = mix64(0x12345678ULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  EXPECT_NEAR(total_flips / 64.0, 32.0, 6.0);
}

TEST(Hash, FibonacciHashWithinBits) {
  for (unsigned bits : {4u, 10u, 16u}) {
    for (std::uint64_t k = 0; k < 1000; ++k) {
      EXPECT_LT(fibonacci_hash(k, bits), 1ULL << bits);
    }
  }
}

TEST(Hash, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(16), 16u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Hash, BucketOfStaysInTable) {
  for (std::uint64_t h = 0; h < 1000; ++h) {
    EXPECT_LT(bucket_of(mix64(h), 64), 64u);
  }
}

TEST(Timer, WallTimerAdvances) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(t.seconds(), 0.004);
}

TEST(Timer, PhaseTimerAccumulates) {
  PhaseTimer pt;
  pt.add("a", 1.0);
  pt.add("b", 2.0);
  pt.add("a", 0.5);
  EXPECT_DOUBLE_EQ(pt.total("a"), 1.5);
  EXPECT_DOUBLE_EQ(pt.total("b"), 2.0);
  EXPECT_DOUBLE_EQ(pt.total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(pt.grand_total(), 3.5);
  EXPECT_EQ(pt.phases(), (std::vector<std::string>{"a", "b"}));
}

TEST(Timer, ScopedPhaseRecords) {
  PhaseTimer pt;
  {
    ScopedPhase phase(pt, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(pt.total("scope"), 0.0);
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(ASAMAP_CHECK(false, "boom"), std::logic_error);
  try {
    ASAMAP_CHECK(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("numbers disagree"),
              std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(ASAMAP_CHECK(true, "fine"));
}

TEST(BoundedQueue, PushPopInOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BoundedQueue, RejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // backpressure, not blocking
  q.try_pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  q.try_push(7);
  q.close();
  EXPECT_FALSE(q.try_push(8));        // no pushes after close
  EXPECT_EQ(q.pop_wait(), 7);         // buffered items still drain
  EXPECT_EQ(q.pop_wait(), std::nullopt);  // then closed+empty
}

TEST(BoundedQueue, PopWaitBlocksUntilPush) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.try_push(42);
  });
  EXPECT_EQ(q.pop_wait(), 42);  // blocked until the producer delivered
  producer.join();
}

TEST(LatencyHistogram, QuantilesOfUniformRamp) {
  LatencyHistogram h;
  for (std::uint64_t ns = 1; ns <= 10000; ++ns) h.record_ns(ns);
  EXPECT_EQ(h.count(), 10000u);
  // Log-bucketing bounds relative error at ~12.5% per bucket.
  EXPECT_NEAR(h.quantile_seconds(0.5) * 1e9, 5000.0, 5000.0 * 0.15);
  EXPECT_NEAR(h.quantile_seconds(0.99) * 1e9, 9900.0, 9900.0 * 0.15);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.0) * 1e9, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(1.0) * 1e9, 10000.0);
  EXPECT_NEAR(h.mean_seconds() * 1e9, 5000.5, 1e-3);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (std::uint64_t ns = 1; ns <= 100; ++ns) {
    (ns % 2 == 0 ? a : b).record_ns(ns * 1000);
    combined.record_ns(ns * 1000);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean_seconds(), combined.mean_seconds());
  EXPECT_DOUBLE_EQ(a.quantile_seconds(0.5), combined.quantile_seconds(0.5));
  EXPECT_DOUBLE_EQ(a.min_seconds(), combined.min_seconds());
  EXPECT_DOUBLE_EQ(a.max_seconds(), combined.max_seconds());
}

TEST(LatencyHistogram, EmptyIsAllZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 0.0);
}

// Golden values for the rank-interpolated quantile.  A degenerate
// distribution (every sample identical) must report the sample exactly at
// every quantile — the old bucket-midpoint rule reported 104ns for three
// 100ns samples.
TEST(LatencyHistogram, GoldenIdenticalSamplesReportThemselves) {
  LatencyHistogram h;
  for (int i = 0; i < 3; ++i) h.record_ns(100);
  for (double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile_seconds(q) * 1e9, 100.0) << "q=" << q;
  }
}

// Uniform ramp 1..10000ns: rank interpolation lands p50 on 5001ns exactly
// (the 5000.5-th order statistic, one bucket-width interpolation step past
// the bucket floor at 4096), and clamping pins p99 to the observed max
// because the tail bucket [8192, 10240) extends past it.
TEST(LatencyHistogram, GoldenUniformRampQuantiles) {
  LatencyHistogram h;
  for (std::uint64_t ns = 1; ns <= 10000; ++ns) h.record_ns(ns);
  EXPECT_NEAR(h.quantile_seconds(0.5) * 1e9, 5001.0, 1e-6);
  EXPECT_NEAR(h.quantile_seconds(0.9) * 1e9, 9107.43, 0.5);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.99) * 1e9, 10000.0);
}

// Widely separated epochs: the median of {3, 500, 5000, 70000} ns has
// target rank 1.5, which interpolates half-way INTO the 500ns sample's
// bucket [448, 512) — landing on its upper edge, not the 480ns midpoint.
TEST(LatencyHistogram, GoldenSparseEpochsMedian) {
  LatencyHistogram h;
  for (std::uint64_t ns : {3ULL, 500ULL, 5000ULL, 70000ULL}) h.record_ns(ns);
  EXPECT_NEAR(h.quantile_seconds(0.5) * 1e9, 512.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.0) * 1e9, 3.0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(1.0) * 1e9, 70000.0);
}

TEST(LatencyHistogram, RecordSecondsRoundsToNearestNs) {
  // Truncation used to bias every sample low by up to 1ns; 2.6ns must
  // record as 3, not 2.
  LatencyHistogram up;
  up.record_seconds(2.6e-9);
  EXPECT_DOUBLE_EQ(up.min_seconds() * 1e9, 3.0);
  LatencyHistogram down;
  down.record_seconds(2.4e-9);
  EXPECT_DOUBLE_EQ(down.min_seconds() * 1e9, 2.0);
  LatencyHistogram zero;
  zero.record_seconds(-1.0);  // negative durations clamp to 0, not wrap
  EXPECT_DOUBLE_EQ(zero.max_seconds(), 0.0);
}

TEST(ArgParser, ParsesBothOptionSpellings) {
  const char* argv[] = {"prog", "cmd",   "input.txt",      "--engine=flat",
                        "--parallel", "4", "--directed"};
  ArgParser args(7, const_cast<char**>(argv), 2, {"directed"});
  EXPECT_EQ(args.positional(), std::vector<std::string>{"input.txt"});
  EXPECT_EQ(args.get_or("engine", "?"), "flat");
  EXPECT_EQ(args.int_or("parallel", 0), 4);
  EXPECT_TRUE(args.flag("directed"));
  EXPECT_FALSE(args.flag("quick"));
  EXPECT_EQ(args.get("missing"), std::nullopt);
  EXPECT_EQ(args.int_or("missing", 9), 9);
  EXPECT_TRUE(args.unknown_keys({"engine", "parallel"}).empty());
}

TEST(ArgParser, ReportsUnknownAndValuelessOptions) {
  const char* argv[] = {"prog", "--mystery=1", "--tail"};
  ArgParser args(3, const_cast<char**>(argv), 1, {});
  const auto unknown = args.unknown_keys({});
  ASSERT_EQ(unknown.size(), 2u);  // --mystery unknown, --tail got no value
}

TEST(ArgParser, ParseIntAcceptsWholeTokensOnly) {
  long long v = -1;
  EXPECT_TRUE(ArgParser::parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ArgParser::parse_int("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ArgParser::parse_int("", v));
  EXPECT_FALSE(ArgParser::parse_int(" 12", v));
  EXPECT_FALSE(ArgParser::parse_int("12 ", v));
  EXPECT_FALSE(ArgParser::parse_int("12abc", v));
  EXPECT_FALSE(ArgParser::parse_int("1s", v));
  EXPECT_FALSE(ArgParser::parse_int("abc", v));
  EXPECT_FALSE(ArgParser::parse_int("99999999999999999999999", v));  // range
}

TEST(ArgParser, ParseDoubleAcceptsWholeTokensOnly) {
  double v = -1.0;
  EXPECT_TRUE(ArgParser::parse_double("2.5", v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ArgParser::parse_double("1e3", v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(ArgParser::parse_double("", v));
  EXPECT_FALSE(ArgParser::parse_double("2.5x", v));
  EXPECT_FALSE(ArgParser::parse_double("fast", v));
  EXPECT_FALSE(ArgParser::parse_double(" 1.0", v));
  EXPECT_FALSE(ArgParser::parse_double("1e999", v));  // overflow
}

TEST(ArgParser, MalformedValuesThrowInsteadOfReadingZero) {
  // The strtoll(..., nullptr, 10) bug this guards against: "1s" silently
  // parsed as 1, "abc" as 0 — turning `--deadline-ms=1s` into a no-op or
  // an immediate deadline.
  const char* argv[] = {"prog", "--deadline-ms=1s", "--rate=fast"};
  ArgParser args(3, const_cast<char**>(argv), 1, {});
  EXPECT_THROW((void)args.int_or("deadline-ms", 0), std::invalid_argument);
  EXPECT_THROW((void)args.double_or("rate", 0.0), std::invalid_argument);
  try {
    (void)args.int_or("deadline-ms", 0);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--deadline-ms"), std::string::npos);
    EXPECT_NE(what.find("1s"), std::string::npos);
  }
  // Absent keys still fall back without throwing.
  EXPECT_EQ(args.int_or("missing", 9), 9);
  EXPECT_DOUBLE_EQ(args.double_or("missing", 0.5), 0.5);
}

}  // namespace
