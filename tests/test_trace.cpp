// Tests for the obs tracing layer (src/obs/tracing.hpp): TraceContext
// propagation across scheduler worker threads, flight-recorder ring
// overwrite/ordering semantics, concurrent record-while-dump (this binary
// runs under TSAN in CI), the golden CLUSTER span tree, and the zero-
// allocation guarantee on the KernelSpan hot path.
//
// This file replaces global operator new/delete with counting versions so
// the zero-alloc test can assert on the exact allocation count of a span
// open/close; the counters are plain relaxed atomics and do not perturb
// the other tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "asamap/obs/metrics.hpp"
#include "asamap/obs/trace.hpp"
#include "asamap/obs/tracing.hpp"
#include "asamap/serve/job_scheduler.hpp"
#include "asamap/serve/session.hpp"
#include "asamap/support/timer.hpp"

using namespace asamap;

// ---- global allocation counter (for the zero-alloc KernelSpan test) -----

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// ---- TraceSpan / TraceScope basics --------------------------------------

TEST(TraceSpan, RootMintsTraceIdAndNestedSpanInherits) {
  obs::FlightRecorder rec(64);
  ASSERT_FALSE(obs::current_trace().active());
  obs::TraceContext root_ctx, child_ctx;
  {
    obs::TraceSpan root("unit.root", obs::TraceCat::kUser, rec);
    root_ctx = root.context();
    EXPECT_TRUE(root_ctx.active());
    EXPECT_EQ(obs::current_trace().span_id, root_ctx.span_id);
    {
      obs::TraceSpan child("unit.child", obs::TraceCat::kUser, rec);
      child_ctx = child.context();
      EXPECT_EQ(child_ctx.trace_id, root_ctx.trace_id);
      EXPECT_NE(child_ctx.span_id, root_ctx.span_id);
    }
    // Child closed: the root context is current again.
    EXPECT_EQ(obs::current_trace().span_id, root_ctx.span_id);
  }
  EXPECT_FALSE(obs::current_trace().active());

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);  // B root, B child, E child, E root
  EXPECT_EQ(std::string_view(events[0].name), "unit.root");
  EXPECT_EQ(events[0].kind, obs::TraceKind::kBegin);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(std::string_view(events[1].name), "unit.child");
  EXPECT_EQ(events[1].parent_id, root_ctx.span_id);
  EXPECT_EQ(events[1].trace_id, root_ctx.trace_id);
  EXPECT_EQ(events[2].kind, obs::TraceKind::kEnd);
  EXPECT_EQ(std::string_view(events[3].name), "unit.root");
  EXPECT_EQ(events[3].kind, obs::TraceKind::kEnd);
}

TEST(TraceScope, InstallsAndRestoresContext) {
  const obs::TraceContext before = obs::current_trace();
  {
    obs::TraceScope scope({42, 7});
    EXPECT_EQ(obs::current_trace().trace_id, 42u);
    EXPECT_EQ(obs::current_trace().span_id, 7u);
  }
  EXPECT_EQ(obs::current_trace().trace_id, before.trace_id);
  EXPECT_EQ(obs::current_trace().span_id, before.span_id);
}

// ---- ring semantics ------------------------------------------------------

TEST(FlightRecorder, OverwriteOldestKeepsNewestAndCountsDrops) {
  obs::FlightRecorder rec(64);
  for (std::uint64_t i = 0; i < 200; ++i) {
    rec.record(obs::TraceKind::kInstant, obs::TraceCat::kUser, "tick",
               /*trace_id=*/0, /*span_id=*/0, /*parent_id=*/0,
               /*ts_ns=*/i + 1);
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 64u);  // bounded by ring capacity
  // Overwrite-oldest: exactly the newest 64 events survive, in ts order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 200 - 64 + i + 1);
  }
  const auto stats = rec.stats();
  EXPECT_EQ(stats.recorded, 200u);
  EXPECT_EQ(stats.dropped, 200u - 64u);
  EXPECT_EQ(stats.ring_capacity, 64u);
  EXPECT_EQ(stats.rings, 1);  // single writer thread
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwoAndClampsLow) {
  obs::FlightRecorder rec(100);  // rounds to 128
  EXPECT_EQ(rec.stats().ring_capacity, 128u);
  obs::FlightRecorder tiny(1);  // clamps to the 64-event floor
  EXPECT_EQ(tiny.stats().ring_capacity, 64u);
}

TEST(FlightRecorder, DisabledRecorderDropsEverything) {
  obs::FlightRecorder rec(64);
  rec.set_enabled(false);
  rec.instant("ghost", obs::TraceCat::kUser);
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.stats().recorded, 0u);
  rec.set_enabled(true);
  rec.instant("real", obs::TraceCat::kUser);
  EXPECT_EQ(rec.snapshot().size(), 1u);
}

TEST(FlightRecorder, InternDedupsAndSurvivesByPointer) {
  obs::FlightRecorder rec(64);
  const char* a = rec.intern("custom label");
  const char* b = rec.intern("custom label");
  EXPECT_EQ(a, b);  // same backing string, not just equal contents
  EXPECT_EQ(std::string_view(a), "custom label");
}

TEST(FlightRecorder, CompleteEventCarriesRetroactiveTimestamps) {
  obs::FlightRecorder rec(64);
  const obs::TraceContext ctx{99, 5};
  const std::uint64_t sid =
      rec.complete("wait", obs::TraceCat::kScheduler, ctx,
                   /*ts_ns=*/1000, /*dur_ns=*/250, /*arg=*/7);
  EXPECT_NE(sid, 0u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::kComplete);
  EXPECT_EQ(events[0].ts_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 250u);
  EXPECT_EQ(events[0].trace_id, 99u);
  EXPECT_EQ(events[0].span_id, sid);
  EXPECT_EQ(events[0].parent_id, 5u);
  EXPECT_EQ(events[0].arg, 7u);
}

// ---- concurrency ---------------------------------------------------------

TEST(FlightRecorder, ConcurrentRecordWhileDumpStaysConsistent) {
  obs::FlightRecorder rec(256);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        rec.instant("stress", obs::TraceCat::kUser,
                    /*arg=*/static_cast<std::uint64_t>(w) << 32 | i);
      }
    });
  }
  // Dump continuously while the writers hammer the rings.  Every event a
  // snapshot yields must be fully formed (no torn names/kinds), and the
  // JSON writer must never crash mid-overwrite.
  for (int pass = 0; pass < 50; ++pass) {
    const auto events = rec.snapshot();
    for (const auto& e : events) {
      ASSERT_NE(e.name, nullptr);
      EXPECT_EQ(std::string_view(e.name), "stress");
      EXPECT_EQ(e.kind, obs::TraceKind::kInstant);
      EXPECT_EQ(e.cat, obs::TraceCat::kUser);
    }
    std::ostringstream os;
    rec.write_chrome_json(os);
    EXPECT_EQ(os.str().rfind("{\"traceEvents\"", 0), 0u);
  }
  for (auto& t : writers) t.join();
  const auto stats = rec.stats();
  EXPECT_EQ(stats.recorded, kWriters * kPerWriter);
  EXPECT_LE(rec.snapshot().size(), stats.rings * stats.ring_capacity);
}

TEST(TraceContext, PropagatesAcrossSchedulerWorkerThreads) {
  serve::SchedulerConfig cfg;
  cfg.workers = 2;
  serve::JobScheduler sched(cfg);
  const std::thread::id submitter = std::this_thread::get_id();

  obs::TraceContext seen{};
  std::thread::id runner;
  std::uint64_t submitted_trace = 0;
  {
    obs::TraceSpan root("test.submit", obs::TraceCat::kUser);
    submitted_trace = root.context().trace_id;
    const auto ticket = sched.submit(
        [&](const serve::JobContext&) {
          seen = obs::current_trace();
          runner = std::this_thread::get_id();
        },
        serve::JobPriority::kInteractive);
    ASSERT_TRUE(ticket.accepted());
    ASSERT_EQ(sched.wait(ticket.id), serve::JobState::kDone);
  }
  // The job ran on a worker thread yet inherited the submitter's trace id;
  // its span id is fresh (the job.run span, not the submitter's span).
  EXPECT_NE(runner, submitter);
  EXPECT_EQ(seen.trace_id, submitted_trace);
  EXPECT_NE(seen.span_id, 0u);
  sched.shutdown();
}

TEST(TraceContext, JobWithoutAmbientTraceMintsItsOwn) {
  serve::SchedulerConfig cfg;
  cfg.workers = 1;
  serve::JobScheduler sched(cfg);
  ASSERT_FALSE(obs::current_trace().active());
  obs::TraceContext seen{};
  const auto ticket = sched.submit(
      [&](const serve::JobContext&) { seen = obs::current_trace(); },
      serve::JobPriority::kInteractive);
  ASSERT_TRUE(ticket.accepted());
  ASSERT_EQ(sched.wait(ticket.id), serve::JobState::kDone);
  // Orphan jobs still get a trace so queue.wait/job.run share an id.
  EXPECT_TRUE(seen.active());
  sched.shutdown();
}

// ---- golden CLUSTER trace ------------------------------------------------

TEST(TraceGolden, ClusterProducesOneConnectedSpanTree) {
  serve::SessionConfig cfg;
  cfg.scheduler.workers = 1;
  cfg.cluster_threads = 1;
  serve::ServeSession session(cfg);
  ASSERT_EQ(session.handle_line("GEN g 1200 5000 7").rfind("OK", 0), 0u);
  ASSERT_EQ(session.handle_line("CLUSTER g sync").rfind("OK", 0), 0u);

  // The global recorder accumulates events from every test in this binary,
  // so key off the newest CLUSTER root span.
  const auto events = obs::FlightRecorder::instance().snapshot();
  std::uint64_t cluster_trace = 0;
  std::uint64_t cluster_span = 0;
  for (const auto& e : events) {
    if (e.kind == obs::TraceKind::kBegin &&
        std::string_view(e.name) == "CLUSTER") {
      cluster_trace = e.trace_id;
      cluster_span = e.span_id;
    }
  }
  ASSERT_NE(cluster_trace, 0u) << "no CLUSTER begin event recorded";

  // Collect the spans of that trace: name -> (span_id, parent_id).
  struct SpanInfo {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
  };
  std::vector<std::pair<std::string, SpanInfo>> spans;
  for (const auto& e : events) {
    if (e.trace_id != cluster_trace) continue;
    if (e.kind == obs::TraceKind::kBegin ||
        e.kind == obs::TraceKind::kComplete) {
      spans.emplace_back(e.name, SpanInfo{e.span_id, e.parent_id});
    }
  }
  const auto find = [&spans](std::string_view name) -> const SpanInfo* {
    for (const auto& [n, info] : spans) {
      if (n == name) return &info;
    }
    return nullptr;
  };

  // The acceptance chain: verb -> queue.wait -> job.run -> four kernels,
  // all under ONE trace id.
  const SpanInfo* wait = find("queue.wait");
  const SpanInfo* run = find("job.run");
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(wait->parent, cluster_span);
  EXPECT_EQ(run->parent, wait->id);
  for (const char* kernel : obs::kKernelPhaseNames) {
    const SpanInfo* k = find(kernel);
    ASSERT_NE(k, nullptr) << "kernel span missing: " << kernel;
    EXPECT_EQ(k->parent, run->id) << kernel;
  }
  const SpanInfo* publish = find("snapshot.publish");
  ASSERT_NE(publish, nullptr);
  EXPECT_EQ(publish->parent, run->id);

  // TRACE DUMP exports the same events as single-line Chrome JSON.
  const std::string dump = session.handle_line("TRACE DUMP");
  ASSERT_EQ(dump.rfind("OK format=chrome-trace bytes=", 0), 0u);
  const std::size_t json_at = dump.find('\n') + 1;
  EXPECT_EQ(dump.compare(json_at, 15, "{\"traceEvents\":"), 0);
  // bytes=N in the header counts exactly the payload after the newline.
  const std::size_t declared = std::stoull(dump.substr(29, json_at - 30));
  EXPECT_EQ(declared, dump.size() - json_at);
  const std::string status = session.handle_line("TRACE STATUS");
  EXPECT_EQ(status.rfind("OK enabled=1", 0), 0u);
}

// ---- KernelSpan hot path -------------------------------------------------

TEST(KernelSpanAlloc, SpanOpenCloseAllocatesNothingAfterWarmup) {
  support::PhaseTimer timer;
  obs::MetricRegistry registry;
  // All allocation happens up front: KernelTimers resolves the wall-clock
  // slots and histogram handles once, and the first record from this
  // thread claims its ring.
  obs::KernelTimers timers(timer, &registry);
  { obs::KernelSpan warm(timers, obs::KernelPhase::kPageRank); }

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    obs::KernelSpan a(timers, obs::KernelPhase::kPageRank);
    obs::KernelSpan b(timers, obs::KernelPhase::kFindBestCommunity);
    obs::KernelSpan c(timers, obs::KernelPhase::kConvert2SuperNode);
    obs::KernelSpan d(timers, obs::KernelPhase::kUpdateMembers);
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "KernelSpan open/close must not allocate on the hot path";

  // And both sinks were fed: wall-clock totals and histogram counts.
  EXPECT_GT(timer.total("PageRank"), 0.0);
  EXPECT_EQ(registry
                .histogram_merged(obs::kKernelSpanMetric,
                                  obs::kernel_label("PageRank"))
                .count(),
            101u);
}

}  // namespace
