// Unit tests for partition metrics: NMI, ARI, modularity, and the partition
// utilities, on cases with known closed-form answers.

#include <gtest/gtest.h>

#include <cmath>

#include "asamap/gen/generators.hpp"
#include "asamap/graph/edge_list.hpp"
#include "asamap/metrics/partition.hpp"
#include "asamap/support/rng.hpp"

namespace {

using namespace asamap;
using metrics::Partition;

TEST(PartitionUtils, CompactRelabelsInOrder) {
  Partition p = {7, 3, 7, 9, 3};
  const std::size_t k = metrics::compact_partition(p);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(p, (Partition{0, 1, 0, 2, 1}));
}

TEST(PartitionUtils, CountAndSizes) {
  const Partition p = {5, 5, 2, 2, 2, 8};
  EXPECT_EQ(metrics::count_communities(p), 3u);
  const auto sizes = metrics::community_sizes(p);
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{2, 3, 1}));
}

TEST(Nmi, IdenticalPartitionsScoreOne) {
  const Partition a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(metrics::normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(Nmi, RelabelingInvariant) {
  const Partition a = {0, 0, 1, 1, 2, 2};
  const Partition b = {9, 9, 4, 4, 7, 7};
  EXPECT_NEAR(metrics::normalized_mutual_information(a, b), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsScoreLow) {
  // Large random partitions: NMI should be near 0.
  support::Xoshiro256 rng(3);
  Partition a(10000), b(10000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<graph::VertexId>(rng.next_below(10));
    b[i] = static_cast<graph::VertexId>(rng.next_below(10));
  }
  EXPECT_LT(metrics::normalized_mutual_information(a, b), 0.02);
}

TEST(Nmi, SymmetricInArguments) {
  const Partition a = {0, 0, 1, 1, 2, 2, 0, 1};
  const Partition b = {0, 1, 1, 1, 2, 0, 0, 1};
  EXPECT_NEAR(metrics::normalized_mutual_information(a, b),
              metrics::normalized_mutual_information(b, a), 1e-12);
}

TEST(Nmi, KnownHalfSplitValue) {
  // a splits 4 elements {01|23}; b groups all together: H(b)=0 => NMI
  // defined as 2I/(Ha+Hb); I=0, denominator=Ha>0 => 0.
  const Partition a = {0, 0, 1, 1};
  const Partition b = {0, 0, 0, 0};
  EXPECT_NEAR(metrics::normalized_mutual_information(a, b), 0.0, 1e-12);
}

TEST(Nmi, BothTrivialIsOne) {
  const Partition a = {0, 0, 0};
  EXPECT_DOUBLE_EQ(metrics::normalized_mutual_information(a, a), 1.0);
}

TEST(Ari, IdenticalIsOne) {
  const Partition a = {0, 1, 1, 2, 2, 2};
  EXPECT_NEAR(metrics::adjusted_rand_index(a, a), 1.0, 1e-12);
}

TEST(Ari, IndependentNearZero) {
  support::Xoshiro256 rng(5);
  Partition a(20000), b(20000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<graph::VertexId>(rng.next_below(8));
    b[i] = static_cast<graph::VertexId>(rng.next_below(8));
  }
  EXPECT_NEAR(metrics::adjusted_rand_index(a, b), 0.0, 0.01);
}

TEST(Ari, PartialAgreementBetweenZeroAndOne) {
  const Partition a = {0, 0, 0, 1, 1, 1};
  const Partition b = {0, 0, 1, 1, 1, 1};
  const double ari = metrics::adjusted_rand_index(a, b);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(Modularity, TwoCliquesWithBridge) {
  // Two triangles joined by one edge; the natural partition has known Q.
  graph::EdgeList e;
  e.add_undirected(0, 1);
  e.add_undirected(1, 2);
  e.add_undirected(0, 2);
  e.add_undirected(3, 4);
  e.add_undirected(4, 5);
  e.add_undirected(3, 5);
  e.add_undirected(2, 3);  // bridge
  e.coalesce();
  const auto g = graph::CsrGraph::from_edges(e);
  const Partition p = {0, 0, 0, 1, 1, 1};
  // 2W = 14.  Internal arcs per community: 6.  Degrees: 7 each.
  // Q = 2 * (6/14 - (7/14)^2) = 6/7 - 1/2 = 0.357142...
  EXPECT_NEAR(metrics::modularity(g, p), 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(Modularity, SingleCommunityIsZero) {
  const auto g = gen::erdos_renyi(100, 0.1, 7);
  const Partition p(100, 0);
  EXPECT_NEAR(metrics::modularity(g, p), 0.0, 1e-12);
}

TEST(Modularity, GoodPartitionBeatsRandom) {
  const auto pp = gen::planted_partition(600, 6, 0.2, 0.005, 11);
  Partition truth(pp.ground_truth.begin(), pp.ground_truth.end());
  support::Xoshiro256 rng(13);
  Partition random(600);
  for (auto& c : random) c = static_cast<graph::VertexId>(rng.next_below(6));
  EXPECT_GT(metrics::modularity(pp.graph, truth),
            metrics::modularity(pp.graph, random) + 0.2);
}

TEST(Modularity, RequiresMatchingSizes) {
  const auto g = gen::erdos_renyi(10, 0.5, 1);
  const Partition p(5, 0);
  EXPECT_THROW(metrics::modularity(g, p), std::logic_error);
}

TEST(Nmi, RequiresMatchingSizes) {
  const Partition a(4, 0), b(5, 0);
  EXPECT_THROW(metrics::normalized_mutual_information(a, b),
               std::logic_error);
}

}  // namespace

#include <sstream>

#include "asamap/metrics/partition_io.hpp"

namespace {

using asamap::metrics::Partition;

TEST(PartitionIo, RoundTrip) {
  const Partition p = {3, 1, 4, 1, 5, 9, 2, 6};
  std::ostringstream out;
  asamap::metrics::write_partition(out, p);
  std::istringstream in(out.str());
  EXPECT_EQ(asamap::metrics::read_partition(in), p);
}

TEST(PartitionIo, ReadsCommentsAndAnyOrder) {
  std::istringstream in(
      "# header\n"
      "2\t7\n"
      "0\t5\n"
      "1\t5\n");
  const Partition p = asamap::metrics::read_partition(in);
  EXPECT_EQ(p, (Partition{5, 5, 7}));
}

TEST(PartitionIo, MissingVerticesDefaultToZero) {
  std::istringstream in("3\t9\n");
  const Partition p = asamap::metrics::read_partition(in);
  EXPECT_EQ(p, (Partition{0, 0, 0, 9}));
}

TEST(PartitionIo, ThrowsOnGarbage) {
  std::istringstream in("1 banana\n");
  EXPECT_THROW(asamap::metrics::read_partition(in), std::runtime_error);
}

}  // namespace
