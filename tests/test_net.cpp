// Tests for the network request plane (asamap::net): the framing codec
// (round-trip, truncation, oversize, garbage, fuzzed split points), the
// SPSC handoff ring (semantics + a two-thread stress that is the TSAN
// target for the socket->worker edge), and the epoll server end to end
// over real loopback sockets — text/binary autodetect, partial-frame
// reassembly across wakeups, pipelined batches, the multi-line response
// envelope over TCP, per-connection QUIT, and clean stop().

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "asamap/net/frame.hpp"
#include "asamap/net/server.hpp"
#include "asamap/net/spsc_ring.hpp"
#include "asamap/serve/session.hpp"

namespace {

using namespace asamap;
using namespace asamap::net;

// --- framing codec -------------------------------------------------------

std::string framed(std::string_view payload) {
  std::string out;
  append_frame(payload, out);
  return out;
}

TEST(Frame, BinaryRoundTrip) {
  const std::string wire = framed("MEMBER g 5");
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 10);
  EXPECT_EQ(static_cast<unsigned char>(wire[0]), kFrameMagic);
  const Decoded d = decode_one(wire);
  ASSERT_EQ(d.status, DecodeStatus::kBinary);
  EXPECT_EQ(d.payload, "MEMBER g 5");
  EXPECT_EQ(d.consumed, wire.size());
}

TEST(Frame, TextRoundTripStripsCr) {
  const Decoded lf = decode_one("TOPK g 3\nrest");
  ASSERT_EQ(lf.status, DecodeStatus::kText);
  EXPECT_EQ(lf.payload, "TOPK g 3");
  EXPECT_EQ(lf.consumed, 9u);

  const Decoded crlf = decode_one("TOPK g 3\r\n");
  ASSERT_EQ(crlf.status, DecodeStatus::kText);
  EXPECT_EQ(crlf.payload, "TOPK g 3");
  EXPECT_EQ(crlf.consumed, 10u);
}

TEST(Frame, EmptyPayloadsAreValid) {
  const Decoded text = decode_one("\n");
  EXPECT_EQ(text.status, DecodeStatus::kText);
  EXPECT_EQ(text.payload, "");
  const Decoded bin = decode_one(framed(""));
  EXPECT_EQ(bin.status, DecodeStatus::kBinary);
  EXPECT_EQ(bin.payload, "");
  EXPECT_EQ(bin.consumed, kFrameHeaderBytes);
}

TEST(Frame, TruncatedInputsNeedMoreAndConsumeNothing) {
  const std::string wire = framed("SUMMARY g");
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const Decoded d = decode_one(std::string_view(wire).substr(0, cut));
    EXPECT_EQ(d.status, DecodeStatus::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(d.consumed, 0u);
  }
  EXPECT_EQ(decode_one("MEMBER g 5").status, DecodeStatus::kNeedMore)
      << "text without newline is incomplete";
}

TEST(Frame, OversizedAndGarbageLengthsAreErrors) {
  // A length header past the cap can never become a valid message — the
  // decoder must fail fast instead of waiting for 4 GiB.
  std::string wire;
  wire.push_back(static_cast<char>(kFrameMagic));
  const std::uint32_t huge = 0x7fffffff;
  wire.append(reinterpret_cast<const char*>(&huge), 4);  // LE on test hosts
  const Decoded d = decode_one(wire);
  ASSERT_EQ(d.status, DecodeStatus::kError);
  EXPECT_NE(std::string_view(d.error).find("length"),
            std::string_view::npos);

  // An unterminated text line past the cap is equally unrecoverable.
  std::string long_text(kMaxMessageBytes + 2, 'A');
  EXPECT_EQ(decode_one(long_text).status, DecodeStatus::kError);
}

TEST(Frame, FuzzRoundTripAcrossRandomSplitPoints) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> len_dist(0, 200);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int iter = 0; iter < 500; ++iter) {
    // A run of random messages: binary frames carry arbitrary bytes
    // (including 0xA5 and '\n'), text lines printable ASCII.
    std::string wire;
    std::vector<std::pair<std::string, bool>> expect;  // payload, binary
    for (int m = 0; m < 8; ++m) {
      if (rng() % 2 == 0) {
        std::string payload(static_cast<std::size_t>(len_dist(rng)), '\0');
        for (char& c : payload) c = static_cast<char>(byte_dist(rng));
        append_frame(payload, wire);
        expect.emplace_back(std::move(payload), true);
      } else {
        std::string payload(static_cast<std::size_t>(len_dist(rng)), '\0');
        for (char& c : payload) {
          c = static_cast<char>('a' + (byte_dist(rng) % 26));
        }
        wire += payload;
        wire += '\n';
        expect.emplace_back(std::move(payload), false);
      }
    }
    // Feed the wire in random-sized chunks, decoding as a transport would.
    std::string buf;
    std::size_t fed = 0;
    std::size_t seen = 0;
    while (seen < expect.size()) {
      if (fed < wire.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng() % 40, wire.size() - fed);
        buf.append(wire, fed, chunk);
        fed += chunk;
      }
      for (;;) {
        const Decoded d = decode_one(buf);
        if (d.status == DecodeStatus::kNeedMore) break;
        ASSERT_NE(d.status, DecodeStatus::kError);
        ASSERT_LT(seen, expect.size());
        EXPECT_EQ(d.payload, expect[seen].first);
        EXPECT_EQ(d.status == DecodeStatus::kBinary, expect[seen].second);
        buf.erase(0, d.consumed);
        ++seen;
      }
    }
    EXPECT_TRUE(buf.empty());
  }
}

// --- SPSC ring -----------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
}

TEST(SpscRing, FifoOrderAndRejectWhenFull) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(overflow));  // full: reject, don't block
  EXPECT_EQ(overflow, 99);                // rejected item untouched
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
  // Wrap around: indices keep counting past capacity.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(int{i}));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, i);
    }
  }
}

// Two real threads hammering one ring — the TSAN target for the
// socket->worker handoff.  Move-only-ish payloads (strings) exercise the
// slot move paths, and the consumer checks strict FIFO.
TEST(SpscRingStress, TwoThreadsPreserveOrderUnderContention) {
  constexpr int kItems = 200000;
  SpscRing<std::string> ring(64);
  std::atomic<bool> failed{false};
  std::thread consumer([&] {
    std::string item;
    for (int expected = 0; expected < kItems;) {
      if (!ring.try_pop(item)) {
        std::this_thread::yield();
        continue;
      }
      if (item != std::to_string(expected)) {
        failed.store(true);
        return;
      }
      ++expected;
    }
  });
  for (int i = 0; i < kItems; ++i) {
    std::string item = std::to_string(i);
    while (!ring.try_push(std::move(item))) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
}

// --- end to end over loopback sockets ------------------------------------

serve::SessionConfig net_test_config() {
  serve::SessionConfig config;
  config.cluster_threads = 1;
  config.scheduler.workers = 2;
  return config;
}

/// A blocking test client speaking both encodings, decoding responses with
/// the same frame codec the server uses.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    timeval tv{10, 0};  // a hung test should fail, not wedge CI
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  void send_raw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t r =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(r, 0);
      off += static_cast<std::size_t>(r);
    }
  }
  void send_text(std::string_view line) {
    std::string msg(line);
    msg += '\n';
    send_raw(msg);
  }
  void send_binary(std::string_view payload) {
    std::string msg;
    append_frame(payload, msg);
    send_raw(msg);
  }

  /// Reads one response message; false on EOF/timeout.
  bool read_message(std::string& payload, bool* binary = nullptr) {
    for (;;) {
      const Decoded d = decode_one(buf_);
      if (d.status == DecodeStatus::kText ||
          d.status == DecodeStatus::kBinary) {
        payload.assign(d.payload);
        if (binary != nullptr) *binary = d.status == DecodeStatus::kBinary;
        buf_.erase(0, d.consumed);
        return true;
      }
      if (d.status == DecodeStatus::kError) return false;
      char chunk[4096];
      const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(r));
    }
  }

  /// True when the server closed the connection (EOF) with nothing pending.
  bool at_eof() {
    if (!buf_.empty()) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<serve::ServeSession>(net_test_config());
    NetConfig config;
    config.workers = 2;  // exercise the multi-worker affinity path
    server_ = std::make_unique<NetServer>(*session_, config);
    ASSERT_TRUE(server_->start().ok());
    ASSERT_NE(server_->port(), 0);
    // Shared fixture graph, clustered once.
    ASSERT_EQ(session_->handle_line("GEN g 500 2000 7").substr(0, 2), "OK");
    ASSERT_EQ(session_->handle_line("CLUSTER g sync").substr(0, 2), "OK");
  }

  std::unique_ptr<serve::ServeSession> session_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(NetServerTest, TextAndBinaryAutodetectPerMessage) {
  TestClient client(server_->port());
  client.send_text("MEMBER g 5");
  client.send_binary("SAME g 1 2");
  client.send_text("TOPK g 3\r");  // CRLF client

  std::string resp;
  bool binary = false;
  ASSERT_TRUE(client.read_message(resp, &binary));
  EXPECT_FALSE(binary);  // text request -> text response
  EXPECT_EQ(resp.rfind("OK version=", 0), 0u) << resp;
  ASSERT_TRUE(client.read_message(resp, &binary));
  EXPECT_TRUE(binary);  // binary request -> binary response
  EXPECT_EQ(resp.rfind("OK version=", 0), 0u) << resp;
  ASSERT_TRUE(client.read_message(resp, &binary));
  EXPECT_FALSE(binary);
  EXPECT_EQ(resp.rfind("OK version=", 0), 0u) << resp;
}

TEST_F(NetServerTest, PartialFrameReassemblyAcrossWakeups) {
  TestClient client(server_->port());
  std::string wire;
  append_frame("SUMMARY g", wire);
  // Dribble the frame one byte at a time: every byte is (typically) its
  // own epoll wakeup, so the connection's read buffer must reassemble.
  for (const char c : wire) {
    client.send_raw(std::string_view(&c, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string resp;
  bool binary = false;
  ASSERT_TRUE(client.read_message(resp, &binary));
  EXPECT_TRUE(binary);
  EXPECT_EQ(resp.rfind("OK version=", 0), 0u) << resp;
}

TEST_F(NetServerTest, PipelinedBurstAnswersInOrderSameVersion) {
  TestClient client(server_->port());
  constexpr int kBurst = 64;
  std::string wire;
  for (int i = 0; i < kBurst; ++i) {
    append_frame(i % 2 == 0 ? std::string_view("MEMBER g 3")
                            : std::string_view("SUMMARY g"),
                 wire);
  }
  client.send_raw(wire);  // one write: the whole burst pipelines

  std::string resp;
  std::string version;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.read_message(resp)) << "response " << i;
    ASSERT_EQ(resp.rfind("OK version=", 0), 0u) << resp;
    const std::string v = resp.substr(3, resp.find(' ', 3) - 3);
    if (i == 0) {
      version = v;
    } else {
      EXPECT_EQ(v, version) << "response " << i;
    }
    // Order: MEMBER and SUMMARY alternate exactly as sent.
    const bool is_member = resp.find(" vertex=") != std::string::npos;
    EXPECT_EQ(is_member, i % 2 == 0) << resp;
  }
}

TEST_F(NetServerTest, MultiLineEnvelopeSurvivesTcp) {
  TestClient client(server_->port());
  client.send_binary("METRICS");
  std::string resp;
  bool binary = false;
  ASSERT_TRUE(client.read_message(resp, &binary));
  EXPECT_TRUE(binary);
  ASSERT_EQ(resp.rfind("OK format=prometheus bytes=", 0), 0u);
  // bytes=N describes exactly the payload after the header line, so a
  // client can carve an embedded-newline payload out of the frame.
  const std::size_t nl = resp.find('\n');
  const std::size_t declared = std::stoull(resp.substr(27, nl - 27));
  EXPECT_EQ(declared, resp.size() - nl - 1);
  EXPECT_NE(resp.find("asamap_net_connections_total"), std::string::npos);
}

TEST_F(NetServerTest, QuitClosesOnlyThatConnection) {
  TestClient quitter(server_->port());
  TestClient survivor(server_->port());
  quitter.send_text("QUIT");
  std::string resp;
  ASSERT_TRUE(quitter.read_message(resp));
  EXPECT_EQ(resp, "OK bye");
  EXPECT_TRUE(quitter.at_eof());  // server closed the quitter...
  survivor.send_text("MEMBER g 5");
  ASSERT_TRUE(survivor.read_message(resp));  // ...and nobody else
  EXPECT_EQ(resp.rfind("OK version=", 0), 0u) << resp;
}

TEST_F(NetServerTest, OversizedFrameGetsErrorThenClose) {
  TestClient client(server_->port());
  std::string wire;
  wire.push_back(static_cast<char>(kFrameMagic));
  const std::uint32_t huge = 0x7fffffff;
  wire.append(reinterpret_cast<const char*>(&huge), 4);
  client.send_raw(wire);
  std::string resp;
  ASSERT_TRUE(client.read_message(resp));
  EXPECT_EQ(resp.rfind("ERR invalid_argument", 0), 0u) << resp;
  EXPECT_TRUE(client.at_eof());  // an unsyncable stream must be dropped
}

TEST_F(NetServerTest, HalfCloseStillDeliversPipelinedAnswers) {
  TestClient client(server_->port());
  std::string wire;
  for (int i = 0; i < 8; ++i) append_frame("MEMBER g 1", wire);
  client.send_raw(wire);
  client.shutdown_write();  // burst-and-shutdown client
  std::string resp;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.read_message(resp)) << "response " << i;
    EXPECT_EQ(resp.rfind("OK version=", 0), 0u) << resp;
  }
  EXPECT_TRUE(client.at_eof());
}

TEST_F(NetServerTest, NetMetricsAreRegisteredAndCount) {
  {
    TestClient client(server_->port());
    client.send_text("MEMBER g 5");
    client.send_binary("MEMBER g 6");
    std::string resp;
    ASSERT_TRUE(client.read_message(resp));
    ASSERT_TRUE(client.read_message(resp));
  }
  const obs::MetricRegistry& reg = session_->metrics();
  EXPECT_GE(reg.counter_total("asamap_net_connections_total"), 1u);
  EXPECT_GE(
      reg.counter_total("asamap_net_requests_total", "proto=\"text\""), 1u);
  EXPECT_GE(
      reg.counter_total("asamap_net_requests_total", "proto=\"binary\""),
      1u);
  EXPECT_GE(reg.counter_total("asamap_net_batches_total"), 1u);
  EXPECT_GE(reg.counter_total("asamap_net_bytes_total", "dir=\"read\""), 1u);
  EXPECT_GE(reg.counter_total("asamap_net_bytes_total", "dir=\"written\""),
            1u);
}

TEST_F(NetServerTest, StopDisconnectsClientsAndIsIdempotent) {
  TestClient client(server_->port());
  client.send_text("MEMBER g 5");
  std::string resp;
  ASSERT_TRUE(client.read_message(resp));
  server_->stop();
  EXPECT_TRUE(client.at_eof());
  server_->stop();  // idempotent
  EXPECT_FALSE(server_->running());
}

// Many concurrent connections pipelining against both workers while a
// writer republishes — the TSAN stress for the whole plane.
TEST_F(NetServerTest, ConcurrentConnectionsUnderRepublish) {
  constexpr int kClients = 4;
  constexpr int kRequests = 50;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      session_->handle_line("CLUSTER g sync");
    }
  });
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server_->port());
      std::string resp;
      for (int i = 0; i < kRequests; ++i) {
        if (c % 2 == 0) {
          client.send_binary("MEMBER g 3");
        } else {
          client.send_text("SUMMARY g");
        }
        if (!client.read_message(resp) || resp.rfind("OK", 0) != 0) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
