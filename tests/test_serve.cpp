// Tests for the serving layer: registry ingestion/dedup/eviction, scheduler
// lanes/backpressure/cancellation/deadlines, snapshot-isolated partition
// storage, the session line protocol, and the concurrent stress cases the
// subsystem exists for (readers racing snapshot swaps, shutdown with jobs
// in flight).  The stress tests run with cluster_threads=1 so every thread
// here is a std::thread the sanitizers can reason about.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "asamap/gen/generators.hpp"
#include "asamap/obs/metrics.hpp"
#include "asamap/serve/graph_registry.hpp"
#include "asamap/serve/job_scheduler.hpp"
#include "asamap/serve/partition_store.hpp"
#include "asamap/serve/session.hpp"
#include "asamap/support/rng.hpp"

namespace {

using namespace asamap;
using namespace asamap::serve;
using namespace std::chrono_literals;

constexpr const char* kTriangle = "0 1\n1 2\n2 0\n";

graph::CsrGraph small_graph(std::uint64_t seed = 7) {
  gen::ChungLuParams params;
  params.n = 300;
  params.target_edges = 1200;
  return gen::chung_lu(params, seed);
}

SessionConfig test_config() {
  SessionConfig config;
  config.cluster_threads = 1;  // scheduler workers are the concurrency
  config.scheduler.workers = 2;
  return config;
}

// --- GraphRegistry -------------------------------------------------------

TEST(GraphRegistry, PutTextParsesAndStores) {
  GraphRegistry reg;
  ASSERT_TRUE(reg.put_text("tri", kTriangle).ok());
  const auto g = reg.get("tri");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_arcs(), 6u);  // undirected default
  EXPECT_EQ(reg.stats().entries, 1u);
}

TEST(GraphRegistry, RejectsMalformedUploadWithLineNumber) {
  GraphRegistry reg;
  const auto status = reg.put_text("bad", "0 1\n0 banana\n");
  EXPECT_EQ(status.code, ServeCode::kParseError);
  EXPECT_NE(status.message.find("line 2"), std::string::npos);
  EXPECT_NE(status.message.find("banana"), std::string::npos);
  EXPECT_EQ(reg.get("bad"), nullptr);
}

TEST(GraphRegistry, RejectsEmptyUpload) {
  GraphRegistry reg;
  EXPECT_EQ(reg.put_text("empty", "# only comments\n").code,
            ServeCode::kInvalidArgument);
}

TEST(GraphRegistry, RejectsOversizedVertexId) {
  RegistryConfig config;
  config.max_vertex_id = 1000;
  GraphRegistry reg(config);
  const auto status = reg.put_text("big", "0 4000000\n");
  EXPECT_EQ(status.code, ServeCode::kParseError);
  EXPECT_NE(status.message.find("maximum vertex id"), std::string::npos);
}

TEST(GraphRegistry, DedupSharesOneGraphAcrossNames) {
  GraphRegistry reg;
  ASSERT_TRUE(reg.put_text("a", kTriangle).ok());
  ASSERT_TRUE(reg.put_text("b", kTriangle).ok());
  EXPECT_EQ(reg.get("a").get(), reg.get("b").get());  // same object
  const auto stats = reg.stats();
  EXPECT_EQ(stats.dedup_hits, 1u);
  EXPECT_EQ(stats.entries, 2u);
  // Memory charged once: dropping the alias frees nothing.
  const auto before = stats.resident_bytes;
  reg.erase("b");
  EXPECT_EQ(reg.stats().resident_bytes, before);
}

TEST(GraphRegistry, EvictsLeastRecentlyUsedUnderBudget) {
  RegistryConfig config;
  config.memory_budget_bytes =
      GraphRegistry::approx_bytes(small_graph()) * 3 / 2;  // fits one
  GraphRegistry reg(config);
  ASSERT_TRUE(reg.put_graph("g1", small_graph(1)).ok());
  ASSERT_TRUE(reg.put_graph("g2", small_graph(2)).ok());
  const auto stats = reg.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(reg.get("g1"), nullptr);  // cold entry went first
  EXPECT_NE(reg.get("g2"), nullptr);  // the insert itself is never evicted
}

TEST(GraphRegistry, EvictedGraphSurvivesForHolders) {
  RegistryConfig config;
  config.memory_budget_bytes = GraphRegistry::approx_bytes(small_graph());
  GraphRegistry reg(config);
  ASSERT_TRUE(reg.put_graph("g1", small_graph(1)).ok());
  const auto held = reg.get("g1");
  ASSERT_TRUE(reg.put_graph("g2", small_graph(2)).ok());  // evicts g1
  EXPECT_EQ(reg.get("g1"), nullptr);
  EXPECT_EQ(held->num_vertices(), 300u);  // still alive through our ref
}

// --- JobScheduler --------------------------------------------------------

TEST(JobScheduler, RunsJobsToCompletion) {
  JobScheduler sched;
  std::atomic<int> ran{0};
  const auto a = sched.submit([&](const JobContext&) { ++ran; });
  const auto b = sched.submit([&](const JobContext&) { ++ran; });
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  EXPECT_EQ(sched.wait(a.id), JobState::kDone);
  EXPECT_EQ(sched.wait(b.id), JobState::kDone);
  EXPECT_EQ(ran.load(), 2);
}

TEST(JobScheduler, FailedJobReportsFailed) {
  JobScheduler sched;
  const auto r = sched.submit([](const JobContext&) { throw 1; });
  EXPECT_EQ(sched.wait(r.id), JobState::kFailed);
  EXPECT_EQ(sched.stats().failed, 1u);
}

// One worker pinned on a gate job; the backlog then proves lane priority
// and backpressure without timing assumptions.
struct GatedScheduler {
  SchedulerConfig config;
  std::atomic<bool> release{false};
  std::atomic<bool> gate_running{false};
  std::optional<JobScheduler> sched;
  std::uint64_t gate_id = 0;

  explicit GatedScheduler(std::size_t batch_capacity = 2) {
    config.workers = 1;
    config.batch_capacity = batch_capacity;
    config.interactive_capacity = 8;
    sched.emplace(config);
    gate_id = sched->submit([this](const JobContext&) {
                       gate_running = true;
                       while (!release) std::this_thread::sleep_for(1ms);
                     })
                  .id;
    while (!gate_running) std::this_thread::sleep_for(1ms);
  }
};

TEST(JobScheduler, InteractiveLaneDrainsBeforeBatch) {
  GatedScheduler g;
  std::vector<int> order;
  std::mutex order_mu;
  const auto record = [&](int tag) {
    return [&, tag](const JobContext&) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  const auto batch = g.sched->submit(record(1), JobPriority::kBatch);
  const auto inter = g.sched->submit(record(2), JobPriority::kInteractive);
  ASSERT_TRUE(batch.accepted());
  ASSERT_TRUE(inter.accepted());
  g.release = true;
  g.sched->wait(batch.id);
  g.sched->wait(inter.id);
  std::lock_guard<std::mutex> lock(order_mu);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // interactive jumped the earlier batch job
  EXPECT_EQ(order[1], 1);
}

TEST(JobScheduler, FullLaneRejectsWithReason) {
  GatedScheduler g(/*batch_capacity=*/1);
  ASSERT_TRUE(g.sched->submit([](const JobContext&) {}).accepted());
  const auto rejected = g.sched->submit([](const JobContext&) {});
  EXPECT_FALSE(rejected.accepted());
  EXPECT_EQ(rejected.status.code, ServeCode::kRejected);
  // The reject reason is a static literal (allocation-free hot path).
  EXPECT_TRUE(rejected.status.message.empty());
  EXPECT_NE(rejected.status.text().find("batch queue full"),
            std::string::npos);
  EXPECT_EQ(g.sched->stats().rejected, 1u);
  g.release = true;
}

TEST(JobScheduler, CancelQueuedJobNeverRuns) {
  GatedScheduler g;
  std::atomic<bool> ran{false};
  const auto r = g.sched->submit([&](const JobContext&) { ran = true; });
  EXPECT_TRUE(g.sched->cancel(r.id));
  EXPECT_EQ(g.sched->state(r.id), JobState::kCancelled);
  g.release = true;
  g.sched->wait(g.gate_id);
  EXPECT_FALSE(ran.load());
  EXPECT_FALSE(g.sched->cancel(r.id));  // already terminal
}

TEST(JobScheduler, CancelRunningJobStopsCooperatively) {
  JobScheduler sched;
  std::atomic<bool> started{false};
  const auto r = sched.submit([&](const JobContext& ctx) {
    started = true;
    while (!ctx.stop_requested()) std::this_thread::sleep_for(1ms);
  });
  while (!started) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(sched.cancel(r.id));
  EXPECT_EQ(sched.wait(r.id), JobState::kCancelled);
  EXPECT_EQ(sched.stats().cancelled, 1u);
}

TEST(JobScheduler, QueuedJobExpiresAtDeadline) {
  GatedScheduler g;
  std::atomic<bool> ran{false};
  const auto r = g.sched->submit([&](const JobContext&) { ran = true; },
                                 JobPriority::kBatch, 20ms);
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(g.sched->wait(r.id), JobState::kExpired);  // reaper, not a worker
  g.release = true;
  g.sched->wait(g.gate_id);
  EXPECT_FALSE(ran.load());
}

TEST(JobScheduler, RunningJobExpiresAtDeadline) {
  JobScheduler sched;
  const auto r = sched.submit(
      [&](const JobContext& ctx) {
        while (!ctx.stop_requested()) std::this_thread::sleep_for(1ms);
      },
      JobPriority::kBatch, 30ms);
  EXPECT_EQ(sched.wait(r.id), JobState::kExpired);
  EXPECT_EQ(sched.stats().expired, 1u);
}

TEST(JobScheduler, ShutdownWithJobsInFlightIsClean) {
  std::atomic<int> observed_stops{0};
  {
    SchedulerConfig config;
    config.workers = 2;
    JobScheduler sched(config);
    for (int i = 0; i < 6; ++i) {
      sched.submit([&](const JobContext& ctx) {
        while (!ctx.stop_requested()) std::this_thread::sleep_for(1ms);
        ++observed_stops;
      });
    }
    std::this_thread::sleep_for(20ms);  // let some start running
    sched.shutdown();
    const auto stats = sched.stats();
    EXPECT_EQ(stats.running, 0u);
    EXPECT_EQ(stats.cancelled + stats.completed, 6u);
  }  // destructor repeats shutdown: must be idempotent
  EXPECT_GT(observed_stops.load(), 0);  // running jobs saw their stop flag
}

TEST(JobScheduler, SubmitAfterShutdownIsRejected) {
  JobScheduler sched;
  sched.shutdown();
  const auto r = sched.submit([](const JobContext&) {});
  EXPECT_FALSE(r.accepted());
  EXPECT_EQ(r.status.code, ServeCode::kShutdown);
}

// --- PartitionStore ------------------------------------------------------

TEST(PartitionStore, PublishAssignsMonotonicVersions) {
  PartitionStore store;
  EXPECT_EQ(store.snapshot("g"), nullptr);
  EXPECT_EQ(store.publish("g", {}), 1u);
  EXPECT_EQ(store.publish("g", {}), 2u);
  EXPECT_EQ(store.snapshot("g")->version, 2u);
  store.drop("g");
  EXPECT_EQ(store.snapshot("g"), nullptr);
  EXPECT_EQ(store.publish("g", {}), 3u);  // versions survive drop
}

TEST(PartitionStore, SnapshotFlowsAreConsistent) {
  auto g = std::make_shared<const graph::CsrGraph>(small_graph());
  core::InfomapOptions opts;
  const auto result = core::run_infomap_parallel(*g, opts, 1);
  const PartitionSnapshot snap = make_snapshot(g, result);
  ASSERT_EQ(snap.communities.size(), g->num_vertices());
  ASSERT_EQ(snap.community_flow.size(), snap.num_communities);
  ASSERT_EQ(snap.by_flow.size(), snap.num_communities);
  double total = 0.0;
  for (const double f : snap.community_flow) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (std::size_t i = 1; i < snap.by_flow.size(); ++i) {
    EXPECT_GE(snap.community_flow[snap.by_flow[i - 1]],
              snap.community_flow[snap.by_flow[i]]);
  }
  EXPECT_GT(snap.modularity, 0.0);  // symmetric graph: computed
}

// --- ServeSession protocol ----------------------------------------------

TEST(ServeSession, ProtocolRoundTrip) {
  ServeSession session(test_config());
  EXPECT_EQ(session.handle_line("MEMBER g 0").substr(0, 13),
            "ERR not_found");
  ASSERT_EQ(session.handle_line("GEN g 500 2000 7").substr(0, 2), "OK");
  EXPECT_EQ(session.handle_line("MEMBER g 0").substr(0, 16),
            "ERR no_partition");
  const std::string clustered = session.handle_line("CLUSTER g sync");
  ASSERT_EQ(clustered.substr(0, 2), "OK") << clustered;
  EXPECT_NE(clustered.find("state=done"), std::string::npos);
  EXPECT_NE(clustered.find("version=1"), std::string::npos);
  EXPECT_EQ(session.handle_line("MEMBER g 0").substr(0, 2), "OK");
  EXPECT_NE(session.handle_line("SAME g 0 0").find("same=1"),
            std::string::npos);
  EXPECT_EQ(session.handle_line("TOPK g 3").substr(0, 2), "OK");
  EXPECT_NE(session.handle_line("SUMMARY g").find("interrupted=0"),
            std::string::npos);
  EXPECT_EQ(session.handle_line("STATS").substr(0, 2), "OK");
  EXPECT_EQ(session.handle_line("MEMBER g 500").substr(0, 20),
            "ERR invalid_argument");
  EXPECT_EQ(session.handle_line("DROP g"), "OK dropped=g");
  EXPECT_EQ(session.handle_line("SUMMARY g").substr(0, 13), "ERR not_found");
  EXPECT_EQ(session.handle_line("QUIT"), "OK bye");
  EXPECT_EQ(session.handle_line("NOPE").substr(0, 20), "ERR invalid_argument");
  EXPECT_EQ(session.handle_line("").substr(0, 3), "ERR");
}

TEST(ServeSession, GenDedupsIdenticalParameters) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN a 400 1600 9").substr(0, 2), "OK");
  ASSERT_EQ(session.handle_line("GEN b 400 1600 9").substr(0, 2), "OK");
  EXPECT_EQ(session.registry().stats().dedup_hits, 1u);
  EXPECT_EQ(session.registry().get("a").get(),
            session.registry().get("b").get());
}

TEST(ServeSession, TightDeadlineYieldsTerminalState) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN g 500 2000 7").substr(0, 2), "OK");
  // deadline_ms=1 on a fresh submission: the job may still finish first on
  // a fast machine, so assert only a well-formed terminal response.
  const std::string resp =
      session.handle_line("CLUSTER g sync deadline_ms=1");
  ASSERT_EQ(resp.substr(0, 2), "OK") << resp;
  EXPECT_TRUE(resp.find("state=done") != std::string::npos ||
              resp.find("state=expired") != std::string::npos)
      << resp;
}

TEST(ServeSession, CancelledJobPublishesNothing) {
  auto config = test_config();
  config.scheduler.workers = 1;
  ServeSession session(config);
  ASSERT_EQ(session.handle_line("GEN g 500 2000 7").substr(0, 2), "OK");
  // Pin the single worker so the submission stays queued, then cancel it.
  std::atomic<bool> release{false};
  const auto gate = session.scheduler().submit([&](const JobContext&) {
    while (!release) std::this_thread::sleep_for(1ms);
  });
  const auto job = session.submit_recluster("g");
  ASSERT_TRUE(job.accepted());
  EXPECT_TRUE(session.scheduler().cancel(job.id));
  release = true;
  session.scheduler().wait(gate.id);
  EXPECT_EQ(session.scheduler().wait(job.id), JobState::kCancelled);
  EXPECT_EQ(session.snapshot("g"), nullptr);  // nothing was published
}

// --- Concurrent stress ---------------------------------------------------

// The reason the subsystem exists: readers must never observe a torn
// partition while re-cluster jobs swap snapshots underneath them.  Each
// reader validates full internal consistency of every snapshot it draws and
// that versions never move backwards.
TEST(ServeStress, ReadersSeeOnlyConsistentSnapshotsDuringSwaps) {
  constexpr int kReaders = 3;
  constexpr int kSwaps = 8;
  ServeSession session(test_config());
  ASSERT_TRUE(session.gen_chung_lu("g", 300, 1200, 7).ok());
  const auto first = session.submit_recluster("g");
  ASSERT_TRUE(first.accepted());
  ASSERT_EQ(session.scheduler().wait(first.id), JobState::kDone);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      support::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = session.snapshot("g");
        if (!snap) continue;
        // A torn snapshot would trip one of these invariants.
        if (snap->version < last_version ||
            snap->communities.size() != 300 ||
            snap->community_flow.size() != snap->num_communities) {
          ++failures;
          return;
        }
        last_version = snap->version;
        const auto v = static_cast<graph::VertexId>(rng.next_below(300));
        if (snap->communities[v] >= snap->num_communities) {
          ++failures;
          return;
        }
        // The protocol path reads through the same snapshot mechanism.
        const std::string resp =
            session.handle_line("MEMBER g " + std::to_string(v));
        if (resp.rfind("OK", 0) != 0) ++failures;
      }
    });
  }

  for (int i = 0; i < kSwaps; ++i) {
    const auto job = session.submit_recluster("g");
    ASSERT_TRUE(job.accepted());
    ASSERT_EQ(session.scheduler().wait(job.id), JobState::kDone);
  }
  stop = true;
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  const auto snap = session.snapshot("g");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, static_cast<std::uint64_t>(kSwaps) + 1);
}

// --- METRICS verb / observability --------------------------------------

TEST(ServeSession, MetricsVerbRendersBothFormatsFromOneRegistry) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN g 500 2000 7").substr(0, 2), "OK");
  ASSERT_EQ(session.handle_line("CLUSTER g sync").substr(0, 2), "OK");

  const std::string prom = session.handle_line("METRICS");
  ASSERT_EQ(prom.rfind("OK format=prometheus bytes=", 0), 0u);
  // The envelope is self-describing: bytes=N counts exactly the payload
  // after the header line.
  {
    const std::size_t nl = prom.find('\n');
    ASSERT_NE(nl, std::string::npos);
    const std::size_t declared =
        std::stoull(prom.substr(27, nl - 27));
    EXPECT_EQ(declared, prom.size() - nl - 1);
  }
  EXPECT_NE(prom.find("# TYPE asamap_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("asamap_serve_requests_total{verb=\"GEN\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("asamap_kernel_seconds"), std::string::npos);
  EXPECT_NE(prom.find("asamap_jobs_submitted_total 1"), std::string::npos);
  EXPECT_NE(prom.find("asamap_runs_total 1"), std::string::npos);
  EXPECT_NE(prom.find("asamap_registry_graphs 1"), std::string::npos);

  const std::string json = session.handle_line("METRICS json");
  ASSERT_EQ(json.rfind("OK format=json bytes=", 0), 0u);
  const std::size_t json_payload = json.find('\n') + 1;
  EXPECT_EQ(json[json_payload], '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("\"asamap_runs_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"git_rev\""), std::string::npos);

  // Same registry backs the typed accessor, the scrape verbs, and (by
  // construction) asamap_cli --metrics — one source of truth.
  EXPECT_EQ(session.metrics().counter_total("asamap_serve_requests_total",
                                            "verb=\"GEN\""),
            1u);
  EXPECT_EQ(session.handle_line("METRICS yaml").substr(0, 3), "ERR");
}

TEST(ServeSession, MetricsCountRequestsLatenciesAndErrors) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN g 400 1600 9").substr(0, 2), "OK");
  EXPECT_EQ(session.handle_line("MEMBER g 0").substr(0, 2), "ER");  // no snap
  EXPECT_EQ(session.handle_line("NOPE").substr(0, 3), "ERR");

  const obs::MetricRegistry& reg = session.metrics();
  EXPECT_EQ(reg.counter_total("asamap_serve_requests_total", "verb=\"GEN\""),
            1u);
  EXPECT_EQ(
      reg.counter_total("asamap_serve_requests_total", "verb=\"MEMBER\""),
      1u);
  EXPECT_EQ(reg.counter_total("asamap_serve_requests_total",
                              "verb=\"other\""),
            1u);  // unknown verbs pool under "other"
  EXPECT_EQ(reg.counter_total("asamap_serve_errors_total"), 2u);
  // Every request also recorded a latency sample under its verb.
  EXPECT_EQ(reg.histogram_merged_all("asamap_serve_request_seconds").count(),
            reg.counter_sum("asamap_serve_requests_total"));
}

// Scraping METRICS from several threads while clustering jobs run and
// publish must be clean: the registry is recorded into by scheduler
// workers (kernel spans, job timings) while scrapers merge and render it.
// This is the TSAN target for scrape-while-record across real subsystems.
TEST(ServeStress, ConcurrentMetricsScrapeWhileClustering) {
  constexpr int kScrapers = 3;
  ServeSession session(test_config());
  ASSERT_TRUE(session.gen_chung_lu("g", 300, 1200, 7).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string resp =
            session.handle_line(t % 2 == 0 ? "METRICS" : "METRICS json");
        if (resp.rfind("OK format=", 0) != 0) {
          ++failures;
          return;
        }
        // Typed scrape helpers race the same shards as the renderers.
        (void)session.metrics().histogram_merged_all(
            "asamap_kernel_seconds");
        (void)session.metrics().counter_sum("asamap_serve_requests_total");
      }
    });
  }

  for (int i = 0; i < 6; ++i) {
    const auto job = session.submit_recluster("g");
    ASSERT_TRUE(job.accepted());
    ASSERT_EQ(session.scheduler().wait(job.id), JobState::kDone);
  }
  stop = true;
  for (auto& s : scrapers) s.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(session.metrics().counter_total("asamap_runs_total"), 6u);
  EXPECT_EQ(session.metrics().counter_total("asamap_jobs_finished_total",
                                            "state=\"done\""),
            6u);
}

// Destroying the session while clustering jobs are queued and running must
// stop them cooperatively and join everything — no leaks, hangs, or
// publishes after teardown.
TEST(ServeStress, ShutdownWithClusterJobsInFlight) {
  for (int round = 0; round < 3; ++round) {
    ServeSession session(test_config());
    ASSERT_TRUE(session.gen_chung_lu("g", 300, 1200, 7).ok());
    for (int i = 0; i < 5; ++i) session.submit_recluster("g");
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * round));
  }  // destructor: shutdown with work in every state
  SUCCEED();
}

// --- Robustness: degradation, breaker, stale serves ----------------------
// These exercise the retry/breaker/degradation layer (DESIGN.md §4e) and
// run in BOTH build flavors — they rely on real backpressure and memory
// pressure, not injected faults.

// A session whose single worker is pinned and whose batch lane holds one
// queued job: the next batch CLUSTER hits real backpressure.
struct GatedSession {
  SessionConfig config;
  std::optional<ServeSession> session;
  std::atomic<bool> release{false};
  std::uint64_t gate_id = 0;
  std::uint64_t filler_id = 0;

  explicit GatedSession(fault::BreakerConfig breaker = {}) {
    config.cluster_threads = 1;
    config.scheduler.workers = 1;
    config.scheduler.batch_capacity = 1;
    config.breaker = breaker;
    session.emplace(config);
  }

  /// Pins the worker on a gate job and fills the one-slot batch lane.
  void jam() {
    std::atomic<bool> running{false};
    gate_id = session->scheduler()
                  .submit([this, &running](const JobContext&) {
                    running = true;
                    while (!release) std::this_thread::sleep_for(1ms);
                  })
                  .id;
    while (!running) std::this_thread::sleep_for(1ms);
    filler_id = session->scheduler().submit([](const JobContext&) {}).id;
  }

  void drain() {
    release = true;
    session->scheduler().wait(gate_id);
    session->scheduler().wait(filler_id);
  }
};

TEST(ServeRobustness, ClusterDegradesToStaleUnderBackpressure) {
  GatedSession g;
  ServeSession& session = *g.session;
  ASSERT_EQ(session.handle_line("GEN g 300 1200 7").substr(0, 2), "OK");
  ASSERT_NE(session.handle_line("CLUSTER g sync").find("version=1"),
            std::string::npos);
  g.jam();
  // The batch lane is full: instead of ERR rejected, CLUSTER serves the
  // last published snapshot annotated STALE.
  const std::string resp = session.handle_line("CLUSTER g");
  EXPECT_EQ(resp.rfind("OK STALE version=1", 0), 0u) << resp;
  EXPECT_NE(resp.find("reason=queue_full"), std::string::npos);
  // Readers keep answering from that same prior snapshot.
  EXPECT_EQ(session.handle_line("MEMBER g 0").rfind("OK version=1", 0), 0u);
  EXPECT_EQ(session.metrics().counter_total("asamap_stale_serves_total"), 1u);
  g.drain();
}

TEST(ServeRobustness, ClusterDegradesToStaleUnderMemoryPressure) {
  SessionConfig config;
  config.cluster_threads = 1;
  config.scheduler.workers = 1;
  // A budget no graph fits under: the newest insert survives (the registry
  // never evicts the entry it just admitted), so the session sits
  // permanently over budget — sustained memory pressure.
  config.registry.memory_budget_bytes = 1;
  ServeSession session(config);
  ASSERT_EQ(session.handle_line("GEN g 300 1200 7").substr(0, 2), "OK");
  ASSERT_TRUE(session.registry().under_pressure());
  // No snapshot yet: degradation has nothing to serve, so the first CLUSTER
  // proceeds best-effort and publishes version 1.
  ASSERT_NE(session.handle_line("CLUSTER g sync").find("version=1"),
            std::string::npos);
  const std::string resp = session.handle_line("CLUSTER g sync");
  EXPECT_EQ(resp.rfind("OK STALE version=1", 0), 0u) << resp;
  EXPECT_NE(resp.find("reason=memory_pressure"), std::string::npos);
}

TEST(ServeRobustness, BreakerOpensAfterConsecutiveBackpressureAndSheds) {
  fault::BreakerConfig breaker;
  breaker.failure_threshold = 2;
  breaker.open_duration = 10s;  // stays open for the whole test
  GatedSession g(breaker);
  ServeSession& session = *g.session;
  ASSERT_EQ(session.handle_line("GEN g 300 1200 7").substr(0, 2), "OK");
  g.jam();
  // No snapshot exists, so each backpressure failure surfaces as an error
  // (nothing to degrade to) and feeds the breaker.
  EXPECT_EQ(session.handle_line("CLUSTER g").substr(0, 12), "ERR rejected");
  EXPECT_EQ(session.metrics().gauge_value("asamap_breaker_state"), 0.0);
  EXPECT_EQ(session.handle_line("CLUSTER g").substr(0, 12), "ERR rejected");
  // Second consecutive failure tripped it: gauge flips, batch lane sheds.
  EXPECT_EQ(session.breaker().state(),
            fault::CircuitBreaker::State::kOpen);
  EXPECT_EQ(session.metrics().gauge_value("asamap_breaker_state"), 1.0);
  EXPECT_EQ(session.metrics().counter_total("asamap_breaker_transitions_total",
                                            "to=\"open\""),
            1u);
  EXPECT_EQ(session.scheduler().state(g.filler_id), JobState::kCancelled);
  EXPECT_GE(session.scheduler().stats().shed, 1u);
  EXPECT_EQ(session.metrics().counter_total("asamap_jobs_shed_total",
                                            "lane=\"batch\""),
            1u);
  // While open, CLUSTER short-circuits before touching the scheduler.
  const auto rejected_before = session.scheduler().stats().rejected;
  EXPECT_EQ(session.handle_line("CLUSTER g").substr(0, 15), "ERR unavailable");
  EXPECT_EQ(session.scheduler().stats().rejected, rejected_before);
  EXPECT_NE(session.handle_line("STATS").find("breaker=open"),
            std::string::npos);
  g.drain();
}

TEST(ServeRobustness, BreakerHalfOpensAndClosesOnProbeSuccess) {
  fault::BreakerConfig breaker;
  breaker.failure_threshold = 1;
  breaker.open_duration = 50ms;
  GatedSession g(breaker);
  ServeSession& session = *g.session;
  ASSERT_EQ(session.handle_line("GEN g 300 1200 7").substr(0, 2), "OK");
  g.jam();
  EXPECT_EQ(session.handle_line("CLUSTER g").substr(0, 12), "ERR rejected");
  EXPECT_EQ(session.breaker().state(), fault::CircuitBreaker::State::kOpen);
  g.drain();  // free the worker so the probe can actually run
  std::this_thread::sleep_for(60ms);
  // The open timer elapsed: the next CLUSTER is the half-open probe; it
  // succeeds and closes the breaker.
  const std::string resp = session.handle_line("CLUSTER g sync");
  EXPECT_NE(resp.find("state=done"), std::string::npos) << resp;
  EXPECT_EQ(session.breaker().state(), fault::CircuitBreaker::State::kClosed);
  EXPECT_EQ(session.metrics().gauge_value("asamap_breaker_state"), 0.0);
  EXPECT_EQ(session.metrics().counter_total("asamap_breaker_transitions_total",
                                            "to=\"half_open\""),
            1u);
  EXPECT_EQ(session.metrics().counter_total("asamap_breaker_transitions_total",
                                            "to=\"closed\""),
            1u);
}

// The robustness metric schema is pre-registered at construction: a scrape
// of a fresh session already exposes every name OPERATIONS.md documents,
// whether or not a fault ever fired.
TEST(ServeRobustness, MetricSchemaIsPreRegistered) {
  ServeSession session(test_config());
  const std::string prom = session.handle_line("METRICS");
  for (const char* needle : {
           "asamap_retries_total{site=\"ingest.parse\"}",
           "asamap_retries_total{site=\"scheduler.dispatch\"}",
           "asamap_breaker_state 0",
           "asamap_breaker_transitions_total{to=\"open\"}",
           "asamap_stale_serves_total 0",
           "asamap_jobs_shed_total{lane=\"batch\"}",
           "asamap_jobs_shed_total{lane=\"interactive\"}",
           "asamap_faults_injected_total{site=\"session.io\"}",
       }) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(session.handle_line("STATS").find("breaker=closed"),
            std::string::npos);
  // FAULTS STATUS answers in both build flavors.
  const std::string status = session.handle_line("FAULTS STATUS");
  EXPECT_EQ(status.rfind("OK enabled=", 0), 0u) << status;
  EXPECT_NE(status.find("armed=0"), std::string::npos);
}

// --- CRLF tolerance / batched reads --------------------------------------

// A CRLF client (telnet, netcat, any TCP peer) terminates lines with \r\n;
// the \r must not reach the parser welded onto the last token.
TEST(ServeSession, HandleLineStripsCarriageReturnAndTrailingWhitespace) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN g 300 1200 7\r").substr(0, 2), "OK");
  ASSERT_EQ(session.handle_line("CLUSTER g sync\r").substr(0, 2), "OK");
  EXPECT_EQ(session.handle_line("MEMBER g 5\r").substr(0, 2), "OK");
  EXPECT_EQ(session.handle_line("MEMBER g 5 \t\r").substr(0, 2), "OK");
  EXPECT_EQ(session.handle_line("SUMMARY g\r\n").substr(0, 2), "OK");
  // The CRLF request must parse identically to its clean twin.
  EXPECT_EQ(session.handle_line("SAME g 1 2\r"),
            session.handle_line("SAME g 1 2"));
}

TEST(ServeSession, HandleBatchMatchesHandleLineAnswers) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN g 500 2000 7").substr(0, 2), "OK");
  ASSERT_EQ(session.handle_line("CLUSTER g sync").substr(0, 2), "OK");

  const std::vector<std::string_view> lines = {
      "MEMBER g 5", "SAME g 1 2", "TOPK g 3", "SUMMARY g",
      "MEMBER g 999999",  // error answers must match too
      "STATS",            // non-read verb inside a batch
      "MEMBER g 7\r",     // CRLF twin
  };
  std::vector<std::string> batched;
  session.handle_batch(lines, batched);
  ASSERT_EQ(batched.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i] == "STATS") continue;  // counters move between calls
    EXPECT_EQ(batched[i], session.handle_line(lines[i])) << lines[i];
  }
}

// The batch read fast path's documented guarantee: one snapshot acquire per
// contiguous read run, so every answer in the run reports the same version
// even when a writer publishes concurrently.
TEST(ServeSession, HandleBatchReadsAreVersionConsistent) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN g 400 1600 9").substr(0, 2), "OK");
  ASSERT_EQ(session.handle_line("CLUSTER g sync").substr(0, 2), "OK");

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      session.handle_line("CLUSTER g sync");
    }
  });

  const auto version_of = [](const std::string& resp) {
    const auto at = resp.find("version=");
    return resp.substr(at, resp.find(' ', at) - at);
  };
  std::vector<std::string_view> lines;
  for (int i = 0; i < 32; ++i) {
    lines.push_back(i % 2 == 0 ? "MEMBER g 3" : "SUMMARY g");
  }
  std::vector<std::string> responses;
  for (int round = 0; round < 50; ++round) {
    session.handle_batch(lines, responses);
    ASSERT_EQ(responses.size(), lines.size());
    const std::string v0 = version_of(responses[0]);
    for (const std::string& r : responses) {
      ASSERT_EQ(r.substr(0, 2), "OK") << r;
      EXPECT_EQ(version_of(r), v0) << r;
    }
  }
  stop.store(true);
  writer.join();
}

// A write inside the batch invalidates the memoised snapshot: reads after
// it must observe the version it published, not the pre-write one.
TEST(ServeSession, HandleBatchReadAfterWriteSeesNewVersion) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN g 300 1200 11").substr(0, 2), "OK");
  ASSERT_EQ(session.handle_line("CLUSTER g sync").substr(0, 2), "OK");

  const std::vector<std::string_view> lines = {
      "SUMMARY g",       // version=1
      "CLUSTER g sync",  // publishes version=2
      "SUMMARY g",       // must answer version=2
  };
  std::vector<std::string> responses;
  session.handle_batch(lines, responses);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_NE(responses[0].find("version=1"), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[2].find("version=2"), std::string::npos)
      << responses[2];
}

// Batched reads still feed the per-verb request counters and latency
// histograms — the fast path is invisible to dashboards.
TEST(ServeSession, HandleBatchRecordsPerVerbMetrics) {
  ServeSession session(test_config());
  ASSERT_EQ(session.handle_line("GEN g 300 1200 13").substr(0, 2), "OK");
  ASSERT_EQ(session.handle_line("CLUSTER g sync").substr(0, 2), "OK");

  const std::vector<std::string_view> lines = {
      "MEMBER g 1", "MEMBER g 2", "TOPK g 2", "MEMBER g 99999999"};
  std::vector<std::string> responses;
  session.handle_batch(lines, responses);

  const obs::MetricRegistry& reg = session.metrics();
  EXPECT_EQ(
      reg.counter_total("asamap_serve_requests_total", "verb=\"MEMBER\""),
      3u);
  EXPECT_EQ(reg.counter_total("asamap_serve_requests_total", "verb=\"TOPK\""),
            1u);
  EXPECT_EQ(reg.counter_total("asamap_serve_errors_total"), 1u);
  EXPECT_EQ(reg.histogram_merged_all("asamap_serve_request_seconds").count(),
            reg.counter_sum("asamap_serve_requests_total"));
}

}  // namespace
