/// Tests for asamap::fault — plan parsing, deterministic injection,
/// backoff, and the circuit-breaker state machine.
///
/// Everything except the end-to-end replay suite runs in BOTH build
/// flavors: the injector, parser, backoff, and breaker are ordinary code
/// regardless of ASAMAP_FAULT_INJECTION — only the serve-stack *sites*
/// (fault::check) compile out.  The replay suite drives a ServeSession
/// through fault::check and skips itself when the sites are compiled out.

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "asamap/fault/fault.hpp"
#include "asamap/fault/retry.hpp"
#include "asamap/serve/session.hpp"
#include "asamap/support/backoff.hpp"

using namespace asamap;
using namespace std::chrono_literals;
using fault::CircuitBreaker;
using fault::Effect;
using fault::FaultDecision;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultRule;
using fault::Site;

// ---------------------------------------------------------------- parsing

TEST(FaultPlanParse, FullPlanRoundTrips) {
  const auto r = fault::parse_fault_plan_text(
      "# chaos plan\n"
      "seed 20230807\n"
      "\n"
      "site ingest.parse error p=0.25\n"
      "site scheduler.dispatch error every=7\n"
      "site cluster.sweep latency p=0.1 ms=5\n"
      "site session.io cancel once=3\n"
      "site registry.evict partial p=0.5 max=10\n");
  ASSERT_TRUE(r.ok()) << r.error->message;
  EXPECT_EQ(r.plan.seed, 20230807u);
  ASSERT_EQ(r.plan.rules.size(), 5u);
  EXPECT_EQ(r.plan.rules[0].site, Site::kIngestParse);
  EXPECT_EQ(r.plan.rules[0].effect, Effect::kError);
  EXPECT_DOUBLE_EQ(r.plan.rules[0].probability, 0.25);
  EXPECT_EQ(r.plan.rules[1].every_nth, 7u);
  EXPECT_EQ(r.plan.rules[2].effect, Effect::kLatency);
  EXPECT_EQ(r.plan.rules[2].latency, 5ms);
  EXPECT_EQ(r.plan.rules[3].one_shot_at, 3u);
  EXPECT_EQ(r.plan.rules[4].effect, Effect::kPartialWrite);
  EXPECT_EQ(r.plan.rules[4].max_fires, 10u);
}

TEST(FaultPlanParse, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    int line;
    const char* needle;
  };
  const Case cases[] = {
      {"seed 1\nbogus directive\n", 2, "unknown directive"},
      {"seed 1\nsite nowhere error p=0.5\n", 2, "unknown site"},
      {"seed 1\nsite session.io explode p=0.5\n", 2, "unknown effect"},
      {"seed 1\nsite session.io error p=1.5\n", 2, "bad value"},
      {"seed 1\nsite session.io error p=0.5 every=3\n", 2, "exactly one"},
      {"seed 1\nsite session.io error\n", 2, "exactly one"},
      {"seed 1\nsite session.io latency p=0.5\n", 2, "ms="},
      {"seed 1\nsite session.io error p=0.5 ms=3\n", 2, "latency"},
      {"seed 1\nsite session.io error p=0.5 frequency=2\n", 2,
       "unknown option"},
      {"seed x\n", 1, "seed"},
      {"site session.io error p=0.5\n", 1, "seed"},
  };
  for (const Case& c : cases) {
    const auto r = fault::parse_fault_plan_text(c.text);
    ASSERT_FALSE(r.ok()) << c.text;
    EXPECT_EQ(r.error->line, c.line) << c.text;
    EXPECT_NE(r.error->message.find(c.needle), std::string::npos)
        << c.text << " -> " << r.error->message;
  }
}

TEST(FaultPlanParse, MissingFileReportsLineZero) {
  const auto r = fault::load_fault_plan_file("/nonexistent/plan.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 0);
}

TEST(FaultPlanParse, SiteAndEffectNamesRoundTrip) {
  for (int i = 0; i < fault::kNumSites; ++i) {
    const auto site = static_cast<Site>(i);
    const auto back = fault::site_from_string(fault::to_string(site));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, site);
  }
  for (Effect e : {Effect::kError, Effect::kLatency, Effect::kCancel,
                   Effect::kPartialWrite}) {
    const auto back = fault::effect_from_string(fault::to_string(e));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, e);
  }
  EXPECT_FALSE(fault::site_from_string("nope").has_value());
  EXPECT_FALSE(fault::effect_from_string("none").has_value());
}

// --------------------------------------------------------------- injector

namespace {

FaultPlan make_plan(std::uint64_t seed, std::vector<FaultRule> rules) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rules = std::move(rules);
  return plan;
}

FaultRule rule(Site site, Effect effect, double p = 0.0,
               std::uint64_t every = 0, std::uint64_t once = 0) {
  FaultRule r;
  r.site = site;
  r.effect = effect;
  r.probability = p;
  r.every_nth = every;
  r.one_shot_at = once;
  return r;
}

}  // namespace

TEST(FaultInjector, UnarmedAndNullAreNoops) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.decide(Site::kSessionIo).effect, Effect::kNone);
  EXPECT_EQ(fault::check(nullptr, Site::kSessionIo).effect, Effect::kNone);
}

TEST(FaultInjector, EveryNthFiresOnMultiples) {
  FaultInjector inj;
  inj.load(make_plan(1, {rule(Site::kSessionIo, Effect::kError, 0, 3)}));
  std::vector<int> fired;
  for (int i = 1; i <= 9; ++i) {
    if (inj.decide(Site::kSessionIo).effect != Effect::kNone) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
  EXPECT_EQ(inj.hits(Site::kSessionIo), 9u);
  EXPECT_EQ(inj.injected(Site::kSessionIo), 3u);
}

TEST(FaultInjector, OneShotFiresExactlyOnce) {
  FaultInjector inj;
  inj.load(make_plan(1, {rule(Site::kIngestParse, Effect::kCancel, 0, 0, 4)}));
  int fired_at = 0;
  for (int i = 1; i <= 10; ++i) {
    if (inj.decide(Site::kIngestParse).effect != Effect::kNone) fired_at = i;
  }
  EXPECT_EQ(fired_at, 4);
  EXPECT_EQ(inj.injected_total(), 1u);
}

TEST(FaultInjector, MaxFiresCapsARule) {
  FaultRule r = rule(Site::kRegistryEvict, Effect::kError, 0, 1);  // every hit
  r.max_fires = 2;
  FaultInjector inj;
  inj.load(make_plan(1, {r}));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (inj.decide(Site::kRegistryEvict).effect != Effect::kNone) ++fired;
  }
  EXPECT_EQ(fired, 2);
}

TEST(FaultInjector, ProbabilityRateIsRoughlyHonored) {
  FaultInjector inj;
  inj.load(make_plan(42, {rule(Site::kClusterSweep, Effect::kError, 0.3)}));
  int fired = 0;
  const int kHits = 10000;
  for (int i = 0; i < kHits; ++i) {
    if (inj.decide(Site::kClusterSweep).effect != Effect::kNone) ++fired;
  }
  const double rate = static_cast<double>(fired) / kHits;
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 0.35);
}

TEST(FaultInjector, DecisionsAreDeterministicAcrossInjectors) {
  const auto plan = make_plan(
      777, {rule(Site::kIngestParse, Effect::kError, 0.3),
            rule(Site::kSessionIo, Effect::kLatency, 0.2),
            rule(Site::kSchedulerDispatch, Effect::kCancel, 0, 4)});
  FaultInjector a;
  FaultInjector b;
  a.load(plan);
  b.load(plan);
  std::vector<Effect> seq_a;
  std::vector<Effect> seq_b;
  const Site sites[] = {Site::kIngestParse, Site::kSessionIo,
                        Site::kSchedulerDispatch};
  for (int i = 0; i < 600; ++i) {
    const Site s = sites[i % 3];
    seq_a.push_back(a.decide(s).effect);
    seq_b.push_back(b.decide(s).effect);
  }
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_GT(a.injected_total(), 0u);
  EXPECT_EQ(a.injected_total(), b.injected_total());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const std::vector<FaultRule> rules = {
      rule(Site::kIngestParse, Effect::kError, 0.5)};
  FaultInjector a;
  FaultInjector b;
  a.load(make_plan(1, rules));
  b.load(make_plan(2, rules));
  int differ = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.decide(Site::kIngestParse).effect !=
        b.decide(Site::kIngestParse).effect) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, ReloadResetsCounters) {
  FaultInjector inj;
  inj.load(make_plan(1, {rule(Site::kSessionIo, Effect::kError, 0, 1)}));
  (void)inj.decide(Site::kSessionIo);
  EXPECT_EQ(inj.injected_total(), 1u);
  inj.load(make_plan(1, {rule(Site::kSessionIo, Effect::kError, 0, 1)}));
  EXPECT_EQ(inj.hits(Site::kSessionIo), 0u);
  EXPECT_EQ(inj.injected_total(), 0u);
  inj.clear();
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.rule_count(), 0u);
  EXPECT_EQ(inj.decide(Site::kSessionIo).effect, Effect::kNone);
}

// ---------------------------------------------------------------- backoff

TEST(Backoff, DeterministicAndBounded) {
  support::DecorrelatedBackoff a(2ms, 50ms, 9);
  support::DecorrelatedBackoff b(2ms, 50ms, 9);
  std::chrono::milliseconds prev{2};
  for (int i = 0; i < 32; ++i) {
    const auto da = a.next();
    const auto db = b.next();
    EXPECT_EQ(da, db);
    EXPECT_GE(da, 2ms);
    EXPECT_LE(da, 50ms);
    // decorrelated jitter: next <= 3 * previous (before capping)
    EXPECT_LE(da.count(), std::max<std::int64_t>(prev.count() * 3, 2));
    prev = da;
  }
  // reset() restarts the growth curve (the jitter stream continues): the
  // first post-reset sleep is back in [base, 3*base].
  a.reset();
  const auto after_reset = a.next();
  EXPECT_GE(after_reset, 2ms);
  EXPECT_LE(after_reset, 6ms);
}

TEST(Backoff, DegenerateBoundsAreClamped) {
  support::DecorrelatedBackoff tiny(0ms, 0ms, 1);  // base clamps to 1ms
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tiny.next(), 1ms);
}

// ----------------------------------------------------------------- breaker

TEST(Breaker, TripsAfterConsecutiveFailures) {
  fault::BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_duration = 10s;  // never reached in this test
  CircuitBreaker br(cfg);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  br.record_failure();
  br.record_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow());
  br.record_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(br.allow());
  EXPECT_EQ(br.transitions_to(CircuitBreaker::State::kOpen), 1u);
}

TEST(Breaker, SuccessResetsTheStreak) {
  fault::BreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker br(cfg);
  br.record_failure();
  br.record_failure();
  br.record_success();  // streak resets
  br.record_failure();
  br.record_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  br.record_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
}

TEST(Breaker, HalfOpensOnTimerAndClosesOnProbeSuccess) {
  fault::BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_duration = 30ms;
  CircuitBreaker br(cfg);
  br.record_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(br.allow());
  std::this_thread::sleep_for(40ms);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(br.allow());    // the probe
  EXPECT_FALSE(br.allow());   // only one probe in flight
  br.record_success();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow());
  EXPECT_EQ(br.transitions_to(CircuitBreaker::State::kHalfOpen), 1u);
  EXPECT_EQ(br.transitions_to(CircuitBreaker::State::kClosed), 1u);
}

TEST(Breaker, ProbeFailureReopens) {
  fault::BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_duration = 20ms;
  CircuitBreaker br(cfg);
  br.record_failure();
  std::this_thread::sleep_for(30ms);
  EXPECT_TRUE(br.allow());
  br.record_failure();  // probe fails
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(br.allow());
  EXPECT_EQ(br.transitions_to(CircuitBreaker::State::kOpen), 2u);
  // ...and the cycle completes again after the timer.
  std::this_thread::sleep_for(30ms);
  EXPECT_TRUE(br.allow());
  br.record_success();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
}

TEST(Breaker, ListenerSeesEveryTransition) {
  fault::BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_duration = 15ms;
  CircuitBreaker br(cfg);
  std::vector<CircuitBreaker::State> seen;
  br.set_listener([&](CircuitBreaker::State s) { seen.push_back(s); });
  br.record_failure();
  std::this_thread::sleep_for(25ms);
  ASSERT_TRUE(br.allow());
  br.record_success();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], CircuitBreaker::State::kOpen);
  EXPECT_EQ(seen[1], CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(seen[2], CircuitBreaker::State::kClosed);
}

// ----------------------------------------------- end-to-end replay (gated)

namespace {

/// Writes a plan to a temp file and returns its path.
std::string write_plan(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

serve::SessionConfig replay_config() {
  serve::SessionConfig cfg;
  cfg.scheduler.workers = 1;
  cfg.cluster_threads = 1;
  return cfg;
}

std::vector<std::string> run_script(const std::string& plan_path) {
  serve::ServeSession session(replay_config());
  const char* script[] = {
      "GEN g 2000 8000 7", "CLUSTER g sync", "MEMBER g 0",
      "MEMBER g 1",        "SAME g 0 1",     "CLUSTER g sync",
      "SUMMARY g",         "FAULTS STATUS",
  };
  std::vector<std::string> responses;
  responses.push_back(session.handle_line("FAULTS LOAD " + plan_path));
  for (const char* line : script) responses.push_back(session.handle_line(line));
  return responses;
}

}  // namespace

TEST(FaultReplay, SamePlanSameSequenceSamePartitions) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without ASAMAP_FAULT_INJECTION";
  }
  const std::string plan = write_plan("replay_plan.txt",
                                      "seed 99\n"
                                      "site session.io error every=5\n"
                                      "site cluster.sweep partial once=2\n");
  const auto first = run_script(plan);
  const auto second = run_script(plan);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "response " << i << " diverged";
  }
  // The injected sequence actually did something: at least one ERR from
  // session.io, and FAULTS STATUS reports nonzero injections.
  bool saw_injected_error = false;
  for (const auto& r : first) {
    if (r.rfind("ERR unavailable", 0) == 0) saw_injected_error = true;
  }
  EXPECT_TRUE(saw_injected_error);
  EXPECT_NE(first.back().find("injected="), std::string::npos);
  EXPECT_EQ(first.back().find("injected=0 "), std::string::npos);
}

TEST(FaultReplay, PartialWriteSkipsPublish) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without ASAMAP_FAULT_INJECTION";
  }
  serve::ServeSession session(replay_config());
  // Every cluster.sweep is a partial write: runs finish, publishes vanish.
  session.faults().load(make_plan(
      5, {rule(Site::kClusterSweep, Effect::kPartialWrite, 0, 1)}));
  ASSERT_EQ(session.handle_line("GEN g 1000 4000").substr(0, 2), "OK");
  const std::string resp = session.handle_line("CLUSTER g sync");
  EXPECT_EQ(resp.substr(0, 2), "OK");
  EXPECT_NE(resp.find("state=done"), std::string::npos);
  EXPECT_EQ(session.snapshot("g"), nullptr);  // publish was dropped
  EXPECT_EQ(session.handle_line("MEMBER g 0").substr(0, 16),
            "ERR no_partition");
}

TEST(FaultReplay, IngestRetriesExhaustThenFail) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without ASAMAP_FAULT_INJECTION";
  }
  serve::SessionConfig cfg = replay_config();
  cfg.registry.ingest_retry.max_attempts = 3;
  cfg.registry.ingest_retry.initial_backoff = 1ms;
  cfg.registry.ingest_retry.max_backoff = 2ms;
  serve::ServeSession session(cfg);
  session.faults().load(
      make_plan(5, {rule(Site::kIngestParse, Effect::kError, 0, 1)}));
  const auto status = session.load_text("g", "0 1\n1 2\n");
  EXPECT_EQ(status.code, serve::ServeCode::kUnavailable);
  EXPECT_EQ(session.registry().stats().ingest_retries, 2u);
  EXPECT_EQ(
      session.metrics().counter_total("asamap_retries_total",
                                      "site=\"ingest.parse\""),
      2u);
  // A later upload with the plan cleared succeeds.
  session.faults().clear();
  EXPECT_TRUE(session.load_text("g", "0 1\n1 2\n").ok());
}

TEST(FaultReplay, DispatchFaultRetriesThenRuns) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without ASAMAP_FAULT_INJECTION";
  }
  serve::SessionConfig cfg = replay_config();
  cfg.scheduler.dispatch_retry.max_attempts = 3;
  cfg.scheduler.dispatch_retry.initial_backoff = 1ms;
  cfg.scheduler.dispatch_retry.max_backoff = 2ms;
  serve::ServeSession session(cfg);
  // First dispatch attempt of the first job fails; the retry succeeds.
  session.faults().load(
      make_plan(5, {rule(Site::kSchedulerDispatch, Effect::kError, 0, 0, 1)}));
  ASSERT_EQ(session.handle_line("GEN g 1000 4000").substr(0, 2), "OK");
  const std::string resp = session.handle_line("CLUSTER g sync");
  EXPECT_NE(resp.find("state=done"), std::string::npos) << resp;
  EXPECT_NE(session.snapshot("g"), nullptr);
  EXPECT_EQ(session.scheduler().stats().dispatch_retries, 1u);
  EXPECT_EQ(
      session.metrics().counter_total("asamap_retries_total",
                                      "site=\"scheduler.dispatch\""),
      1u);
}
