// Tests for the map equation: closed-form values on small networks,
// delta/apply consistency, and agreement with full recomputation.

#include <gtest/gtest.h>

#include <cmath>

#include "asamap/core/flow.hpp"
#include "asamap/core/map_equation.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/graph/edge_list.hpp"
#include "asamap/support/rng.hpp"

namespace {

using namespace asamap;
using core::FlowNetwork;
using core::ModuleState;
using core::Partition;
using core::plogp;
using graph::CsrGraph;
using graph::EdgeList;
using graph::VertexId;

CsrGraph two_triangles_bridge() {
  EdgeList e;
  e.add_undirected(0, 1);
  e.add_undirected(1, 2);
  e.add_undirected(0, 2);
  e.add_undirected(3, 4);
  e.add_undirected(4, 5);
  e.add_undirected(3, 5);
  e.add_undirected(2, 3);
  e.coalesce();
  return CsrGraph::from_edges(e);
}

TEST(Plogp, BasicValues) {
  EXPECT_DOUBLE_EQ(plogp(0.0), 0.0);
  EXPECT_DOUBLE_EQ(plogp(1.0), 0.0);
  EXPECT_DOUBLE_EQ(plogp(0.5), -0.5);
  EXPECT_DOUBLE_EQ(plogp(0.25), 0.25 * std::log2(0.25));
}

TEST(MapEquation, OneModuleIsNodeEntropy) {
  // All nodes in one module: no index codebook, module codelength equals
  // the entropy of the visit-rate distribution.
  const CsrGraph g = two_triangles_bridge();
  const FlowNetwork fn = core::build_flow(g);
  ModuleState state(fn, Partition(6, 0), 1);
  double entropy = 0.0;
  for (double p : fn.node_flow) entropy -= plogp(p);
  EXPECT_NEAR(state.codelength(), entropy, 1e-12);
  EXPECT_NEAR(state.index_codelength(), 0.0, 1e-12);
}

TEST(MapEquation, KnownTwoModuleValue) {
  // Closed form for the two-triangle graph under {012},{345}:
  //   q_i = 1/14 each, S = 2/14
  //   flow_i = 7/14 each
  //   L = plogp(2/14) - 2*plogp(1/14) - 2*plogp(1/14)
  //       + 2*plogp(1/14 + 7/14) - sum plogp(p_alpha)
  const CsrGraph g = two_triangles_bridge();
  const FlowNetwork fn = core::build_flow(g);
  ModuleState state(fn, Partition{0, 0, 0, 1, 1, 1}, 2);

  double node_term = 0.0;
  for (double p : fn.node_flow) node_term += plogp(p);
  const double q = 1.0 / 14.0;
  const double expected = plogp(2 * q) - 2 * plogp(q) - 2 * plogp(q) +
                          2 * plogp(q + 7.0 / 14.0) - node_term;
  EXPECT_NEAR(state.codelength(), expected, 1e-12);
}

TEST(MapEquation, GoodPartitionBeatsSingletonsAndTrivial) {
  const auto pp = gen::planted_partition(400, 8, 0.2, 0.005, 5);
  const FlowNetwork fn = core::build_flow(pp.graph);

  ModuleState singletons(fn);
  Partition truth(pp.ground_truth.begin(), pp.ground_truth.end());
  ModuleState planted(fn, truth, 8);
  ModuleState trivial(fn, Partition(400, 0), 1);

  EXPECT_LT(planted.codelength(), singletons.codelength());
  EXPECT_LT(planted.codelength(), trivial.codelength());
}

TEST(MapEquation, LiveModulesTracksOccupancy) {
  const CsrGraph g = two_triangles_bridge();
  const FlowNetwork fn = core::build_flow(g);
  ModuleState state(fn);
  EXPECT_EQ(state.live_modules(), 6u);
}

TEST(MapEquation, DeltaMatchesRecomputedCodelength) {
  // Property: for random moves, delta_move must equal the difference of
  // codelengths computed from scratch.
  const auto pp = gen::planted_partition(120, 6, 0.25, 0.02, 7);
  const FlowNetwork fn = core::build_flow(pp.graph);
  ModuleState state(fn);

  support::Xoshiro256 rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const auto v = static_cast<VertexId>(rng.next_below(fn.num_nodes()));
    // Pick the module of a random neighbor as target (realistic moves).
    const auto nbrs = fn.graph.out_neighbors(v);
    if (nbrs.empty()) continue;
    const VertexId u = nbrs[rng.next_below(nbrs.size())].dst;
    const VertexId target = state.module_of(u);
    if (target == state.module_of(v)) continue;

    // Compute link flows between v and the two modules directly.
    ModuleState::MoveFlows f;
    const std::size_t base = static_cast<std::size_t>(fn.graph.out_offset(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId m = state.module_of(nbrs[i].dst);
      if (m == target) {
        f.out_to_target += fn.out_flow[base + i];
        f.in_from_target += fn.out_flow[base + i];  // symmetric
      } else if (m == state.module_of(v)) {
        f.out_to_current += fn.out_flow[base + i];
        f.in_from_current += fn.out_flow[base + i];
      }
    }

    const double predicted = state.delta_move(v, target, f);
    const double before = state.codelength();
    state.apply_move(v, target, f);

    // Recompute from scratch via a fresh ModuleState on the same partition.
    Partition current = state.assignment();
    VertexId max_id = 0;
    for (VertexId c : current) max_id = std::max(max_id, c);
    ModuleState fresh(fn, current, std::size_t{max_id} + 1);

    EXPECT_NEAR(state.codelength(), before + predicted, 1e-9)
        << "incremental vs delta, trial " << trial;
    EXPECT_NEAR(state.codelength(), fresh.codelength(), 1e-9)
        << "incremental vs scratch, trial " << trial;
  }
}

TEST(MapEquation, RecomputeIsNoOpUpToTolerance) {
  const auto pp = gen::planted_partition(200, 5, 0.2, 0.02, 13);
  const FlowNetwork fn = core::build_flow(pp.graph);
  ModuleState state(fn);

  // Apply a bunch of moves, then recompute; codelength must not jump.
  support::Xoshiro256 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const auto v = static_cast<VertexId>(rng.next_below(fn.num_nodes()));
    const auto nbrs = fn.graph.out_neighbors(v);
    if (nbrs.empty()) continue;
    const VertexId target =
        state.module_of(nbrs[rng.next_below(nbrs.size())].dst);
    if (target == state.module_of(v)) continue;
    ModuleState::MoveFlows f;
    const std::size_t base = static_cast<std::size_t>(fn.graph.out_offset(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId m = state.module_of(nbrs[i].dst);
      if (m == target) {
        f.out_to_target += fn.out_flow[base + i];
        f.in_from_target += fn.out_flow[base + i];
      } else if (m == state.module_of(v)) {
        f.out_to_current += fn.out_flow[base + i];
        f.in_from_current += fn.out_flow[base + i];
      }
    }
    state.apply_move(v, target, f);
  }
  const double incremental = state.codelength();
  state.recompute();
  EXPECT_NEAR(state.codelength(), incremental, 1e-9);
}

TEST(MapEquation, DirectedTeleportTermsFinite) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(0, 3);
  e.add(3, 0);
  e.coalesce();
  core::FlowOptions opts;
  opts.model = core::FlowModel::kDirected;
  const FlowNetwork fn =
      core::build_flow(CsrGraph::from_edges(e), opts);
  ModuleState state(fn);
  EXPECT_TRUE(std::isfinite(state.codelength()));
  EXPECT_GT(state.codelength(), 0.0);
  ModuleState merged(fn, Partition{0, 0, 0, 1}, 2);
  EXPECT_TRUE(std::isfinite(merged.codelength()));
}

}  // namespace
