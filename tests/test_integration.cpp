// Integration tests across modules: the full simulated pipeline
// (generator -> Infomap -> machine counters) must reproduce the paper's
// qualitative claims on scaled-down workloads.  These are the
// smallest-possible versions of the bench experiments, run under ctest.

#include <gtest/gtest.h>

#include "asamap/benchutil/experiments.hpp"
#include "asamap/gen/datasets.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/graph/algorithms.hpp"
#include "asamap/graph/stats.hpp"
#include "asamap/metrics/partition.hpp"

namespace {

using namespace asamap;
using benchutil::SimRunConfig;
using benchutil::SimRunResult;
using core::AccumulatorKind;

graph::CsrGraph small_powerlaw() {
  gen::ChungLuParams params;
  params.n = 4000;
  params.target_edges = 24000;
  params.gamma = 2.4;
  params.max_deg = 600;
  return gen::chung_lu(params, 111);
}

SimRunConfig baseline_config() {
  SimRunConfig cfg;
  cfg.engine = AccumulatorKind::kChained;
  cfg.num_cores = 1;
  cfg.infomap.max_levels = 2;  // keep the test fast; level 0 dominates
  return cfg;
}

SimRunConfig asa_config() {
  SimRunConfig cfg = baseline_config();
  cfg.engine = AccumulatorKind::kAsa;
  return cfg;
}

TEST(Integration, AsaSpeedsUpHashOperations) {
  // The headline claim (Fig. 6): ASA's hash-operation time is a multiple
  // below the Baseline's on the same graph.
  const auto g = small_powerlaw();
  const SimRunResult base = run_simulated(g, baseline_config());
  const SimRunResult asa_r = run_simulated(g, asa_config());

  ASSERT_GT(base.hash_seconds, 0.0);
  ASSERT_GT(asa_r.hash_seconds, 0.0);
  const double speedup = base.hash_seconds / asa_r.hash_seconds;
  EXPECT_GT(speedup, 2.0) << "ASA should speed up hash ops severalfold";
  EXPECT_LT(speedup, 20.0) << "suspiciously large speedup";
}

TEST(Integration, AsaReducesBranchMispredictions) {
  // Fig. 8b: large reduction in mispredicted branches.
  const auto g = small_powerlaw();
  const SimRunResult base = run_simulated(g, baseline_config());
  const SimRunResult asa_r = run_simulated(g, asa_config());
  ASSERT_GT(base.total_mispredicts, 0u);
  EXPECT_LT(asa_r.total_mispredicts, base.total_mispredicts);
  const double reduction =
      1.0 - static_cast<double>(asa_r.total_mispredicts) /
                static_cast<double>(base.total_mispredicts);
  EXPECT_GT(reduction, 0.3);
}

TEST(Integration, AsaReducesInstructionsAndCpi) {
  // Figs. 8a and 8c: fewer total instructions and lower CPI.
  const auto g = small_powerlaw();
  const SimRunResult base = run_simulated(g, baseline_config());
  const SimRunResult asa_r = run_simulated(g, asa_config());
  EXPECT_LT(asa_r.total_instructions, base.total_instructions);
  EXPECT_LT(asa_r.avg_cpi_per_core, base.avg_cpi_per_core);
}

TEST(Integration, IdenticalPartitionsUnderSimulation) {
  // Simulation must not perturb results: Baseline and ASA runs produce the
  // same communities as the uninstrumented run.
  const auto g = small_powerlaw();
  core::InfomapOptions opts;
  opts.max_levels = 2;
  const auto native = core::run_infomap(g, opts);

  SimRunConfig cfg = baseline_config();
  const SimRunResult base = run_simulated(g, cfg);
  const SimRunResult asa_r = run_simulated(g, asa_config());
  EXPECT_EQ(native.communities, base.infomap.communities);
  EXPECT_EQ(native.communities, asa_r.infomap.communities);
}

TEST(Integration, MulticoreCountersScaleSensibly) {
  const auto g = small_powerlaw();
  SimRunConfig one = baseline_config();
  SimRunConfig four = baseline_config();
  four.num_cores = 4;

  const SimRunResult r1 = run_simulated(g, one);
  const SimRunResult r4 = run_simulated(g, four);

  // Total work is the same order of magnitude (the greedy trajectory
  // differs with partitioning, so sweep counts can shift)...
  EXPECT_GT(static_cast<double>(r4.total_instructions),
            0.35 * static_cast<double>(r1.total_instructions));
  EXPECT_LT(static_cast<double>(r4.total_instructions),
            2.0 * static_cast<double>(r1.total_instructions));
  // ...while per-core work genuinely shrinks,
  EXPECT_LT(r4.avg_instructions_per_core,
            0.6 * r1.avg_instructions_per_core);
  // and the slowest core finishes faster than the single core.
  EXPECT_LT(r4.sim_seconds, r1.sim_seconds);
}

TEST(Integration, CamCoverageOnPowerLawGraph) {
  // Fig. 5's premise, end to end: on a power-law graph, a 512-entry CAM
  // (8 KB) covers the overwhelming majority of vertices.
  const auto g = small_powerlaw();
  const auto h = graph::degree_histogram(g);
  EXPECT_GT(graph::coverage_at_capacity(h, 512), 0.99);
  EXPECT_GT(graph::coverage_at_capacity(h, 64), 0.80);
}

TEST(Integration, OverflowHandlingIsMinorityOfAsaTime) {
  // Section IV-C: overflow handling is a small fraction of ASA time even
  // on graphs with hubs past the CAM capacity.
  const auto g = small_powerlaw();
  SimRunConfig cfg = asa_config();
  cfg.cam.capacity_entries = 128;  // force meaningful overflow
  cfg.cam.ways = 8;
  const SimRunResult r = run_simulated(g, cfg);
  EXPECT_GT(r.cam_evictions, 0u);
  // Hash phase still beats baseline despite overflow.
  const SimRunResult base = run_simulated(g, baseline_config());
  EXPECT_LT(r.hash_seconds, base.hash_seconds);
}

TEST(Integration, NativeRunProducesKernelBreakdown) {
  const auto g = small_powerlaw();
  core::InfomapOptions opts;
  opts.max_levels = 3;
  const auto r = benchutil::run_native(g, opts);
  const double fbc = r.kernel_wall.total(core::kernels::kFindBestCommunity);
  EXPECT_GT(fbc, 0.0);
  EXPECT_GT(fbc / r.kernel_wall.grand_total(), 0.4);
  EXPECT_GT(r.breakdown.hash_seconds, 0.0);
}

TEST(Integration, DatasetCacheReturnsSameGraph) {
  const auto& a = benchutil::cached_dataset("Amazon");
  const auto& b = benchutil::cached_dataset("Amazon");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_vertices(), gen::dataset_spec("Amazon").vertices);
}

}  // namespace

#include "asamap/asa/accumulator.hpp"
#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/sim/core_model.hpp"
#include "asamap/spgemm/multiply.hpp"

namespace {

TEST(Integration, SpgemmAsaBeatsBaselineUnderSimulation) {
  // The generalization claim in reverse: the accelerator wins on its
  // original workload under the same machine model used for Infomap.
  const auto a = spgemm::CsrMatrix::random(1024, 1024, 8.0, 51);
  const auto b = spgemm::CsrMatrix::random(1024, 1024, 8.0, 53);

  sim::CoreModel base_core;
  hashdb::AddressSpace base_addrs;
  hashdb::ChainedAccumulator<sim::CoreModel> base_acc(base_core, base_addrs);
  const auto base_sa =
      spgemm::SpgemmAddresses::for_operands(a, b, base_addrs);
  const auto base_c = spgemm::multiply(a, b, base_acc, base_core, base_sa);

  sim::CoreModel asa_core;
  hashdb::AddressSpace asa_addrs;
  asa::Cam cam;
  asa::AsaAccumulator<sim::CoreModel> asa_acc(asa_core, cam, asa_addrs);
  const auto asa_sa = spgemm::SpgemmAddresses::for_operands(a, b, asa_addrs);
  const auto asa_c = spgemm::multiply(a, b, asa_acc, asa_core, asa_sa);

  EXPECT_LT(spgemm::CsrMatrix::max_abs_diff(base_c, asa_c), 1e-12);
  EXPECT_LT(asa_core.cycles(), 0.7 * base_core.cycles());
  EXPECT_LT(asa_core.stats().branch_mispredicts,
            base_core.stats().branch_mispredicts / 2);
}

TEST(Integration, DatasetsStayConnectedEnough) {
  // Community detection on the stand-ins operates on the giant component;
  // the generators must not fragment the graph.
  for (const char* name : {"Amazon", "YouTube"}) {
    const auto& g = benchutil::cached_dataset(name);
    const auto comp = graph::connected_components(g);
    EXPECT_GT(static_cast<double>(comp.largest_size) / g.num_vertices(), 0.5)
        << name;
  }
}

}  // namespace
