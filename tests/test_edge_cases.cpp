// Edge-case and failure-injection tests across modules: boundary
// parameters, degenerate graphs, and invalid-input rejection — the
// conditions a downstream user will eventually hit.

#include <gtest/gtest.h>

#include <sstream>

#include "asamap/core/infomap.hpp"
#include "asamap/core/louvain.hpp"
#include "asamap/core/map_equation.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/gen/lfr.hpp"
#include "asamap/graph/algorithms.hpp"
#include "asamap/graph/io.hpp"
#include "asamap/graph/stats.hpp"
#include "asamap/metrics/partition.hpp"
#include "asamap/sim/machine.hpp"
#include "asamap/support/rng.hpp"

namespace {

using namespace asamap;
using graph::CsrGraph;
using graph::EdgeList;
using graph::VertexId;

// ------------------------------------------------------------------- graph

TEST(EdgeCases, EmptyEdgeListProducesEmptyGraph) {
  EdgeList e;
  e.coalesce();
  const CsrGraph g = CsrGraph::from_edges(e);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(EdgeCases, SelfLoopOnlyGraphKept) {
  EdgeList e;
  e.add(0, 0, 2.0);
  e.coalesce(/*keep_self_loops=*/true);
  const CsrGraph g = CsrGraph::from_edges(e);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_DOUBLE_EQ(g.out_weight(0), 2.0);
}

TEST(EdgeCases, SymmetrizeIdempotentAfterCoalesce) {
  EdgeList e;
  e.add(0, 1, 1.0);
  e.symmetrize();
  e.symmetrize();  // double symmetrize must collapse via coalesce
  e.coalesce();
  EXPECT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e.edges()[0].weight, 2.0);  // 1.0 forward + 1.0 mirrored
}

TEST(EdgeCases, SnapReaderHandlesCrLf) {
  std::istringstream in("0\t1\r\n1\t2\r\n");
  EdgeList e = graph::read_snap_stream(in);
  e.coalesce();
  EXPECT_EQ(e.size(), 4u);
}

TEST(EdgeCases, BfsFromIsolatedVertex) {
  EdgeList e;
  e.add_undirected(1, 2);
  e.coalesce();
  const CsrGraph g = CsrGraph::from_edges(e, 4);
  const auto d = graph::bfs_distances(g, 3);
  EXPECT_EQ(d[3], 0u);
  EXPECT_EQ(d[1], graph::kUnreachable);
}

// -------------------------------------------------------------- generators

TEST(EdgeCases, WattsStrogatzRejectsBadParams) {
  EXPECT_THROW(gen::watts_strogatz(10, 5, 0.1, 1), std::logic_error);
  EXPECT_THROW(gen::watts_strogatz(100, 3, 1.5, 1), std::logic_error);
}

TEST(EdgeCases, ErdosRenyiRejectsBadProbability) {
  EXPECT_THROW(gen::erdos_renyi(10, -0.1, 1), std::logic_error);
  EXPECT_THROW(gen::erdos_renyi(10, 1.1, 1), std::logic_error);
}

TEST(EdgeCases, BarabasiAlbertRejectsTooFewVertices) {
  EXPECT_THROW(gen::barabasi_albert(3, 3, 1), std::logic_error);
}

TEST(EdgeCases, PlantedPartitionSingleCommunityIsEr) {
  const auto pp = gen::planted_partition(200, 1, 0.05, 0.9, 3);
  // With one community p_out never applies.
  for (VertexId c : pp.ground_truth) EXPECT_EQ(c, 0u);
  const double expected_arcs = 0.05 * 200 * 199;
  EXPECT_NEAR(static_cast<double>(pp.graph.num_arcs()), expected_arcs,
              0.25 * expected_arcs);
}

TEST(EdgeCases, TinyLfrStillValid) {
  gen::LfrParams params;
  params.n = 60;
  params.mu = 0.2;
  params.min_degree = 2;
  params.max_degree = 8;
  params.min_community = 10;
  params.max_community = 30;
  const auto lfr = gen::lfr_benchmark(params, 5);
  EXPECT_EQ(lfr.graph.num_vertices(), 60u);
  EXPECT_GE(lfr.num_communities, 2u);
}

// ------------------------------------------------------------------- core

TEST(EdgeCases, InfomapOnCompleteGraphFindsOneCommunity) {
  EdgeList e;
  for (VertexId u = 0; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) e.add_undirected(u, v);
  }
  e.coalesce();
  const auto r = core::run_infomap(CsrGraph::from_edges(e));
  EXPECT_EQ(r.num_communities, 1u);
  EXPECT_NEAR(r.codelength, r.one_level_codelength, 1e-9);
}

TEST(EdgeCases, InfomapOnDisconnectedComponents) {
  // Two disjoint cliques: each becomes one community; no cross merging.
  EdgeList e;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      e.add_undirected(u, v);
      e.add_undirected(u + 5, v + 5);
    }
  }
  e.coalesce();
  const auto r = core::run_infomap(CsrGraph::from_edges(e));
  EXPECT_EQ(r.num_communities, 2u);
  EXPECT_NE(r.communities[0], r.communities[5]);
}

TEST(EdgeCases, InfomapWeightedEdgesRespected) {
  // A path 0-1-2-3 where 1-2 is 100x weaker: split at the weak link.
  EdgeList e;
  e.add_undirected(0, 1, 1.0);
  e.add_undirected(1, 2, 0.01);
  e.add_undirected(2, 3, 1.0);
  e.coalesce();
  const auto r = core::run_infomap(CsrGraph::from_edges(e));
  EXPECT_EQ(r.communities[0], r.communities[1]);
  EXPECT_EQ(r.communities[2], r.communities[3]);
  EXPECT_NE(r.communities[1], r.communities[2]);
}

TEST(EdgeCases, ModuleStateRejectsSizeMismatch) {
  const auto g = gen::erdos_renyi(20, 0.3, 7);
  const auto fn = core::build_flow(g);
  EXPECT_THROW(core::ModuleState(fn, core::Partition(5, 0), 1),
               std::logic_error);
}

TEST(EdgeCases, IndexPlusModuleEqualsTotalCodelength) {
  const auto pp = gen::planted_partition(300, 6, 0.2, 0.01, 11);
  const auto fn = core::build_flow(pp.graph);
  core::Partition truth(pp.ground_truth.begin(), pp.ground_truth.end());
  core::ModuleState state(fn, truth, 6);
  EXPECT_NEAR(state.index_codelength() + state.module_codelength(),
              state.codelength(), 1e-12);
  EXPECT_GT(state.index_codelength(), 0.0);
}

TEST(EdgeCases, LouvainOnCompleteGraph) {
  EdgeList e;
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) e.add_undirected(u, v);
  }
  e.coalesce();
  const auto r = core::run_louvain(CsrGraph::from_edges(e));
  EXPECT_EQ(r.num_communities, 1u);
  EXPECT_NEAR(r.modularity, 0.0, 1e-9);
}

// ----------------------------------------------------------------- metrics

TEST(EdgeCases, EmptyPartitionMetrics) {
  const metrics::Partition empty;
  EXPECT_DOUBLE_EQ(metrics::normalized_mutual_information(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(metrics::adjusted_rand_index(empty, empty), 1.0);
  EXPECT_EQ(metrics::count_communities(empty), 0u);
}

TEST(EdgeCases, SingleVertexPartition) {
  const metrics::Partition one = {0};
  EXPECT_DOUBLE_EQ(metrics::normalized_mutual_information(one, one), 1.0);
  EXPECT_DOUBLE_EQ(metrics::adjusted_rand_index(one, one), 1.0);
}

// --------------------------------------------------------------------- sim

TEST(EdgeCases, MachineRejectsZeroCores) {
  sim::MachineConfig mc;
  mc.num_cores = 0;
  EXPECT_THROW(sim::Machine{mc}, std::logic_error);
}

TEST(EdgeCases, MachineResetAllClearsEverything) {
  sim::Machine m(sim::paper_baseline_machine(2));
  m.core(0).load(0x1234, 8);
  m.core(1).branch(1, false);
  m.reset_all();
  EXPECT_EQ(m.total_stats().total_instructions(), 0u);
  EXPECT_EQ(m.l3().stats().accesses, 0u);
  EXPECT_DOUBLE_EQ(m.simulated_seconds(), 0.0);
}

TEST(EdgeCases, ZeroByteAccessTouchesOneLine) {
  sim::Cache c({"L1", 1024, 2, 64, 4}, nullptr, 200);
  c.access_range(0x100, 0);
  EXPECT_EQ(c.stats().accesses, 1u);
}

}  // namespace
