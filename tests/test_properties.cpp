// Parameterized property sweeps (TEST_P): invariants that must hold across
// whole families of configurations — CAM geometries, hash-map shapes,
// generator parameter grids, and map-equation partitions.

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_map>

#include "asamap/asa/accumulator.hpp"
#include "asamap/core/flow.hpp"
#include "asamap/core/infomap.hpp"
#include "asamap/core/map_equation.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/gen/lfr.hpp"
#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/metrics/partition.hpp"
#include "asamap/support/rng.hpp"

namespace {

using namespace asamap;
using graph::CsrGraph;
using graph::VertexId;
using sim::NullSink;

// ------------------------------------------------- CAM geometry properties

struct CamGeometry {
  std::uint32_t entries;
  std::uint32_t ways;
  asa::EvictionPolicy policy;
};

class CamProperty : public ::testing::TestWithParam<CamGeometry> {};

TEST_P(CamProperty, AccumulationIsLossless) {
  // Whatever the geometry and eviction policy, nothing is ever lost: the
  // merged output equals the reference sum for every key.
  const CamGeometry geom = GetParam();
  asa::CamConfig cfg;
  cfg.capacity_entries = geom.entries;
  cfg.ways = geom.ways;
  cfg.eviction = geom.policy;
  asa::Cam cam(cfg);
  NullSink sink;
  hashdb::AddressSpace addrs;
  asa::AsaAccumulator<NullSink> acc(sink, cam, addrs);

  support::Xoshiro256 rng(geom.entries * 131 + geom.ways);
  std::unordered_map<std::uint32_t, double> ref;
  acc.begin();
  for (int i = 0; i < 3000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(400));
    const double val = rng.next_double() + 0.01;
    acc.accumulate(key, val);
    ref[key] += val;
  }
  const auto pairs = acc.finalize();
  ASSERT_EQ(pairs.size(), ref.size());
  double total_out = 0.0, total_ref = 0.0;
  for (const auto& kv : pairs) {
    ASSERT_TRUE(ref.contains(kv.key));
    EXPECT_NEAR(kv.value, ref.at(kv.key), 1e-9);
    total_out += kv.value;
  }
  for (const auto& [k, v] : ref) total_ref += v;
  EXPECT_NEAR(total_out, total_ref, 1e-7);
}

TEST_P(CamProperty, OccupancyNeverExceedsCapacity) {
  const CamGeometry geom = GetParam();
  asa::CamConfig cfg;
  cfg.capacity_entries = geom.entries;
  cfg.ways = geom.ways;
  cfg.eviction = geom.policy;
  asa::Cam cam(cfg);
  support::Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    cam.accumulate(static_cast<std::uint32_t>(rng.next_below(10000)), 1.0);
    ASSERT_LE(cam.occupancy(), geom.entries);
  }
  // Conservation: every accumulate is a hit, fill, or eviction.
  const auto& s = cam.stats();
  EXPECT_EQ(s.hits + s.fills + s.evictions, s.accumulates);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CamProperty,
    ::testing::Values(
        CamGeometry{8, 2, asa::EvictionPolicy::kLru},
        CamGeometry{16, 4, asa::EvictionPolicy::kLru},
        CamGeometry{64, 8, asa::EvictionPolicy::kLru},
        CamGeometry{512, 8, asa::EvictionPolicy::kLru},
        CamGeometry{512, 16, asa::EvictionPolicy::kLru},
        CamGeometry{64, 64, asa::EvictionPolicy::kLru},
        CamGeometry{64, 8, asa::EvictionPolicy::kFifo},
        CamGeometry{512, 8, asa::EvictionPolicy::kFifo},
        CamGeometry{64, 8, asa::EvictionPolicy::kRandom},
        CamGeometry{512, 8, asa::EvictionPolicy::kRandom}),
    [](const auto& suite_info) {
      const char* pol = suite_info.param.policy == asa::EvictionPolicy::kLru
                            ? "Lru"
                            : suite_info.param.policy == asa::EvictionPolicy::kFifo
                                  ? "Fifo"
                                  : "Random";
      return "E" + std::to_string(suite_info.param.entries) + "W" +
             std::to_string(suite_info.param.ways) + pol;
    });

// ------------------------------------------------ hash-map shape properties

class MapShapeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MapShapeProperty, ChainedMatchesReferenceAtAnyInitialSize) {
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedMap<NullSink> map(sink, addrs, GetParam());
  support::Xoshiro256 rng(GetParam() + 17);
  std::unordered_map<std::uint32_t, double> ref;
  for (int i = 0; i < 4000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(700));
    map.accumulate(key, 1.0);
    ref[key] += 1.0;
  }
  ASSERT_EQ(map.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const double* got = map.find(k);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ(*got, v);
  }
}

TEST_P(MapShapeProperty, OpenMatchesReferenceAtAnyInitialSize) {
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::OpenMap<NullSink> map(sink, addrs, GetParam());
  support::Xoshiro256 rng(GetParam() + 19);
  std::unordered_map<std::uint32_t, double> ref;
  for (int i = 0; i < 4000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(700));
    map.accumulate(key, 1.0);
    ref[key] += 1.0;
  }
  ASSERT_EQ(map.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const double* got = map.find(k);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ(*got, v);
  }
}

INSTANTIATE_TEST_SUITE_P(InitialSizes, MapShapeProperty,
                         ::testing::Values(1, 2, 8, 16, 64, 1024, 4096));

// ----------------------------------------------- generator sweep properties

struct LfrCase {
  double mu;
  std::uint64_t seed;
};

class LfrProperty : public ::testing::TestWithParam<LfrCase> {};

TEST_P(LfrProperty, MixingIsRealizedAndGraphIsSimple) {
  gen::LfrParams params;
  params.n = 1200;
  params.mu = GetParam().mu;
  const auto lfr = gen::lfr_benchmark(params, GetParam().seed);
  ASSERT_TRUE(lfr.graph.is_symmetric());

  std::uint64_t external = 0, total = 0;
  for (VertexId v = 0; v < lfr.graph.num_vertices(); ++v) {
    for (const graph::Arc& arc : lfr.graph.out_neighbors(v)) {
      ++total;
      if (lfr.ground_truth[v] != lfr.ground_truth[arc.dst]) ++external;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_NEAR(static_cast<double>(external) / total, GetParam().mu, 0.1);
}

INSTANTIATE_TEST_SUITE_P(MixSweep, LfrProperty,
                         ::testing::Values(LfrCase{0.1, 1}, LfrCase{0.2, 2},
                                           LfrCase{0.3, 3}, LfrCase{0.4, 4},
                                           LfrCase{0.5, 5}, LfrCase{0.6, 6}),
                         [](const auto& suite_info) {
                           return "mu" + std::to_string(static_cast<int>(
                                             suite_info.param.mu * 100));
                         });

// ------------------------------------------- map-equation sweep properties

class GammaProperty : public ::testing::TestWithParam<double> {};

TEST_P(GammaProperty, InfomapImprovesOverSingletonsOnPowerLaw) {
  gen::ChungLuParams params;
  params.n = 1500;
  params.target_edges = 8000;
  params.gamma = GetParam();
  params.max_deg = 200;
  const CsrGraph g = gen::chung_lu(params, 211);
  const auto r = core::run_infomap(g);
  // The greedy guarantee: never worse than the all-singleton start.  (The
  // one-module partition can beat both on structureless graphs — greedy
  // local moves cannot always reach it.)
  EXPECT_LT(r.codelength, r.initial_codelength + 1e-9);
  EXPECT_GE(r.num_communities, 1u);
  // Partition covers every vertex with a valid id.
  EXPECT_EQ(r.communities.size(), g.num_vertices());

  // The reported codelength is exactly the map equation of the reported
  // partition over the original network.
  const auto fn = core::build_flow(g);
  core::Partition seed = r.communities;
  core::ModuleState check(fn, seed, r.num_communities);
  EXPECT_NEAR(check.codelength(), r.codelength, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Exponents, GammaProperty,
                         ::testing::Values(2.1, 2.4, 2.7, 3.0, 3.3),
                         [](const auto& suite_info) {
                           return "gamma" + std::to_string(static_cast<int>(
                                                suite_info.param * 10));
                         });

// -------------------------------------------------- flow-sum conservation

class FlowConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowConservation, NodeFlowSumsToOneOnRandomGraphs) {
  const CsrGraph g = gen::erdos_renyi(800, 0.01, GetParam());
  if (g.num_arcs() == 0) GTEST_SKIP();
  const auto fn = core::build_flow(g);
  const double total =
      std::accumulate(fn.node_flow.begin(), fn.node_flow.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (double p : fn.node_flow) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
