// Three-way accumulator parity: chained (instrumented model), flat (native
// fast path), and hotset (two-level software CAM) must be *observationally
// identical* engines — same codelength, same communities, same per-sweep
// move sequence — on both structured (planted-partition) and power-law
// (Chung-Lu) inputs.
//
// Flat and hotset are constructed for bitwise parity (shared first-touch
// pair order), so those comparisons are exact; chained reaches the same
// decisions through the kernel's tie-breaking and is held to exact
// codelength equality too — any drift is a correctness bug, not noise.
//
// This file is part of the TSAN CI job: the parallel-driver tests below
// exercise the propose/verify apply path with >1 thread under both native
// engines.

#include <gtest/gtest.h>

#include <vector>

#include "asamap/core/infomap.hpp"
#include "asamap/dyn/delta_log.hpp"
#include "asamap/dyn/incremental.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/gen/lfr.hpp"
#include "asamap/support/rng.hpp"

namespace {

using namespace asamap;
using core::AccumulatorKind;
using core::InfomapResult;

/// Asserts the full per-sweep move sequence matches: same levels, same
/// sweep counts, same move totals, same codelength trajectory.
void expect_same_moves(const InfomapResult& a, const InfomapResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].level, b.trace[i].level) << "sweep " << i;
    EXPECT_EQ(a.trace[i].sweep, b.trace[i].sweep) << "sweep " << i;
    EXPECT_EQ(a.trace[i].moves, b.trace[i].moves) << "sweep " << i;
    EXPECT_EQ(a.trace[i].codelength, b.trace[i].codelength) << "sweep " << i;
  }
}

void expect_three_way_parity(const graph::CsrGraph& g) {
  const InfomapResult chained =
      core::run_infomap(g, {}, AccumulatorKind::kChained);
  const InfomapResult flat = core::run_infomap(g, {}, AccumulatorKind::kFlat);
  const InfomapResult hotset =
      core::run_infomap(g, {}, AccumulatorKind::kHotSet);

  // Exact, not approximate: the engines must take identical decisions.
  EXPECT_EQ(chained.codelength, flat.codelength);
  EXPECT_EQ(flat.codelength, hotset.codelength);
  EXPECT_EQ(chained.communities, flat.communities);
  EXPECT_EQ(flat.communities, hotset.communities);
  EXPECT_EQ(chained.num_communities, hotset.num_communities);
  expect_same_moves(chained, flat);
  expect_same_moves(flat, hotset);

  // The hot-set run must actually have gone through the hot set.
  EXPECT_GT(hotset.hotset.begins, 0u);
  EXPECT_GT(hotset.hotset.accumulates, 0u);
  EXPECT_EQ(chained.hotset.begins, 0u);  // other engines report no hot stats
  EXPECT_EQ(flat.hotset.begins, 0u);
}

TEST(AccumulatorParity, ThreeWayOnPlantedPartition) {
  const auto pp = gen::planted_partition(1500, 15, 0.2, 0.004, 2401);
  expect_three_way_parity(pp.graph);
}

TEST(AccumulatorParity, ThreeWayOnChungLu) {
  gen::ChungLuParams params;
  params.n = 4000;
  params.target_edges = 30000;
  params.gamma = 2.5;
  params.min_deg = 2;
  expect_three_way_parity(gen::chung_lu(params, 2403));
}

TEST(AccumulatorParity, ThreeWayOnDenseChungLu) {
  // Higher average degree pushes neighborhoods past the hot-set admission
  // budget, so saturated cycles (the overflow-dump path) get covered too.
  gen::ChungLuParams params;
  params.n = 1500;
  params.target_edges = 40000;
  params.gamma = 2.2;
  params.min_deg = 4;
  expect_three_way_parity(gen::chung_lu(params, 2407));
}

TEST(AccumulatorParity, ThreeWayUnderWarmStart) {
  // Warm-started runs (incremental reclustering, DESIGN.md §4f) go through
  // the same sweep kernels from a non-singleton start state — the three
  // engines must still take identical decisions, active-set seeding
  // included.
  const auto pp = gen::planted_partition(1200, 12, 0.22, 0.005, 2417);
  std::vector<graph::VertexId> seed;
  for (graph::VertexId v = 0; v < 100; ++v) seed.push_back(v * 7 % 1200);
  core::InfomapOptions opts;
  opts.warm_start = &pp.ground_truth;
  opts.active_seed = &seed;
  const InfomapResult chained =
      core::run_infomap(pp.graph, opts, AccumulatorKind::kChained);
  const InfomapResult flat =
      core::run_infomap(pp.graph, opts, AccumulatorKind::kFlat);
  const InfomapResult hotset =
      core::run_infomap(pp.graph, opts, AccumulatorKind::kHotSet);
  EXPECT_EQ(chained.codelength, flat.codelength);
  EXPECT_EQ(flat.codelength, hotset.codelength);
  EXPECT_EQ(chained.communities, flat.communities);
  EXPECT_EQ(flat.communities, hotset.communities);
  expect_same_moves(chained, flat);
  expect_same_moves(flat, hotset);
  // All three report the warm partition's codelength as the start state.
  EXPECT_EQ(chained.initial_codelength, hotset.initial_codelength);
  EXPECT_LE(chained.codelength, chained.initial_codelength + 1e-12);
}

/// Replays `batches` rounds of random edge churn over `g`, re-clustering
/// each merged graph twice — incrementally (warm-started from the previous
/// round's partition, active set seeded from the batch) and from scratch —
/// and asserts the incremental codelength stays within `tolerance` of the
/// from-scratch answer every round (the ISSUE's <= 0.5% quality gate).
void expect_incremental_quality(const graph::CsrGraph& g, std::uint64_t seed,
                                int batches, std::size_t batch_size,
                                double tolerance = 0.005) {
  support::Xoshiro256 rng(seed);
  graph::CsrGraph current = g;
  core::InfomapResult prev = core::run_infomap_parallel(current, {}, 2);
  for (int round = 0; round < batches; ++round) {
    const graph::VertexId n = current.num_vertices();
    std::vector<dyn::DeltaRecord> batch;
    while (batch.size() < batch_size) {
      dyn::DeltaRecord rec;
      if (rng.next_double() < 0.5) {
        // Delete a real arc so communities actually lose internal edges.
        const auto u = static_cast<graph::VertexId>(rng.next_below(n));
        const auto nbrs = current.out_neighbors(u);
        if (nbrs.empty()) continue;
        rec.u = u;
        rec.v = nbrs[rng.next_below(nbrs.size())].dst;
        rec.op = dyn::DeltaOp::kDelEdge;
      } else {
        rec.u = static_cast<graph::VertexId>(rng.next_below(n));
        rec.v = static_cast<graph::VertexId>(rng.next_below(n));
        rec.op = dyn::DeltaOp::kAddEdge;
        rec.weight = 1.0;
      }
      if (rec.u == rec.v) continue;
      batch.push_back(rec);
    }
    const dyn::DeltaView view(current, batch);
    current = view.materialize();

    const dyn::WarmStart plan = dyn::plan_warm_start(
        prev.communities, current.num_vertices(), view.touched());
    core::InfomapOptions warm_opts;
    warm_opts.warm_start = &plan.init;
    warm_opts.active_seed = &plan.active_seed;
    const core::InfomapResult incr =
        core::run_infomap_parallel(current, warm_opts, 2);
    const core::InfomapResult scratch =
        core::run_infomap_parallel(current, {}, 2);
    EXPECT_LE(incr.codelength, scratch.codelength * (1.0 + tolerance))
        << "round " << round;
    prev = incr;
  }
}

TEST(IncrementalQuality, WithinHalfPercentOnPlantedPartitionChurn) {
  const auto pp = gen::planted_partition(1500, 15, 0.2, 0.004, 2421);
  expect_incremental_quality(pp.graph, 2423, /*batches=*/4,
                             /*batch_size=*/60);
}

TEST(IncrementalQuality, WithinHalfPercentOnLfrChurn) {
  gen::LfrParams params;
  params.n = 1200;
  params.mu = 0.25;
  const auto lfr = gen::lfr_benchmark(params, 2427);
  expect_incremental_quality(lfr.graph, 2429, /*batches=*/3,
                             /*batch_size=*/50);
}

TEST(AccumulatorParity, ParallelFlatAndHotSetAreBitwiseEqual) {
  // The parallel driver restricts to the native engines; flat and hotset
  // share first-touch pair order by construction, so across thread counts
  // the two must agree bitwise — and this exercises the propose/verify
  // path under TSAN with both engines.
  const auto pp = gen::planted_partition(1200, 12, 0.25, 0.005, 2411);
  for (const int threads : {2, 4}) {
    const InfomapResult flat = core::run_infomap_parallel(
        pp.graph, {}, threads, AccumulatorKind::kFlat);
    const InfomapResult hotset = core::run_infomap_parallel(
        pp.graph, {}, threads, AccumulatorKind::kHotSet);
    EXPECT_EQ(flat.codelength, hotset.codelength) << threads << " threads";
    EXPECT_EQ(flat.communities, hotset.communities) << threads << " threads";
    expect_same_moves(flat, hotset);
    EXPECT_GT(hotset.hotset.begins, 0u);
  }
}

}  // namespace
