// Three-way accumulator parity: chained (instrumented model), flat (native
// fast path), and hotset (two-level software CAM) must be *observationally
// identical* engines — same codelength, same communities, same per-sweep
// move sequence — on both structured (planted-partition) and power-law
// (Chung-Lu) inputs.
//
// Flat and hotset are constructed for bitwise parity (shared first-touch
// pair order), so those comparisons are exact; chained reaches the same
// decisions through the kernel's tie-breaking and is held to exact
// codelength equality too — any drift is a correctness bug, not noise.
//
// This file is part of the TSAN CI job: the parallel-driver tests below
// exercise the propose/verify apply path with >1 thread under both native
// engines.

#include <gtest/gtest.h>

#include "asamap/core/infomap.hpp"
#include "asamap/gen/generators.hpp"

namespace {

using namespace asamap;
using core::AccumulatorKind;
using core::InfomapResult;

/// Asserts the full per-sweep move sequence matches: same levels, same
/// sweep counts, same move totals, same codelength trajectory.
void expect_same_moves(const InfomapResult& a, const InfomapResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].level, b.trace[i].level) << "sweep " << i;
    EXPECT_EQ(a.trace[i].sweep, b.trace[i].sweep) << "sweep " << i;
    EXPECT_EQ(a.trace[i].moves, b.trace[i].moves) << "sweep " << i;
    EXPECT_EQ(a.trace[i].codelength, b.trace[i].codelength) << "sweep " << i;
  }
}

void expect_three_way_parity(const graph::CsrGraph& g) {
  const InfomapResult chained =
      core::run_infomap(g, {}, AccumulatorKind::kChained);
  const InfomapResult flat = core::run_infomap(g, {}, AccumulatorKind::kFlat);
  const InfomapResult hotset =
      core::run_infomap(g, {}, AccumulatorKind::kHotSet);

  // Exact, not approximate: the engines must take identical decisions.
  EXPECT_EQ(chained.codelength, flat.codelength);
  EXPECT_EQ(flat.codelength, hotset.codelength);
  EXPECT_EQ(chained.communities, flat.communities);
  EXPECT_EQ(flat.communities, hotset.communities);
  EXPECT_EQ(chained.num_communities, hotset.num_communities);
  expect_same_moves(chained, flat);
  expect_same_moves(flat, hotset);

  // The hot-set run must actually have gone through the hot set.
  EXPECT_GT(hotset.hotset.begins, 0u);
  EXPECT_GT(hotset.hotset.accumulates, 0u);
  EXPECT_EQ(chained.hotset.begins, 0u);  // other engines report no hot stats
  EXPECT_EQ(flat.hotset.begins, 0u);
}

TEST(AccumulatorParity, ThreeWayOnPlantedPartition) {
  const auto pp = gen::planted_partition(1500, 15, 0.2, 0.004, 2401);
  expect_three_way_parity(pp.graph);
}

TEST(AccumulatorParity, ThreeWayOnChungLu) {
  gen::ChungLuParams params;
  params.n = 4000;
  params.target_edges = 30000;
  params.gamma = 2.5;
  params.min_deg = 2;
  expect_three_way_parity(gen::chung_lu(params, 2403));
}

TEST(AccumulatorParity, ThreeWayOnDenseChungLu) {
  // Higher average degree pushes neighborhoods past the hot-set admission
  // budget, so saturated cycles (the overflow-dump path) get covered too.
  gen::ChungLuParams params;
  params.n = 1500;
  params.target_edges = 40000;
  params.gamma = 2.2;
  params.min_deg = 4;
  expect_three_way_parity(gen::chung_lu(params, 2407));
}

TEST(AccumulatorParity, ParallelFlatAndHotSetAreBitwiseEqual) {
  // The parallel driver restricts to the native engines; flat and hotset
  // share first-touch pair order by construction, so across thread counts
  // the two must agree bitwise — and this exercises the propose/verify
  // path under TSAN with both engines.
  const auto pp = gen::planted_partition(1200, 12, 0.25, 0.005, 2411);
  for (const int threads : {2, 4}) {
    const InfomapResult flat = core::run_infomap_parallel(
        pp.graph, {}, threads, AccumulatorKind::kFlat);
    const InfomapResult hotset = core::run_infomap_parallel(
        pp.graph, {}, threads, AccumulatorKind::kHotSet);
    EXPECT_EQ(flat.codelength, hotset.codelength) << threads << " threads";
    EXPECT_EQ(flat.communities, hotset.communities) << threads << " threads";
    expect_same_moves(flat, hotset);
    EXPECT_GT(hotset.hotset.begins, 0u);
  }
}

}  // namespace
