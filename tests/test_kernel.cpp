// Tests for the FindBestCommunity kernel: move quality, accumulator
// equivalence (Algorithm 1 vs Algorithm 2 must make identical decisions),
// and instrumentation attribution.

#include <gtest/gtest.h>

#include "asamap/asa/accumulator.hpp"
#include "asamap/core/dense_accumulator.hpp"
#include "asamap/core/kernel.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/graph/edge_list.hpp"
#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/sim/core_model.hpp"

namespace {

using namespace asamap;
using core::FlowNetwork;
using core::KernelBreakdown;
using core::KernelCosts;
using core::LevelAddresses;
using core::ModuleState;
using graph::CsrGraph;
using graph::EdgeList;
using graph::VertexId;
using sim::NullSink;

CsrGraph two_triangles_bridge() {
  EdgeList e;
  e.add_undirected(0, 1);
  e.add_undirected(1, 2);
  e.add_undirected(0, 2);
  e.add_undirected(3, 4);
  e.add_undirected(4, 5);
  e.add_undirected(3, 5);
  e.add_undirected(2, 3);
  e.coalesce();
  return CsrGraph::from_edges(e);
}

TEST(Kernel, SweepMergesTriangles) {
  const CsrGraph g = two_triangles_bridge();
  const FlowNetwork fn = core::build_flow(g);
  ModuleState state(fn);
  const double initial = state.codelength();

  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  const KernelCosts costs;
  KernelBreakdown bd;

  // A few sweeps must merge each triangle into one module.
  for (int s = 0; s < 5; ++s) {
    core::sweep_range(state, fn, 0, g.num_vertices(), acc, sink, la, costs,
                      bd);
    state.recompute();
  }
  EXPECT_LT(state.codelength(), initial);
  EXPECT_EQ(state.module_of(0), state.module_of(1));
  EXPECT_EQ(state.module_of(1), state.module_of(2));
  EXPECT_EQ(state.module_of(3), state.module_of(4));
  EXPECT_EQ(state.module_of(4), state.module_of(5));
  EXPECT_LE(state.live_modules(), 2u);
}

TEST(Kernel, EveryAppliedMoveImprovesCodelength) {
  const auto pp = gen::planted_partition(300, 6, 0.2, 0.01, 3);
  const FlowNetwork fn = core::build_flow(pp.graph);
  ModuleState state(fn);

  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  const KernelCosts costs;
  KernelBreakdown bd;

  double prev = state.codelength();
  for (VertexId v = 0; v < fn.num_nodes(); ++v) {
    const bool moved =
        core::find_best_community(state, fn, v, acc, sink, la, costs, bd);
    if (moved) {
      EXPECT_LT(state.codelength(), prev + 1e-12) << "vertex " << v;
    } else {
      EXPECT_NEAR(state.codelength(), prev, 1e-12);
    }
    prev = state.codelength();
  }
  EXPECT_GT(bd.moves, 0u);
}

template <typename MakeAcc>
core::Partition run_two_sweeps(const FlowNetwork& fn, MakeAcc&& make) {
  NullSink sink;
  hashdb::AddressSpace addrs;
  auto acc = make(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  const KernelCosts costs;
  KernelBreakdown bd;
  ModuleState state(fn);
  for (int s = 0; s < 2; ++s) {
    core::sweep_range(state, fn, 0, fn.num_nodes(), *acc, sink, la, costs, bd);
    state.recompute();
  }
  return state.assignment();
}

TEST(Kernel, AllAccumulatorsProduceIdenticalDecisions) {
  // The central functional claim: swapping the accumulation engine changes
  // performance, never results.  Identical partitions after identical
  // sweeps, on a graph large enough to exercise CAM overflow.
  gen::ChungLuParams params;
  params.n = 2000;
  params.target_edges = 12000;
  params.gamma = 2.3;
  params.max_deg = 300;
  const CsrGraph g = gen::chung_lu(params, 41);
  const FlowNetwork fn = core::build_flow(g);

  const auto chained = run_two_sweeps(fn, [](auto& sink, auto& addrs) {
    return std::make_unique<hashdb::ChainedAccumulator<NullSink>>(sink,
                                                                  addrs);
  });
  const auto open = run_two_sweeps(fn, [](auto& sink, auto& addrs) {
    return std::make_unique<hashdb::OpenAccumulator<NullSink>>(sink, addrs);
  });
  const auto dense = run_two_sweeps(fn, [&](auto& sink, auto& addrs) {
    return std::make_unique<core::DenseAccumulator<NullSink>>(
        sink, addrs, g.num_vertices());
  });

  asa::Cam cam(asa::CamConfig{});  // 512 entries; overflow on big hubs
  const auto asa_part = run_two_sweeps(fn, [&](auto& sink, auto& addrs) {
    return std::make_unique<asa::AsaAccumulator<NullSink>>(sink, cam, addrs);
  });

  EXPECT_EQ(chained, open);
  EXPECT_EQ(chained, dense);
  EXPECT_EQ(chained, asa_part);
}

TEST(Kernel, TinyCamStillProducesIdenticalDecisions) {
  // Even a pathologically small CAM (heavy overflow, constant
  // sort_and_merge) must not change any decision.
  const auto pp = gen::planted_partition(500, 10, 0.15, 0.01, 43);
  const FlowNetwork fn = core::build_flow(pp.graph);

  const auto chained = run_two_sweeps(fn, [](auto& sink, auto& addrs) {
    return std::make_unique<hashdb::ChainedAccumulator<NullSink>>(sink,
                                                                  addrs);
  });
  asa::CamConfig cfg;
  cfg.capacity_entries = 8;
  cfg.ways = 2;
  asa::Cam cam(cfg);
  const auto asa_part = run_two_sweeps(fn, [&](auto& sink, auto& addrs) {
    return std::make_unique<asa::AsaAccumulator<NullSink>>(sink, cam, addrs);
  });
  EXPECT_EQ(chained, asa_part);
}

TEST(Kernel, BreakdownAttributesCycles) {
  const auto pp = gen::planted_partition(400, 8, 0.1, 0.01, 47);
  const FlowNetwork fn = core::build_flow(pp.graph);
  ModuleState state(fn);

  sim::CoreModel core_model;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<sim::CoreModel> acc(core_model, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  const KernelCosts costs;
  KernelBreakdown bd;

  core::sweep_range(state, fn, 0, fn.num_nodes(), acc, core_model, la, costs,
                    bd);
  EXPECT_GT(bd.hash_cycles, 0.0);
  EXPECT_GT(bd.other_cycles, 0.0);
  // Total attribution must equal the core's cycle count (everything the
  // sweep charged went to one of the two buckets).
  EXPECT_NEAR(bd.hash_cycles + bd.other_cycles, core_model.cycles(),
              core_model.cycles() * 1e-9 + 1.0);
  EXPECT_EQ(bd.vertices, fn.num_nodes());
  EXPECT_GT(bd.accumulate_calls, 0u);
}

TEST(Kernel, HashPhaseDominatesWithSoftwareHash) {
  // The paper's Fig. 2b: hash operations are ~50-65% of FindBestCommunity.
  // On the simulated core the chained accumulator must take a large share.
  gen::ChungLuParams params;
  params.n = 3000;
  params.target_edges = 30000;
  params.gamma = 2.3;
  params.max_deg = 400;
  const CsrGraph g = gen::chung_lu(params, 53);
  const FlowNetwork fn = core::build_flow(g);
  ModuleState state(fn);

  sim::CoreModel core_model;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<sim::CoreModel> acc(core_model, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  KernelBreakdown bd;
  core::sweep_range(state, fn, 0, fn.num_nodes(), acc, core_model, la,
                    KernelCosts{}, bd);
  const double share = bd.hash_cycles / (bd.hash_cycles + bd.other_cycles);
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.9);
}

TEST(Kernel, WallTimingPopulatedWhenRequested) {
  const auto pp = gen::planted_partition(200, 4, 0.1, 0.02, 59);
  const FlowNetwork fn = core::build_flow(pp.graph);
  ModuleState state(fn);
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  KernelBreakdown bd;
  core::sweep_range(state, fn, 0, fn.num_nodes(), acc, sink, la,
                    KernelCosts{}, bd, /*time_wall=*/true);
  EXPECT_GT(bd.hash_seconds, 0.0);
  EXPECT_GT(bd.other_seconds, 0.0);
}

TEST(Kernel, IsolatedVertexNeverMoves) {
  EdgeList e;
  e.add_undirected(0, 1);
  e.coalesce();
  const CsrGraph g = CsrGraph::from_edges(e, /*n_hint=*/3);  // vertex 2 alone
  const FlowNetwork fn = core::build_flow(g);
  ModuleState state(fn);
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  KernelBreakdown bd;
  EXPECT_FALSE(core::find_best_community(state, fn, 2, acc, sink, la,
                                         KernelCosts{}, bd));
  EXPECT_EQ(state.module_of(2), 2u);
}

}  // namespace

namespace {

TEST(Pruning, InactiveVerticesAreSkipped) {
  const auto pp = gen::planted_partition(300, 6, 0.2, 0.01, 107);
  const FlowNetwork fn = core::build_flow(pp.graph);
  ModuleState state(fn);
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  KernelBreakdown bd;

  std::vector<std::uint8_t> active(fn.num_nodes(), 0);
  std::vector<std::uint8_t> next(fn.num_nodes(), 0);
  const std::uint64_t moves =
      core::sweep_range(state, fn, 0, fn.num_nodes(), acc, sink, la,
                        KernelCosts{}, bd, false, active.data(), next.data());
  EXPECT_EQ(moves, 0u);
  EXPECT_EQ(bd.vertices, 0u);  // nothing evaluated
}

TEST(Pruning, MoversMarkTheirNeighborhood) {
  const CsrGraph g = two_triangles_bridge();
  const FlowNetwork fn = core::build_flow(g);
  ModuleState state(fn);
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  KernelBreakdown bd;

  std::vector<std::uint8_t> active(fn.num_nodes(), 1);
  std::vector<std::uint8_t> next(fn.num_nodes(), 0);
  const std::uint64_t moves =
      core::sweep_range(state, fn, 0, fn.num_nodes(), acc, sink, la,
                        KernelCosts{}, bd, false, active.data(), next.data());
  ASSERT_GT(moves, 0u);
  // Every mover's neighbors (and itself) must be flagged for re-evaluation.
  bool any_marked = false;
  for (VertexId v = 0; v < fn.num_nodes(); ++v) any_marked |= next[v] != 0;
  EXPECT_TRUE(any_marked);
}

TEST(Pruning, PrunedRunMatchesUnprunedQuality) {
  // Pruning may skip re-evaluations whose delta changed only through global
  // terms, so partitions can differ in principle — but on planted structure
  // the results must agree almost perfectly and codelengths must match
  // closely.  (run_infomap uses pruning internally; this exercises the
  // unpruned path via raw sweeps.)
  const auto pp = gen::planted_partition(800, 8, 0.2, 0.008, 109);
  const FlowNetwork fn = core::build_flow(pp.graph);

  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);
  KernelBreakdown bd;

  ModuleState unpruned(fn);
  for (int s = 0; s < 10; ++s) {
    if (core::sweep_range(unpruned, fn, 0, fn.num_nodes(), acc, sink, la,
                          KernelCosts{}, bd) == 0) {
      break;
    }
    unpruned.recompute();
  }

  ModuleState pruned(fn);
  std::vector<std::uint8_t> active(fn.num_nodes(), 1);
  std::vector<std::uint8_t> next(fn.num_nodes(), 0);
  for (int s = 0; s < 10; ++s) {
    const std::uint64_t moves =
        core::sweep_range(pruned, fn, 0, fn.num_nodes(), acc, sink, la,
                          KernelCosts{}, bd, false, active.data(),
                          next.data());
    pruned.recompute();
    if (moves == 0) break;
    active.swap(next);
    std::fill(next.begin(), next.end(), 0);
  }

  EXPECT_NEAR(pruned.codelength(), unpruned.codelength(),
              0.02 * std::abs(unpruned.codelength()));
}

TEST(Pruning, SecondSweepEvaluatesFewerVertices) {
  const auto pp = gen::planted_partition(1000, 10, 0.2, 0.005, 113);
  const FlowNetwork fn = core::build_flow(pp.graph);
  ModuleState state(fn);
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const LevelAddresses la = LevelAddresses::for_network(fn, addrs);

  std::vector<std::uint8_t> active(fn.num_nodes(), 1);
  std::vector<std::uint8_t> next(fn.num_nodes(), 0);
  std::uint64_t first_sweep_evals = 0;
  std::uint64_t last_sweep_evals = 0;
  for (int s = 0; s < 10; ++s) {
    KernelBreakdown bd;
    const std::uint64_t moves =
        core::sweep_range(state, fn, 0, fn.num_nodes(), acc, sink, la,
                          KernelCosts{}, bd, false, active.data(),
                          next.data());
    state.recompute();
    if (s == 0) first_sweep_evals = bd.vertices;
    last_sweep_evals = bd.vertices;
    if (moves == 0) break;
    active.swap(next);
    std::fill(next.begin(), next.end(), 0);
  }
  EXPECT_EQ(first_sweep_evals, fn.num_nodes());
  // By the time the greedy loop settles, the active set has collapsed.
  EXPECT_LT(last_sweep_evals, first_sweep_evals / 2);
}

}  // namespace
