// Tests for graph algorithms (components, BFS, clustering), the
// Watts-Strogatz generator, and the module hierarchy.

#include <gtest/gtest.h>

#include "asamap/core/hierarchy.hpp"
#include "asamap/core/infomap.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/graph/algorithms.hpp"
#include "asamap/graph/edge_list.hpp"

namespace {

using namespace asamap;
using graph::CsrGraph;
using graph::EdgeList;
using graph::VertexId;

CsrGraph two_islands() {
  EdgeList e;
  e.add_undirected(0, 1);
  e.add_undirected(1, 2);
  e.add_undirected(3, 4);
  e.coalesce();
  return CsrGraph::from_edges(e, /*n_hint=*/6);  // vertex 5 isolated
}

TEST(Components, CountsIslands) {
  const auto r = graph::connected_components(two_islands());
  EXPECT_EQ(r.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(r.largest_size, 3u);
  EXPECT_EQ(r.component[0], r.component[2]);
  EXPECT_EQ(r.component[3], r.component[4]);
  EXPECT_NE(r.component[0], r.component[3]);
  EXPECT_NE(r.component[5], r.component[0]);
}

TEST(Components, DirectedArcsAreWeak) {
  EdgeList e;
  e.add(0, 1);  // one direction only
  e.add(2, 1);
  e.coalesce();
  const auto r = graph::connected_components(CsrGraph::from_edges(e));
  EXPECT_EQ(r.count, 1u);
}

TEST(Components, ConnectedRandomGraph) {
  const auto g = gen::erdos_renyi(500, 0.03, 3);  // far above threshold
  const auto r = graph::connected_components(g);
  EXPECT_EQ(r.largest_size, 500u);
}

TEST(Bfs, PathGraphDistances) {
  EdgeList e;
  for (VertexId v = 0; v + 1 < 5; ++v) e.add_undirected(v, v + 1);
  e.coalesce();
  const auto d = graph::bfs_distances(CsrGraph::from_edges(e), 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, UnreachableMarked) {
  const auto d = graph::bfs_distances(two_islands(), 0);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], graph::kUnreachable);
  EXPECT_EQ(d[5], graph::kUnreachable);
}

TEST(Clustering, TriangleIsOne) {
  EdgeList e;
  e.add_undirected(0, 1);
  e.add_undirected(1, 2);
  e.add_undirected(0, 2);
  e.coalesce();
  const auto g = CsrGraph::from_edges(e);
  EXPECT_DOUBLE_EQ(graph::local_clustering(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(graph::average_clustering(g), 1.0);
  EXPECT_DOUBLE_EQ(graph::transitivity(g), 1.0);
}

TEST(Clustering, StarIsZero) {
  EdgeList e;
  for (VertexId leaf = 1; leaf <= 4; ++leaf) e.add_undirected(0, leaf);
  e.coalesce();
  const auto g = CsrGraph::from_edges(e);
  EXPECT_DOUBLE_EQ(graph::average_clustering(g), 0.0);
  EXPECT_DOUBLE_EQ(graph::transitivity(g), 0.0);
}

TEST(Clustering, KnownPaw) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  EdgeList e;
  e.add_undirected(0, 1);
  e.add_undirected(1, 2);
  e.add_undirected(0, 2);
  e.add_undirected(0, 3);
  e.coalesce();
  const auto g = CsrGraph::from_edges(e);
  EXPECT_DOUBLE_EQ(graph::local_clustering(g, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(graph::local_clustering(g, 1), 1.0);
  EXPECT_DOUBLE_EQ(graph::local_clustering(g, 3), 0.0);
  // Triples: v0 has C(3,2)=3, v1/v2 have 1 each => 5; triangles3 = 3.
  EXPECT_DOUBLE_EQ(graph::transitivity(g), 3.0 / 5.0);
}

TEST(WattsStrogatz, LatticeAtBetaZero) {
  const auto g = gen::watts_strogatz(100, 3, 0.0, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(g.out_degree(v), 6u);
  // Ring lattice with k=3: C = (3(k-1)) / (2(2k-1)) = 6/10.
  EXPECT_NEAR(graph::average_clustering(g), 0.6, 1e-12);
}

TEST(WattsStrogatz, RewiringDropsClusteringAndDiameter) {
  const auto lattice = gen::watts_strogatz(400, 4, 0.0, 9);
  const auto small_world = gen::watts_strogatz(400, 4, 0.2, 9);
  EXPECT_GT(graph::average_clustering(lattice),
            graph::average_clustering(small_world) + 0.1);
  // Mean BFS distance from vertex 0 shrinks dramatically.
  auto mean_dist = [](const CsrGraph& g) {
    const auto d = graph::bfs_distances(g, 0);
    double sum = 0.0;
    std::size_t reached = 0;
    for (auto x : d) {
      if (x != graph::kUnreachable) {
        sum += x;
        ++reached;
      }
    }
    return sum / static_cast<double>(reached);
  };
  EXPECT_GT(mean_dist(lattice), 2.0 * mean_dist(small_world));
}

TEST(Hierarchy, ComposesLevels) {
  // 6 vertices -> 3 finest modules -> 2 top modules.
  core::ModuleHierarchy h({{0, 0, 1, 1, 2, 2}, {0, 0, 1}});
  EXPECT_EQ(h.depth(), 2u);
  EXPECT_EQ(h.modules_at(0), 3u);
  EXPECT_EQ(h.modules_at(1), 2u);
  EXPECT_EQ(h.module_of(4, 0), 2u);
  EXPECT_EQ(h.module_of(4, 1), 1u);
  EXPECT_EQ(h.coarsest(), (core::Partition{0, 0, 0, 0, 1, 1}));
  EXPECT_EQ(h.path_of(4), "1:2");
  EXPECT_EQ(h.path_of(0), "0:0");
}

TEST(Hierarchy, RejectsBrokenChain) {
  EXPECT_THROW(core::ModuleHierarchy({{0, 0, 1}, {0, 0, 0}}),
               std::logic_error);
}

TEST(Hierarchy, FromInfomapResult) {
  const auto pp = gen::planted_partition(2000, 40, 0.3, 0.002, 89);
  core::InfomapOptions opts;
  opts.refine_sweeps = 0;  // keep the full tree (refinement re-bases it)
  const auto r = core::run_infomap(pp.graph, opts);
  ASSERT_GE(r.levels, 2);
  const core::ModuleHierarchy h = r.hierarchy();
  EXPECT_EQ(h.depth(), static_cast<std::size_t>(r.levels));
  // The composed finest-through-coarsest chain ends at the reported
  // community assignment.
  EXPECT_EQ(h.coarsest(), r.communities);
  // Module counts shrink monotonically up the hierarchy.
  for (std::size_t k = 1; k < h.depth(); ++k) {
    EXPECT_LE(h.modules_at(k), h.modules_at(k - 1));
  }
  // Paths parse: depth() colon-separated components.
  const std::string path = h.path_of(0);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(path.begin(), path.end(), ':')),
            h.depth() - 1);
}

}  // namespace
