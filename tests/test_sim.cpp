// Unit tests for the microarchitecture cost model: branch predictors learn
// the patterns they should, caches obey capacity/associativity/LRU, and the
// core model's cycle accounting follows its documented formula.

#include <gtest/gtest.h>

#include "asamap/sim/branch_predictor.hpp"
#include "asamap/sim/cache.hpp"
#include "asamap/sim/core_model.hpp"
#include "asamap/sim/machine.hpp"
#include "asamap/support/rng.hpp"

namespace {

using namespace asamap::sim;

// ---------------------------------------------------------------- predictors

TEST(Bimodal, LearnsAlwaysTaken) {
  BimodalPredictor p;
  int mispredicts = 0;
  for (int i = 0; i < 1000; ++i) {
    if (p.mispredicted(7, true)) ++mispredicts;
  }
  EXPECT_LE(mispredicts, 2);  // warms up within a couple of updates
}

TEST(Bimodal, StrugglesOnAlternating) {
  BimodalPredictor p;
  int mispredicts = 0;
  for (int i = 0; i < 1000; ++i) {
    if (p.mispredicted(7, i % 2 == 0)) ++mispredicts;
  }
  // 2-bit counters on a TNTN stream mispredict roughly half the time.
  EXPECT_GT(mispredicts, 300);
}

TEST(Gshare, LearnsAlternatingViaHistory) {
  GsharePredictor p;
  int mispredicts = 0;
  for (int i = 0; i < 2000; ++i) {
    if (p.mispredicted(7, i % 2 == 0)) ++mispredicts;
  }
  // Global history disambiguates TNTN; only warmup misses remain.
  EXPECT_LT(mispredicts, 100);
}

TEST(Gshare, LearnsShortPeriodicPattern) {
  GsharePredictor p;
  int mispredicts = 0;
  for (int i = 0; i < 4000; ++i) {
    if (p.mispredicted(3, i % 5 != 0)) ++mispredicts;  // TTTTN repeating
  }
  EXPECT_LT(mispredicts, 200);
}

TEST(Gshare, RandomOutcomesMispredictHalf) {
  GsharePredictor p;
  asamap::support::Xoshiro256 rng(5);
  int mispredicts = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (p.mispredicted(9, rng.next_double() < 0.5)) ++mispredicts;
  }
  EXPECT_NEAR(mispredicts, kN / 2, kN / 10);
}

TEST(Gshare, BiasedOutcomesBeatCoinFlip) {
  GsharePredictor p;
  asamap::support::Xoshiro256 rng(6);
  int mispredicts = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (p.mispredicted(9, rng.next_double() < 0.9)) ++mispredicts;
  }
  EXPECT_LT(mispredicts, kN / 5);  // ~10% wrong on a 90/10 stream
}

TEST(AlwaysTaken, MispredictsExactlyNotTaken) {
  AlwaysTakenPredictor p;
  EXPECT_FALSE(p.mispredicted(1, true));
  EXPECT_TRUE(p.mispredicted(1, false));
}

TEST(PredictorFactory, MakesRequestedKind) {
  EXPECT_NE(dynamic_cast<GsharePredictor*>(
                make_predictor(PredictorKind::kGshare).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<BimodalPredictor*>(
                make_predictor(PredictorKind::kBimodal).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<AlwaysTakenPredictor*>(
                make_predictor(PredictorKind::kAlwaysTaken).get()),
            nullptr);
}

TEST(Predictors, ResetClearsLearning) {
  GsharePredictor p;
  for (int i = 0; i < 1000; ++i) p.mispredicted(7, true);
  p.reset();
  // After reset, the weakly-taken initial state predicts taken: a
  // not-taken burst must mispredict at least once again.
  EXPECT_TRUE(p.mispredicted(7, false));
}

// ------------------------------------------------------------------- caches

CacheConfig tiny_l1() { return {"L1", 1024, 2, 64, 4}; }  // 8 sets x 2 ways

TEST(Cache, HitAfterFill) {
  Cache c(tiny_l1(), nullptr, 200);
  EXPECT_EQ(c.access(0x1000), 4u + 200u);  // cold miss to memory
  EXPECT_EQ(c.access(0x1000), 4u);         // now resident
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SameLineSharesEntry) {
  Cache c(tiny_l1(), nullptr, 200);
  c.access(0x1000);
  EXPECT_EQ(c.access(0x1038), 4u);  // same 64B line
}

TEST(Cache, AssociativityConflicts) {
  Cache c(tiny_l1(), nullptr, 200);  // 8 sets, 2 ways
  // Three lines mapping to the same set (stride = line * sets = 512B).
  c.access(0x0000);
  c.access(0x0200);
  c.access(0x0400);  // evicts LRU (0x0000)
  EXPECT_EQ(c.access(0x0200), 4u);         // still resident
  EXPECT_EQ(c.access(0x0000), 4u + 200u);  // was evicted
}

TEST(Cache, LruKeepsRecentlyTouched) {
  Cache c(tiny_l1(), nullptr, 200);
  c.access(0x0000);
  c.access(0x0200);
  c.access(0x0000);  // refresh 0x0000 -> 0x0200 becomes LRU
  c.access(0x0400);  // evicts 0x0200
  EXPECT_EQ(c.access(0x0000), 4u);
  EXPECT_EQ(c.access(0x0200), 4u + 200u);
}

TEST(Cache, HierarchyLatenciesCompose) {
  Cache l2({"L2", 8192, 4, 64, 12}, nullptr, 200);
  Cache l1(tiny_l1(), &l2, 200);
  EXPECT_EQ(l1.access(0x5000), 4u + 12u + 200u);  // miss both levels
  EXPECT_EQ(l1.access(0x5000), 4u);               // L1 hit
  l1.flush();
  // After a flush, L2 is flushed too (transitive): full path again.
  EXPECT_EQ(l1.access(0x5000), 4u + 12u + 200u);
}

TEST(Cache, L2CatchesL1Evictions) {
  Cache l2({"L2", 64 * 1024, 8, 64, 12}, nullptr, 200);
  Cache l1(tiny_l1(), &l2, 200);
  // Touch 64 lines (4KB) — way more than the 1KB L1, well within 64KB L2.
  for (std::uint64_t i = 0; i < 64; ++i) l1.access(i * 64);
  // Re-touch: L1 misses but L2 hits => 4 + 12.
  EXPECT_EQ(l1.access(0), 4u + 12u);
}

TEST(Cache, AccessRangeSplitsLines) {
  Cache c(tiny_l1(), nullptr, 200);
  // 16 bytes straddling a line boundary: two probes, worst latency returned.
  const std::uint32_t lat = c.access_range(0x1000 + 56, 16);
  EXPECT_EQ(lat, 4u + 200u);
  EXPECT_EQ(c.stats().accesses, 2u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache({"bad", 1000, 3, 64, 4}, nullptr, 200),
               std::logic_error);
}

// --------------------------------------------------------------- core model

TEST(CoreModel, CyclesFollowFormula) {
  CoreConfig cfg;
  cfg.base_cpi = 0.5;
  cfg.mispredict_penalty = 10;
  cfg.memory_overlap = 1.0;
  CoreModel core(cfg);
  core.instructions(100);
  EXPECT_DOUBLE_EQ(core.cycles(), 50.0);

  // One always-mispredicted branch (not-taken against taken-initialized
  // counters) adds 1 instr * 0.5 + 10 penalty.
  core.branch(1, false);
  EXPECT_DOUBLE_EQ(core.cycles(), 50.0 + 0.5 + 10.0);
}

TEST(CoreModel, MemoryStallsCharged) {
  CoreConfig cfg;
  cfg.base_cpi = 0.0;
  cfg.memory_overlap = 1.0;
  cfg.memory_latency = 100;
  CoreModel core(cfg);
  core.load(0x10000, 8);
  // Cold miss: L1(4) + L2(12) + mem(100) = 116; stall = 116 - 4 = 112.
  EXPECT_DOUBLE_EQ(core.cycles(), 112.0);
  core.load(0x10000, 8);  // L1 hit: no stall
  EXPECT_DOUBLE_EQ(core.cycles(), 112.0);
}

TEST(CoreModel, StreamLoadsDiscounted) {
  CoreConfig cfg;
  cfg.base_cpi = 0.0;
  cfg.memory_overlap = 1.0;
  cfg.stream_overlap = 0.1;
  cfg.memory_latency = 100;
  CoreModel a(cfg), b(cfg);
  a.load(0x20000, 8);
  b.load_stream(0x20000, 8);
  EXPECT_GT(a.cycles(), 5.0 * b.cycles());
}

TEST(CoreModel, CpiIsCyclesOverInstructions) {
  CoreModel core;
  core.instructions(1000);
  core.load(0x1234, 8);
  EXPECT_NEAR(core.cpi(), core.cycles() / 1001.0, 1e-12);
}

TEST(CoreModel, SecondsUseConfiguredClock) {
  CoreConfig cfg;
  cfg.frequency_ghz = 2.6;
  CoreModel core(cfg);
  core.instructions(26000);
  EXPECT_NEAR(core.seconds(), core.cycles() / 2.6e9, 1e-18);
}

TEST(CoreModel, ResetStatsKeepsCaches) {
  CoreConfig cfg;
  cfg.base_cpi = 0.0;  // isolate memory stalls
  CoreModel core(cfg);
  core.load(0x8000, 8);
  core.reset_stats();
  EXPECT_EQ(core.stats().loads, 0u);
  core.load(0x8000, 8);  // still warm: L1 hit, zero stall
  EXPECT_DOUBLE_EQ(core.cycles(), 0.0);
}

TEST(CoreModel, ResetAllColdCaches) {
  CoreModel core;
  core.load(0x8000, 8);
  core.reset_all();
  core.load(0x8000, 8);
  EXPECT_GT(core.cycles(), 0.0);  // cold again: stall charged
}

// ------------------------------------------------------------------ machine

TEST(Machine, PaperBaselineConfig) {
  const MachineConfig mc = paper_baseline_machine(8);
  EXPECT_EQ(mc.num_cores, 8u);
  EXPECT_EQ(mc.core.l1.size_bytes, 32u * 1024);
  EXPECT_EQ(mc.core.l2.size_bytes, 256u * 1024);
  EXPECT_EQ(mc.l3.size_bytes, 16u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(mc.core.frequency_ghz, 2.6);
}

TEST(Machine, CoresShareL3) {
  Machine m(paper_baseline_machine(2));
  // Core 0 warms a line through to L3; core 1's first touch should hit L3
  // (L1+L2+L3 latency), not memory.
  m.core(0).load(0x40000, 8);
  const double before = m.core(1).cycles();
  m.core(1).load(0x40000, 8);
  const double stall = (m.core(1).cycles() - before);
  // Full path would include the 200-cycle memory trip; L3 hit must be well
  // under that.
  EXPECT_LT(stall, 100.0);
  EXPECT_GT(stall, 0.0);
}

TEST(Machine, AggregatesAndAverages) {
  Machine m(paper_baseline_machine(4));
  for (std::uint32_t c = 0; c < 4; ++c) m.core(c).instructions(100 * (c + 1));
  EXPECT_EQ(m.total_stats().total_instructions(), 100u + 200u + 300u + 400u);
  EXPECT_DOUBLE_EQ(m.avg_instructions_per_core(), 250.0);
  EXPECT_GT(m.simulated_seconds(), 0.0);
}

TEST(Machine, SimulatedSecondsIsSlowestCore) {
  Machine m(paper_baseline_machine(2));
  m.core(0).instructions(1000);
  m.core(1).instructions(500000);
  EXPECT_DOUBLE_EQ(m.simulated_seconds(), m.core(1).seconds());
}

}  // namespace

namespace {

TEST(Prefetcher, NextLinePrefetchHitsOnSequentialScan) {
  CacheConfig cfg = {"L1", 1024, 2, 64, 4, /*prefetch_lines=*/2};
  Cache c(cfg, nullptr, 200);
  // Sequential scan: after the first miss, the next two lines are resident.
  EXPECT_EQ(c.access(0x0000), 4u + 200u);  // cold miss, prefetches 1,2
  EXPECT_EQ(c.access(0x0040), 4u);         // prefetched
  EXPECT_EQ(c.access(0x0080), 4u);         // prefetched
  EXPECT_EQ(c.stats().prefetches, 2u);  // only the miss at 0x0 prefetches
  EXPECT_EQ(c.stats().prefetch_hits, 2u);
}

TEST(Prefetcher, DisabledByDefault) {
  Cache c({"L1", 1024, 2, 64, 4}, nullptr, 200);
  c.access(0x0000);
  EXPECT_EQ(c.access(0x0040), 4u + 200u);  // next line still cold
  EXPECT_EQ(c.stats().prefetches, 0u);
}

TEST(Prefetcher, PrefetchedLinesEvictFirst) {
  // 2-way set: one demanded line + one prefetched line in the same set;
  // a new fill must evict the prefetched one (inserted at lower priority).
  CacheConfig cfg = {"L1", 1024, 2, 64, 4, /*prefetch_lines=*/1};
  Cache c(cfg, nullptr, 200);
  c.access(0x0000);  // demand 0x0000, prefetch 0x0040 (different set!)
  // Lines 0x0000 and 0x0200 share set 0 in this 8-set cache.
  c.access(0x0200);  // demand, prefetches 0x0240
  // Set 0 now holds demanded 0x0000 and 0x0200.  Prefetch priority is
  // observable in set 1: 0x0040(prefetched) vs 0x0240(prefetched)...
  // Simply verify random-access correctness is preserved.
  EXPECT_EQ(c.access(0x0000), 4u);
  EXPECT_EQ(c.access(0x0200), 4u);
}

TEST(Prefetcher, DoesNotRefetchResidentLines) {
  CacheConfig cfg = {"L1", 1024, 2, 64, 4, /*prefetch_lines=*/4};
  Cache c(cfg, nullptr, 200);
  c.access(0x0000);
  const auto first = c.stats().prefetches;
  c.access(0x1000);  // different region; its prefetches must not re-add
  c.access(0x1000);  // hit: no new prefetches
  EXPECT_EQ(c.stats().prefetches, first + 4);
}

}  // namespace

#include "asamap/sim/trace.hpp"

namespace {

TEST(Trace, RecordsAndReplaysIdentically) {
  TraceRecorder rec;
  rec.instructions(10);
  rec.branch(3, true);
  rec.branch(3, false);
  rec.load(0x1000, 8);
  rec.store(0x2000, 16);
  rec.load_stream(0x3000, 4);
  rec.load_dependent(0x4000, 24);
  ASSERT_EQ(rec.size(), 7u);

  // Replay into two identical cores: identical stats.
  CoreModel a, b;
  replay_trace(rec.events(), a);
  replay_trace(rec.events(), b);
  EXPECT_EQ(a.stats().total_instructions(), b.stats().total_instructions());
  EXPECT_DOUBLE_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.stats().loads, 3u);
  EXPECT_EQ(a.stats().stores, 1u);
  EXPECT_EQ(a.stats().branches, 2u);
}

TEST(Trace, ReplayMatchesDirectExecution) {
  // Feeding a workload through a recorder and replaying must charge the
  // same cycles as feeding the core directly.
  asamap::support::Xoshiro256 rng(77);
  TraceRecorder rec;
  CoreModel direct;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.next_below(1u << 22);
    switch (rng.next_below(5)) {
      case 0:
        rec.instructions(3);
        direct.instructions(3);
        break;
      case 1: {
        const bool taken = rng.next_double() < 0.7;
        rec.branch(5, taken);
        direct.branch(5, taken);
        break;
      }
      case 2:
        rec.load(addr, 8);
        direct.load(addr, 8);
        break;
      case 3:
        rec.store(addr, 8);
        direct.store(addr, 8);
        break;
      default:
        rec.load_dependent(addr, 24);
        direct.load_dependent(addr, 24);
        break;
    }
  }
  CoreModel replayed;
  replay_trace(rec.events(), replayed);
  EXPECT_DOUBLE_EQ(replayed.cycles(), direct.cycles());
  EXPECT_EQ(replayed.stats().branch_mispredicts,
            direct.stats().branch_mispredicts);
}

TEST(Trace, BiggerL3NeverSlower) {
  // Monotonicity property: replaying one trace through machines with
  // growing L3 must not increase cycles (LRU caches are inclusion-monotone
  // for a fixed access sequence).
  asamap::support::Xoshiro256 rng(79);
  TraceRecorder rec;
  for (int i = 0; i < 50000; ++i) {
    rec.load(rng.next_below(64ull << 20), 8);
  }
  double prev = 1e300;
  for (std::uint64_t mb : {2ull, 8ull, 32ull}) {
    MachineConfig mc = paper_baseline_machine(1);
    mc.l3.size_bytes = mb << 20;
    Machine m(mc);
    replay_trace(rec.events(), m.core(0));
    EXPECT_LE(m.core(0).cycles(), prev + 1e-6);
    prev = m.core(0).cycles();
  }
}

}  // namespace
