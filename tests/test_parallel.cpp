// Tests for the native parallel Infomap driver: thread-count invariance,
// engine parity with the new flat accumulator, option parity
// (refine_sweeps / time_wall), and trace/breakdown accounting.
//
// This file is also the TSAN target: CI rebuilds it with -fsanitize=thread
// to catch data races in the propose/verify apply path, so every test here
// should exercise the parallel region with >1 thread.

#include <gtest/gtest.h>

#include "asamap/core/infomap.hpp"
#include "asamap/gen/generators.hpp"
#include "asamap/metrics/partition.hpp"

namespace {

using namespace asamap;
using core::AccumulatorKind;
using core::InfomapOptions;
using core::InfomapResult;

TEST(ParallelDeterminism, CodelengthInvariantAcrossThreadCounts) {
  const auto pp = gen::planted_partition(2000, 20, 0.2, 0.004, 1301);
  const InfomapResult t1 = core::run_infomap_parallel(pp.graph, {}, 1);
  const InfomapResult t2 = core::run_infomap_parallel(pp.graph, {}, 2);
  const InfomapResult t4 = core::run_infomap_parallel(pp.graph, {}, 4);
  // Proposals are computed against a frozen snapshot and applied serially
  // in vertex order, so the thread count must not change the outcome (up
  // to the floating-point noise of the parallel contraction merge).
  EXPECT_NEAR(t1.codelength, t2.codelength, 1e-9);
  EXPECT_NEAR(t1.codelength, t4.codelength, 1e-9);
  EXPECT_EQ(t1.num_communities, t2.num_communities);
  EXPECT_EQ(t1.num_communities, t4.num_communities);
  EXPECT_EQ(t1.communities, t2.communities);
  EXPECT_EQ(t1.communities, t4.communities);
}

TEST(ParallelDeterminism, RepeatRunsAreIdentical) {
  const auto pp = gen::planted_partition(800, 8, 0.2, 0.01, 1303);
  const InfomapResult a = core::run_infomap_parallel(pp.graph, {}, 4);
  const InfomapResult b = core::run_infomap_parallel(pp.graph, {}, 4);
  EXPECT_EQ(a.communities, b.communities);
  EXPECT_DOUBLE_EQ(a.codelength, b.codelength);
}

TEST(ParallelDeterminism, EveryAccumulatorKindMatchesChained) {
  const auto pp = gen::planted_partition(900, 9, 0.2, 0.008, 1307);
  const InfomapResult chained =
      core::run_infomap(pp.graph, {}, AccumulatorKind::kChained);
  for (const AccumulatorKind kind :
       {AccumulatorKind::kOpen, AccumulatorKind::kAsa, AccumulatorKind::kDense,
        AccumulatorKind::kFlat, AccumulatorKind::kHotSet}) {
    const InfomapResult r = core::run_infomap(pp.graph, {}, kind);
    EXPECT_EQ(chained.communities, r.communities);
    EXPECT_NEAR(chained.codelength, r.codelength, 1e-9);
  }
}

TEST(ParallelParity, HonorsRefineSweeps) {
  const auto pp = gen::planted_partition(1500, 30, 0.3, 0.003, 1309);
  InfomapOptions with;
  with.refine_sweeps = 3;
  InfomapOptions without;
  without.refine_sweeps = 0;
  const InfomapResult refined = core::run_infomap_parallel(pp.graph, with, 2);
  const InfomapResult plain = core::run_infomap_parallel(pp.graph, without, 2);
  // Refinement is greedy on exact deltas: it can only improve.
  EXPECT_LE(refined.codelength, plain.codelength + 1e-12);
  // And when it rebases, the hierarchy must stay consistent.
  const auto h = refined.hierarchy();
  ASSERT_FALSE(h.empty());
  EXPECT_EQ(h.coarsest(), refined.communities);
}

TEST(ParallelParity, HonorsTimeWallAndFillsBreakdown) {
  const auto pp = gen::planted_partition(1000, 10, 0.2, 0.005, 1311);
  InfomapOptions opts;
  opts.time_wall = true;
  const InfomapResult r = core::run_infomap_parallel(pp.graph, opts, 2);
  // The per-thread proposal breakdowns must be aggregated, not discarded.
  EXPECT_GT(r.breakdown.vertices, 0u);
  EXPECT_GT(r.breakdown.accumulate_calls, 0u);
  EXPECT_GT(r.breakdown.hash_seconds + r.breakdown.other_seconds, 0.0);
}

TEST(ParallelParity, FillsSweepTraceTimings) {
  const auto pp = gen::planted_partition(1000, 10, 0.2, 0.005, 1313);
  const InfomapResult r = core::run_infomap_parallel(pp.graph, {}, 2);
  ASSERT_FALSE(r.trace.empty());
  for (const auto& st : r.trace) {
    EXPECT_GE(st.wall_seconds, 0.0);
    EXPECT_GE(st.sim_seconds, 0.0);          // slowest thread's propose time
    EXPECT_LE(st.sim_seconds, st.wall_seconds + 1e-6);
  }
  EXPECT_GT(r.trace.front().sim_seconds, 0.0);
}

TEST(ParallelQuality, MatchesSequentialDriver) {
  const auto pp = gen::planted_partition(1200, 12, 0.2, 0.005, 1317);
  const InfomapResult seq = core::run_infomap(pp.graph);
  const InfomapResult par = core::run_infomap_parallel(pp.graph, {}, 4);
  const double nmi = metrics::normalized_mutual_information(
      metrics::Partition(seq.communities.begin(), seq.communities.end()),
      metrics::Partition(par.communities.begin(), par.communities.end()));
  EXPECT_GT(nmi, 0.9);
  EXPECT_LE(par.codelength, seq.codelength * 1.05 + 0.1);
}

TEST(ParallelQuality, DirectedFlowModelWorks) {
  // The directed (PageRank + teleportation) flow model exercises the
  // teleport terms of the O(1) delta replay in the verify phase.
  const auto pp = gen::planted_partition(800, 8, 0.2, 0.01, 1319);
  InfomapOptions opts;
  opts.flow.model = core::FlowModel::kDirected;
  const InfomapResult t1 = core::run_infomap_parallel(pp.graph, opts, 1);
  const InfomapResult t4 = core::run_infomap_parallel(pp.graph, opts, 4);
  EXPECT_NEAR(t1.codelength, t4.codelength, 1e-9);
  EXPECT_EQ(t1.communities, t4.communities);
}

}  // namespace
