// Unit + property tests for the instrumented hash maps: functional
// correctness against std::unordered_map, and instrumentation sanity (the
// event streams behave the way collision theory says they should).

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asamap/hashdb/address_space.hpp"
#include "asamap/hashdb/chained_map.hpp"
#include "asamap/hashdb/flat_accumulator.hpp"
#include "asamap/hashdb/hot_set_accumulator.hpp"
#include "asamap/hashdb/open_map.hpp"
#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/sim/event_sink.hpp"
#include "asamap/support/rng.hpp"

namespace {

using namespace asamap;
using hashdb::AddressSpace;
using sim::NullSink;

/// Sink that counts events, for instrumentation assertions.
struct CountingSink {
  std::uint64_t instr = 0, branches = 0, taken = 0, loads = 0, stores = 0;
  void instructions(std::uint64_t n) { instr += n; }
  void branch(sim::BranchSite, bool t) {
    ++branches;
    if (t) ++taken;
  }
  void load(std::uint64_t, std::uint32_t) { ++loads; }
  void store(std::uint64_t, std::uint32_t) { ++stores; }
  void load_stream(std::uint64_t, std::uint32_t) { ++loads; }
  void load_dependent(std::uint64_t, std::uint32_t) { ++loads; }
};
static_assert(sim::EventSink<CountingSink>);

TEST(AddressSpace, ArraysAreDisjointAndAligned) {
  AddressSpace a;
  const std::uint64_t r1 = a.alloc_array(100);
  const std::uint64_t r2 = a.alloc_array(100);
  EXPECT_GE(r2, r1 + 100);
  EXPECT_EQ(r1 % 64, 0u);
  EXPECT_EQ(r2 % 64, 0u);
}

TEST(AddressSpace, NodesScatterAcrossHeap) {
  AddressSpace a;
  std::uint64_t prev = a.alloc_node();
  int adjacent = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t addr = a.alloc_node();
    if (addr / 64 == prev / 64 + 1 || addr / 64 + 1 == prev / 64) ++adjacent;
    prev = addr;
  }
  EXPECT_LT(adjacent, 10);  // consecutive allocations rarely share lines
}

template <typename Map>
void check_against_std(Map& map, std::uint64_t seed, int ops, int key_range) {
  support::Xoshiro256 rng(seed);
  std::unordered_map<std::uint32_t, double> ref;
  for (int i = 0; i < ops; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(key_range));
    const double val = rng.next_double();
    map.accumulate(key, val);
    ref[key] += val;
  }
  ASSERT_EQ(map.size(), ref.size());
  for (const auto& [key, val] : ref) {
    const double* found = map.find(key);
    ASSERT_NE(found, nullptr) << "missing key " << key;
    EXPECT_NEAR(*found, val, 1e-9);
  }
  // Absent keys stay absent.
  const double* absent =
      map.find(static_cast<std::uint32_t>(key_range + 123));
  EXPECT_EQ(absent, nullptr);
}

TEST(ChainedMap, MatchesStdUnorderedMap) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::ChainedMap<NullSink> map(sink, addrs);
  check_against_std(map, 101, 20000, 500);
}

TEST(ChainedMap, SurvivesHeavyCollisions) {
  // A tiny initial table forces many rehashes.
  NullSink sink;
  AddressSpace addrs;
  hashdb::ChainedMap<NullSink> map(sink, addrs, /*initial_buckets=*/2);
  check_against_std(map, 103, 5000, 5000);
  EXPECT_GE(map.bucket_count(), map.size());
}

TEST(ChainedMap, ForEachVisitsEverythingOnce) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::ChainedMap<NullSink> map(sink, addrs);
  for (std::uint32_t k = 0; k < 100; ++k) map.accumulate(k, k * 1.0);
  std::unordered_map<std::uint32_t, int> seen;
  double sum = 0.0;
  map.for_each([&](std::uint32_t k, double v) {
    ++seen[k];
    sum += v;
  });
  EXPECT_EQ(seen.size(), 100u);
  for (const auto& [k, count] : seen) EXPECT_EQ(count, 1) << k;
  EXPECT_NEAR(sum, 99.0 * 100.0 / 2.0, 1e-9);
}

TEST(ChainedMap, ClearGivesFreshTable) {
  // Algorithm 1 declares the map per vertex, so clear() models destroy +
  // construct: the bucket array shrinks back to the initial size.
  NullSink sink;
  AddressSpace addrs;
  hashdb::ChainedMap<NullSink> map(sink, addrs, 16);
  for (std::uint32_t k = 0; k < 1000; ++k) map.accumulate(k, 1.0);
  EXPECT_GT(map.bucket_count(), 16u);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.bucket_count(), 16u);
  EXPECT_EQ(map.find(5), nullptr);
  map.accumulate(5, 2.0);
  EXPECT_NE(map.find(5), nullptr);
}

TEST(OpenMap, MatchesStdUnorderedMap) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::OpenMap<NullSink> map(sink, addrs);
  check_against_std(map, 107, 20000, 500);
}

TEST(OpenMap, GrowsUnderLoad) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::OpenMap<NullSink> map(sink, addrs, 8);
  for (std::uint32_t k = 0; k < 1000; ++k) map.accumulate(k, 1.0);
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_GE(map.capacity(), 1000u * 10 / 7);
}

TEST(OpenMap, ForEachMatchesContents) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::OpenMap<NullSink> map(sink, addrs);
  for (std::uint32_t k = 10; k < 60; ++k) map.accumulate(k, 0.5);
  std::size_t visited = 0;
  map.for_each([&](std::uint32_t k, double v) {
    EXPECT_GE(k, 10u);
    EXPECT_LT(k, 60u);
    EXPECT_DOUBLE_EQ(v, 0.5);
    ++visited;
  });
  EXPECT_EQ(visited, 50u);
}

TEST(Instrumentation, ChainedEmitsBranchPerProbe) {
  CountingSink sink;
  AddressSpace addrs;
  hashdb::ChainedMap<CountingSink> map(sink, addrs, 1024);
  map.accumulate(1, 1.0);
  const std::uint64_t b1 = sink.branches;
  // A hit on a singleton chain: bucket-empty branch + key-compare branch.
  map.accumulate(1, 1.0);
  EXPECT_EQ(sink.branches - b1, 2u);
}

TEST(Instrumentation, LongerChainsMeanMoreEvents) {
  // Force all keys into one logical chain shape by measuring totals: with a
  // fixed element count, a smaller table (longer chains) must emit more
  // branch and load events on lookups.
  auto events_with_buckets = [](std::size_t buckets) {
    CountingSink sink;
    AddressSpace addrs;
    hashdb::ChainedMap<CountingSink> map(sink, addrs, buckets);
    // Insert without triggering rehash past the requested size: keep the
    // count below the bucket count for the big case only.  For the
    // comparison we measure find()s, which never rehash.
    for (std::uint32_t k = 0; k < 512; ++k) map.accumulate(k, 1.0);
    const std::uint64_t before = sink.loads + sink.branches;
    for (std::uint32_t k = 0; k < 512; ++k) map.find(k);
    return sink.loads + sink.branches - before;
  };
  // 512 elements: a 1024-bucket table has short chains; rehash growth stops
  // at >= element count either way, so compare 1024 vs 4096 buckets.
  EXPECT_GT(events_with_buckets(1024), events_with_buckets(4096));
}

TEST(Instrumentation, OpenMapProbesLengthenWithLoad) {
  CountingSink sink;
  AddressSpace addrs;
  hashdb::OpenMap<CountingSink> map(sink, addrs, 4096);
  for (std::uint32_t k = 0; k < 2000; ++k) map.accumulate(k, 1.0);
  const std::uint64_t loads_lo = sink.loads;
  for (std::uint32_t k = 0; k < 2000; ++k) map.find(k);
  const std::uint64_t find_loads_lo = sink.loads - loads_lo;
  // At ~50% load, average probes/find must be < 3 but > 1.
  EXPECT_GT(find_loads_lo, 2000u);
  EXPECT_LT(find_loads_lo, 6000u);
}

TEST(Accumulators, ChainedFinalizeMatchesAccumulation) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  acc.begin();
  acc.accumulate(3, 1.0);
  acc.accumulate(7, 2.0);
  acc.accumulate(3, 0.5);
  const auto pairs = acc.finalize();
  ASSERT_EQ(pairs.size(), 2u);
  std::unordered_map<std::uint32_t, double> got;
  for (const auto& kv : pairs) got[kv.key] = kv.value;
  EXPECT_NEAR(got[3], 1.5, 1e-12);
  EXPECT_NEAR(got[7], 2.0, 1e-12);
  EXPECT_EQ(acc.distinct(), 2u);
}

TEST(Accumulators, BeginResetsState) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::OpenAccumulator<NullSink> acc(sink, addrs);
  acc.begin();
  acc.accumulate(1, 1.0);
  EXPECT_EQ(acc.finalize().size(), 1u);
  acc.begin();
  acc.accumulate(2, 1.0);
  acc.accumulate(4, 1.0);
  const auto pairs = acc.finalize();
  EXPECT_EQ(pairs.size(), 2u);
  for (const auto& kv : pairs) EXPECT_NE(kv.key, 1u);
}

TEST(Accumulators, FinalizeIsIdempotent) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  acc.begin();
  acc.accumulate(9, 4.0);
  const auto p1 = acc.finalize();
  const auto p2 = acc.finalize();
  ASSERT_EQ(p1.size(), 1u);
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(p1.data(), p2.data());  // same scratch, not re-materialized
}

// --- FlatAccumulator: the uninstrumented native fast path.

TEST(FlatAccumulator, AccumulatesAndMerges) {
  hashdb::FlatAccumulator acc;
  acc.begin();
  acc.accumulate(7, 1.5);
  acc.accumulate(3, 2.0);
  acc.accumulate(7, 0.5);
  const auto pairs = acc.finalize();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(acc.distinct(), 2u);
  // First-touch order: 7 before 3.
  EXPECT_EQ(pairs[0].key, 7u);
  EXPECT_DOUBLE_EQ(pairs[0].value, 2.0);
  EXPECT_EQ(pairs[1].key, 3u);
  EXPECT_DOUBLE_EQ(pairs[1].value, 2.0);
}

TEST(FlatAccumulator, SparseResetDiscardsPreviousCycle) {
  hashdb::FlatAccumulator acc;
  acc.begin();
  acc.accumulate(1, 1.0);
  acc.accumulate(2, 1.0);
  acc.begin();
  acc.accumulate(2, 5.0);  // same key as last cycle: must start from zero
  const auto pairs = acc.finalize();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].key, 2u);
  EXPECT_DOUBLE_EQ(pairs[0].value, 5.0);
}

TEST(FlatAccumulator, GrowsPastInitialCapacity) {
  hashdb::FlatAccumulator acc(8);
  acc.begin();
  for (std::uint32_t k = 0; k < 10000; ++k) acc.accumulate(k, 1.0);
  EXPECT_EQ(acc.distinct(), 10000u);
  EXPECT_GE(acc.capacity(), 10000u);
  double sum = 0.0;
  for (const auto& kv : acc.finalize()) sum += kv.value;
  EXPECT_DOUBLE_EQ(sum, 10000.0);
}

TEST(FlatAccumulator, GrowPreservesRunningSums) {
  hashdb::FlatAccumulator acc(8);
  acc.begin();
  // Interleave inserts (forcing growth) with re-accumulations of key 0.
  for (std::uint32_t k = 0; k < 1000; ++k) {
    acc.accumulate(k, 1.0);
    acc.accumulate(0, 1.0);
  }
  const auto pairs = acc.finalize();
  ASSERT_EQ(pairs.size(), 1000u);
  EXPECT_EQ(pairs[0].key, 0u);
  EXPECT_DOUBLE_EQ(pairs[0].value, 1001.0);
}

TEST(FlatAccumulator, ManyCyclesStayCheapAndCorrect) {
  // The epoch-stamped sparse reset must keep every cycle independent even
  // after far more cycles than slots.
  hashdb::FlatAccumulator acc(16);
  support::SplitMix64 rng(12345);
  for (int cycle = 0; cycle < 5000; ++cycle) {
    acc.begin();
    std::unordered_map<std::uint32_t, double> ref;
    for (int i = 0; i < 8; ++i) {
      const auto key = static_cast<std::uint32_t>(rng() % 64);
      const double val = static_cast<double>(rng() % 100) / 10.0;
      acc.accumulate(key, val);
      ref[key] += val;
    }
    const auto pairs = acc.finalize();
    ASSERT_EQ(pairs.size(), ref.size());
    for (const auto& kv : pairs) {
      ASSERT_TRUE(ref.count(kv.key));
      EXPECT_NEAR(kv.value, ref[kv.key], 1e-12);
    }
  }
}

// --- HotSetAccumulator: the two-level software CAM.

TEST(HotSetAccumulator, AccumulatesAndMergesInFirstTouchOrder) {
  hashdb::HotSetAccumulator acc;
  acc.begin();
  acc.accumulate(7, 1.5);
  acc.accumulate(3, 2.0);
  acc.accumulate(7, 0.5);
  const auto pairs = acc.finalize();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(acc.distinct(), 2u);
  EXPECT_EQ(pairs[0].key, 7u);
  EXPECT_DOUBLE_EQ(pairs[0].value, 2.0);
  EXPECT_EQ(pairs[1].key, 3u);
  EXPECT_DOUBLE_EQ(pairs[1].value, 2.0);
}

/// Drives flat and hotset through the identical call sequence and asserts
/// the outputs are bitwise identical INCLUDING pair order — the invariant
/// the kernel's decision parity rests on.
void expect_bitwise_flat_parity(hashdb::HotSetAccumulator& hot,
                                std::uint64_t seed, int cycles, int max_ops,
                                int key_range) {
  hashdb::FlatAccumulator flat;
  support::SplitMix64 rng(seed);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    hot.begin();
    flat.begin();
    const int ops = 1 + static_cast<int>(rng() % max_ops);
    for (int i = 0; i < ops; ++i) {
      const auto key = static_cast<std::uint32_t>(rng() % key_range);
      const double val = static_cast<double>(rng() % 1000) / 100.0;
      hot.accumulate(key, val);
      flat.accumulate(key, val);
    }
    const auto a = hot.finalize();
    const auto b = flat.finalize();
    ASSERT_EQ(a.size(), b.size()) << "cycle " << cycle;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].key, b[i].key) << "cycle " << cycle << " pair " << i;
      ASSERT_EQ(a[i].value, b[i].value)  // bitwise, not NEAR
          << "cycle " << cycle << " pair " << i;
    }
    // lookup() must read the same stored doubles finalize() exposes.
    for (const auto& kv : a) {
      ASSERT_EQ(hot.lookup(kv.key), kv.value) << "cycle " << cycle;
    }
    ASSERT_EQ(hot.lookup(static_cast<std::uint32_t>(key_range + 5)), 0.0);
  }
}

TEST(HotSetAccumulator, BitwiseMatchesFlatSmallNeighborhoods) {
  hashdb::HotSetAccumulator acc;  // nothing spills at this size
  expect_bitwise_flat_parity(acc, 4242, 300, 60, 80);
  EXPECT_EQ(acc.hot_stats().spills, 0u);
  EXPECT_DOUBLE_EQ(acc.hot_stats().vertex_coverage(), 1.0);
}

TEST(HotSetAccumulator, BitwiseMatchesFlatThroughSaturation) {
  // Key range far beyond the admission budget: most cycles saturate, so
  // the overflow dump and the post-saturation spill path are exercised.
  hashdb::HotSetAccumulator acc(64, 8);
  expect_bitwise_flat_parity(acc, 4243, 100, 600, 4000);
  EXPECT_GT(acc.hot_stats().spills, 0u);
  EXPECT_LT(acc.hot_stats().vertex_coverage(), 1.0);
}

TEST(HotSetAccumulator, CapacityOneDegeneratesToOverflow) {
  // A 1-entry hot level has a zero admission budget: every cycle starts
  // saturated and the accumulator must behave exactly like the flat table.
  hashdb::HotSetAccumulator acc(1, 8);
  expect_bitwise_flat_parity(acc, 4244, 100, 100, 200);
}

TEST(HotSetAccumulator, AllSpillAdversarialNeighborhood) {
  // More distinct keys per cycle than the entire hot level: the admission
  // budget must saturate, the overflow must grow to hold everything, and
  // the totals must still be exact.
  hashdb::HotSetAccumulator acc(16, 8);
  acc.begin();
  for (std::uint32_t k = 0; k < 5000; ++k) acc.accumulate(k, 1.0);
  for (std::uint32_t k = 0; k < 5000; ++k) acc.accumulate(k, 0.5);
  EXPECT_EQ(acc.distinct(), 5000u);
  const auto pairs = acc.finalize();
  ASSERT_EQ(pairs.size(), 5000u);
  for (const auto& kv : pairs) EXPECT_DOUBLE_EQ(kv.value, 1.5);
  EXPECT_GE(acc.overflow_capacity(), 5000u);
  EXPECT_GT(acc.hot_stats().spills, 0u);
  // Saturated-cycle lookups answer from the (complete) overflow table.
  EXPECT_DOUBLE_EQ(acc.lookup(4999), 1.5);
  EXPECT_DOUBLE_EQ(acc.lookup(12345), 0.0);
}

TEST(HotSetAccumulator, EpochWraparoundResetsCleanly) {
  // Jump the epoch counter to its maximum so the next begin() wraps: stale
  // stamps from "4 billion cycles ago" must not alias as live.
  hashdb::HotSetAccumulator acc(32, 8);
  acc.begin();
  for (std::uint32_t k = 0; k < 200; ++k) acc.accumulate(k, 3.0);
  ASSERT_EQ(acc.distinct(), 200u);
  acc.set_epoch_for_testing(~std::uint32_t{0});
  acc.begin();  // wraps to epoch 1 after the full reset
  EXPECT_EQ(acc.distinct(), 0u);
  EXPECT_DOUBLE_EQ(acc.lookup(5), 0.0);  // key 5 was live pre-wrap
  acc.accumulate(5, 7.0);
  const auto pairs = acc.finalize();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].key, 5u);
  EXPECT_DOUBLE_EQ(pairs[0].value, 7.0);
  EXPECT_DOUBLE_EQ(acc.lookup(5), 7.0);
  // And the cycle after the wrap is ordinary again.
  acc.begin();
  EXPECT_DOUBLE_EQ(acc.lookup(5), 0.0);
  acc.accumulate(9, 1.0);
  EXPECT_EQ(acc.finalize().size(), 1u);
}

TEST(HotSetAccumulator, StatsAccountHitsSpillsAndCoverage) {
  hashdb::HotSetAccumulator acc(16, 8);
  // Cycle 1: fits the hot level entirely (budget is 8).
  acc.begin();
  for (std::uint32_t k = 0; k < 4; ++k) acc.accumulate(k, 1.0);
  acc.note_accumulates(4);
  EXPECT_EQ(acc.hot_stats().spills, 0u);
  // Cycle 2: 100 distinct keys blow the budget; everything after
  // saturation that misses the hot level is a spill.
  acc.begin();
  for (std::uint32_t k = 0; k < 100; ++k) acc.accumulate(k, 1.0);
  acc.note_accumulates(100);
  const auto& s = acc.hot_stats();
  EXPECT_EQ(s.begins, 2u);
  EXPECT_EQ(s.accumulates, 104u);
  EXPECT_GT(s.spills, 0u);
  EXPECT_LT(s.spills, 104u);
  EXPECT_EQ(s.hot_hits(), s.accumulates - s.spills);
  EXPECT_EQ(s.spilled_begins, 1u);
  EXPECT_DOUBLE_EQ(s.vertex_coverage(), 0.5);
  EXPECT_GT(s.hit_rate(), 0.0);
  EXPECT_LT(s.hit_rate(), 1.0);
  acc.reset_hot_stats();
  EXPECT_EQ(acc.hot_stats().begins, 0u);
  EXPECT_EQ(acc.hot_stats().accumulates, 0u);
}

TEST(HotSetAccumulator, LookupOnSaturatedCycleSeesHotResidents) {
  // Keys admitted before saturation keep answering (home slot or the
  // overflow dump); keys spilled after answer from the overflow.
  hashdb::HotSetAccumulator acc(8, 8);  // budget 4
  acc.begin();
  for (std::uint32_t k = 0; k < 50; ++k) acc.accumulate(k, 2.0);
  for (std::uint32_t k = 0; k < 50; ++k) {
    EXPECT_DOUBLE_EQ(acc.lookup(k), 2.0) << "key " << k;
  }
  EXPECT_DOUBLE_EQ(acc.lookup(999), 0.0);
}

TEST(FlatAccumulator, MatchesChainedAccumulatorAsMultiset) {
  NullSink sink;
  AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> chained(sink, addrs);
  hashdb::FlatAccumulator flat;
  support::SplitMix64 rng(777);
  for (int cycle = 0; cycle < 50; ++cycle) {
    chained.begin();
    flat.begin();
    const int ops = 1 + static_cast<int>(rng() % 200);
    for (int i = 0; i < ops; ++i) {
      const auto key = static_cast<std::uint32_t>(rng() % 128);
      const double val = static_cast<double>(rng() % 1000) / 100.0;
      chained.accumulate(key, val);
      flat.accumulate(key, val);
    }
    std::unordered_map<std::uint32_t, double> a, b;
    for (const auto& kv : chained.finalize()) a[kv.key] = kv.value;
    for (const auto& kv : flat.finalize()) b[kv.key] = kv.value;
    ASSERT_EQ(a.size(), b.size());
    for (const auto& [key, value] : a) {
      ASSERT_TRUE(b.count(key));
      EXPECT_NEAR(value, b[key], 1e-12);
    }
  }
}

}  // namespace
