// Tests for the SpGEMM library: CSR assembly, algebraic identities, and
// engine equivalence (the original ASA workload must produce the same
// product under every accumulation engine).

#include <gtest/gtest.h>

#include "asamap/asa/accumulator.hpp"
#include "asamap/hashdb/software_accumulator.hpp"
#include "asamap/spgemm/csr_matrix.hpp"
#include "asamap/spgemm/multiply.hpp"

namespace {

using namespace asamap;
using sim::NullSink;
using spgemm::CsrMatrix;
using spgemm::Triplet;

TEST(CsrMatrix, FromTripletsSortsAndMerges) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      2, 3, {{1, 2, 1.0}, {0, 1, 2.0}, {1, 2, 0.5}, {0, 0, 3.0}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  const auto cols0 = m.row_cols(0);
  EXPECT_TRUE(std::is_sorted(cols0.begin(), cols0.end()));
}

TEST(CsrMatrix, RejectsOutOfBounds) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::logic_error);
}

TEST(CsrMatrix, TransposeInvolution) {
  const CsrMatrix m = CsrMatrix::random(40, 60, 3.0, 7);
  EXPECT_EQ(m.transpose().transpose(), m);
  EXPECT_DOUBLE_EQ(m.transpose().at(5, 3), m.at(3, 5));
}

TEST(CsrMatrix, RandomHasExpectedDensity) {
  const CsrMatrix m = CsrMatrix::random(1000, 1000, 8.0, 11);
  // Dedup shaves a little off 8 per row.
  EXPECT_GT(m.nnz(), 7500u);
  EXPECT_LE(m.nnz(), 8000u);
}

template <typename MakeAcc>
CsrMatrix multiply_with(const CsrMatrix& a, const CsrMatrix& b,
                        MakeAcc&& make) {
  NullSink sink;
  hashdb::AddressSpace addrs;
  auto acc = make(sink, addrs);
  const auto sa = spgemm::SpgemmAddresses::for_operands(a, b, addrs);
  return spgemm::multiply(a, b, *acc, sink, sa);
}

TEST(Multiply, IdentityIsNeutral) {
  const CsrMatrix a = CsrMatrix::random(50, 50, 4.0, 13);
  const CsrMatrix i = CsrMatrix::identity(50);
  const auto left = multiply_with(i, a, [](auto& s, auto& ad) {
    return std::make_unique<hashdb::ChainedAccumulator<NullSink>>(s, ad);
  });
  const auto right = multiply_with(a, i, [](auto& s, auto& ad) {
    return std::make_unique<hashdb::ChainedAccumulator<NullSink>>(s, ad);
  });
  EXPECT_LT(CsrMatrix::max_abs_diff(left, a), 1e-15);
  EXPECT_LT(CsrMatrix::max_abs_diff(right, a), 1e-15);
}

TEST(Multiply, MatchesReference) {
  const CsrMatrix a = CsrMatrix::random(80, 120, 5.0, 17);
  const CsrMatrix b = CsrMatrix::random(120, 60, 5.0, 19);
  const CsrMatrix ref = spgemm::multiply_reference(a, b);
  const auto got = multiply_with(a, b, [](auto& s, auto& ad) {
    return std::make_unique<hashdb::ChainedAccumulator<NullSink>>(s, ad);
  });
  EXPECT_LT(CsrMatrix::max_abs_diff(got, ref), 1e-12);
  EXPECT_EQ(got.nnz(), ref.nnz());
}

TEST(Multiply, KnownSmallProduct) {
  // [1 2; 0 3] * [0 1; 4 0] = [8 1; 12 0]
  const CsrMatrix a =
      CsrMatrix::from_triplets(2, 2, {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}});
  const CsrMatrix b =
      CsrMatrix::from_triplets(2, 2, {{0, 1, 1}, {1, 0, 4}});
  const auto c = multiply_with(a, b, [](auto& s, auto& ad) {
    return std::make_unique<hashdb::ChainedAccumulator<NullSink>>(s, ad);
  });
  EXPECT_DOUBLE_EQ(c.at(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 0.0);
  EXPECT_EQ(c.nnz(), 3u);
}

TEST(Multiply, AllEnginesAgree) {
  const CsrMatrix a = CsrMatrix::random(100, 100, 6.0, 23);
  const CsrMatrix b = CsrMatrix::random(100, 100, 6.0, 29);
  const CsrMatrix ref = spgemm::multiply_reference(a, b);

  const auto chained = multiply_with(a, b, [](auto& s, auto& ad) {
    return std::make_unique<hashdb::ChainedAccumulator<NullSink>>(s, ad);
  });
  const auto open = multiply_with(a, b, [](auto& s, auto& ad) {
    return std::make_unique<hashdb::OpenAccumulator<NullSink>>(s, ad);
  });
  asa::Cam cam;  // 512-entry CAM, rows fit: no overflow
  const auto asa_prod = multiply_with(a, b, [&](auto& s, auto& ad) {
    return std::make_unique<asa::AsaAccumulator<NullSink>>(s, cam, ad);
  });
  EXPECT_LT(CsrMatrix::max_abs_diff(chained, ref), 1e-12);
  EXPECT_LT(CsrMatrix::max_abs_diff(open, ref), 1e-12);
  EXPECT_LT(CsrMatrix::max_abs_diff(asa_prod, ref), 1e-12);
}

TEST(Multiply, AsaWithHeavyOverflowStillCorrect) {
  // Dense-ish product rows (~300 distinct columns) against a tiny CAM.
  const CsrMatrix a = CsrMatrix::random(60, 200, 12.0, 31);
  const CsrMatrix b = CsrMatrix::random(200, 400, 30.0, 37);
  const CsrMatrix ref = spgemm::multiply_reference(a, b);

  asa::CamConfig cfg;
  cfg.capacity_entries = 32;
  asa::Cam cam(cfg);
  const auto got = multiply_with(a, b, [&](auto& s, auto& ad) {
    return std::make_unique<asa::AsaAccumulator<NullSink>>(s, cam, ad);
  });
  EXPECT_GT(cam.stats().evictions, 0u);
  EXPECT_LT(CsrMatrix::max_abs_diff(got, ref), 1e-9);
  EXPECT_EQ(got.nnz(), ref.nnz());
}

TEST(Multiply, StatsCountPartialProducts) {
  const CsrMatrix a =
      CsrMatrix::from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  const CsrMatrix b = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}});
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const auto sa = spgemm::SpgemmAddresses::for_operands(a, b, addrs);
  spgemm::SpgemmStats stats;
  const auto c = spgemm::multiply(a, b, acc, sink, sa, &stats);
  EXPECT_EQ(stats.partial_products, 3u);  // row0 of B (2) + row1 of B (1)
  EXPECT_EQ(stats.output_entries, c.nnz());
}

TEST(Multiply, DimensionMismatchThrows) {
  const CsrMatrix a = CsrMatrix::random(4, 5, 2.0, 1);
  const CsrMatrix b = CsrMatrix::random(6, 4, 2.0, 2);
  NullSink sink;
  hashdb::AddressSpace addrs;
  hashdb::ChainedAccumulator<NullSink> acc(sink, addrs);
  const auto sa = spgemm::SpgemmAddresses::for_operands(a, b, addrs);
  EXPECT_THROW(spgemm::multiply(a, b, acc, sink, sa), std::logic_error);
}

}  // namespace
